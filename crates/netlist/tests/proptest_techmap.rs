//! Property-based tests: technology mapping preserves boolean function
//! for randomly generated networks, in every style and option mix.

use std::collections::HashMap;

use proptest::prelude::*;

use mcml_cells::LogicStyle;
use mcml_netlist::{map_network, BoolNetwork, Signal, TechmapOptions};

/// Recipe for one random network node.
#[derive(Debug, Clone)]
enum NodeRecipe {
    And(usize, usize, bool, bool),
    Xor(usize, usize, bool),
    Mux(usize, usize, usize, bool),
    Or(usize, usize),
}

fn recipe_strategy(max_ref: usize) -> impl Strategy<Value = NodeRecipe> {
    prop_oneof![
        (0..max_ref, 0..max_ref, any::<bool>(), any::<bool>())
            .prop_map(|(a, b, ia, ib)| NodeRecipe::And(a, b, ia, ib)),
        (0..max_ref, 0..max_ref, any::<bool>()).prop_map(|(a, b, i)| NodeRecipe::Xor(a, b, i)),
        (0..max_ref, 0..max_ref, 0..max_ref, any::<bool>())
            .prop_map(|(s, a, b, i)| NodeRecipe::Mux(s, a, b, i)),
        (0..max_ref, 0..max_ref).prop_map(|(a, b)| NodeRecipe::Or(a, b)),
    ]
}

/// Build a random 6-input network from recipes; returns the network and
/// its input names.
fn build_network(recipes: &[NodeRecipe], n_outputs: usize) -> (BoolNetwork, Vec<String>) {
    let mut bn = BoolNetwork::new();
    let names: Vec<String> = (0..6).map(|i| format!("i{i}")).collect();
    let mut pool: Vec<Signal> = names.iter().map(|n| bn.input(n)).collect();
    for r in recipes {
        let pick = |i: usize| pool[i % pool.len()];
        let s = match r {
            NodeRecipe::And(a, b, ia, ib) => {
                let (mut x, mut y) = (pick(*a), pick(*b));
                if *ia {
                    x = x.not();
                }
                if *ib {
                    y = y.not();
                }
                bn.and(x, y)
            }
            NodeRecipe::Xor(a, b, i) => {
                let x = pick(*a);
                let y = if *i { pick(*b).not() } else { pick(*b) };
                bn.xor(x, y)
            }
            NodeRecipe::Mux(s, a, b, i) => {
                let sel = if *i { pick(*s).not() } else { pick(*s) };
                bn.mux(sel, pick(*a), pick(*b))
            }
            NodeRecipe::Or(a, b) => bn.or(pick(*a), pick(*b)),
        };
        pool.push(s);
    }
    // Random construction can constant-fold candidates; the mapper
    // (rightly) rejects constant outputs, so pick non-constant signals,
    // falling back to a primary input.
    let fallback = pool[0];
    let mut non_const: Vec<Signal> = pool
        .iter()
        .rev()
        .copied()
        .filter(|&s| bn.as_const(s).is_none())
        .take(4)
        .collect();
    if non_const.is_empty() {
        non_const.push(fallback);
    }
    for o in 0..n_outputs {
        bn.set_output(&format!("o{o}"), non_const[o % non_const.len()]);
    }
    (bn, names)
}

fn assignment(names: &[String], bits: u32) -> HashMap<String, bool> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), (bits >> i) & 1 == 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mapped netlists compute the same function as the source network,
    /// across styles, for all 64 input patterns.
    #[test]
    fn mapping_preserves_function(
        recipes in collection::vec(recipe_strategy(12), 3..25),
        style_pick in 0usize..3,
    ) {
        let (bn, names) = build_network(&recipes, 3);
        let style = [LogicStyle::Cmos, LogicStyle::Mcml, LogicStyle::PgMcml][style_pick];
        let nl = map_network(&bn, style, &TechmapOptions::default());
        prop_assert!(nl.validate().is_ok(), "{:?}", nl.validate());
        for bits in 0..64u32 {
            let asg = assignment(&names, bits);
            let want = bn.eval(&asg);
            // Constant-folded outputs may disappear; skip networks whose
            // outputs became constants (the mapper asserts on them).
            let values = nl.evaluate(&asg, &HashMap::new());
            for (name, w) in &want {
                prop_assert_eq!(nl.output_value(name, &values), *w,
                    "{} at {:#x} in {}", name, bits, style);
            }
        }
    }

    /// Fusion options never change the function, only the gate count.
    #[test]
    fn fusion_is_semantics_preserving(
        recipes in collection::vec(recipe_strategy(10), 4..20),
    ) {
        let (bn, names) = build_network(&recipes, 2);
        let fused = map_network(
            &bn,
            LogicStyle::PgMcml,
            &TechmapOptions {
                max_fanout: 0, // compare pure fusion, no buffering
                ..TechmapOptions::default()
            },
        );
        let plain = map_network(
            &bn,
            LogicStyle::PgMcml,
            &TechmapOptions {
                fuse_and: false,
                fuse_xor: false,
                fuse_mux4: false,
                fuse_maj: false,
                max_fanout: 0,
            },
        );
        prop_assert!(fused.gate_count() <= plain.gate_count(),
            "fusion cannot add gates: {} vs {}", fused.gate_count(), plain.gate_count());
        for bits in (0..64u32).step_by(5) {
            let asg = assignment(&names, bits);
            let vf = fused.evaluate(&asg, &HashMap::new());
            let vp = plain.evaluate(&asg, &HashMap::new());
            for (name, _) in bn.outputs() {
                prop_assert_eq!(
                    fused.output_value(name, &vf),
                    plain.output_value(name, &vp)
                );
            }
        }
    }

    /// Buffering respects the fan-out bound without changing semantics.
    #[test]
    fn buffering_bounds_fanout(
        recipes in collection::vec(recipe_strategy(8), 8..24),
        max_fo in 2usize..6,
    ) {
        let (bn, names) = build_network(&recipes, 4);
        let opts = TechmapOptions { max_fanout: max_fo, ..TechmapOptions::default() };
        let nl = map_network(&bn, LogicStyle::Mcml, &opts);
        let fo = nl.fanout_counts();
        prop_assert!(fo.iter().all(|&f| f <= max_fo), "max fanout {:?}", fo.iter().max());
        let asg = assignment(&names, 0b101010);
        let want = bn.eval(&asg);
        let values = nl.evaluate(&asg, &HashMap::new());
        for (name, w) in &want {
            prop_assert_eq!(nl.output_value(name, &values), *w);
        }
    }
}
