//! Deterministic replays of the shrunk counterexamples recorded in
//! `proptest_techmap.proptest-regressions`.
//!
//! The vendored proptest stand-in does not read regression files, so the
//! five historical failure cases are pinned here verbatim as ordinary
//! tests — they run on every `cargo test`, independent of any RNG.

use std::collections::HashMap;

use mcml_cells::LogicStyle;
use mcml_netlist::{map_network, BoolNetwork, Signal, TechmapOptions};

/// Recipe for one network node, mirroring the proptest generator.
#[derive(Debug, Clone)]
enum NodeRecipe {
    And(usize, usize, bool, bool),
    Xor(usize, usize, bool),
    Mux(usize, usize, usize, bool),
    Or(usize, usize),
}

use NodeRecipe::{And, Mux, Or, Xor};

fn build_network(recipes: &[NodeRecipe], n_outputs: usize) -> (BoolNetwork, Vec<String>) {
    let mut bn = BoolNetwork::new();
    let names: Vec<String> = (0..6).map(|i| format!("i{i}")).collect();
    let mut pool: Vec<Signal> = names.iter().map(|n| bn.input(n)).collect();
    for r in recipes {
        let pick = |i: usize| pool[i % pool.len()];
        let s = match r {
            And(a, b, ia, ib) => {
                let (mut x, mut y) = (pick(*a), pick(*b));
                if *ia {
                    x = x.not();
                }
                if *ib {
                    y = y.not();
                }
                bn.and(x, y)
            }
            Xor(a, b, i) => {
                let x = pick(*a);
                let y = if *i { pick(*b).not() } else { pick(*b) };
                bn.xor(x, y)
            }
            Mux(s, a, b, i) => {
                let sel = if *i { pick(*s).not() } else { pick(*s) };
                bn.mux(sel, pick(*a), pick(*b))
            }
            Or(a, b) => bn.or(pick(*a), pick(*b)),
        };
        pool.push(s);
    }
    let fallback = pool[0];
    let mut non_const: Vec<Signal> = pool
        .iter()
        .rev()
        .copied()
        .filter(|&s| bn.as_const(s).is_none())
        .take(4)
        .collect();
    if non_const.is_empty() {
        non_const.push(fallback);
    }
    for o in 0..n_outputs {
        bn.set_output(&format!("o{o}"), non_const[o % non_const.len()]);
    }
    (bn, names)
}

fn assignment(names: &[String], bits: u32) -> HashMap<String, bool> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), (bits >> i) & 1 == 1))
        .collect()
}

fn check_mapping_preserves_function(recipes: &[NodeRecipe], style: LogicStyle) {
    let (bn, names) = build_network(recipes, 3);
    let nl = map_network(&bn, style, &TechmapOptions::default());
    assert!(nl.validate().is_ok(), "{:?}", nl.validate());
    for bits in 0..64u32 {
        let asg = assignment(&names, bits);
        let want = bn.eval(&asg);
        let values = nl.evaluate(&asg, &HashMap::new());
        for (name, w) in &want {
            assert_eq!(
                nl.output_value(name, &values),
                *w,
                "{name} at {bits:#x} in {style}"
            );
        }
    }
}

fn check_fusion_semantics(recipes: &[NodeRecipe]) {
    let (bn, names) = build_network(recipes, 2);
    let fused = map_network(
        &bn,
        LogicStyle::PgMcml,
        &TechmapOptions {
            max_fanout: 0,
            ..TechmapOptions::default()
        },
    );
    let plain = map_network(
        &bn,
        LogicStyle::PgMcml,
        &TechmapOptions {
            fuse_and: false,
            fuse_xor: false,
            fuse_mux4: false,
            fuse_maj: false,
            max_fanout: 0,
        },
    );
    assert!(
        fused.gate_count() <= plain.gate_count(),
        "fusion cannot add gates: {} vs {}",
        fused.gate_count(),
        plain.gate_count()
    );
    for bits in (0..64u32).step_by(5) {
        let asg = assignment(&names, bits);
        let vf = fused.evaluate(&asg, &HashMap::new());
        let vp = plain.evaluate(&asg, &HashMap::new());
        for (name, _) in bn.outputs() {
            assert_eq!(fused.output_value(name, &vf), plain.output_value(name, &vp));
        }
    }
}

fn check_buffering_bounds(recipes: &[NodeRecipe], max_fo: usize) {
    let (bn, names) = build_network(recipes, 4);
    let opts = TechmapOptions {
        max_fanout: max_fo,
        ..TechmapOptions::default()
    };
    let nl = map_network(&bn, LogicStyle::Mcml, &opts);
    let fo = nl.fanout_counts();
    assert!(
        fo.iter().all(|&f| f <= max_fo),
        "max fanout {:?}",
        fo.iter().max()
    );
    let asg = assignment(&names, 0b10_1010);
    let want = bn.eval(&asg);
    let values = nl.evaluate(&asg, &HashMap::new());
    for (name, w) in &want {
        assert_eq!(nl.output_value(name, &values), *w);
    }
}

// cc f103504… — buffering case: eight constant-folding ANDs plus an XOR
// at fan-out bound 2.
#[test]
fn regression_buffering_const_fold_chain() {
    check_buffering_bounds(
        &[
            And(0, 0, false, false),
            And(0, 0, false, false),
            And(0, 0, false, false),
            And(0, 0, false, false),
            And(0, 0, false, false),
            And(0, 0, false, false),
            Xor(0, 0, false),
            And(0, 0, false, false),
        ],
        2,
    );
}

// cc 7cc9225… — fusion case: XOR of a signal with itself between ANDs.
#[test]
fn regression_fusion_self_xor() {
    check_fusion_semantics(&[
        And(0, 0, false, false),
        And(0, 0, false, false),
        Xor(6, 6, false),
        And(0, 0, false, false),
    ]);
}

// cc 9dd51bb… — mapping case in CMOS: AND of a signal with its own
// complement (constant false) feeding later nodes.
#[test]
fn regression_mapping_self_and_complement() {
    check_mapping_preserves_function(
        &[
            And(0, 0, false, false),
            And(5, 5, false, true),
            And(0, 0, false, false),
        ],
        LogicStyle::Cmos,
    );
}

// cc d7b4845… — mapping case: mixed OR/MUX web with repeated operands
// (exercised every style via the original strategy; replay all three).
#[test]
fn regression_mapping_mixed_web() {
    let recipes = [
        Xor(0, 1, false),
        And(0, 0, false, false),
        Or(7, 7),
        Or(1, 0),
        Mux(7, 1, 0, false),
        And(7, 1, false, false),
        And(1, 7, false, false),
        Mux(0, 1, 0, false),
        And(0, 0, false, false),
        And(0, 0, false, false),
    ];
    for style in [LogicStyle::Cmos, LogicStyle::Mcml, LogicStyle::PgMcml] {
        check_mapping_preserves_function(&recipes, style);
    }
}

// cc adaadbf… — mapping case in CMOS: inverted-input ANDs feeding a MUX.
#[test]
fn regression_mapping_inverted_and_mux() {
    check_mapping_preserves_function(
        &[
            And(1, 2, false, false),
            And(1, 1, false, true),
            And(11, 3, false, true),
            Mux(0, 7, 8, false),
        ],
        LogicStyle::Cmos,
    );
}
