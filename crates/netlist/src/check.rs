//! Typed structural checks over the gate-level IR.
//!
//! [`structural_issues`] is the single source of truth for the structural
//! invariants of a [`Netlist`]: [`Netlist::validate`] fails on the fatal
//! subset, and the `mcml-lint` gate-level rule pack reports every issue
//! under a stable rule id. Keeping the walk here, in the IR crate, lets
//! both consumers share one implementation without a dependency cycle
//! (the lint crate depends on this one, never the reverse).

use mcml_cells::LogicStyle;

use crate::ir::{GateKind, Netlist};

/// One structural defect found in a [`Netlist`].
///
/// The variants carry names (not raw indices) so a diagnostic stays
/// meaningful after the netlist that produced it is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralIssue {
    /// An explicit `Inv` gate in a differential netlist, where inversion
    /// is free (rail swap) and the techmap never emits one.
    IllegalInverter {
        /// Offending gate instance name.
        gate: String,
    },
    /// A net with more than one driving gate output.
    MultipleDrivers {
        /// Net name.
        net: String,
        /// Names of every gate driving the net, in gate order.
        drivers: Vec<String>,
    },
    /// A primary input whose net is also driven by a gate.
    DrivenInput {
        /// Input name.
        input: String,
        /// Name of the driving gate.
        driver: String,
    },
    /// A combinational cycle (sequential outputs break paths).
    CombinationalCycle {
        /// Gate instance names along the cycle, in signal-flow order.
        cycle: Vec<String>,
    },
    /// A net consumed by a gate input or primary output but driven by
    /// nothing (and not a primary input).
    UndrivenNet {
        /// Net name.
        net: String,
    },
    /// A net driven by a gate but consumed by nothing.
    DanglingNet {
        /// Net name.
        net: String,
        /// Name of the driving gate.
        driver: String,
    },
}

impl StructuralIssue {
    /// Whether [`Netlist::validate`] treats the issue as an error.
    ///
    /// Undriven and dangling nets are lint matters (an output pin may
    /// legitimately go unused); the other four break elaboration and
    /// simulation and always fail validation.
    #[must_use]
    pub fn is_fatal(&self) -> bool {
        !matches!(
            self,
            StructuralIssue::UndrivenNet { .. } | StructuralIssue::DanglingNet { .. }
        )
    }
}

impl std::fmt::Display for StructuralIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructuralIssue::IllegalInverter { gate } => write!(
                f,
                "gate {gate}: INV is illegal in differential netlists (inversion is free)"
            ),
            StructuralIssue::MultipleDrivers { net, drivers } => {
                write!(f, "net {net} has multiple drivers ({})", drivers.join(", "))
            }
            StructuralIssue::DrivenInput { input, driver } => {
                write!(f, "primary input {input} is driven by a gate ({driver})")
            }
            StructuralIssue::CombinationalCycle { cycle } => {
                write!(f, "combinational cycle through gate {}", cycle.join(" -> "))
            }
            StructuralIssue::UndrivenNet { net } => write!(f, "net {net} has no driver"),
            StructuralIssue::DanglingNet { net, driver } => {
                write!(f, "net {net} (driven by {driver}) has no sinks")
            }
        }
    }
}

/// Typed error returned by [`Netlist::validate`]: every fatal
/// [`StructuralIssue`] in the netlist, in deterministic walk order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// The fatal issues, in walk order (gates first, then inputs, then
    /// cycles).
    pub issues: Vec<StructuralIssue>,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, issue) in self.issues.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidateError {}

/// Every structural issue in a netlist, fatal or not.
///
/// Walk order (and therefore output order) is deterministic: illegal
/// inverters and multiply-driven nets in gate order, driven inputs in
/// input order, at most one combinational cycle, then undriven and
/// dangling nets in net order.
#[must_use]
pub fn structural_issues(nl: &Netlist) -> Vec<StructuralIssue> {
    let mut issues = Vec::new();

    // Per-net driver lists (also feeds the driven-input check).
    let mut drivers: Vec<Vec<usize>> = vec![Vec::new(); nl.net_count()];
    for (gi, g) in nl.gates().iter().enumerate() {
        if g.kind == GateKind::Inv && nl.style != LogicStyle::Cmos {
            issues.push(StructuralIssue::IllegalInverter {
                gate: g.name.clone(),
            });
        }
        for &o in &g.outputs {
            drivers[o.index()].push(gi);
        }
    }
    for (ni, d) in drivers.iter().enumerate() {
        if d.len() > 1 {
            issues.push(StructuralIssue::MultipleDrivers {
                net: nl.net_name(crate::ir::NetId::from_index(ni)).to_owned(),
                drivers: d.iter().map(|&gi| nl.gates()[gi].name.clone()).collect(),
            });
        }
    }
    for (name, n) in nl.inputs() {
        if let Some(&gi) = drivers[n.index()].first() {
            issues.push(StructuralIssue::DrivenInput {
                input: name.clone(),
                driver: nl.gates()[gi].name.clone(),
            });
        }
    }
    if let Err(stuck) = nl.comb_topo_order() {
        issues.push(StructuralIssue::CombinationalCycle {
            cycle: extract_cycle(nl, stuck),
        });
    }

    // Connectivity: undriven and dangling nets.
    let is_input: Vec<bool> = {
        let mut v = vec![false; nl.net_count()];
        for (_, n) in nl.inputs() {
            v[n.index()] = true;
        }
        v
    };
    let fanout = nl.fanout_counts();
    for ni in 0..nl.net_count() {
        let id = crate::ir::NetId::from_index(ni);
        let driven = !drivers[ni].is_empty();
        if fanout[ni] > 0 && !driven && !is_input[ni] {
            issues.push(StructuralIssue::UndrivenNet {
                net: nl.net_name(id).to_owned(),
            });
        }
        if fanout[ni] == 0 && driven {
            issues.push(StructuralIssue::DanglingNet {
                net: nl.net_name(id).to_owned(),
                driver: nl.gates()[drivers[ni][0]].name.clone(),
            });
        }
    }
    issues
}

/// Follow combinational dependencies from a stuck gate until a gate
/// repeats, yielding the gate names of one cycle in signal-flow order.
fn extract_cycle(nl: &Netlist, stuck: usize) -> Vec<String> {
    let driver = nl.driver_map();
    // Walk drain-to-source: from each gate to the first of its input
    // drivers that is also combinational. Every gate on a cycle has one.
    let mut path: Vec<usize> = Vec::new();
    let mut seen = vec![false; nl.gate_count()];
    let mut g = stuck;
    loop {
        if seen[g] {
            let start = path.iter().position(|&x| x == g).unwrap_or(0);
            let mut cycle: Vec<String> = path[start..]
                .iter()
                .map(|&x| nl.gates()[x].name.clone())
                .collect();
            // The walk went sink -> driver; flip to signal-flow order.
            cycle.reverse();
            return cycle;
        }
        seen[g] = true;
        path.push(g);
        let next = nl.gates()[g].inputs.iter().find_map(|c| {
            driver[c.net.index()].filter(|&src| !nl.gates()[src].kind.is_sequential())
        });
        match next {
            Some(src) => g = src,
            // Shouldn't happen for a genuinely stuck gate; bail with what
            // we have rather than loop forever.
            None => return path.iter().map(|&x| nl.gates()[x].name.clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Conn, Netlist};
    use mcml_cells::CellKind;

    #[test]
    fn clean_netlist_has_no_issues() {
        let mut nl = Netlist::new("t", LogicStyle::PgMcml);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let q = nl.add_net("q");
        nl.add_gate(
            "u",
            GateKind::Lib(CellKind::Xor2),
            vec![Conn::plain(a), Conn::plain(b)],
            vec![q],
        );
        nl.set_output("q", Conn::plain(q));
        assert_eq!(structural_issues(&nl), Vec::new());
    }

    #[test]
    fn undriven_and_dangling_are_nonfatal() {
        let mut nl = Netlist::new("t", LogicStyle::PgMcml);
        let a = nl.add_input("a");
        let ghost = nl.add_net("ghost");
        let q = nl.add_net("q");
        nl.add_gate(
            "u",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(a), Conn::plain(ghost)],
            vec![q],
        );
        // `ghost` is consumed but undriven; `q` is driven but unused.
        let issues = structural_issues(&nl);
        assert!(issues
            .iter()
            .any(|i| matches!(i, StructuralIssue::UndrivenNet { net } if net == "ghost")));
        assert!(issues
            .iter()
            .any(|i| matches!(i, StructuralIssue::DanglingNet { net, .. } if net == "q")));
        assert!(issues.iter().all(|i| !i.is_fatal()));
        nl.validate().expect("non-fatal issues pass validation");
    }

    #[test]
    fn cycle_is_reported_with_its_path() {
        let mut nl = Netlist::new("t", LogicStyle::PgMcml);
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let x = nl.add_input("x");
        nl.add_gate(
            "u1",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(a), Conn::plain(x)],
            vec![b],
        );
        nl.add_gate(
            "u2",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(b), Conn::plain(x)],
            vec![c],
        );
        nl.add_gate(
            "u3",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(c), Conn::plain(x)],
            vec![a],
        );
        nl.set_output("q", Conn::plain(a));
        let issues = structural_issues(&nl);
        let cycle = issues
            .iter()
            .find_map(|i| match i {
                StructuralIssue::CombinationalCycle { cycle } => Some(cycle.clone()),
                _ => None,
            })
            .expect("cycle found");
        assert_eq!(cycle.len(), 3, "{cycle:?}");
        for name in ["u1", "u2", "u3"] {
            assert!(cycle.iter().any(|g| g == name), "{name} in {cycle:?}");
        }
        let err = nl.validate().unwrap_err();
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn multiple_drivers_lists_every_driver() {
        let mut nl = Netlist::new("t", LogicStyle::Cmos);
        let a = nl.add_input("a");
        let q = nl.add_net("q");
        nl.add_gate("u1", GateKind::Inv, vec![Conn::plain(a)], vec![q]);
        nl.add_gate("u2", GateKind::Inv, vec![Conn::plain(a)], vec![q]);
        nl.set_output("q", Conn::plain(q));
        let issues = structural_issues(&nl);
        assert!(issues.iter().any(|i| matches!(
            i,
            StructuralIssue::MultipleDrivers { net, drivers }
                if net == "q" && drivers == &["u1".to_owned(), "u2".to_owned()]
        )));
    }
}
