//! # mcml-netlist — gate-level IR, synthesis and the sleep tree
//!
//! The commodity-EDA slice of the paper's flow (Design Compiler +
//! Encounter): a structural gate-level netlist over the cell library, a
//! small synthesis front-end, and the power-gating infrastructure.
//!
//! * [`ir`] — netlist IR with **free differential inversion**: a
//!   connection may be marked inverted, which MCML realises by swapping
//!   the fat-wire rail pair (no gate needed); the CMOS back-end legalises
//!   the same netlist by inserting real inverters.
//! * [`check`] — typed structural issues ([`StructuralIssue`]) shared by
//!   [`Netlist::validate`] and the `mcml-lint` gate-level rule pack.
//! * [`bool_network`] — a complemented-edge boolean network (AND/XOR/MUX
//!   nodes) used as the synthesis input, with a BDD-based LUT builder for
//!   look-up-table blocks such as the AES S-box.
//! * [`techmap`] — maps the network onto the 16-cell library, with fusion
//!   passes (AND2 chains → AND3/AND4, XOR chains → XOR3/XOR4, MUX2 pairs →
//!   MUX4) and high-fan-out buffering.
//! * [`sleep_tree`] — the CTS-style balanced buffered distribution of the
//!   sleep signal (§5: *"the sleep signal is routed and buffered as a
//!   balanced tree"* using single-ended CMOS clock buffers), reporting
//!   buffer count, insertion delay and skew.
//! * [`report`] — cell counts, silicon area (cells + fat-wire routing
//!   overhead) and static-timing critical path against a characterised
//!   [`mcml_char::TimingLibrary`].
//!
//! Synthesis round trip — build a boolean network, map it onto the
//! PG-MCML library, and check the mapped netlist still computes the
//! same function:
//!
//! ```
//! use mcml_netlist::{map_network, BoolNetwork, TechmapOptions};
//!
//! let mut bn = BoolNetwork::new();
//! let (a, b) = (bn.input("a"), bn.input("b"));
//! let y = bn.xor(a, b);
//! bn.set_output("y", y);
//!
//! let nl = map_network(&bn, mcml_cells::LogicStyle::PgMcml, &TechmapOptions::default());
//! assert!(nl.gate_count() >= 1);
//! let out = bn.eval(&[("a".into(), true), ("b".into(), false)].into());
//! assert_eq!(out["y"], true); // XOR(1, 0)
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod auto_sleep;
pub mod bool_network;
pub mod check;
pub mod ir;
pub mod report;
pub mod sleep_tree;
pub mod techmap;

pub use auto_sleep::{insert_sleep_domains, SleepDomain, SleepPlan};
pub use bool_network::{BoolNetwork, Signal};
pub use check::{structural_issues, StructuralIssue, ValidateError};
pub use ir::{Conn, Gate, GateKind, NetId, Netlist, PortClass, SinkRef};
pub use report::{area_report, critical_path_ps, AreaReport};
pub use sleep_tree::{build_sleep_tree, SleepTree};
pub use techmap::{map_network, TechmapOptions};
