//! Automatic sleep-domain insertion.
//!
//! The paper's closing line: *"Automatic insertion of sleep signal during
//! synthesis will be investigated in future work."* This module is that
//! feature: given a PG-MCML netlist and a grouping of its outputs into
//! independently-idle functions, it partitions the gates into **sleep
//! domains** by fan-in cone, assigns cone-shared gates to a common
//! always-ready domain, and sizes one buffered sleep tree per domain —
//! so that synthesis, not the designer, decides which cells share a sleep
//! wire (the manual step §5 of the paper had to do by hand).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mcml_char::TimingLibrary;

use crate::ir::Netlist;
use crate::sleep_tree::{build_sleep_tree, SleepTree, SleepTreeOptions};

/// One synthesised sleep domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SleepDomain {
    /// Domain name (from the output group, or `"shared"`).
    pub name: String,
    /// Gate indices assigned to this domain.
    pub gates: Vec<usize>,
    /// The domain's buffered sleep distribution tree.
    pub tree: SleepTree,
}

/// Result of the automatic insertion pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SleepPlan {
    /// Domains in group order, with the shared domain (if any) last.
    pub domains: Vec<SleepDomain>,
    /// Per-gate domain index (parallel to the netlist's gate list).
    pub domain_of_gate: Vec<usize>,
}

impl SleepPlan {
    /// Total sleep-tree buffers across all domains.
    #[must_use]
    pub fn buffer_count(&self) -> usize {
        self.domains.iter().map(|d| d.tree.buffer_count()).sum()
    }

    /// Estimated average power (W) of the gated netlist given each
    /// domain's duty cycle (fraction of time awake), using per-gate awake
    /// and asleep power from the library.
    ///
    /// # Panics
    ///
    /// Panics if `duty` length mismatches the domain count or a gate kind
    /// is missing from the library.
    #[must_use]
    pub fn average_power_w(&self, nl: &Netlist, lib: &TimingLibrary, duty: &[f64]) -> f64 {
        assert_eq!(duty.len(), self.domains.len(), "one duty per domain");
        let mut total = 0.0;
        for (d, dom) in self.domains.iter().enumerate() {
            for &gi in &dom.gates {
                let g = &nl.gates()[gi];
                let t = match g.kind {
                    crate::ir::GateKind::Lib(k) => lib
                        .get(k, nl.style)
                        .unwrap_or_else(|| panic!("library misses {k}")),
                    crate::ir::GateKind::Inv => continue,
                };
                total += duty[d] * t.static_power_w + (1.0 - duty[d]) * t.leakage_sleep_w;
            }
        }
        total
    }
}

/// Partition `nl` into sleep domains from named output groups.
///
/// Each group is `(name, output names)`. A gate belongs to a group's
/// domain if it lies in the combinational fan-in cone of that group's
/// outputs only; gates feeding more than one group land in the `shared`
/// domain, which must stay awake whenever any group is active. Gates in
/// no cone (dangling) also land in `shared`.
///
/// # Panics
///
/// Panics on unknown output names or a non-power-gated netlist.
#[must_use]
pub fn insert_sleep_domains(
    nl: &Netlist,
    groups: &[(&str, Vec<&str>)],
    lib: &TimingLibrary,
    opts: &SleepTreeOptions,
) -> SleepPlan {
    assert!(
        nl.style.is_power_gated(),
        "automatic sleep insertion targets PG-MCML netlists"
    );
    let driver = nl.driver_map();
    let out_conn: HashMap<&str, crate::ir::Conn> =
        nl.outputs().iter().map(|(n, c)| (n.as_str(), *c)).collect();

    // Mark each gate with the bitmask of groups whose cone contains it.
    let n_gates = nl.gates().len();
    let mut mask = vec![0u64; n_gates];
    for (gid, (_, outs)) in groups.iter().enumerate() {
        let bit = 1u64 << gid;
        let mut stack: Vec<usize> = Vec::new();
        for oname in outs {
            let conn = out_conn
                .get(*oname)
                .unwrap_or_else(|| panic!("unknown output `{oname}`"));
            if let Some(g) = driver[conn.net.index()] {
                stack.push(g);
            }
        }
        while let Some(g) = stack.pop() {
            if mask[g] & bit != 0 {
                continue;
            }
            mask[g] |= bit;
            for c in &nl.gates()[g].inputs {
                if let Some(src) = driver[c.net.index()] {
                    stack.push(src);
                }
            }
        }
    }

    // Assign: exactly one group bit → that domain; 0 or >1 bits → shared.
    let shared_idx = groups.len();
    let mut domain_of_gate = vec![shared_idx; n_gates];
    let mut gates_of: Vec<Vec<usize>> = vec![Vec::new(); groups.len() + 1];
    for (g, &m) in mask.iter().enumerate() {
        let dom = if m.count_ones() == 1 {
            m.trailing_zeros() as usize
        } else {
            shared_idx
        };
        domain_of_gate[g] = dom;
        gates_of[dom].push(g);
    }

    let mut domains = Vec::new();
    for (gid, (name, _)) in groups.iter().enumerate() {
        let sinks = gates_of[gid].len().max(1);
        domains.push(SleepDomain {
            name: (*name).to_owned(),
            gates: gates_of[gid].clone(),
            tree: build_sleep_tree(sinks, lib, opts),
        });
    }
    if !gates_of[shared_idx].is_empty() {
        let sinks = gates_of[shared_idx].len();
        domains.push(SleepDomain {
            name: "shared".to_owned(),
            gates: gates_of[shared_idx].clone(),
            tree: build_sleep_tree(sinks, lib, opts),
        });
    } else {
        // Keep indices consistent: an empty shared domain with a minimal
        // tree.
        domains.push(SleepDomain {
            name: "shared".to_owned(),
            gates: Vec::new(),
            tree: build_sleep_tree(1, lib, opts),
        });
    }

    SleepPlan {
        domains,
        domain_of_gate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Conn, GateKind};
    use mcml_cells::{CellKind, DriveStrength, LogicStyle};
    use mcml_char::CellTiming;

    fn lib() -> TimingLibrary {
        let mut lib = TimingLibrary::new();
        for kind in CellKind::ALL {
            for style in [LogicStyle::PgMcml, LogicStyle::Cmos] {
                lib.insert(CellTiming {
                    kind,
                    style,
                    drive: DriveStrength::X1,
                    area_um2: 10.0,
                    delay_fo1_ps: 30.0,
                    delay_fo4_ps: 60.0,
                    input_cap_ff: 1.0,
                    static_power_w: 60e-6,
                    leakage_sleep_w: 1e-9,
                    toggle_energy_j: 1e-15,
                });
            }
        }
        lib
    }

    /// Two independent XOR cones plus one shared AND feeding both.
    fn two_cone_netlist() -> Netlist {
        let mut nl = Netlist::new("cones", LogicStyle::PgMcml);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let shared = nl.add_net("sh");
        let q0 = nl.add_net("q0n");
        let q1 = nl.add_net("q1n");
        nl.add_gate(
            "u_sh",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(a), Conn::plain(b)],
            vec![shared],
        );
        nl.add_gate(
            "u_x0",
            GateKind::Lib(CellKind::Xor2),
            vec![Conn::plain(shared), Conn::plain(c)],
            vec![q0],
        );
        nl.add_gate(
            "u_x1",
            GateKind::Lib(CellKind::Xor2),
            vec![Conn::plain(shared), Conn::plain(b)],
            vec![q1],
        );
        nl.set_output("q0", Conn::plain(q0));
        nl.set_output("q1", Conn::plain(q1));
        nl
    }

    #[test]
    fn cones_partition_with_shared_domain() {
        let nl = two_cone_netlist();
        let plan = insert_sleep_domains(
            &nl,
            &[("f0", vec!["q0"]), ("f1", vec!["q1"])],
            &lib(),
            &SleepTreeOptions::default(),
        );
        assert_eq!(plan.domains.len(), 3);
        assert_eq!(plan.domains[0].gates, vec![1], "x0 exclusive to f0");
        assert_eq!(plan.domains[1].gates, vec![2], "x1 exclusive to f1");
        assert_eq!(plan.domains[2].gates, vec![0], "the AND is shared");
        assert_eq!(plan.domain_of_gate, vec![2, 0, 1]);
    }

    #[test]
    fn per_domain_duty_beats_monolithic_sleep() {
        // If only f0 is ever active (10 %), per-domain gating powers off
        // f1's cone entirely — cheaper than waking everything at 10 %.
        let nl = two_cone_netlist();
        let lib = lib();
        let plan = insert_sleep_domains(
            &nl,
            &[("f0", vec!["q0"]), ("f1", vec!["q1"])],
            &lib,
            &SleepTreeOptions::default(),
        );
        let per_domain = plan.average_power_w(&nl, &lib, &[0.1, 0.0, 0.1]);
        let monolithic = plan.average_power_w(&nl, &lib, &[0.1, 0.1, 0.1]);
        assert!(per_domain < monolithic);
    }

    #[test]
    #[should_panic(expected = "unknown output")]
    fn unknown_output_rejected() {
        let nl = two_cone_netlist();
        let _ = insert_sleep_domains(
            &nl,
            &[("f0", vec!["nope"])],
            &lib(),
            &SleepTreeOptions::default(),
        );
    }
}
