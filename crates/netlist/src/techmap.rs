//! Technology mapping onto the 16-cell library.
//!
//! Plays the role of Design Compiler in the paper's flow: the boolean
//! network is covered with library cells (with fusion of AND/XOR chains
//! into the 3- and 4-input cells, MUX2 pairs into MUX4, and the majority
//! pattern into MAJ32), connection inversions are legalised (free rail
//! swap for differential styles, real inverters for CMOS), and
//! high-fan-out nets are buffered.

use mcml_cells::{CellKind, LogicStyle};

use crate::bool_network::{BNode, BoolNetwork, Signal};
use crate::ir::{Conn, GateKind, NetId, Netlist};

/// Mapper options.
#[derive(Debug, Clone, Copy)]
pub struct TechmapOptions {
    /// Fuse AND2 chains into AND3/AND4.
    pub fuse_and: bool,
    /// Fuse XOR2 chains into XOR3/XOR4.
    pub fuse_xor: bool,
    /// Fuse MUX2 pairs sharing a select into MUX4.
    pub fuse_mux4: bool,
    /// Detect the majority pattern and use MAJ32.
    pub fuse_maj: bool,
    /// Insert buffers on nets driving more than this many sinks.
    pub max_fanout: usize,
}

impl Default for TechmapOptions {
    fn default() -> Self {
        Self {
            fuse_and: true,
            fuse_xor: true,
            fuse_mux4: true,
            fuse_maj: true,
            max_fanout: 8,
        }
    }
}

#[derive(Debug, Clone)]
enum Plan {
    Skip,
    Input,
    Emit { kind: CellKind, ins: Vec<Signal> },
}

/// Map a boolean network to a gate-level netlist in the given style.
///
/// # Panics
///
/// Panics if an output of the network is constant (fold constants before
/// mapping) or the network is malformed.
#[must_use]
pub fn map_network(bn: &BoolNetwork, style: LogicStyle, opts: &TechmapOptions) -> Netlist {
    let n = bn.len();
    // Reference counts over nodes (edges + outputs).
    let mut refs = vec![0usize; n];
    let mut each_edge = |s: &Signal| refs[s.node as usize] += 1;
    for i in 0..n {
        match bn.node(i as u32) {
            BNode::Input(_) | BNode::False => {}
            BNode::And(a, b) | BNode::Xor(a, b) => {
                each_edge(a);
                each_edge(b);
            }
            BNode::Mux { s, lo, hi } => {
                each_edge(s);
                each_edge(lo);
                each_edge(hi);
            }
        }
    }
    for (_, s) in bn.outputs() {
        refs[s.node as usize] += 1;
    }

    // Fusion analysis, heads first (reverse topological order).
    let mut consumed = vec![false; n];
    let mut plans: Vec<Plan> = vec![Plan::Skip; n];
    for i in (0..n).rev() {
        if consumed[i] {
            continue;
        }
        let plan = match bn.node(i as u32) {
            BNode::Input(_) => Plan::Input,
            BNode::False => Plan::Skip,
            BNode::And(a, b) => {
                if opts.fuse_and {
                    let leaves = fuse_chain(bn, &refs, &mut consumed, *a, *b, is_and);
                    Plan::Emit {
                        kind: match leaves.len() {
                            2 => CellKind::And2,
                            3 => CellKind::And3,
                            _ => CellKind::And4,
                        },
                        ins: leaves,
                    }
                } else {
                    Plan::Emit {
                        kind: CellKind::And2,
                        ins: vec![*a, *b],
                    }
                }
            }
            BNode::Xor(a, b) => {
                if opts.fuse_xor {
                    let leaves = fuse_chain(bn, &refs, &mut consumed, *a, *b, is_xor);
                    Plan::Emit {
                        kind: match leaves.len() {
                            2 => CellKind::Xor2,
                            3 => CellKind::Xor3,
                            _ => CellKind::Xor4,
                        },
                        ins: leaves,
                    }
                } else {
                    Plan::Emit {
                        kind: CellKind::Xor2,
                        ins: vec![*a, *b],
                    }
                }
            }
            BNode::Mux { s, lo, hi } => {
                if opts.fuse_maj {
                    if let Some(ins) = match_maj(bn, &refs, *s, *lo, *hi) {
                        consumed[lo.node as usize] = true;
                        consumed[hi.node as usize] = true;
                        plans[i] = Plan::Emit {
                            kind: CellKind::Maj32,
                            ins,
                        };
                        continue;
                    }
                }
                if opts.fuse_mux4 {
                    if let Some(ins) = match_mux4(bn, &refs, *s, *lo, *hi) {
                        consumed[lo.node as usize] = true;
                        consumed[hi.node as usize] = true;
                        plans[i] = Plan::Emit {
                            kind: CellKind::Mux4,
                            ins,
                        };
                        continue;
                    }
                }
                Plan::Emit {
                    kind: CellKind::Mux2,
                    ins: vec![*lo, *hi, *s],
                }
            }
        };
        plans[i] = plan;
    }

    // Emission in forward (topological) order.
    let mut nl = Netlist::new("mapped", style);
    let mut net_of: Vec<Option<NetId>> = vec![None; n];
    for (name, node) in bn.inputs() {
        net_of[*node as usize] = Some(nl.add_input(name));
    }
    let conn_for = |net_of: &Vec<Option<NetId>>, s: Signal| -> Conn {
        Conn {
            net: net_of[s.node as usize].expect("input mapped before use"),
            inverted: s.inverted,
        }
    };
    for i in 0..n {
        match &plans[i] {
            Plan::Skip | Plan::Input => {}
            Plan::Emit { kind, ins } => {
                let out = nl.add_net(&format!("n{i}"));
                let conns: Vec<Conn> = ins.iter().map(|&s| conn_for(&net_of, s)).collect();
                nl.add_gate(
                    &format!("u{i}_{kind}"),
                    GateKind::Lib(*kind),
                    conns,
                    vec![out],
                );
                net_of[i] = Some(out);
            }
        }
    }
    for (name, s) in bn.outputs() {
        assert!(
            bn.as_const(*s).is_none(),
            "constant output `{name}` — fold before mapping"
        );
        nl.set_output(name, conn_for(&net_of, *s));
    }

    if style == LogicStyle::Cmos {
        legalize_inversions_cmos(&mut nl);
    }
    if opts.max_fanout > 0 {
        buffer_high_fanout(&mut nl, opts.max_fanout);
    }
    nl
}

fn is_and(n: &BNode) -> Option<(Signal, Signal)> {
    match n {
        BNode::And(a, b) => Some((*a, *b)),
        _ => None,
    }
}

fn is_xor(n: &BNode) -> Option<(Signal, Signal)> {
    match n {
        BNode::Xor(a, b) => Some((*a, *b)),
        _ => None,
    }
}

/// Greedily expand a 2-input gate into up to 4 leaves along single-use,
/// non-inverted edges of the same gate type.
fn fuse_chain(
    bn: &BoolNetwork,
    refs: &[usize],
    consumed: &mut [bool],
    a: Signal,
    b: Signal,
    same: impl Fn(&BNode) -> Option<(Signal, Signal)>,
) -> Vec<Signal> {
    let mut leaves = vec![a, b];
    loop {
        if leaves.len() >= 4 {
            break;
        }
        let expandable = leaves.iter().position(|s| {
            !s.inverted
                && refs[s.node as usize] == 1
                && !consumed[s.node as usize]
                && same(bn.node(s.node)).is_some()
        });
        let Some(idx) = expandable else { break };
        let leaf = leaves.remove(idx);
        let (x, y) = same(bn.node(leaf.node)).expect("checked");
        consumed[leaf.node as usize] = true;
        leaves.insert(idx, y);
        leaves.insert(idx, x);
    }
    leaves
}

/// Match `mux(s1, muxA(s0, d0, d1), muxB(s0, d2, d3))` into MUX4 inputs
/// `[d0, d1, d2, d3, s0, s1]`.
fn match_mux4(
    bn: &BoolNetwork,
    refs: &[usize],
    s1: Signal,
    lo: Signal,
    hi: Signal,
) -> Option<Vec<Signal>> {
    if lo.inverted || hi.inverted {
        return None;
    }
    if refs[lo.node as usize] != 1 || refs[hi.node as usize] != 1 {
        return None;
    }
    let (
        BNode::Mux {
            s: sa,
            lo: d0,
            hi: d1,
        },
        BNode::Mux {
            s: sb,
            lo: d2,
            hi: d3,
        },
    ) = (bn.node(lo.node), bn.node(hi.node))
    else {
        return None;
    };
    if sa != sb {
        return None;
    }
    Some(vec![*d0, *d1, *d2, *d3, *sa, s1])
}

/// Match the majority pattern `mux(c, and(a,b), or(a,b))` (the OR being a
/// complemented AND of complements) into MAJ32 inputs `[a, b, c]`.
fn match_maj(
    bn: &BoolNetwork,
    refs: &[usize],
    c: Signal,
    lo: Signal,
    hi: Signal,
) -> Option<Vec<Signal>> {
    if lo.inverted || !hi.inverted {
        return None;
    }
    if refs[lo.node as usize] != 1 || refs[hi.node as usize] != 1 {
        return None;
    }
    let (BNode::And(a1, b1), BNode::And(a2, b2)) = (bn.node(lo.node), bn.node(hi.node)) else {
        return None;
    };
    // hi = NOT(And(a', b')) = a ∨ b.
    if *a2 == a1.not() && *b2 == b1.not() {
        Some(vec![*a1, *b1, c])
    } else {
        None
    }
}

/// Insert one inverter per net whose consumers use it inverted, rewriting
/// those connections; differential styles never call this.
fn legalize_inversions_cmos(nl: &mut Netlist) {
    // Collect nets used inverted.
    let mut needs_inv: Vec<bool> = vec![false; nl.net_count()];
    for g in nl.gates() {
        for c in &g.inputs {
            if c.inverted {
                needs_inv[c.net.index()] = true;
            }
        }
    }
    for (_, c) in nl.outputs().to_vec() {
        if c.inverted {
            needs_inv[c.net.index()] = true;
        }
    }
    // Create inverters and a remap table.
    let mut inv_net: Vec<Option<NetId>> = vec![None; nl.net_count()];
    for (i, &need) in needs_inv.clone().iter().enumerate() {
        if need {
            let src = NetId(u32::try_from(i).expect("net index"));
            let dst = nl.add_net(&format!("{}_b", nl.net_name(src).to_owned()));
            nl.add_gate(
                &format!("u_inv_{i}"),
                GateKind::Inv,
                vec![Conn::plain(src)],
                vec![dst],
            );
            inv_net.push(None); // keep table aligned with the new net
            inv_net[i] = Some(dst);
        }
    }
    nl.rewrite_conns(|c| {
        if c.inverted {
            Conn::plain(inv_net[c.net.index()].expect("inverter created"))
        } else {
            c
        }
    });
}

/// Insert buffer (sub)trees on nets with more sinks than `max_fanout`.
fn buffer_high_fanout(nl: &mut Netlist, max_fanout: usize) {
    loop {
        let fanout = nl.fanout_counts();
        let Some(net) = (0..nl.net_count())
            .map(|i| NetId(u32::try_from(i).expect("net index")))
            .find(|n| fanout[n.index()] > max_fanout)
        else {
            return;
        };
        // Move sinks in chunks of `max_fanout` behind fresh buffers; the
        // buffers themselves become sinks of the original net, and the
        // loop re-runs until everything fits.
        let mut sinks = nl.sinks_of(net);
        // Keep the first chunk on the original net so the process
        // terminates (the buffers added become new sinks).
        let keep = max_fanout.saturating_sub(1).max(1);
        let moved: Vec<_> = sinks.split_off(keep.min(sinks.len()));
        if moved.is_empty() {
            return;
        }
        for (ci, chunk) in moved.chunks(max_fanout).enumerate() {
            let bnet = nl.add_net(&format!("{}_buf{ci}", nl.net_name(net).to_owned()));
            nl.add_gate(
                &format!("u_buf_{}_{ci}", net.index()),
                GateKind::Lib(CellKind::Buffer),
                vec![Conn::plain(net)],
                vec![bnet],
            );
            for sink in chunk {
                nl.redirect_sink(*sink, bnet);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn asg(bits: &[(&str, bool)]) -> HashMap<String, bool> {
        bits.iter().map(|&(k, v)| (k.to_owned(), v)).collect()
    }

    fn equivalent(bn: &BoolNetwork, nl: &Netlist, input_names: &[&str]) {
        let n = input_names.len();
        let patterns: Vec<u32> = if n <= 10 {
            (0..(1u32 << n)).collect()
        } else {
            (0..1024).map(|i| i * 2654435761 % (1 << n)).collect()
        };
        for p in patterns {
            let a: Vec<(&str, bool)> = input_names
                .iter()
                .enumerate()
                .map(|(i, &name)| (name, (p >> i) & 1 == 1))
                .collect();
            let want = bn.eval(&asg(&a));
            let values = nl.evaluate(&asg(&a), &HashMap::new());
            for (name, w) in &want {
                assert_eq!(
                    nl.output_value(name, &values),
                    *w,
                    "output {name} at pattern {p:#x}"
                );
            }
        }
    }

    #[test]
    fn and_chain_fuses_to_and4() {
        let mut bn = BoolNetwork::new();
        let ins: Vec<Signal> = (0..4).map(|i| bn.input(&format!("i{i}"))).collect();
        let t1 = bn.and(ins[0], ins[1]);
        let t2 = bn.and(t1, ins[2]);
        let t3 = bn.and(t2, ins[3]);
        bn.set_output("q", t3);
        let nl = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        nl.validate().unwrap();
        assert_eq!(nl.gate_count(), 1, "one AND4: {:?}", nl.cell_histogram());
        assert_eq!(nl.cell_histogram()[&GateKind::Lib(CellKind::And4)], 1);
        equivalent(&bn, &nl, &["i0", "i1", "i2", "i3"]);
    }

    #[test]
    fn shared_and_does_not_fuse() {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let c = bn.input("c");
        let t1 = bn.and(a, b);
        let t2 = bn.and(t1, c);
        bn.set_output("q", t2);
        bn.set_output("t", t1); // t1 has two uses
        let nl = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        assert_eq!(nl.gate_count(), 2, "shared node must stay separate");
        equivalent(&bn, &nl, &["a", "b", "c"]);
    }

    #[test]
    fn xor_chain_fuses_to_xor3() {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let c = bn.input("c");
        let t = bn.xor(a, b);
        let q = bn.xor(t, c);
        bn.set_output("q", q);
        let nl = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        assert_eq!(nl.cell_histogram()[&GateKind::Lib(CellKind::Xor3)], 1);
        equivalent(&bn, &nl, &["a", "b", "c"]);
    }

    #[test]
    fn mux_tree_fuses_to_mux4() {
        let mut bn = BoolNetwork::new();
        let d: Vec<Signal> = (0..4).map(|i| bn.input(&format!("d{i}"))).collect();
        let s0 = bn.input("s0");
        let s1 = bn.input("s1");
        let u = bn.mux(s0, d[0], d[1]);
        let v = bn.mux(s0, d[2], d[3]);
        let q = bn.mux(s1, u, v);
        bn.set_output("q", q);
        let nl = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        assert_eq!(nl.cell_histogram()[&GateKind::Lib(CellKind::Mux4)], 1);
        assert_eq!(nl.gate_count(), 1);
        equivalent(&bn, &nl, &["d0", "d1", "d2", "d3", "s0", "s1"]);
    }

    #[test]
    fn maj_pattern_uses_maj32() {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let c = bn.input("c");
        let m = bn.maj(a, b, c);
        bn.set_output("q", m);
        let nl = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        assert_eq!(nl.cell_histogram()[&GateKind::Lib(CellKind::Maj32)], 1);
        equivalent(&bn, &nl, &["a", "b", "c"]);
    }

    #[test]
    fn cmos_mapping_inserts_inverters() {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let q = bn.or(a, b); // or = not(and(not a, not b)) — inversions!
        bn.set_output("q", q);
        let nl = map_network(&bn, LogicStyle::Cmos, &TechmapOptions::default());
        nl.validate().unwrap();
        let h = nl.cell_histogram();
        assert!(h.get(&GateKind::Inv).copied().unwrap_or(0) >= 1);
        equivalent(&bn, &nl, &["a", "b"]);
        // The same network maps without inverters differentially.
        let nld = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        assert!(!nld.cell_histogram().contains_key(&GateKind::Inv));
        equivalent(&bn, &nld, &["a", "b"]);
    }

    #[test]
    fn high_fanout_gets_buffered() {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let x = bn.xor(a, b);
        for i in 0..20 {
            let c = bn.input(&format!("c{i}"));
            let o = bn.and(x, c);
            bn.set_output(&format!("o{i}"), o);
        }
        let opts = TechmapOptions {
            max_fanout: 4,
            ..TechmapOptions::default()
        };
        let nl = map_network(&bn, LogicStyle::PgMcml, &opts);
        nl.validate().unwrap();
        let f = nl.fanout_counts();
        assert!(
            f.iter().all(|&x| x <= 4),
            "all fanouts bounded: {:?}",
            f.iter().max()
        );
        assert!(
            nl.cell_histogram()[&GateKind::Lib(CellKind::Buffer)] >= 4,
            "buffers inserted"
        );
        // Spot-check equivalence at a few patterns.
        let names: Vec<String> = std::iter::once("a".to_owned())
            .chain(std::iter::once("b".to_owned()))
            .chain((0..20).map(|i| format!("c{i}")))
            .collect();
        for p in [0u32, 1, 3, 0x3fffff, 0x155555] {
            let a: HashMap<String, bool> = names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.clone(), (p >> (i % 22)) & 1 == 1))
                .collect();
            let want = bn.eval(&a);
            let values = nl.evaluate(&a, &HashMap::new());
            for (name, w) in &want {
                assert_eq!(nl.output_value(name, &values), *w, "{name} at {p:#x}");
            }
        }
    }

    #[test]
    fn lut_maps_and_stays_equivalent() {
        // A 4-bit S-box-like LUT mapped to MUX trees.
        let table: Vec<bool> = (0..16u32).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let mut bn = BoolNetwork::new();
        let ins: Vec<Signal> = (0..4).map(|i| bn.input(&format!("x{i}"))).collect();
        let q = bn.lut(&ins, &table);
        bn.set_output("q", q);
        let nl = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        nl.validate().unwrap();
        equivalent(&bn, &nl, &["x0", "x1", "x2", "x3"]);
    }
}
