//! Complemented-edge boolean network — the synthesis front-end IR.
//!
//! Nodes are AND2, XOR2 and MUX2 over [`Signal`] edges that carry an
//! inversion flag, so negation is free at this level (matching both
//! standard AIG practice and the physical reality of differential logic).
//! A BDD-backed [`BoolNetwork::lut`] builder turns truth tables — e.g.
//! the AES S-box — into shared MUX trees.

use std::collections::HashMap;

use mcml_cells::bdd::{Bdd, BddRef};
use serde::{Deserialize, Serialize};

/// Reference to a network node with an optional complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signal {
    /// Node index.
    pub node: u32,
    /// Complement flag (free inversion).
    pub inverted: bool,
}

impl Signal {
    /// The complemented signal (also available as the `!` operator).
    #[allow(clippy::should_implement_trait)] // `.not()` reads better in netlist-building code
    #[must_use]
    pub fn not(self) -> Signal {
        Signal {
            node: self.node,
            inverted: !self.inverted,
        }
    }
}

impl std::ops::Not for Signal {
    type Output = Signal;

    fn not(self) -> Signal {
        Signal::not(self)
    }
}

/// Network node payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BNode {
    /// Primary input with a name.
    Input(String),
    /// Constant FALSE (use `.not()` for TRUE).
    False,
    /// 2-input AND.
    And(Signal, Signal),
    /// 2-input XOR.
    Xor(Signal, Signal),
    /// 2:1 mux: `s ? hi : lo`.
    Mux {
        /// Select.
        s: Signal,
        /// Value when `s` is 0.
        lo: Signal,
        /// Value when `s` is 1.
        hi: Signal,
    },
}

/// A combinational boolean network with named inputs and outputs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BoolNetwork {
    nodes: Vec<BNode>,
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, Signal)>,
    false_node: Option<u32>,
}

impl BoolNetwork {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, n: BNode) -> Signal {
        let id = u32::try_from(self.nodes.len()).expect("network too large");
        self.nodes.push(n);
        Signal {
            node: id,
            inverted: false,
        }
    }

    /// Node payload.
    #[must_use]
    pub fn node(&self, id: u32) -> &BNode {
        &self.nodes[id as usize]
    }

    /// Total node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Create (or look up) a named primary input.
    pub fn input(&mut self, name: &str) -> Signal {
        if let Some(&(_, id)) = self.inputs.iter().find(|(n, _)| n == name) {
            return Signal {
                node: id,
                inverted: false,
            };
        }
        let s = self.push(BNode::Input(name.to_owned()));
        self.inputs.push((name.to_owned(), s.node));
        s
    }

    /// Constant signal (the FALSE node is shared across calls).
    pub fn constant(&mut self, value: bool) -> Signal {
        let f = match self.false_node {
            Some(i) => Signal {
                node: i,
                inverted: false,
            },
            None => {
                let s = self.push(BNode::False);
                self.false_node = Some(s.node);
                s
            }
        };
        if value {
            f.not()
        } else {
            f
        }
    }

    /// If the signal is a constant, its value.
    #[must_use]
    pub fn as_const(&self, s: Signal) -> Option<bool> {
        match self.nodes[s.node as usize] {
            BNode::False => Some(s.inverted),
            _ => None,
        }
    }

    /// `a ∧ b`, with constant folding.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ if a == b.not() => self.constant(false),
            _ => self.push(BNode::And(a, b)),
        }
    }

    /// `a ∨ b` (by De Morgan, still one AND node).
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.and(a.not(), b.not()).not()
    }

    /// `a ⊕ b`, with constant folding.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        match (self.as_const(a), self.as_const(b)) {
            (Some(va), _) => {
                if va {
                    b.not()
                } else {
                    b
                }
            }
            (_, Some(vb)) => {
                if vb {
                    a.not()
                } else {
                    a
                }
            }
            _ if a == b => self.constant(false),
            _ if a == b.not() => self.constant(true),
            _ => self.push(BNode::Xor(a, b)),
        }
    }

    /// `s ? hi : lo`, with constant folding (so BDD terminals never leave
    /// constant mux legs behind).
    pub fn mux(&mut self, s: Signal, lo: Signal, hi: Signal) -> Signal {
        if let Some(vs) = self.as_const(s) {
            return if vs { hi } else { lo };
        }
        if lo == hi {
            return lo;
        }
        // Equal constants can live on distinct nodes; compare by value.
        if let (Some(a), Some(b)) = (self.as_const(lo), self.as_const(hi)) {
            if a == b {
                return self.constant(a);
            }
        }
        match (self.as_const(lo), self.as_const(hi)) {
            (Some(false), Some(true)) => s,
            (Some(true), Some(false)) => s.not(),
            (Some(false), None) => self.and(s, hi),
            (None, Some(false)) => self.and(s.not(), lo),
            (Some(true), None) => self.or(s.not(), hi),
            (None, Some(true)) => self.or(s, lo),
            _ => self.push(BNode::Mux { s, lo, hi }),
        }
    }

    /// Majority of three.
    pub fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let ab = self.and(a, b);
        let o = self.or(a, b);
        self.mux(c, ab, o)
    }

    /// Register a named output.
    pub fn set_output(&mut self, name: &str, s: Signal) {
        self.outputs.push((name.to_owned(), s));
    }

    /// Named outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Named inputs in creation order.
    #[must_use]
    pub fn inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// Build a LUT over the given input signals from a truth table
    /// (`table[i]` = output for the assignment whose bit `b` is
    /// `(i >> b) & 1`, matching `inputs[b]`). Shared BDD nodes become
    /// shared MUX nodes.
    ///
    /// # Panics
    ///
    /// Panics if the table is shorter than `2^inputs.len()` or more than
    /// 16 inputs are supplied.
    pub fn lut(&mut self, inputs: &[Signal], table: &[bool]) -> Signal {
        let n = u8::try_from(inputs.len()).expect("≤16 inputs");
        let mut bdd = Bdd::new();
        let root = bdd.from_truth_table(n, table);
        let mut memo: HashMap<BddRef, Signal> = HashMap::new();
        self.emit_bdd(&bdd, root, inputs, &mut memo)
    }

    fn emit_bdd(
        &mut self,
        bdd: &Bdd,
        r: BddRef,
        inputs: &[Signal],
        memo: &mut HashMap<BddRef, Signal>,
    ) -> Signal {
        if r == BddRef::ZERO {
            return self.constant(false);
        }
        if r == BddRef::ONE {
            return self.constant(true);
        }
        if let Some(&s) = memo.get(&r) {
            return s;
        }
        let node = bdd.node(r);
        let lo = self.emit_bdd(bdd, node.lo, inputs, memo);
        let hi = self.emit_bdd(bdd, node.hi, inputs, memo);
        let s = self.mux(inputs[node.var as usize], lo, hi);
        memo.insert(r, s);
        s
    }

    /// Evaluate the network at a named-input assignment.
    ///
    /// # Panics
    ///
    /// Panics if an input is missing from the assignment.
    #[must_use]
    pub fn eval(&self, assignment: &HashMap<String, bool>) -> HashMap<String, bool> {
        let mut values: Vec<Option<bool>> = vec![None; self.nodes.len()];
        let mut out = HashMap::new();
        for (name, sig) in &self.outputs {
            let v = self.eval_signal(*sig, assignment, &mut values);
            out.insert(name.clone(), v);
        }
        out
    }

    fn eval_signal(
        &self,
        s: Signal,
        assignment: &HashMap<String, bool>,
        values: &mut Vec<Option<bool>>,
    ) -> bool {
        let raw = if let Some(v) = values[s.node as usize] {
            v
        } else {
            let v = match &self.nodes[s.node as usize] {
                BNode::Input(name) => *assignment
                    .get(name)
                    .unwrap_or_else(|| panic!("missing input `{name}`")),
                BNode::False => false,
                BNode::And(a, b) => {
                    self.eval_signal(*a, assignment, values)
                        && self.eval_signal(*b, assignment, values)
                }
                BNode::Xor(a, b) => {
                    self.eval_signal(*a, assignment, values)
                        ^ self.eval_signal(*b, assignment, values)
                }
                BNode::Mux { s: sel, lo, hi } => {
                    if self.eval_signal(*sel, assignment, values) {
                        self.eval_signal(*hi, assignment, values)
                    } else {
                        self.eval_signal(*lo, assignment, values)
                    }
                }
            };
            values[s.node as usize] = Some(v);
            v
        };
        raw ^ s.inverted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(pairs: &[(&str, bool)]) -> HashMap<String, bool> {
        pairs.iter().map(|&(k, v)| (k.to_owned(), v)).collect()
    }

    #[test]
    fn and_or_xor_eval() {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let and = bn.and(a, b);
        let or = bn.or(a, b);
        let xor = bn.xor(a, b);
        bn.set_output("and", and);
        bn.set_output("or", or);
        bn.set_output("xor", xor);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let r = bn.eval(&asg(&[("a", va), ("b", vb)]));
            assert_eq!(r["and"], va && vb);
            assert_eq!(r["or"], va || vb);
            assert_eq!(r["xor"], va ^ vb);
        }
    }

    #[test]
    fn free_inversion() {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        bn.set_output("na", a.not());
        assert!(bn.eval(&asg(&[("a", false)]))["na"]);
        assert!(!bn.eval(&asg(&[("a", true)]))["na"]);
    }

    #[test]
    fn input_lookup_is_idempotent() {
        let mut bn = BoolNetwork::new();
        let a1 = bn.input("a");
        let a2 = bn.input("a");
        assert_eq!(a1, a2);
        assert_eq!(bn.inputs().len(), 1);
    }

    #[test]
    fn mux_and_maj() {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let c = bn.input("c");
        let m = bn.mux(c, a, b);
        let mj = bn.maj(a, b, c);
        bn.set_output("mux", m);
        bn.set_output("maj", mj);
        for p in 0..8u32 {
            let (va, vb, vc) = (p & 1 == 1, p & 2 == 2, p & 4 == 4);
            let r = bn.eval(&asg(&[("a", va), ("b", vb), ("c", vc)]));
            assert_eq!(r["mux"], if vc { vb } else { va });
            let count = [va, vb, vc].iter().filter(|&&x| x).count();
            assert_eq!(r["maj"], count >= 2);
        }
    }

    #[test]
    fn constants() {
        let mut bn = BoolNetwork::new();
        let t = bn.constant(true);
        let f = bn.constant(false);
        bn.set_output("t", t);
        bn.set_output("f", f);
        let r = bn.eval(&HashMap::new());
        assert!(r["t"]);
        assert!(!r["f"]);
    }

    #[test]
    fn lut_matches_table() {
        // 3-input LUT of an arbitrary function.
        let table: Vec<bool> = (0..8)
            .map(|i| [true, false, false, true, true, true, false, false][i])
            .collect();
        let mut bn = BoolNetwork::new();
        let ins: Vec<Signal> = ["a", "b", "c"].iter().map(|n| bn.input(n)).collect();
        let q = bn.lut(&ins, &table);
        bn.set_output("q", q);
        for (p, &want) in table.iter().enumerate() {
            let r = bn.eval(&asg(&[
                ("a", p & 1 == 1),
                ("b", p & 2 == 2),
                ("c", p & 4 == 4),
            ]));
            assert_eq!(r["q"], want, "pattern {p}");
        }
    }

    #[test]
    fn lut_shares_nodes() {
        // XOR-of-4 truth table: the BDD is linear, so the MUX tree must be
        // far smaller than the 15-node complete tree.
        let table: Vec<bool> = (0..16u32).map(|i| i.count_ones() % 2 == 1).collect();
        let mut bn = BoolNetwork::new();
        let ins: Vec<Signal> = (0..4).map(|i| bn.input(&format!("x{i}"))).collect();
        let q = bn.lut(&ins, &table);
        bn.set_output("q", q);
        // 4 inputs + 1 constant + ≤8 muxes.
        assert!(bn.len() <= 13, "network size {}", bn.len());
        let r = bn.eval(&asg(&[
            ("x0", true),
            ("x1", true),
            ("x2", false),
            ("x3", false),
        ]));
        assert!(!r["q"]);
    }
}
