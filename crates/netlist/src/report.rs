//! Physical reports: cell counts, silicon area with fat-wire routing
//! overhead, and static timing (critical path).

use mcml_cells::{cell_area_um2, CellKind, DriveStrength, LogicStyle};
use mcml_char::TimingLibrary;
use serde::{Deserialize, Serialize};

use crate::ir::{GateKind, Netlist};

/// Area of a legalisation inverter (µm²): two transistors of the CMOS
/// area model.
const INV_AREA_UM2: f64 = 2.0 * 0.28 * 2.8;

/// Routing-area overhead factors. Differential styles route every signal
/// as a **fat wire** (the paper's §5: both rails side by side with
/// matched delay and load), doubling the routing demand; at constant
/// router capacity the placement density drops accordingly. The factors
/// are calibrated against the paper's Table 3 macro areas (CMOS ≈ its
/// summed cell area; the differential macros ≈ 1.8× theirs).
const ROUTE_FACTOR_SINGLE: f64 = 1.05;
const ROUTE_FACTOR_FAT: f64 = 1.80;

/// Physical summary of a mapped netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Total instances (library cells + inverters).
    pub cells: usize,
    /// Sum of cell areas (µm²).
    pub cell_area_um2: f64,
    /// Placed area including routing overhead (µm²) — the number the
    /// paper's Table 3 reports post-P&R.
    pub total_area_um2: f64,
    /// Style the report was computed for.
    pub style: LogicStyle,
}

/// Compute the area report for a netlist.
#[must_use]
pub fn area_report(nl: &Netlist) -> AreaReport {
    let mut cell_area = 0.0;
    for g in nl.gates() {
        cell_area += match g.kind {
            GateKind::Lib(k) => cell_area_um2(k, nl.style, DriveStrength::X1),
            GateKind::Inv => INV_AREA_UM2,
        };
    }
    let route = if nl.style.is_differential() {
        ROUTE_FACTOR_FAT
    } else {
        ROUTE_FACTOR_SINGLE
    };
    AreaReport {
        cells: nl.gate_count(),
        cell_area_um2: cell_area,
        total_area_um2: cell_area * route,
        style: nl.style,
    }
}

/// Static-timing critical path (ps): longest gate-delay path through the
/// combinational network, with per-gate delay taken from the library at
/// the gate's actual fan-out. Sequential gates act as path endpoints
/// (clk-to-Q launches, D captures).
///
/// # Panics
///
/// Panics if a gate kind is missing from the library or the netlist is
/// cyclic.
#[must_use]
pub fn critical_path_ps(nl: &Netlist, lib: &TimingLibrary) -> f64 {
    let delay_of = |kind: GateKind, fanout: f64| -> f64 {
        match kind {
            GateKind::Lib(k) => lib
                .get(k, nl.style)
                .unwrap_or_else(|| panic!("library misses {k} in {}", nl.style))
                .delay_ps(fanout),
            GateKind::Inv => lib
                .get(CellKind::Buffer, nl.style)
                .map_or(10.0, |t| 0.6 * t.delay_ps(fanout)),
        }
    };
    let fan = nl.fanout_counts();
    let driver = nl.driver_map();
    let order = nl.comb_topo_order().expect("acyclic netlist");

    // arrival[net] = worst arrival time at the net.
    let mut arrival = vec![0.0f64; nl.net_count()];
    // Sequential launches: clk-to-Q at the flop's own delay.
    for g in nl.gates() {
        if let GateKind::Lib(k) = g.kind {
            if k.is_sequential() {
                let d = delay_of(g.kind, fan[g.outputs[0].index()] as f64);
                for &o in &g.outputs {
                    arrival[o.index()] = d;
                }
            }
        }
    }
    let mut worst: f64 = 0.0;
    for gi in order {
        let g = &nl.gates()[gi];
        let in_arr = g
            .inputs
            .iter()
            .map(|c| arrival[c.net.index()])
            .fold(0.0f64, f64::max);
        for &o in &g.outputs {
            let d = delay_of(g.kind, fan[o.index()] as f64);
            arrival[o.index()] = in_arr + d;
            worst = worst.max(arrival[o.index()]);
        }
    }
    // Capture at sequential D pins and primary outputs.
    let _ = driver;
    for (_, c) in nl.outputs() {
        worst = worst.max(arrival[c.net.index()]);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Conn, Netlist};
    use mcml_char::CellTiming;

    fn tiny_lib(style: LogicStyle) -> TimingLibrary {
        let mut lib = TimingLibrary::new();
        for (kind, d) in [
            (CellKind::Buffer, 20.0),
            (CellKind::Xor2, 44.0),
            (CellKind::And2, 41.0),
            (CellKind::Dff, 53.0),
        ] {
            lib.insert(CellTiming {
                kind,
                style,
                drive: DriveStrength::X1,
                area_um2: cell_area_um2(kind, style, DriveStrength::X1),
                delay_fo1_ps: d,
                delay_fo4_ps: d * 1.8,
                input_cap_ff: 1.0,
                static_power_w: 60e-6,
                leakage_sleep_w: 1e-9,
                toggle_energy_j: 1e-15,
            });
        }
        lib
    }

    fn chain_netlist(style: LogicStyle) -> Netlist {
        let mut nl = Netlist::new("chain", style);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(
            "u1",
            GateKind::Lib(CellKind::Xor2),
            vec![Conn::plain(a), Conn::plain(b)],
            vec![x],
        );
        nl.add_gate(
            "u2",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(x), Conn::plain(b)],
            vec![y],
        );
        nl.set_output("q", Conn::plain(y));
        nl
    }

    #[test]
    fn critical_path_sums_chain() {
        let nl = chain_netlist(LogicStyle::PgMcml);
        let lib = tiny_lib(LogicStyle::PgMcml);
        let cp = critical_path_ps(&nl, &lib);
        // XOR2 (FO1) + AND2 (FO1) = 44 + 41.
        assert!((cp - 85.0).abs() < 1e-6, "critical path {cp}");
    }

    #[test]
    fn sequential_launch_counts() {
        let mut nl = Netlist::new("ff", LogicStyle::PgMcml);
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q = nl.add_net("q");
        let y = nl.add_net("y");
        nl.add_gate(
            "ff",
            GateKind::Lib(CellKind::Dff),
            vec![Conn::plain(d), Conn::plain(clk)],
            vec![q],
        );
        nl.add_gate(
            "u",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(q), Conn::plain(d)],
            vec![y],
        );
        nl.set_output("y", Conn::plain(y));
        let lib = tiny_lib(LogicStyle::PgMcml);
        let cp = critical_path_ps(&nl, &lib);
        assert!((cp - (53.0 + 41.0)).abs() < 1e-6, "clk-to-q + and: {cp}");
    }

    #[test]
    fn differential_area_overhead() {
        let mcml = area_report(&chain_netlist(LogicStyle::Mcml));
        let cmos = area_report(&chain_netlist(LogicStyle::Cmos));
        assert!(mcml.total_area_um2 > cmos.total_area_um2);
        assert!(mcml.total_area_um2 > mcml.cell_area_um2, "routing overhead");
        assert_eq!(mcml.cells, 2);
    }
}
