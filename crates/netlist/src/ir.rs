//! Gate-level netlist IR.
//!
//! Connections carry an `inverted` flag: differential styles realise it by
//! swapping the rail pair of the fat wire (zero cost), while the CMOS
//! back-end legalises it with explicit inverter gates (see
//! [`crate::techmap`]).

use std::collections::{BTreeMap, HashMap};

use mcml_cells::{CellKind, LogicStyle};
use serde::{Deserialize, Serialize};

/// Security classification of a primary port, consumed by the
/// `mcml-lint` secret-taint dataflow analysis.
///
/// The class is an *annotation*: it changes no electrical or logical
/// behaviour, only what the static analyses assume about the data the
/// port carries. Ports default to [`PortClass::Public`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PortClass {
    /// Attacker-known or attacker-chosen data (plaintexts, outputs).
    #[default]
    Public,
    /// Secret data (key material, or internal state derived from it):
    /// the taint sources of the dataflow analysis.
    Secret,
    /// A clock or other data-independent control strobe; never a taint
    /// source and exempt from activity bounds.
    Clock,
}

impl PortClass {
    /// Stable report string (`public` / `secret` / `clock`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            PortClass::Public => "public",
            PortClass::Secret => "secret",
            PortClass::Clock => "clock",
        }
    }
}

/// Handle to a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index (must come from the same netlist).
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds `u32`.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        NetId(u32::try_from(i).expect("net index fits u32"))
    }
}

/// A gate input connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conn {
    /// Source net.
    pub net: NetId,
    /// Complement flag.
    pub inverted: bool,
}

impl Conn {
    /// Plain (non-inverted) connection.
    #[must_use]
    pub fn plain(net: NetId) -> Self {
        Self {
            net,
            inverted: false,
        }
    }

    /// Inverted connection.
    #[must_use]
    pub fn inv(net: NetId) -> Self {
        Self {
            net,
            inverted: true,
        }
    }
}

/// Gate type: a library cell, or a CMOS legalisation inverter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// One of the 16 library cells.
    Lib(CellKind),
    /// An inverter (CMOS netlists only; differential styles invert for
    /// free).
    Inv,
}

impl GateKind {
    /// Number of logic inputs.
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            GateKind::Lib(k) => k.input_count(),
            GateKind::Inv => 1,
        }
    }

    /// Whether the gate holds state.
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Lib(k) if k.is_sequential())
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateKind::Lib(k) => write!(f, "{k}"),
            GateKind::Inv => write!(f, "INV"),
        }
    }
}

/// A gate instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// Instance name.
    pub name: String,
    /// Gate type.
    pub kind: GateKind,
    /// Input connections, ordered per [`CellKind::input_names`].
    pub inputs: Vec<Conn>,
    /// Output nets, ordered per [`CellKind::output_names`].
    pub outputs: Vec<NetId>,
}

/// Reference to a net consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkRef {
    /// A gate input pin.
    Gate {
        /// Gate index.
        gate: usize,
        /// Input pin index.
        input: usize,
    },
    /// A primary output.
    Output(usize),
}

/// A flat gate-level netlist.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    /// Logic style this netlist targets.
    pub style: LogicStyle,
    net_names: Vec<String>,
    gates: Vec<Gate>,
    inputs: Vec<(String, NetId)>,
    outputs: Vec<(String, Conn)>,
    /// Security class per annotated primary port (absent = `Public`).
    /// A `BTreeMap` so iteration (and thus every report) is ordered.
    port_classes: BTreeMap<String, PortClass>,
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new(name: &str, style: LogicStyle) -> Self {
        Self {
            name: name.to_owned(),
            style,
            net_names: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            port_classes: BTreeMap::new(),
        }
    }

    /// Create a fresh net.
    pub fn add_net(&mut self, name: &str) -> NetId {
        let id = NetId(u32::try_from(self.net_names.len()).expect("netlist too large"));
        self.net_names.push(name.to_owned());
        id
    }

    /// Declare a primary input (creates its net).
    pub fn add_input(&mut self, name: &str) -> NetId {
        let n = self.add_net(name);
        self.inputs.push((name.to_owned(), n));
        n
    }

    /// Declare a primary output.
    pub fn set_output(&mut self, name: &str, conn: Conn) {
        self.outputs.push((name.to_owned(), conn));
    }

    /// Remove all primary outputs (used when re-registering a block's
    /// pipeline boundary).
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
    }

    /// Add a gate.
    ///
    /// # Panics
    ///
    /// Panics if the input arity does not match the gate kind.
    pub fn add_gate(&mut self, name: &str, kind: GateKind, inputs: Vec<Conn>, outputs: Vec<NetId>) {
        assert_eq!(
            inputs.len(),
            kind.input_count(),
            "gate {name}: {kind} needs {} inputs",
            kind.input_count()
        );
        self.gates.push(Gate {
            name: name.to_owned(),
            kind,
            inputs,
            outputs,
        });
    }

    /// Gates in insertion order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Net name.
    #[must_use]
    pub fn net_name(&self, n: NetId) -> &str {
        &self.net_names[n.index()]
    }

    /// Primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[(String, NetId)] {
        &self.inputs
    }

    /// Primary outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Conn)] {
        &self.outputs
    }

    /// Annotate a primary port with its security class.
    ///
    /// # Panics
    ///
    /// Panics if `port` names no primary input or output.
    pub fn set_port_class(&mut self, port: &str, class: PortClass) {
        assert!(
            self.inputs.iter().any(|(n, _)| n == port)
                || self.outputs.iter().any(|(n, _)| n == port),
            "no primary port `{port}` to classify"
        );
        self.port_classes.insert(port.to_owned(), class);
    }

    /// Security class of a primary port (`Public` unless annotated).
    #[must_use]
    pub fn port_class(&self, port: &str) -> PortClass {
        self.port_classes.get(port).copied().unwrap_or_default()
    }

    /// Every explicitly annotated port, in name order.
    pub fn port_classes(&self) -> impl Iterator<Item = (&str, PortClass)> {
        self.port_classes.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Whether any port carries a non-default security class (i.e. the
    /// taint analysis has at least one source or clock to work from).
    #[must_use]
    pub fn has_port_classes(&self) -> bool {
        !self.port_classes.is_empty()
    }

    /// Histogram of gate kinds.
    #[must_use]
    pub fn cell_histogram(&self) -> HashMap<GateKind, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(g.kind).or_insert(0) += 1;
        }
        h
    }

    /// Number of gate inputs + primary outputs each net drives.
    #[must_use]
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut f = vec![0usize; self.net_names.len()];
        for g in &self.gates {
            for c in &g.inputs {
                f[c.net.index()] += 1;
            }
        }
        for (_, c) in &self.outputs {
            f[c.net.index()] += 1;
        }
        f
    }

    /// Map from net to its driving gate index (primary inputs and
    /// floating nets have none).
    #[must_use]
    pub fn driver_map(&self) -> Vec<Option<usize>> {
        let mut d = vec![None; self.net_names.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            for &o in &g.outputs {
                d[o.index()] = Some(gi);
            }
        }
        d
    }

    /// Structural validation: single driver per net, inputs undriven,
    /// `Inv` gates only in CMOS netlists, no combinational cycles.
    ///
    /// Built on [`crate::check::structural_issues`]; only issues whose
    /// [`crate::check::StructuralIssue::is_fatal`] is true fail
    /// validation — undriven or dangling nets are reported by the
    /// `mcml-lint` rule pack instead.
    ///
    /// # Errors
    ///
    /// Returns every fatal [`crate::check::StructuralIssue`] as a typed
    /// [`crate::check::ValidateError`].
    pub fn validate(&self) -> Result<(), crate::check::ValidateError> {
        let issues: Vec<crate::check::StructuralIssue> = crate::check::structural_issues(self)
            .into_iter()
            .filter(crate::check::StructuralIssue::is_fatal)
            .collect();
        if issues.is_empty() {
            Ok(())
        } else {
            Err(crate::check::ValidateError { issues })
        }
    }

    /// Topological order of the **combinational** gates (sequential gate
    /// outputs act as sources).
    ///
    /// # Errors
    ///
    /// Returns `Err(gate_index)` naming a gate on a combinational cycle.
    pub fn comb_topo_order(&self) -> Result<Vec<usize>, usize> {
        let driver = self.driver_map();
        // In-degree of each combinational gate = # inputs driven by other
        // combinational gates.
        let mut indeg = vec![0usize; self.gates.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.gates.len()];
        for (gi, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            for c in &g.inputs {
                if let Some(src) = driver[c.net.index()] {
                    if !self.gates[src].kind.is_sequential() {
                        indeg[gi] += 1;
                        dependents[src].push(gi);
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..self.gates.len())
            .filter(|&g| !self.gates[g].kind.is_sequential() && indeg[g] == 0)
            .collect();
        let mut order = Vec::new();
        while let Some(g) = queue.pop() {
            order.push(g);
            for &d in &dependents[g] {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    queue.push(d);
                }
            }
        }
        let n_comb = self
            .gates
            .iter()
            .filter(|g| !g.kind.is_sequential())
            .count();
        if order.len() != n_comb {
            let stuck = (0..self.gates.len())
                .find(|&g| !self.gates[g].kind.is_sequential() && indeg[g] > 0)
                .unwrap_or(0);
            return Err(stuck);
        }
        Ok(order)
    }

    /// Cycle-level evaluation: compute all net values given primary
    /// inputs and the current state of each sequential gate (by gate
    /// index). Returns net values.
    ///
    /// # Panics
    ///
    /// Panics if an input is missing or the netlist has a combinational
    /// cycle.
    #[must_use]
    pub fn evaluate(
        &self,
        inputs: &HashMap<String, bool>,
        state: &HashMap<usize, bool>,
    ) -> Vec<bool> {
        let mut values = vec![false; self.net_names.len()];
        for (name, n) in &self.inputs {
            values[n.index()] = *inputs
                .get(name)
                .unwrap_or_else(|| panic!("missing input `{name}`"));
        }
        // Sequential outputs from state.
        for (gi, g) in self.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                let q = state.get(&gi).copied().unwrap_or(false);
                values[g.outputs[0].index()] = q;
            }
        }
        let order = self.comb_topo_order().expect("acyclic");
        for gi in order {
            let g = &self.gates[gi];
            let ins: Vec<bool> = g
                .inputs
                .iter()
                .map(|c| values[c.net.index()] ^ c.inverted)
                .collect();
            let outs = match g.kind {
                GateKind::Inv => vec![!ins[0]],
                GateKind::Lib(k) => k.eval_comb(&ins).expect("combinational gate"),
            };
            for (o, v) in g.outputs.iter().zip(outs) {
                values[o.index()] = v;
            }
        }
        values
    }

    /// Advance sequential state by one active clock edge given the net
    /// values computed by [`Netlist::evaluate`].
    #[must_use]
    pub fn next_state(
        &self,
        values: &[bool],
        state: &HashMap<usize, bool>,
    ) -> HashMap<usize, bool> {
        let mut next = HashMap::new();
        for (gi, g) in self.gates.iter().enumerate() {
            if let GateKind::Lib(k) = g.kind {
                if k.is_sequential() {
                    let ins: Vec<bool> = g
                        .inputs
                        .iter()
                        .map(|c| values[c.net.index()] ^ c.inverted)
                        .collect();
                    let cur = state.get(&gi).copied().unwrap_or(false);
                    next.insert(gi, k.next_state(cur, &ins).expect("sequential"));
                }
            }
        }
        next
    }

    /// All consumers of a net (gate input pins and primary outputs).
    #[must_use]
    pub fn sinks_of(&self, net: NetId) -> Vec<SinkRef> {
        let mut out = Vec::new();
        for (gi, g) in self.gates.iter().enumerate() {
            for (ii, c) in g.inputs.iter().enumerate() {
                if c.net == net {
                    out.push(SinkRef::Gate {
                        gate: gi,
                        input: ii,
                    });
                }
            }
        }
        for (oi, (_, c)) in self.outputs.iter().enumerate() {
            if c.net == net {
                out.push(SinkRef::Output(oi));
            }
        }
        out
    }

    /// Re-point a sink at a different net, preserving its inversion flag.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range sink reference.
    pub fn redirect_sink(&mut self, sink: SinkRef, to: NetId) {
        match sink {
            SinkRef::Gate { gate, input } => self.gates[gate].inputs[input].net = to,
            SinkRef::Output(oi) => self.outputs[oi].1.net = to,
        }
    }

    /// Apply a rewrite to every connection (gate inputs and primary
    /// outputs).
    pub fn rewrite_conns(&mut self, f: impl Fn(Conn) -> Conn) {
        for g in &mut self.gates {
            for c in &mut g.inputs {
                *c = f(*c);
            }
        }
        for (_, c) in &mut self.outputs {
            *c = f(*c);
        }
    }

    /// Value of a named output given evaluated net values.
    ///
    /// # Panics
    ///
    /// Panics for unknown output names.
    #[must_use]
    pub fn output_value(&self, name: &str, values: &[bool]) -> bool {
        let (_, c) = self
            .outputs
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no output `{name}`"));
        values[c.net.index()] ^ c.inverted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_and_netlist(style: LogicStyle) -> Netlist {
        let mut nl = Netlist::new("t", style);
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let q = nl.add_net("q");
        nl.add_gate(
            "u_xor",
            GateKind::Lib(CellKind::Xor2),
            vec![Conn::plain(a), Conn::plain(b)],
            vec![x],
        );
        nl.add_gate(
            "u_and",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(x), Conn::inv(b)],
            vec![q],
        );
        nl.set_output("q", Conn::plain(q));
        nl
    }

    fn asg(pairs: &[(&str, bool)]) -> HashMap<String, bool> {
        pairs.iter().map(|&(k, v)| (k.to_owned(), v)).collect()
    }

    #[test]
    fn evaluate_with_inverted_conns() {
        let nl = xor_and_netlist(LogicStyle::PgMcml);
        nl.validate().unwrap();
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            let v = nl.evaluate(&asg(&[("a", a), ("b", b)]), &HashMap::new());
            let expect = (a ^ b) && !b;
            assert_eq!(nl.output_value("q", &v), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn inv_gate_only_in_cmos() {
        let mut nl = Netlist::new("t", LogicStyle::Mcml);
        let a = nl.add_input("a");
        let q = nl.add_net("q");
        nl.add_gate("u_inv", GateKind::Inv, vec![Conn::plain(a)], vec![q]);
        assert!(nl.validate().is_err());
        let mut nl2 = Netlist::new("t", LogicStyle::Cmos);
        let a = nl2.add_input("a");
        let q = nl2.add_net("q");
        nl2.add_gate("u_inv", GateKind::Inv, vec![Conn::plain(a)], vec![q]);
        nl2.set_output("q", Conn::plain(q));
        assert!(nl2.validate().is_ok());
        let v = nl2.evaluate(&asg(&[("a", true)]), &HashMap::new());
        assert!(!nl2.output_value("q", &v));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("t", LogicStyle::Cmos);
        let a = nl.add_input("a");
        let q = nl.add_net("q");
        nl.add_gate("u1", GateKind::Inv, vec![Conn::plain(a)], vec![q]);
        nl.add_gate("u2", GateKind::Inv, vec![Conn::plain(a)], vec![q]);
        assert!(nl
            .validate()
            .unwrap_err()
            .to_string()
            .contains("multiple drivers"));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("t", LogicStyle::Cmos);
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_gate("u1", GateKind::Inv, vec![Conn::plain(a)], vec![b]);
        nl.add_gate("u2", GateKind::Inv, vec![Conn::plain(b)], vec![a]);
        assert!(nl.validate().unwrap_err().to_string().contains("cycle"));
    }

    #[test]
    fn sequential_state_machine() {
        // DFF toggling through an XOR feedback: q' = q ^ 1.
        let mut nl = Netlist::new("toggle", LogicStyle::PgMcml);
        let clk = nl.add_input("clk");
        let one = nl.add_input("one");
        let q = nl.add_net("q");
        let d = nl.add_net("d");
        nl.add_gate(
            "u_x",
            GateKind::Lib(CellKind::Xor2),
            vec![Conn::plain(q), Conn::plain(one)],
            vec![d],
        );
        nl.add_gate(
            "u_ff",
            GateKind::Lib(CellKind::Dff),
            vec![Conn::plain(d), Conn::plain(clk)],
            vec![q],
        );
        nl.set_output("q", Conn::plain(q));
        nl.validate().unwrap();

        let mut state = HashMap::new();
        let mut seen = Vec::new();
        for _ in 0..4 {
            let v = nl.evaluate(&asg(&[("clk", false), ("one", true)]), &state);
            seen.push(nl.output_value("q", &v));
            state = nl.next_state(&v, &state);
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn histogram_and_fanout() {
        let nl = xor_and_netlist(LogicStyle::PgMcml);
        let h = nl.cell_histogram();
        assert_eq!(h[&GateKind::Lib(CellKind::Xor2)], 1);
        assert_eq!(h[&GateKind::Lib(CellKind::And2)], 1);
        let f = nl.fanout_counts();
        // `b` feeds both gates.
        let b = nl.inputs()[1].1;
        assert_eq!(f[b.index()], 2);
    }

    #[test]
    fn port_classes_default_public_and_annotate() {
        let mut nl = xor_and_netlist(LogicStyle::PgMcml);
        assert_eq!(nl.port_class("a"), PortClass::Public);
        assert!(!nl.has_port_classes());
        nl.set_port_class("a", PortClass::Secret);
        nl.set_port_class("q", PortClass::Public);
        assert_eq!(nl.port_class("a"), PortClass::Secret);
        assert!(nl.has_port_classes());
        let annotated: Vec<(&str, PortClass)> = nl.port_classes().collect();
        assert_eq!(
            annotated,
            vec![("a", PortClass::Secret), ("q", PortClass::Public)]
        );
    }

    #[test]
    #[should_panic(expected = "no primary port")]
    fn port_class_requires_existing_port() {
        let mut nl = xor_and_netlist(LogicStyle::PgMcml);
        nl.set_port_class("nope", PortClass::Secret);
    }

    #[test]
    #[should_panic(expected = "needs 2 inputs")]
    fn arity_checked() {
        let mut nl = Netlist::new("t", LogicStyle::Cmos);
        let a = nl.add_input("a");
        let q = nl.add_net("q");
        nl.add_gate(
            "u",
            GateKind::Lib(CellKind::And2),
            vec![Conn::plain(a)],
            vec![q],
        );
    }
}
