//! Balanced buffered distribution of the sleep signal.
//!
//! The paper routes the sleep signal "as a balanced tree" of
//! **single-ended static CMOS clock buffers** sized to the PG-MCML row
//! height, synthesised by the P&R tool's clock-tree engine; the goal is
//! an insertion delay of ≈1 ns so the protected block can be woken in a
//! small fraction of the 400 MHz clock period. This module sizes that
//! tree for a given number of gated cells and reports buffer count,
//! insertion delay and skew.

use mcml_cells::{CellKind, LogicStyle};
use mcml_char::TimingLibrary;
use serde::{Deserialize, Serialize};

/// Sleep-tree construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepTreeOptions {
    /// Maximum sleep pins driven by one leaf buffer.
    pub leaf_fanout: usize,
    /// Branching factor of internal tree levels.
    pub branching: usize,
    /// Per-level wire delay adder (s), covering the RC of the balanced
    /// routes between levels.
    pub wire_delay_per_level: f64,
    /// Relative per-buffer delay mismatch used for the skew estimate.
    pub mismatch: f64,
}

impl Default for SleepTreeOptions {
    fn default() -> Self {
        Self {
            leaf_fanout: 16,
            branching: 4,
            wire_delay_per_level: 25e-12,
            mismatch: 0.05,
        }
    }
}

/// A synthesised sleep tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SleepTree {
    /// Number of gated sleep pins served.
    pub sinks: usize,
    /// Buffer count per level, root first.
    pub buffers_per_level: Vec<usize>,
    /// Root-to-leaf insertion delay (s).
    pub insertion_delay: f64,
    /// Estimated leaf-to-leaf skew (s).
    pub skew: f64,
}

impl SleepTree {
    /// Total buffer count.
    #[must_use]
    pub fn buffer_count(&self) -> usize {
        self.buffers_per_level.iter().sum()
    }

    /// Tree depth in buffer levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.buffers_per_level.len()
    }

    /// Area of the tree's buffers (µm²), using the CMOS buffer cell (one
    /// row-height single-ended clock buffer per tree node).
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.buffer_count() as f64
            * mcml_cells::cell_area_um2(
                CellKind::Buffer,
                LogicStyle::Cmos,
                mcml_cells::DriveStrength::X1,
            )
    }
}

/// Build a balanced sleep tree for `sinks` gated cells.
///
/// The per-buffer delay comes from the characterised **CMOS** buffer
/// (sleep distribution is single-ended, exactly like a clock tree), at
/// the fan-out each level actually drives.
///
/// # Panics
///
/// Panics if the library lacks a CMOS buffer entry or `sinks == 0`.
#[must_use]
pub fn build_sleep_tree(sinks: usize, lib: &TimingLibrary, opts: &SleepTreeOptions) -> SleepTree {
    assert!(sinks > 0, "a sleep tree needs at least one sink");
    let buf = lib
        .get(CellKind::Buffer, LogicStyle::Cmos)
        .expect("CMOS buffer characterised");

    // Leaves first: enough buffers to keep leaf fan-out bounded.
    let mut levels_rev = Vec::new();
    let mut count = sinks.div_ceil(opts.leaf_fanout);
    levels_rev.push(count);
    while count > 1 {
        count = count.div_ceil(opts.branching);
        levels_rev.push(count);
    }
    let buffers_per_level: Vec<usize> = levels_rev.iter().rev().copied().collect();

    // Insertion delay: per-level buffer delay at its true fan-out plus
    // the wire adder.
    let mut insertion = 0.0;
    for (li, &n) in buffers_per_level.iter().enumerate() {
        let next = buffers_per_level
            .get(li + 1)
            .copied()
            .unwrap_or(sinks.min(n * opts.leaf_fanout));
        let fanout = (next as f64 / n as f64).max(1.0);
        insertion += buf.delay_ps(fanout) * 1e-12 + opts.wire_delay_per_level;
    }
    let skew = insertion * opts.mismatch;

    SleepTree {
        sinks,
        buffers_per_level,
        insertion_delay: insertion,
        skew,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcml_cells::DriveStrength;
    use mcml_char::CellTiming;

    fn lib_with_cmos_buffer() -> TimingLibrary {
        let mut lib = TimingLibrary::new();
        lib.insert(CellTiming {
            kind: CellKind::Buffer,
            style: LogicStyle::Cmos,
            drive: DriveStrength::X1,
            area_um2: 3.1,
            delay_fo1_ps: 25.0,
            delay_fo4_ps: 60.0,
            input_cap_ff: 1.2,
            static_power_w: 1e-9,
            leakage_sleep_w: 1e-9,
            toggle_energy_j: 2e-15,
        });
        lib
    }

    #[test]
    fn small_block_single_level() {
        let lib = lib_with_cmos_buffer();
        let t = build_sleep_tree(10, &lib, &SleepTreeOptions::default());
        assert_eq!(t.levels(), 1);
        assert_eq!(t.buffer_count(), 1);
        assert!(t.insertion_delay > 0.0);
    }

    #[test]
    fn ise_sized_block_meets_1ns_budget() {
        // The S-box ISE has ~3000 cells; the paper reports ≈1 ns sleep
        // insertion delay.
        let lib = lib_with_cmos_buffer();
        let t = build_sleep_tree(3076, &lib, &SleepTreeOptions::default());
        assert!(
            t.levels() >= 3,
            "needs a real tree: {:?}",
            t.buffers_per_level
        );
        assert!(
            t.insertion_delay > 0.1e-9 && t.insertion_delay < 1.5e-9,
            "insertion delay {} s",
            t.insertion_delay
        );
        assert!(t.skew < t.insertion_delay / 5.0);
        // Every sink is served.
        let leaves = *t.buffers_per_level.last().unwrap();
        assert!(leaves * 16 >= 3076);
    }

    #[test]
    fn deeper_tree_for_more_sinks() {
        let lib = lib_with_cmos_buffer();
        let small = build_sleep_tree(100, &lib, &SleepTreeOptions::default());
        let big = build_sleep_tree(10_000, &lib, &SleepTreeOptions::default());
        assert!(big.levels() > small.levels());
        assert!(big.insertion_delay > small.insertion_delay);
        assert!(big.area_um2() > small.area_um2());
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn zero_sinks_rejected() {
        let lib = lib_with_cmos_buffer();
        let _ = build_sleep_tree(0, &lib, &SleepTreeOptions::default());
    }
}
