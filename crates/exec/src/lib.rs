//! Deterministic parallel execution layer for the PG-MCML evaluation stack.
//!
//! The characterization → trace-synthesis → CPA pipeline is embarrassingly
//! parallel at three grains (cells, plaintexts, key guesses), but the paper
//! tables must not depend on the machine they were produced on.  This crate
//! provides the two primitives the rest of the workspace builds on:
//!
//! * [`parallel_map`] / [`parallel_map_items`] — a scoped-thread runner that
//!   fans work items across cores.  Workers pull indices from a shared atomic
//!   counter (self-balancing, so a slow SPICE transient does not stall a
//!   whole stripe) and results are merged back **by original index**, so the
//!   output `Vec` is bit-identical to what the serial loop produces no matter
//!   how the scheduler interleaved the workers.
//! * [`parallel_fold_ordered`] — the streaming counterpart: workers compute
//!   items concurrently, but the caller's fold closure consumes them strictly
//!   in index order through a bounded reorder window, so an online
//!   accumulator (the chunked CPA/TVLA sums) rounds identically to the
//!   serial loop while memory stays `O(workers)` instead of `O(n)`.
//! * [`chunk_ranges`] / [`chunked_sum`] — fixed chunk boundaries for
//!   floating-point reductions.  Both the serial and the parallel paths fold
//!   per-chunk partial sums in chunk order, so the rounding profile (and
//!   therefore every downstream correlation coefficient) is identical in the
//!   two modes.
//!
//! Thread count is controlled by [`Parallelism`]; `Parallelism::from_env()`
//! honours the `MCML_THREADS` environment variable (`1` or `serial` forces
//! the serial path, any larger number caps the worker pool).
//!
//! Every batch reports to `mcml-obs`: `exec.tasks_run` and
//! `exec.parallel_batches` increment by the work dispatched (identically on
//! the serial and parallel paths, so totals are thread-count invariant), and
//! each worker's busy time accumulates into the `worker_busy` stage, from
//! which run summaries derive per-worker utilisation.
//!
//! ```
//! use mcml_exec::{chunked_sum, parallel_map, Parallelism};
//!
//! let squares = parallel_map(Parallelism::Threads(4), 5, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//!
//! // Chunk-ordered reduction: bit-identical for any thread count.
//! let serial = chunked_sum(Parallelism::Serial, 1000, |i| 1.0 / (i as f64 + 1.0));
//! let threaded = chunked_sum(Parallelism::Threads(4), 1000, |i| 1.0 / (i as f64 + 1.0));
//! assert_eq!(serial.to_bits(), threaded.to_bits());
//! ```

#![warn(missing_docs)]

use mcml_obs::{Counter, Stage};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How much hardware parallelism a pipeline stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run everything on the calling thread.
    Serial,
    /// Use at most this many worker threads (values <= 1 mean serial).
    Threads(usize),
    /// Use all available cores.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolve from the `MCML_THREADS` environment variable.
    ///
    /// * unset / unparsable → [`Parallelism::Auto`]
    /// * `serial`, `0`, `1` → [`Parallelism::Serial`]
    /// * `n > 1`            → [`Parallelism::Threads`]`(n)`
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MCML_THREADS") {
            Ok(v) if v.eq_ignore_ascii_case("serial") => Parallelism::Serial,
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n <= 1 => Parallelism::Serial,
                Ok(n) => Parallelism::Threads(n),
                Err(_) => Parallelism::Auto,
            },
            Err(_) => Parallelism::Auto,
        }
    }

    /// Number of worker threads this setting resolves to on this machine.
    #[must_use]
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
            }
        }
    }

    /// True when this setting resolves to more than one worker.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        self.worker_count() > 1
    }
}

/// Map `f` over `0..n`, fanning across threads, returning results in index
/// order.
///
/// The output is element-for-element identical to
/// `(0..n).map(f).collect::<Vec<_>>()`: each item is computed by exactly one
/// worker with the same code path as the serial loop, and the merge is by
/// index, so scheduling cannot reorder or perturb anything.
///
/// Panics in `f` are propagated to the caller (the scope joins all workers
/// first, so no work item is silently dropped).
pub fn parallel_map<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // Batch accounting is mode-independent: the same increments happen on
    // the serial fallback and the threaded path, so `exec.*` totals are
    // identical for any `MCML_THREADS`.
    mcml_obs::incr(Counter::ParallelBatches);
    mcml_obs::add(Counter::TasksRun, n as u64);
    let _dispatch = mcml_obs::span(Stage::ParallelMap);

    let workers = par.worker_count().min(n.max(1));
    if workers <= 1 || n <= 1 {
        let _busy = mcml_obs::span(Stage::WorkerBusy);
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots_ptr = SendPtr(slots.as_mut_ptr());

    let result = crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            s.spawn(move |_| {
                let _busy = mcml_obs::span(Stage::WorkerBusy);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i);
                    // SAFETY: each index in 0..n is handed to exactly one
                    // worker by the atomic counter, so no two threads write
                    // the same slot, and the scope joins every worker before
                    // `slots` is read or dropped.
                    unsafe { slots_ptr.write(i, r) };
                }
            });
        }
    });
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }

    slots
        .into_iter()
        .map(|slot| slot.expect("every index visited by exactly one worker"))
        .collect()
}

/// Map `f` over a slice, fanning across threads, preserving item order.
pub fn parallel_map_items<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map(par, items.len(), |i| f(&items[i]))
}

/// Map `0..n` across threads and fold the results **in index order** on the
/// calling thread, without ever materialising the full result vector.
///
/// This is the streaming counterpart of [`parallel_map`]: workers compute
/// `map(i)` concurrently, but `fold(&mut acc, i, r)` runs on the caller's
/// thread strictly at `i = 0, 1, 2, …` — so a floating-point accumulator
/// (e.g. the chunked CPA sums in `mcml-dpa`) rounds bit-identically to the
/// serial loop for any thread count. A bounded reorder window provides
/// backpressure: a worker may run at most `2 × workers` items ahead of the
/// fold cursor, so peak buffered memory is `O(workers × sizeof(R))`,
/// independent of `n`. That is what lets a 10⁵-trace campaign stream
/// completed traces into an attack accumulator without ever holding the
/// trace matrix.
///
/// Panics in `map` or `fold` are propagated to the caller; in-flight workers
/// drain and join first, so no thread is leaked.
pub fn parallel_fold_ordered<R, A, M, F>(
    par: Parallelism,
    n: usize,
    init: A,
    map: M,
    mut fold: F,
) -> A
where
    R: Send,
    M: Fn(usize) -> R + Sync,
    F: FnMut(&mut A, usize, R),
{
    mcml_obs::incr(Counter::ParallelBatches);
    mcml_obs::add(Counter::TasksRun, n as u64);
    let _dispatch = mcml_obs::span(Stage::ParallelMap);

    let workers = par.worker_count().min(n.max(1));
    let mut acc = init;
    if workers <= 1 || n <= 1 {
        let _busy = mcml_obs::span(Stage::WorkerBusy);
        for i in 0..n {
            let r = map(i);
            fold(&mut acc, i, r);
        }
        return acc;
    }

    let window = 2 * workers;
    let shared: Mutex<Reorder<R>> = Mutex::new(Reorder {
        buf: BTreeMap::new(),
        next: 0,
    });
    // `ready`: a result the consumer may be waiting on has arrived (or a
    // thread is bailing out). `room`: the fold cursor advanced, so workers
    // blocked on the window may proceed.
    let ready = Condvar::new();
    let room = Condvar::new();
    let abort = AtomicBool::new(false);
    let counter = AtomicUsize::new(0);

    let result = crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let (shared, ready, room, abort, counter) = (&shared, &ready, &room, &abort, &counter);
            let map = &map;
            s.spawn(move |_| {
                let _busy = mcml_obs::span(Stage::WorkerBusy);
                let _wake = WakeOnExit { abort, ready, room };
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    {
                        let mut g = shared.lock().expect("reorder lock");
                        while i >= g.next + window && !abort.load(Ordering::Relaxed) {
                            g = room.wait(g).expect("reorder lock");
                        }
                    }
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let r = map(i);
                    shared.lock().expect("reorder lock").buf.insert(i, r);
                    ready.notify_all();
                }
            });
        }

        // Consumer runs on the calling thread: pop index `folded` as soon as
        // it lands, fold it, advance the cursor, release window room.
        let _wake = WakeOnExit {
            abort: &abort,
            ready: &ready,
            room: &room,
        };
        let mut folded = 0usize;
        'drain: while folded < n {
            let r = {
                let mut g = shared.lock().expect("reorder lock");
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break 'drain;
                    }
                    if let Some(r) = g.buf.remove(&folded) {
                        g.next += 1;
                        room.notify_all();
                        break r;
                    }
                    g = ready.wait(g).expect("reorder lock");
                }
            };
            fold(&mut acc, folded, r);
            folded += 1;
        }
    });
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
    acc
}

/// Reorder buffer for [`parallel_fold_ordered`]: completed-but-unfolded
/// results keyed by index, plus the fold cursor (`next` = first index not
/// yet folded).
struct Reorder<R> {
    buf: BTreeMap<usize, R>,
    next: usize,
}

/// On drop — normal exit or unwind — wake everyone parked on the reorder
/// buffer so no thread waits forever for a peer that is gone; on unwind,
/// also flag the shared abort so the remaining threads drain and exit.
struct WakeOnExit<'a> {
    abort: &'a AtomicBool,
    ready: &'a Condvar,
    room: &'a Condvar,
}

impl Drop for WakeOnExit<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.abort.store(true, Ordering::Relaxed);
        }
        self.ready.notify_all();
        self.room.notify_all();
    }
}

/// Raw pointer wrapper so disjoint slots can be written from scoped workers.
/// (A method rather than direct field access keeps edition-2021 closures
/// capturing the whole `Send` wrapper, not the bare pointer.)
struct SendPtr<R>(*mut Option<R>);

impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}

impl<R> SendPtr<R> {
    /// # Safety
    /// `i` must be in bounds and written by at most one thread.
    unsafe fn write(self, i: usize, value: R) {
        self.0.add(i).write(Some(value));
    }
}
// SAFETY: the pointer may cross threads because workers write disjoint
// indices only (enforced by the atomic work counter) and the owning Vec
// outlives the scope.
unsafe impl<R: Send> Send for SendPtr<R> {}
// SAFETY: shared references to SendPtr only copy the pointer; all writes go
// through `write`, whose caller contract keeps the slots disjoint.
unsafe impl<R: Send> Sync for SendPtr<R> {}

/// Fixed chunk size used for floating-point reductions across the workspace.
///
/// 256 doubles = 2 KiB per row chunk: small enough to stay L1-resident along
/// with the hypothesis vector, large enough to amortise loop overhead.
pub const REDUCTION_CHUNK: usize = 256;

/// Split `0..n` into fixed-size chunks (the last may be short).
///
/// Chunk boundaries depend only on `n`, never on the thread count, so
/// chunk-ordered folds give the same rounding in serial and parallel runs.
pub fn chunk_ranges(n: usize, chunk: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk)).map(move |c| {
        let lo = c * chunk;
        lo..(lo + chunk).min(n)
    })
}

/// Chunk-ordered sum of `f(i)` for `i in 0..n`.
///
/// Both serial and parallel callers use this so partial-sum boundaries (and
/// therefore rounding) match exactly: per-chunk partials are accumulated
/// sequentially within the chunk and folded in chunk-index order.
pub fn chunked_sum<F>(par: Parallelism, n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let chunks: Vec<std::ops::Range<usize>> = chunk_ranges(n, REDUCTION_CHUNK).collect();
    let partials = parallel_map_items(par, &chunks, |r| r.clone().map(&f).sum::<f64>());
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_matches_serial_order() {
        let serial: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(31)).collect();
        let par = parallel_map(Parallelism::Threads(8), 1000, |i| {
            (i as u64).wrapping_mul(31)
        });
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = parallel_map(Parallelism::Auto, 0, |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(parallel_map(Parallelism::Auto, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn parallel_map_items_preserves_order() {
        let items: Vec<f64> = (0..257).map(|i| f64::from(i) * 0.5).collect();
        let doubled = parallel_map_items(Parallelism::Threads(4), &items, |x| x * 2.0);
        let expect: Vec<f64> = items.iter().map(|x| x * 2.0).collect();
        assert_eq!(doubled, expect);
    }

    #[test]
    fn chunked_sum_is_thread_count_invariant() {
        // Values chosen so naive reordering changes the rounding; the chunked
        // fold must not.
        let f = |i: usize| 1.0 / (i as f64 + 1.0).powi(2);
        let serial = chunked_sum(Parallelism::Serial, 10_000, f);
        for threads in [2, 3, 8, 32] {
            let p = chunked_sum(Parallelism::Threads(threads), 10_000, f);
            assert_eq!(serial.to_bits(), p.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        let mut seen = vec![false; 1000];
        for r in chunk_ranges(1000, 64) {
            for i in r {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert_eq!(Parallelism::Threads(6).worker_count(), 6);
        assert!(Parallelism::Auto.worker_count() >= 1);
        assert!(!Parallelism::Serial.is_parallel());
    }

    #[test]
    fn fold_ordered_matches_serial_bit_for_bit() {
        // Non-associative accumulation: any reordering of the fold would
        // change the rounding, so bit-equality proves index-order folding.
        let map = |i: usize| 1.0 / (i as f64 + 1.0).powi(2);
        let fold = |acc: &mut f64, _i: usize, r: f64| *acc = (*acc + r) * 1.000_000_1;
        let serial = parallel_fold_ordered(Parallelism::Serial, 5_000, 0.0f64, map, fold);
        for threads in [2, 3, 8] {
            let p = parallel_fold_ordered(Parallelism::Threads(threads), 5_000, 0.0f64, map, fold);
            assert_eq!(serial.to_bits(), p.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn fold_ordered_visits_indices_in_order() {
        let order = parallel_fold_ordered(
            Parallelism::Threads(8),
            1000,
            Vec::new(),
            |i| i,
            |acc: &mut Vec<usize>, i, r| {
                assert_eq!(i, r);
                acc.push(i);
            },
        );
        let expect: Vec<usize> = (0..1000).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn fold_ordered_handles_empty_and_single() {
        let none = parallel_fold_ordered(Parallelism::Auto, 0, 0u32, |_| 1u32, |a, _, r| *a += r);
        assert_eq!(none, 0);
        let one = parallel_fold_ordered(Parallelism::Auto, 1, 0u32, |_| 5u32, |a, _, r| *a += r);
        assert_eq!(one, 5);
    }

    #[test]
    fn fold_ordered_propagates_map_panics() {
        let caught = std::panic::catch_unwind(|| {
            parallel_fold_ordered(
                Parallelism::Threads(4),
                200,
                0usize,
                |i| {
                    assert!(i != 123, "boom");
                    i
                },
                |a, _, r| *a += r,
            )
        });
        assert!(caught.is_err());
    }

    #[test]
    fn fold_ordered_propagates_fold_panics() {
        let caught = std::panic::catch_unwind(|| {
            parallel_fold_ordered(
                Parallelism::Threads(4),
                200,
                0usize,
                |i| i,
                |_a, i, _r| assert!(i != 150, "boom in fold"),
            )
        });
        assert!(caught.is_err());
    }

    #[test]
    fn parallel_map_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(Parallelism::Threads(4), 100, |i| {
                assert!(i != 57, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }
}
