//! Deterministic parallel execution layer for the PG-MCML evaluation stack.
//!
//! The characterization → trace-synthesis → CPA pipeline is embarrassingly
//! parallel at three grains (cells, plaintexts, key guesses), but the paper
//! tables must not depend on the machine they were produced on.  This crate
//! provides the two primitives the rest of the workspace builds on:
//!
//! * [`parallel_map`] / [`parallel_map_items`] — a scoped-thread runner that
//!   fans work items across cores.  Workers pull indices from a shared atomic
//!   counter (self-balancing, so a slow SPICE transient does not stall a
//!   whole stripe) and results are merged back **by original index**, so the
//!   output `Vec` is bit-identical to what the serial loop produces no matter
//!   how the scheduler interleaved the workers.
//! * [`chunk_ranges`] / [`chunked_sum`] — fixed chunk boundaries for
//!   floating-point reductions.  Both the serial and the parallel paths fold
//!   per-chunk partial sums in chunk order, so the rounding profile (and
//!   therefore every downstream correlation coefficient) is identical in the
//!   two modes.
//!
//! Thread count is controlled by [`Parallelism`]; `Parallelism::from_env()`
//! honours the `MCML_THREADS` environment variable (`1` or `serial` forces
//! the serial path, any larger number caps the worker pool).
//!
//! Every batch reports to `mcml-obs`: `exec.tasks_run` and
//! `exec.parallel_batches` increment by the work dispatched (identically on
//! the serial and parallel paths, so totals are thread-count invariant), and
//! each worker's busy time accumulates into the `worker_busy` stage, from
//! which run summaries derive per-worker utilisation.
//!
//! ```
//! use mcml_exec::{chunked_sum, parallel_map, Parallelism};
//!
//! let squares = parallel_map(Parallelism::Threads(4), 5, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//!
//! // Chunk-ordered reduction: bit-identical for any thread count.
//! let serial = chunked_sum(Parallelism::Serial, 1000, |i| 1.0 / (i as f64 + 1.0));
//! let threaded = chunked_sum(Parallelism::Threads(4), 1000, |i| 1.0 / (i as f64 + 1.0));
//! assert_eq!(serial.to_bits(), threaded.to_bits());
//! ```

#![warn(missing_docs)]

use mcml_obs::{Counter, Stage};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How much hardware parallelism a pipeline stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run everything on the calling thread.
    Serial,
    /// Use at most this many worker threads (values <= 1 mean serial).
    Threads(usize),
    /// Use all available cores.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolve from the `MCML_THREADS` environment variable.
    ///
    /// * unset / unparsable → [`Parallelism::Auto`]
    /// * `serial`, `0`, `1` → [`Parallelism::Serial`]
    /// * `n > 1`            → [`Parallelism::Threads`]`(n)`
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MCML_THREADS") {
            Ok(v) if v.eq_ignore_ascii_case("serial") => Parallelism::Serial,
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n <= 1 => Parallelism::Serial,
                Ok(n) => Parallelism::Threads(n),
                Err(_) => Parallelism::Auto,
            },
            Err(_) => Parallelism::Auto,
        }
    }

    /// Number of worker threads this setting resolves to on this machine.
    #[must_use]
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
            }
        }
    }

    /// True when this setting resolves to more than one worker.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        self.worker_count() > 1
    }
}

/// Map `f` over `0..n`, fanning across threads, returning results in index
/// order.
///
/// The output is element-for-element identical to
/// `(0..n).map(f).collect::<Vec<_>>()`: each item is computed by exactly one
/// worker with the same code path as the serial loop, and the merge is by
/// index, so scheduling cannot reorder or perturb anything.
///
/// Panics in `f` are propagated to the caller (the scope joins all workers
/// first, so no work item is silently dropped).
pub fn parallel_map<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // Batch accounting is mode-independent: the same increments happen on
    // the serial fallback and the threaded path, so `exec.*` totals are
    // identical for any `MCML_THREADS`.
    mcml_obs::incr(Counter::ParallelBatches);
    mcml_obs::add(Counter::TasksRun, n as u64);
    let _dispatch = mcml_obs::span(Stage::ParallelMap);

    let workers = par.worker_count().min(n.max(1));
    if workers <= 1 || n <= 1 {
        let _busy = mcml_obs::span(Stage::WorkerBusy);
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots_ptr = SendPtr(slots.as_mut_ptr());

    let result = crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            s.spawn(move |_| {
                let _busy = mcml_obs::span(Stage::WorkerBusy);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(i);
                    // SAFETY: each index in 0..n is handed to exactly one
                    // worker by the atomic counter, so no two threads write
                    // the same slot, and the scope joins every worker before
                    // `slots` is read or dropped.
                    unsafe { slots_ptr.write(i, r) };
                }
            });
        }
    });
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }

    slots
        .into_iter()
        .map(|slot| slot.expect("every index visited by exactly one worker"))
        .collect()
}

/// Map `f` over a slice, fanning across threads, preserving item order.
pub fn parallel_map_items<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map(par, items.len(), |i| f(&items[i]))
}

/// Raw pointer wrapper so disjoint slots can be written from scoped workers.
/// (A method rather than direct field access keeps edition-2021 closures
/// capturing the whole `Send` wrapper, not the bare pointer.)
struct SendPtr<R>(*mut Option<R>);

impl<R> Clone for SendPtr<R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<R> Copy for SendPtr<R> {}

impl<R> SendPtr<R> {
    /// # Safety
    /// `i` must be in bounds and written by at most one thread.
    unsafe fn write(self, i: usize, value: R) {
        self.0.add(i).write(Some(value));
    }
}
// SAFETY: workers write disjoint indices only (enforced by the atomic work
// counter) and the owning Vec outlives the scope.
unsafe impl<R: Send> Send for SendPtr<R> {}
unsafe impl<R: Send> Sync for SendPtr<R> {}

/// Fixed chunk size used for floating-point reductions across the workspace.
///
/// 256 doubles = 2 KiB per row chunk: small enough to stay L1-resident along
/// with the hypothesis vector, large enough to amortise loop overhead.
pub const REDUCTION_CHUNK: usize = 256;

/// Split `0..n` into fixed-size chunks (the last may be short).
///
/// Chunk boundaries depend only on `n`, never on the thread count, so
/// chunk-ordered folds give the same rounding in serial and parallel runs.
pub fn chunk_ranges(n: usize, chunk: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    let chunk = chunk.max(1);
    (0..n.div_ceil(chunk)).map(move |c| {
        let lo = c * chunk;
        lo..(lo + chunk).min(n)
    })
}

/// Chunk-ordered sum of `f(i)` for `i in 0..n`.
///
/// Both serial and parallel callers use this so partial-sum boundaries (and
/// therefore rounding) match exactly: per-chunk partials are accumulated
/// sequentially within the chunk and folded in chunk-index order.
pub fn chunked_sum<F>(par: Parallelism, n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let chunks: Vec<std::ops::Range<usize>> = chunk_ranges(n, REDUCTION_CHUNK).collect();
    let partials = parallel_map_items(par, &chunks, |r| r.clone().map(&f).sum::<f64>());
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_matches_serial_order() {
        let serial: Vec<u64> = (0..1000).map(|i| (i as u64).wrapping_mul(31)).collect();
        let par = parallel_map(Parallelism::Threads(8), 1000, |i| {
            (i as u64).wrapping_mul(31)
        });
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = parallel_map(Parallelism::Auto, 0, |_| unreachable!());
        assert!(empty.is_empty());
        assert_eq!(parallel_map(Parallelism::Auto, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn parallel_map_items_preserves_order() {
        let items: Vec<f64> = (0..257).map(|i| f64::from(i) * 0.5).collect();
        let doubled = parallel_map_items(Parallelism::Threads(4), &items, |x| x * 2.0);
        let expect: Vec<f64> = items.iter().map(|x| x * 2.0).collect();
        assert_eq!(doubled, expect);
    }

    #[test]
    fn chunked_sum_is_thread_count_invariant() {
        // Values chosen so naive reordering changes the rounding; the chunked
        // fold must not.
        let f = |i: usize| 1.0 / (i as f64 + 1.0).powi(2);
        let serial = chunked_sum(Parallelism::Serial, 10_000, f);
        for threads in [2, 3, 8, 32] {
            let p = chunked_sum(Parallelism::Threads(threads), 10_000, f);
            assert_eq!(serial.to_bits(), p.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        let mut seen = vec![false; 1000];
        for r in chunk_ranges(1000, 64) {
            for i in r {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert_eq!(Parallelism::Threads(6).worker_count(), 6);
        assert!(Parallelism::Auto.worker_count() >= 1);
        assert!(!Parallelism::Serial.is_parallel());
    }

    #[test]
    fn parallel_map_propagates_panics() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(Parallelism::Threads(4), 100, |i| {
                assert!(i != 57, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }
}
