//! Parsing for the `MCML_SPICE_*` hard-off environment knobs.
//!
//! `MCML_SPICE_BYPASS` and `MCML_SPICE_PARTITION` are escape hatches: set
//! to an "off" word they force the corresponding fast path back to the
//! safe unconditional behaviour. Both knobs are read once per process
//! through [`hard_off`], which accepts the off/on words
//! **case-insensitively** (a user exporting `MCML_SPICE_BYPASS=OFF`
//! means off) and warns once — via [`mcml_obs::warn_once`] — when the
//! value is not a recognised word, so a typo like `offf` is loud instead
//! of silently enabling the optimisation it was meant to disable.

/// How one knob value parses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KnobValue {
    /// A recognised off word: `off`, `0`, `none`, `false`, `no`.
    Off,
    /// A recognised on word (`on`, `1`, `true`, `yes`), an empty value,
    /// or the variable being unset.
    On,
    /// Anything else; treated as on, but worth a warning.
    Unrecognized,
}

/// Classify a knob value (trimmed, case-insensitive). `None` means the
/// variable is unset.
pub(crate) fn classify(value: Option<&str>) -> KnobValue {
    let Some(v) = value else { return KnobValue::On };
    let v = v.trim();
    if v.is_empty() {
        return KnobValue::On;
    }
    let is = |w: &str| v.eq_ignore_ascii_case(w);
    if is("off") || is("0") || is("none") || is("false") || is("no") {
        KnobValue::Off
    } else if is("on") || is("1") || is("true") || is("yes") {
        KnobValue::On
    } else {
        KnobValue::Unrecognized
    }
}

/// Read environment variable `var` once and report whether it demands the
/// hard-off. Unrecognized values warn once per variable and leave the
/// feature enabled (the historical behaviour of anything ≠ off).
pub(crate) fn hard_off(var: &str) -> bool {
    let value = std::env::var(var).ok();
    match classify(value.as_deref()) {
        KnobValue::Off => true,
        KnobValue::On => false,
        KnobValue::Unrecognized => {
            mcml_obs::warn_once(
                var,
                &format!(
                    "{var}={} is not a recognised value (expected off|0|none|false|no \
                     or on|1|true|yes); leaving the feature enabled",
                    value.as_deref().unwrap_or_default()
                ),
            );
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_words_any_case() {
        for v in ["off", "OFF", "Off", "0", "none", "NONE", "False", "no"] {
            assert_eq!(classify(Some(v)), KnobValue::Off, "{v}");
        }
    }

    #[test]
    fn on_words_unset_and_empty() {
        for v in [Some("on"), Some("ON"), Some("1"), Some("true"), Some("YES")] {
            assert_eq!(classify(v), KnobValue::On, "{v:?}");
        }
        assert_eq!(classify(None), KnobValue::On);
        assert_eq!(classify(Some("")), KnobValue::On);
        assert_eq!(classify(Some("  ")), KnobValue::On);
    }

    #[test]
    fn whitespace_trimmed() {
        assert_eq!(classify(Some(" off ")), KnobValue::Off);
        assert_eq!(classify(Some("\t1\n")), KnobValue::On);
    }

    #[test]
    fn typos_are_unrecognized() {
        for v in ["offf", "disable", "2", "o ff"] {
            assert_eq!(classify(Some(v)), KnobValue::Unrecognized, "{v}");
        }
    }

    #[test]
    fn hard_off_warns_once_on_unrecognized_value() {
        // Uses a variable name no other test touches; `hard_off` reads
        // the process environment directly.
        std::env::set_var("MCML_SPICE_TEST_KNOB", "bogus");
        assert!(!hard_off("MCML_SPICE_TEST_KNOB"));
        assert!(mcml_obs::warnings()
            .iter()
            .any(|(t, m)| t == "MCML_SPICE_TEST_KNOB" && m.contains("bogus")));
        // Second parse of the same variable stays silent (dedup by topic).
        let before = mcml_obs::warnings().len();
        assert!(!hard_off("MCML_SPICE_TEST_KNOB"));
        assert_eq!(mcml_obs::warnings().len(), before);
        std::env::remove_var("MCML_SPICE_TEST_KNOB");
    }
}
