//! DC operating-point analysis with gmin and source stepping.

use crate::analysis::engine::{Engine, NrOptions};
use crate::circuit::{Circuit, ElementId, NodeId};
use crate::element::Element;
use crate::matrix::SolverKind;
use crate::Result;

/// Options for [`Circuit::dc_op`].
#[derive(Debug, Clone, Copy)]
pub struct DcOptions {
    /// Newton iteration budget per continuation step.
    pub max_iter: usize,
    /// Node-voltage convergence tolerance (V).
    pub vtol: f64,
    /// KCL residual tolerance (A).
    pub itol: f64,
    /// Largest node-voltage update per Newton step (V).
    pub vstep_limit: f64,
    /// Linear-solver selection.
    pub solver: SolverKind,
    /// Source evaluation time (usually 0; the transient analysis passes
    /// its start time).
    pub time: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        let nr = NrOptions::default();
        Self {
            max_iter: nr.max_iter,
            vtol: nr.vtol,
            itol: nr.itol,
            vstep_limit: nr.vstep_limit,
            solver: SolverKind::Auto,
            time: 0.0,
        }
    }
}

impl DcOptions {
    fn nr(&self) -> NrOptions {
        NrOptions {
            max_iter: self.max_iter,
            vtol: self.vtol,
            itol: self.itol,
            vstep_limit: self.vstep_limit,
            solver: self.solver,
            // DC continuation sweeps voltages deliberately; the
            // quiescent-device bypass and the demand-driven refactor
            // policy are transient-only optimisations.
            bypass_tol: 0.0,
            reuse_jacobian: false,
        }
    }
}

/// A solved DC operating point.
#[derive(Debug, Clone)]
pub struct OpPoint {
    pub(crate) x: Vec<f64>,
    pub(crate) n_node_unk: usize,
    pub(crate) branch_of_elem: Vec<Option<usize>>,
}

impl OpPoint {
    /// Node voltage (V).
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Branch current of a voltage source (A), defined flowing from the
    /// positive terminal through the source; `None` for other elements.
    #[must_use]
    pub fn branch_current(&self, elem: ElementId) -> Option<f64> {
        self.branch_of_elem
            .get(elem.index())
            .copied()
            .flatten()
            .map(|b| self.x[self.n_node_unk + b])
    }

    /// Current delivered by a voltage source into the circuit (A): the
    /// negated branch current. For a supply rail this is the number the
    /// paper plots in Fig. 5.
    #[must_use]
    pub fn supply_current(&self, elem: ElementId) -> Option<f64> {
        self.branch_current(elem).map(|i| -i)
    }

    /// Raw solution vector (node voltages then branch currents).
    #[must_use]
    pub fn state(&self) -> &[f64] {
        &self.x
    }
}

pub(crate) fn branch_map(ckt: &Circuit) -> Vec<Option<usize>> {
    ckt.elements()
        .map(|(_, _, e)| match e {
            Element::Vsource { branch, .. } => Some(*branch),
            _ => None,
        })
        .collect()
}

/// Solve the DC operating point.
///
/// Tries plain Newton first, then gmin stepping, then source stepping —
/// the same continuation ladder real SPICE implementations use.
///
/// # Errors
///
/// Returns [`crate::SpiceError::NoConvergence`] if all strategies fail, or
/// [`crate::SpiceError::InvalidCircuit`] for an empty circuit.
pub fn dc_op(ckt: &Circuit, opts: &DcOptions) -> Result<OpPoint> {
    ckt.validate()?;
    mcml_obs::incr(mcml_obs::Counter::DcSolves);
    let mut engine = Engine::new(ckt);
    let nr = opts.nr();
    let t = opts.time;

    let n_node_unk = engine.n_node_unk;
    let finish = |x: Vec<f64>| OpPoint {
        x,
        n_node_unk,
        branch_of_elem: branch_map(ckt),
    };

    // 1. Plain Newton from zero.
    let mut x = vec![0.0; engine.n_unk];
    if engine
        .solve_nr(&mut x, t, None, ckt.gmin, 1.0, &nr, "dc")
        .is_ok()
    {
        return Ok(finish(x));
    }

    // 2. gmin stepping: sweep a large shunt conductance down to gmin.
    let mut x = vec![0.0; engine.n_unk];
    let mut ladder_ok = true;
    let mut g = 1e-3;
    while g > ckt.gmin {
        if engine.solve_nr(&mut x, t, None, g, 1.0, &nr, "dc").is_err() {
            ladder_ok = false;
            break;
        }
        g /= 10.0;
    }
    if ladder_ok
        && engine
            .solve_nr(&mut x, t, None, ckt.gmin, 1.0, &nr, "dc")
            .is_ok()
    {
        return Ok(finish(x));
    }

    // 3. Source stepping: ramp all independent sources from 0 to 100 %.
    let mut x = vec![0.0; engine.n_unk];
    let steps = 20;
    for k in 1..=steps {
        let scale = f64::from(k) / f64::from(steps);
        // Keep a mild gmin during the ramp for robustness.
        let g = if k < steps { 1e-9 } else { ckt.gmin };
        engine.solve_nr(&mut x, t, None, g, scale, &nr, "dc")?;
    }
    Ok(finish(x))
}

impl Circuit {
    /// Solve the DC operating point with default options.
    ///
    /// # Errors
    ///
    /// See [`dc_op`].
    pub fn dc_op(&self) -> Result<OpPoint> {
        dc_op(self, &DcOptions::default())
    }

    /// Solve the DC operating point with explicit options.
    ///
    /// # Errors
    ///
    /// See [`dc_op`].
    pub fn dc_op_with(&self, opts: &DcOptions) -> Result<OpPoint> {
        dc_op(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;
    use mcml_device::{MosParams, Mosfet};

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.vsource("V", vin, Circuit::GND, SourceWave::dc(3.0));
        c.resistor("R1", vin, mid, 1.0e3);
        c.resistor("R2", mid, Circuit::GND, 2.0e3);
        let op = c.dc_op().unwrap();
        assert!((op.voltage(mid) - 2.0).abs() < 1e-6);
        assert!((op.voltage(vin) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn source_branch_current() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let v = c.vsource("V", vin, Circuit::GND, SourceWave::dc(1.0));
        c.resistor("R", vin, Circuit::GND, 1.0e3);
        let op = c.dc_op().unwrap();
        // 1 mA drawn: branch current (p through source to n) is −1 mA.
        assert!((op.branch_current(v).unwrap() + 1.0e-3).abs() < 1e-9);
        assert!((op.supply_current(v).unwrap() - 1.0e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        // 1 mA pushed from ground into n1.
        c.isource("I", Circuit::GND, n1, SourceWave::dc(1.0e-3));
        c.resistor("R", n1, Circuit::GND, 1.0e3);
        let op = c.dc_op().unwrap();
        assert!((op.voltage(n1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nmos_diode_connected_operating_point() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let d = c.node("d");
        c.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(1.2));
        c.resistor("R", vdd, d, 10.0e3);
        // Diode-connected NMOS: gate tied to drain.
        let m = Mosfet::nmos(MosParams::nmos_hvt_90(), 1.0e-6, 0.1e-6);
        c.mosfet("M1", d, d, Circuit::GND, Circuit::GND, m);
        let op = c.dc_op().unwrap();
        let vd = op.voltage(d);
        assert!(vd > 0.2 && vd < 1.0, "diode drop {vd}");
    }

    #[test]
    fn cmos_inverter_transfer_points() {
        // Static CMOS inverter: output inverts the rail.
        let build = |vin_val: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let vin = c.node("in");
            let out = c.node("out");
            c.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(1.2));
            c.vsource("VIN", vin, Circuit::GND, SourceWave::dc(vin_val));
            let n = Mosfet::nmos(MosParams::nmos_lvt_90(), 1.0e-6, 0.1e-6);
            let p = Mosfet::pmos(MosParams::pmos_lvt_90(), 2.0e-6, 0.1e-6);
            c.mosfet("MN", out, vin, Circuit::GND, Circuit::GND, n);
            c.mosfet("MP", out, vin, vdd, vdd, p);
            (c, out)
        };
        let (c_low, out) = build(0.0);
        let op = c_low.dc_op().unwrap();
        assert!(
            op.voltage(out) > 1.1,
            "low in -> high out: {}",
            op.voltage(out)
        );
        let (c_high, out) = build(1.2);
        let op = c_high.dc_op().unwrap();
        assert!(
            op.voltage(out) < 0.1,
            "high in -> low out: {}",
            op.voltage(out)
        );
    }

    #[test]
    fn floating_node_held_by_gmin() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V", a, Circuit::GND, SourceWave::dc(1.0));
        c.resistor("R", a, b, 1.0e3);
        // `b` only connects through R; gmin to ground defines it.
        let op = c.dc_op().unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn empty_circuit_rejected() {
        let c = Circuit::new();
        assert!(c.dc_op().is_err());
    }

    #[test]
    fn branch_current_none_for_non_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let r = c.resistor("R", a, Circuit::GND, 1.0);
        c.vsource("V", a, Circuit::GND, SourceWave::dc(1.0));
        let op = c.dc_op().unwrap();
        assert!(op.branch_current(r).is_none());
    }
}
