//! Transient analysis with backward-Euler / trapezoidal companion models.

use crate::analysis::dc::{branch_map, DcOptions, OpPoint};
use crate::analysis::engine::{companion_terms, init_cap_states, CompanionCtx, Engine, NrOptions};
use crate::circuit::{Circuit, ElementId, NodeId};
use crate::element::Element;
use crate::error::SpiceError;
use crate::matrix::SolverKind;
use crate::waveform::Waveform;
use crate::Result;

/// Numerical integration method for capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: L-stable, slightly dissipative — the robust
    /// default.
    #[default]
    BackwardEuler,
    /// Trapezoidal rule: second-order accurate, preferred for energy
    /// measurements.
    Trapezoidal,
}

/// Options for [`Circuit::transient`].
#[derive(Debug, Clone, Copy)]
pub struct TranOptions {
    /// End time (s).
    pub t_stop: f64,
    /// Base time step (s); steps are subdivided locally when Newton fails.
    pub dt: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// Record every `record_stride`-th accepted base step (1 = all).
    pub record_stride: usize,
    /// Newton iteration budget per step.
    pub max_iter: usize,
    /// Node-voltage convergence tolerance (V).
    pub vtol: f64,
    /// KCL residual tolerance (A).
    pub itol: f64,
    /// Largest node-voltage Newton update (V).
    pub vstep_limit: f64,
    /// Linear-solver selection.
    pub solver: SolverKind,
    /// Maximum binary step subdivisions on non-convergence.
    pub max_subdiv: u32,
}

impl TranOptions {
    /// Options with the given end time and base step, defaults elsewhere.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt <= t_stop`.
    #[must_use]
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(dt > 0.0 && t_stop >= dt, "need 0 < dt <= t_stop");
        let nr = NrOptions::default();
        Self {
            t_stop,
            dt,
            integrator: Integrator::default(),
            record_stride: 1,
            max_iter: nr.max_iter,
            vtol: nr.vtol,
            itol: nr.itol,
            vstep_limit: nr.vstep_limit,
            solver: SolverKind::Auto,
            max_subdiv: 8,
        }
    }

    /// Builder-style integrator selection.
    #[must_use]
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    fn nr(&self) -> NrOptions {
        NrOptions {
            max_iter: self.max_iter,
            vtol: self.vtol,
            itol: self.itol,
            vstep_limit: self.vstep_limit,
            solver: self.solver,
        }
    }
}

/// Recorded transient simulation results.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    n_node_unk: usize,
    branch_of_elem: Vec<Option<usize>>,
    op0: OpPoint,
}

impl TranResult {
    /// Recorded time points (s).
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Initial operating point (t = 0).
    #[must_use]
    pub fn initial_op(&self) -> &OpPoint {
        &self.op0
    }

    /// Node-voltage waveform.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Waveform {
        if node.is_ground() {
            return self.times.iter().map(|&t| (t, 0.0)).collect();
        }
        let idx = node.index() - 1;
        self.times
            .iter()
            .zip(self.states.iter())
            .map(|(&t, s)| (t, s[idx]))
            .collect()
    }

    /// Branch-current waveform of a voltage source (A, from the positive
    /// terminal through the source); `None` for other elements.
    #[must_use]
    pub fn branch_current(&self, elem: ElementId) -> Option<Waveform> {
        let b = self.branch_of_elem.get(elem.index()).copied().flatten()?;
        let idx = self.n_node_unk + b;
        Some(
            self.times
                .iter()
                .zip(self.states.iter())
                .map(|(&t, s)| (t, s[idx]))
                .collect(),
        )
    }

    /// Current delivered into the circuit by a voltage source (A): the
    /// negated branch current. For the Vdd rail this is the supply-current
    /// waveform of the paper's Fig. 5.
    #[must_use]
    pub fn supply_current(&self, elem: ElementId) -> Option<Waveform> {
        self.branch_current(elem).map(|w| w.scaled(-1.0))
    }
}

/// Run a transient analysis.
///
/// The initial condition is the DC operating point with sources evaluated
/// at `t = 0`. When a time step fails to converge it is halved, up to
/// `max_subdiv` times.
///
/// # Errors
///
/// Returns [`SpiceError::NoConvergence`] when a step fails at the smallest
/// subdivision, or the DC errors for the initial point.
pub fn transient(ckt: &Circuit, opts: &TranOptions) -> Result<TranResult> {
    mcml_obs::incr(mcml_obs::Counter::Transients);
    let dc_opts = DcOptions {
        solver: opts.solver,
        ..DcOptions::default()
    };
    let op0 = ckt.dc_op_with(&dc_opts)?;
    let mut engine = Engine::new(ckt);
    let nr = opts.nr();
    let trapezoidal = opts.integrator == Integrator::Trapezoidal;

    let mut x = op0.state().to_vec();
    let mut caps = init_cap_states(ckt, &x);

    // Step count covering [0, t_stop] exactly: when t_stop is not an
    // integer multiple of dt, a naive `round` either drops the tail of
    // the window or overshoots past t_stop; instead take `ceil` and clamp
    // the final grid point to t_stop (the last step is simply shorter).
    let ratio = opts.t_stop / opts.dt;
    let n_steps = if (ratio - ratio.round()).abs() < 1e-6 * ratio.max(1.0) {
        (ratio.round() as usize).max(1)
    } else {
        ratio.ceil() as usize
    };
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut states = Vec::with_capacity(n_steps + 1);
    times.push(0.0);
    states.push(x.clone());

    let mut x_try = vec![0.0; x.len()];
    let mut t = 0.0;
    for step in 1..=n_steps {
        let t_target = if step == n_steps {
            opts.t_stop
        } else {
            opts.dt * step as f64
        };
        // March to the grid point, subdividing on failure.
        while t < t_target - opts.dt * 1e-9 {
            let mut h = t_target - t;
            let mut level = 0u32;
            loop {
                let ctx = CompanionCtx {
                    h,
                    trapezoidal,
                    caps: &caps,
                };
                x_try.clone_from(&x);
                match engine.solve_nr(&mut x_try, t + h, Some(&ctx), ckt.gmin, 1.0, &nr, "tran") {
                    Ok(()) => {
                        // Accept: update companion states.
                        mcml_obs::incr(mcml_obs::Counter::TranSteps);
                        update_caps(ckt, &mut caps, &x_try, h, trapezoidal);
                        std::mem::swap(&mut x, &mut x_try);
                        t += h;
                        break;
                    }
                    Err(e) => {
                        mcml_obs::incr(mcml_obs::Counter::TranRetries);
                        level += 1;
                        if level > opts.max_subdiv {
                            return Err(match e {
                                SpiceError::NoConvergence { iterations, .. } => {
                                    SpiceError::NoConvergence {
                                        analysis: "tran",
                                        time: t + h,
                                        iterations,
                                    }
                                }
                                other => other,
                            });
                        }
                        h /= 2.0;
                    }
                }
            }
        }
        if step % opts.record_stride == 0 || step == n_steps {
            times.push(t_target);
            states.push(x.clone());
        }
    }

    Ok(TranResult {
        times,
        states,
        n_node_unk: engine.n_node_unk,
        branch_of_elem: branch_map(ckt),
        op0,
    })
}

fn update_caps(
    ckt: &Circuit,
    caps: &mut [Option<crate::analysis::engine::CapState>],
    x: &[f64],
    h: f64,
    trapezoidal: bool,
) {
    for (idx, (_, e)) in ckt.elements().map(|(id, n, e)| (id.index(), (n, e))) {
        if let (Element::Capacitor { a, b, .. }, Some(state)) = (e, caps[idx].as_mut()) {
            let v_new = Engine::v_pub(x, *a) - Engine::v_pub(x, *b);
            let (geq, hist) = companion_terms(state, h, trapezoidal);
            let i_new = geq * v_new + hist;
            state.prev_v = v_new;
            state.prev_i = i_new;
        }
    }
}

impl Circuit {
    /// Run a transient analysis (see [`transient`]).
    ///
    /// # Errors
    ///
    /// See [`transient`].
    pub fn transient(&self, opts: &TranOptions) -> Result<TranResult> {
        transient(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;

    fn rc_circuit() -> (Circuit, NodeId, ElementId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let v = c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
        c.resistor("R", vin, out, 1.0e3);
        c.capacitor("C", out, Circuit::GND, 1.0e-12);
        (c, out, v)
    }

    #[test]
    fn rc_step_time_constant() {
        let (c, out, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(8e-9, 5e-12)).unwrap();
        let w = res.voltage(out);
        // tau = 1 ns; at t = 1 ns after the step, v = 1 - 1/e ≈ 0.632.
        let v_tau = w.sample(2e-9);
        assert!((v_tau - 0.632).abs() < 0.02, "v(tau) = {v_tau}");
        assert!((w.last_value() - 1.0).abs() < 0.01);
    }

    #[test]
    fn trapezoidal_matches_analytic_better() {
        // Sine-driven RC low-pass: smooth waveform where the second-order
        // trapezoidal rule should clearly beat backward Euler at a coarse
        // step. (On discontinuous steps trapezoidal rings — that is
        // expected and why BE is the default.)
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.vsource(
                "V",
                vin,
                Circuit::GND,
                SourceWave::Sine {
                    offset: 0.0,
                    ampl: 1.0,
                    freq: 100e6,
                    delay: 0.0,
                },
            );
            c.resistor("R", vin, out, 1.0e3);
            c.capacitor("C", out, Circuit::GND, 1.0e-12);
            (c, out)
        };
        let (c, out) = build();
        let dt = 100e-12;
        let be = c
            .transient(&TranOptions::new(40e-9, dt))
            .unwrap()
            .voltage(out);
        let tr = c
            .transient(&TranOptions::new(40e-9, dt).with_integrator(Integrator::Trapezoidal))
            .unwrap()
            .voltage(out);
        // Analytic steady state of RC low-pass driven by sin(wt):
        // vout = A·sin(wt − φ), A = 1/√(1+(wRC)²), φ = atan(wRC).
        let w_ang = 2.0 * std::f64::consts::PI * 100e6;
        let wrc = w_ang * 1.0e3 * 1.0e-12;
        let amp = 1.0 / (1.0 + wrc * wrc).sqrt();
        let phi = wrc.atan();
        let analytic = |t: f64| amp * (w_ang * t - phi).sin();
        // Compare after the transient has died (t > 10 RC = 10 ns).
        let err = |w: &Waveform| {
            w.iter()
                .filter(|&(t, _)| t > 10e-9)
                .map(|(t, v)| (v - analytic(t)).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(
            err(&tr) < err(&be),
            "trap err {} vs BE err {}",
            err(&tr),
            err(&be)
        );
    }

    #[test]
    fn capacitor_blocks_dc_supply_current_decays() {
        let (c, _, v) = rc_circuit();
        let res = c.transient(&TranOptions::new(10e-9, 10e-12)).unwrap();
        let i = res.supply_current(v).unwrap();
        // After many time constants the capacitor is charged; current ~ 0.
        assert!(i.last_value().abs() < 1e-6);
        // Peak current just after the step ≈ V/R = 1 mA.
        assert!(i.max() > 0.8e-3, "peak {}", i.max());
    }

    #[test]
    fn sine_source_propagates() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.vsource(
            "V",
            vin,
            Circuit::GND,
            SourceWave::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e9,
                delay: 0.0,
            },
        );
        c.resistor("R", vin, Circuit::GND, 1e3);
        let res = c.transient(&TranOptions::new(2e-9, 10e-12)).unwrap();
        let w = res.voltage(vin);
        assert!((w.max() - 1.0).abs() < 0.01);
        assert!((w.min() + 1.0).abs() < 0.01);
    }

    #[test]
    fn record_stride_thins_output() {
        let (c, _, _) = rc_circuit();
        let mut opts = TranOptions::new(4e-9, 10e-12);
        opts.record_stride = 4;
        let res = c.transient(&opts).unwrap();
        let full = c.transient(&TranOptions::new(4e-9, 10e-12)).unwrap();
        assert!(res.len() < full.len());
        assert!(!res.is_empty());
    }

    #[test]
    fn endpoint_reached_when_t_stop_not_multiple_of_dt() {
        // t_stop / dt = 3.33…: the old `round` step count stopped at
        // 0.9 ns, silently dropping the last 0.1 ns of the window.
        let (c, out, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(1e-9, 0.3e-9)).unwrap();
        let times = res.times();
        assert_eq!(*times.last().unwrap(), 1e-9, "ends exactly at t_stop");
        assert!(times.windows(2).all(|w| w[1] > w[0]), "monotonic grid");
        // Every full-dt grid point is still present.
        for (i, expect) in [0.0, 0.3e-9, 0.6e-9, 0.9e-9, 1.0e-9].iter().enumerate() {
            assert!((times[i] - expect).abs() < 1e-18, "grid point {i}");
        }
        // Waveform sampling at t_stop uses a real solution, not an
        // extrapolation.
        assert!(res.voltage(out).sample(1e-9).is_finite());
    }

    #[test]
    fn endpoint_never_overshoots_t_stop() {
        // t_stop / dt = 1.67: `round` used to march to 1.2 ns, past the
        // requested end of the window.
        let (c, _, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(1e-9, 0.6e-9)).unwrap();
        let times = res.times();
        assert_eq!(*times.last().unwrap(), 1e-9);
        assert!(times.iter().all(|&t| t <= 1e-9));
    }

    #[test]
    fn integer_grid_unchanged_by_endpoint_clamp() {
        let (c, _, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(2e-9, 0.5e-9)).unwrap();
        let expect = [0.0, 0.5e-9, 1.0e-9, 1.5e-9, 2e-9];
        assert_eq!(res.len(), expect.len());
        for (t, e) in res.times().iter().zip(expect) {
            assert!((t - e).abs() < 1e-20, "{t} vs {e}");
        }
        assert_eq!(*res.times().last().unwrap(), 2e-9);
    }

    #[test]
    fn ground_voltage_is_zero() {
        let (c, _, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(2e-9, 20e-12)).unwrap();
        assert_eq!(res.voltage(Circuit::GND).max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "need 0 < dt <= t_stop")]
    fn bad_options_panic() {
        let _ = TranOptions::new(1e-9, 0.0);
    }
}
