//! Transient analysis with backward-Euler / trapezoidal companion models.
//!
//! Two stepping policies share the same recorded-grid interface:
//!
//! * **Fixed-step** (the default): march the caller's uniform `dt` grid,
//!   subdividing a step only when Newton fails. This is the reference
//!   path used by the property tests.
//! * **Adaptive** (opt-in via [`TranOptions::adaptive`]): control the
//!   internal step size with a local-truncation-error (LTE) estimate
//!   from the capacitor companion history — grow `h` up to `h_max` in
//!   quiet regions, shrink it down to `h_min` at edges, land exactly on
//!   every source breakpoint, and keep the Newton-failure subdivision as
//!   the inner fallback. Results are emitted on the caller's uniform
//!   grid via linear dense output, so downstream consumers see the same
//!   interface either way.

use crate::analysis::dc::{branch_map, DcOptions, OpPoint};
use crate::analysis::engine::{
    companion_terms, init_cap_states, v_node, CompanionCtx, Engine, NrOptions,
};
use crate::circuit::{Circuit, ElementId, NodeId};
use crate::element::Element;
use crate::error::SpiceError;
use crate::matrix::SolverKind;
use crate::waveform::Waveform;
use crate::Result;

/// Numerical integration method for capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: L-stable, slightly dissipative — the robust
    /// default.
    #[default]
    BackwardEuler,
    /// Trapezoidal rule: second-order accurate, preferred for energy
    /// measurements.
    Trapezoidal,
}

/// LTE controller settings for adaptive transient stepping.
///
/// Built by [`TranOptions::adaptive`]; the estimate, accept/reject
/// policy, and dense output are documented on [`transient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Relative LTE tolerance against the capacitor voltage magnitude.
    pub reltol: f64,
    /// Absolute LTE floor (V), so tolerances stay finite near 0 V.
    pub abstol: f64,
    /// Smallest internal step (s); a step at `h_min` is always accepted.
    /// Ignored in grid-aligned mode, where the floor is the grid's `dt`.
    pub h_min: f64,
    /// Largest internal step (s), the quiet-region ceiling.
    pub h_max: f64,
    /// Keep every internal step a whole multiple of `dt` so that where
    /// the LTE controller falls back to single-cell steps the trajectory
    /// is *bitwise* the fixed-step one. Quiet regions leap several grid
    /// cells at once; edges degrade gracefully to the reference path.
    /// Trades the free mode's sub-`dt` edge resolution for drift-free
    /// equivalence against fixed-step golden baselines.
    pub align_to_grid: bool,
}

/// Options for [`Circuit::transient`].
#[derive(Debug, Clone, Copy)]
pub struct TranOptions {
    /// End time (s).
    pub t_stop: f64,
    /// Base time step (s); also the spacing of the recorded output grid.
    /// Fixed-step marches it directly (subdividing locally when Newton
    /// fails); the adaptive path uses it as the post-breakpoint restart
    /// step and interpolates back onto this grid.
    pub dt: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// Record every `record_stride`-th grid step (values < 1 are treated
    /// as 1 = record all).
    pub record_stride: usize,
    /// Newton iteration budget per step.
    pub max_iter: usize,
    /// Node-voltage convergence tolerance (V).
    pub vtol: f64,
    /// KCL residual tolerance (A).
    pub itol: f64,
    /// Largest node-voltage Newton update (V).
    pub vstep_limit: f64,
    /// Linear-solver selection.
    pub solver: SolverKind,
    /// Maximum binary step subdivisions on non-convergence.
    pub max_subdiv: u32,
    /// LTE-controlled adaptive stepping; `None` (the default) keeps the
    /// fixed-step reference behaviour.
    pub lte: Option<AdaptiveOptions>,
    /// Quiescent-MOS bypass tolerance (V): when every terminal voltage of
    /// a MOSFET is within this distance of the point it was last
    /// evaluated at, the cached linearization is reused instead of
    /// calling the device model (SPICE3's `bypass` option). `0.0` (the
    /// default) disables the bypass; `MCML_SPICE_BYPASS=off` in the
    /// environment is a hard-off escape hatch that wins over any
    /// programmatic setting. The current is extrapolated with the exact
    /// cached derivatives, so the waveform perturbation is second order
    /// in the tolerance (see `spice.mos_bypassed` in
    /// `docs/OBSERVABILITY.md`).
    pub bypass_vtol: f64,
    /// Preferred lane count per ensemble block for batched trace
    /// acquisition (see [`TranOptions::ensemble`] and
    /// [`crate::ensemble_transient`]). The ensemble engine itself takes
    /// one circuit per lane and derives the actual lane count from the
    /// slice it is given; this field is the scheduling hint upstream
    /// acquisition loops use to chunk a trace campaign into blocks.
    /// `1` (the default) means scalar trace-per-task acquisition.
    pub ensemble_lanes: usize,
    /// Demand-driven refactorisation (modified Newton): keep solving
    /// Newton updates against the last numeric LU factors — across
    /// iterations *and* time steps, even when the adaptive controller
    /// changes the step size (an `h` change only rescales the capacitor
    /// companion conductances) — and refactor only when the iteration's
    /// contraction rate degrades (the update fails to halve, or damping
    /// engages). The residual is assembled fresh every iteration, so
    /// the convergence test is unchanged: an accepted solution
    /// satisfies exactly the same `vtol`/`itol` bounds as full Newton,
    /// it is just reached along a chord direction. `false` (the
    /// default) refactors every iteration, which is the reference
    /// behaviour all fixed-step goldens pin.
    pub jacobian_reuse: bool,
    /// Connected-component / block-triangular partitioning of the MNA
    /// solve (see [`TranOptions::with_partitioning`]). `false` (the
    /// default) keeps the bit-preserved monolithic reference path.
    pub partition: bool,
}

impl TranOptions {
    /// Options with the given end time and base step, defaults elsewhere.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::{Circuit, SourceWave, TranOptions};
    ///
    /// let mut c = Circuit::new();
    /// let vin = c.node("in");
    /// let out = c.node("out");
    /// c.vsource("V", vin, Circuit::GND, SourceWave::dc(1.0));
    /// c.resistor("R", vin, out, 1.0e3);
    /// c.capacitor("C", out, Circuit::GND, 1.0e-12);
    ///
    /// // March 10 ns in 10 ps steps: 1001 recorded points (incl. t=0).
    /// let res = c.transient(&TranOptions::new(10e-9, 10e-12)).unwrap();
    /// assert_eq!(res.times().len(), 1001);
    /// assert!((res.voltage(out).last_value() - 1.0).abs() < 1e-6);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt <= t_stop`.
    #[must_use]
    pub fn new(t_stop: f64, dt: f64) -> Self {
        assert!(dt > 0.0 && t_stop >= dt, "need 0 < dt <= t_stop");
        let nr = NrOptions::default();
        Self {
            t_stop,
            dt,
            integrator: Integrator::default(),
            record_stride: 1,
            max_iter: nr.max_iter,
            vtol: nr.vtol,
            itol: nr.itol,
            vstep_limit: nr.vstep_limit,
            solver: SolverKind::Auto,
            max_subdiv: 8,
            lte: None,
            bypass_vtol: 0.0,
            ensemble_lanes: 1,
            jacobian_reuse: false,
            partition: false,
        }
    }

    /// Builder-style integrator selection.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::{Integrator, TranOptions};
    ///
    /// let opts = TranOptions::new(1e-9, 1e-12).with_integrator(Integrator::Trapezoidal);
    /// assert_eq!(opts.integrator, Integrator::Trapezoidal);
    /// // The default is backward Euler.
    /// assert_eq!(TranOptions::new(1e-9, 1e-12).integrator, Integrator::BackwardEuler);
    /// ```
    #[must_use]
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Builder-style record stride; values below 1 are clamped to 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::{Circuit, SourceWave, TranOptions};
    ///
    /// let mut c = Circuit::new();
    /// let vin = c.node("in");
    /// c.vsource("V", vin, Circuit::GND, SourceWave::dc(1.0));
    /// c.resistor("R", vin, Circuit::GND, 1.0e3);
    ///
    /// // 1000 grid steps, recording every 10th: 101 points (incl. t=0).
    /// let opts = TranOptions::new(10e-9, 10e-12).with_record_stride(10);
    /// let res = c.transient(&opts).unwrap();
    /// assert_eq!(res.times().len(), 101);
    /// assert_eq!(TranOptions::new(1e-9, 1e-12).with_record_stride(0).record_stride, 1);
    /// ```
    #[must_use]
    pub fn with_record_stride(mut self, stride: usize) -> Self {
        self.record_stride = stride.max(1);
        self
    }

    /// Enable LTE-controlled adaptive stepping (see [`transient`]).
    ///
    /// `reltol` bounds the per-step LTE relative to the capacitor
    /// voltage magnitude; `h_min`/`h_max` bound the internal step. The
    /// absolute tolerance floor defaults to 1 µV
    /// ([`AdaptiveOptions::abstol`] can be adjusted on the stored
    /// options afterwards).
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::{Circuit, SourceWave, TranOptions};
    ///
    /// let mut c = Circuit::new();
    /// let vin = c.node("in");
    /// let out = c.node("out");
    /// c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
    /// c.resistor("R", vin, out, 1.0e3);
    /// c.capacitor("C", out, Circuit::GND, 1.0e-12);
    ///
    /// // Free-running step size between 0.1 ps and 0.5 ns, LTE-bounded.
    /// let opts = TranOptions::new(8e-9, 5e-12).adaptive(1e-4, 1e-13, 500e-12);
    /// let res = c.transient(&opts).unwrap();
    /// // Output still lands on the caller's uniform dt grid.
    /// assert_eq!(*res.times().last().unwrap(), 8e-9);
    /// assert!((res.voltage(out).last_value() - 1.0).abs() < 0.01);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `reltol > 0` and `0 < h_min <= h_max`.
    #[must_use]
    pub fn adaptive(mut self, reltol: f64, h_min: f64, h_max: f64) -> Self {
        assert!(reltol > 0.0, "need reltol > 0");
        assert!(
            h_min > 0.0 && h_min <= h_max,
            "need 0 < h_min <= h_max for adaptive stepping"
        );
        self.lte = Some(AdaptiveOptions {
            reltol,
            abstol: 1e-6,
            h_min,
            h_max,
            align_to_grid: false,
        });
        self
    }

    /// Enable grid-aligned adaptive stepping: like
    /// [`TranOptions::adaptive`] but every internal step is a
    /// whole number of `dt` grid cells, so wherever the LTE controller
    /// drops back to single-cell steps the solution is exactly the
    /// fixed-step reference. Use this when results are pinned against a
    /// fixed-step golden trace; use the free mode when sub-`dt` edge
    /// resolution matters.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::{Circuit, SourceWave, TranOptions};
    ///
    /// let mut c = Circuit::new();
    /// let vin = c.node("in");
    /// let out = c.node("out");
    /// c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
    /// c.resistor("R", vin, out, 1.0e3);
    /// c.capacitor("C", out, Circuit::GND, 1.0e-12);
    ///
    /// let base = TranOptions::new(8e-9, 5e-12);
    /// // With h_max == dt every step is a single grid cell, so the
    /// // aligned march reproduces the fixed-step reference bitwise.
    /// let aligned = c
    ///     .transient(&base.adaptive_grid_aligned(1e-6, 5e-12))
    ///     .unwrap();
    /// let fixed = c.transient(&base).unwrap();
    /// assert_eq!(fixed.times(), aligned.times());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless `reltol > 0` and `h_max >= dt`.
    #[must_use]
    pub fn adaptive_grid_aligned(mut self, reltol: f64, h_max: f64) -> Self {
        assert!(reltol > 0.0, "need reltol > 0");
        assert!(
            h_max >= self.dt,
            "need h_max >= dt for grid-aligned adaptive stepping"
        );
        self.lte = Some(AdaptiveOptions {
            reltol,
            abstol: 1e-6,
            h_min: self.dt,
            h_max,
            align_to_grid: true,
        });
        self
    }

    /// Builder-style quiescent-MOS bypass tolerance (V); `0.0` disables.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::TranOptions;
    ///
    /// // Reuse cached MOS linearizations while every terminal stays
    /// // within 10 µV of its last evaluated point. The waveform
    /// // perturbation is second order in the tolerance.
    /// let opts = TranOptions::new(3.6e-9, 10e-12).with_bypass(10e-6);
    /// assert_eq!(opts.bypass_vtol, 10e-6);
    /// // `MCML_SPICE_BYPASS=off` in the environment is a hard override
    /// // that disables the bypass regardless of this setting.
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `tol` is negative or not finite.
    #[must_use]
    pub fn with_bypass(mut self, tol: f64) -> Self {
        assert!(
            tol.is_finite() && tol >= 0.0,
            "need a finite bypass tolerance >= 0"
        );
        self.bypass_vtol = tol;
        self
    }

    /// Builder-style ensemble lane-block width for batched trace
    /// acquisition. [`crate::ensemble_transient`] itself infers the lane
    /// count from the circuits it is handed; this hint tells upstream
    /// acquisition schedulers how many input vectors to pack per
    /// ensemble block. `1` keeps scalar trace-per-task acquisition.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::{ensemble_transient, Circuit, SourceWave, TranOptions};
    ///
    /// let lane = |level: f64| {
    ///     let mut c = Circuit::new();
    ///     let vin = c.node("in");
    ///     let out = c.node("out");
    ///     c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, level, 1e-9));
    ///     c.resistor("R", vin, out, 1.0e3);
    ///     c.capacitor("C", out, Circuit::GND, 1.0e-12);
    ///     (c, out)
    /// };
    /// // Four lanes: identical topology, different source amplitudes.
    /// let lanes: Vec<_> = (1..=4).map(|k| lane(f64::from(k))).collect();
    /// let ckts: Vec<Circuit> = lanes.iter().map(|(c, _)| c.clone()).collect();
    ///
    /// let opts = TranOptions::new(8e-9, 10e-12).ensemble(4);
    /// assert_eq!(opts.ensemble_lanes, 4);
    /// let results = ensemble_transient(&ckts, &opts).unwrap();
    /// for (k, ((_, out), res)) in lanes.iter().zip(&results).enumerate() {
    ///     let v = res.voltage(*out).last_value();
    ///     assert!((v - (k + 1) as f64).abs() < 0.05, "lane {k}: {v}");
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero.
    #[must_use]
    pub fn ensemble(mut self, lanes: usize) -> Self {
        assert!(lanes >= 1, "need at least one ensemble lane");
        self.ensemble_lanes = lanes;
        self
    }

    /// Builder-style demand-driven refactorisation (modified Newton):
    /// Newton updates keep using the last numeric LU factors — across
    /// iterations and across time steps, surviving adaptive step-size
    /// changes — and a refactorisation happens only when the
    /// iteration's contraction monitor demands one (the largest update
    /// stops halving, or damping engages). Converged solutions satisfy the
    /// same `vtol`/`itol` tolerances as full Newton; the Newton *path*
    /// to them differs, so results agree to solver tolerance rather
    /// than bitwise. This is the refactor policy the batched ensemble
    /// acquisition runs with — on the quiescent-heavy fig. 6 workload
    /// it eliminates the large majority of numeric refactorisations.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::{Circuit, SourceWave, TranOptions};
    ///
    /// let mut c = Circuit::new();
    /// let vin = c.node("in");
    /// let out = c.node("out");
    /// c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
    /// c.resistor("R", vin, out, 1.0e3);
    /// c.capacitor("C", out, Circuit::GND, 1.0e-12);
    ///
    /// let base = TranOptions::new(8e-9, 5e-12);
    /// let full = c.transient(&base).unwrap();
    /// let chord = c.transient(&base.with_jacobian_reuse()).unwrap();
    /// // Same grid, same physics to solver tolerance.
    /// assert_eq!(full.times(), chord.times());
    /// let (f, l) = (
    ///     full.voltage(out).last_value(),
    ///     chord.voltage(out).last_value(),
    /// );
    /// assert!((f - l).abs() < 1e-6);
    /// ```
    #[must_use]
    pub fn with_jacobian_reuse(mut self) -> Self {
        self.jacobian_reuse = true;
        self
    }

    /// Enable connected-component / block-triangular partitioning of the
    /// MNA solve: the node graph is split at the voltage-source rails,
    /// each connected component becomes an independently factored solve
    /// block, blocks are ordered along the gate-coupling DAG (upstream
    /// outputs feed downstream gates), and per time step a settled block
    /// whose boundary inputs have not moved beyond the bypass tolerance
    /// replays its cached solution instead of re-solving.
    ///
    /// Partitioning applies to fixed-grid transients of circuits that
    /// actually split into two or more blocks; everything else (LTE
    /// adaptive runs, single-component circuits, voltage-source loops)
    /// silently takes the monolithic reference path, bit for bit.
    /// `MCML_SPICE_PARTITION=off` in the environment is a hard-off
    /// escape hatch that wins over this setting.
    ///
    /// # Examples
    ///
    /// ```
    /// use mcml_spice::{Circuit, SourceWave, TranOptions};
    ///
    /// // Two independent RC islands off the same supply rail.
    /// let mut c = Circuit::new();
    /// let vdd = c.node("vdd");
    /// let (a, b) = (c.node("a"), c.node("b"));
    /// c.vsource("VDD", vdd, Circuit::GND, SourceWave::step(0.0, 1.2, 1e-9));
    /// c.resistor("Ra", vdd, a, 1.0e3);
    /// c.capacitor("Ca", a, Circuit::GND, 1.0e-12);
    /// c.resistor("Rb", vdd, b, 2.0e3);
    /// c.capacitor("Cb", b, Circuit::GND, 1.0e-12);
    ///
    /// let base = TranOptions::new(8e-9, 5e-12);
    /// let mono = c.transient(&base).unwrap();
    /// let part = c.transient(&base.with_partitioning()).unwrap();
    /// // Same grid, same physics to solver tolerance.
    /// assert_eq!(mono.times(), part.times());
    /// let (m, p) = (
    ///     mono.voltage(a).last_value(),
    ///     part.voltage(a).last_value(),
    /// );
    /// assert!((m - p).abs() < 1e-6);
    /// ```
    #[must_use]
    pub fn with_partitioning(mut self) -> Self {
        self.partition = true;
        self
    }

    pub(crate) fn nr(&self) -> NrOptions {
        NrOptions {
            max_iter: self.max_iter,
            vtol: self.vtol,
            itol: self.itol,
            vstep_limit: self.vstep_limit,
            solver: self.solver,
            bypass_tol: if bypass_allowed() {
                self.bypass_vtol
            } else {
                0.0
            },
            reuse_jacobian: self.jacobian_reuse,
        }
    }
}

/// Hard-off escape hatch for the quiescent-MOS bypass: setting
/// `MCML_SPICE_BYPASS=off` (or `0`, or `none`, in any case) in the
/// environment forces every transient back to unconditional device
/// evaluation, regardless of what the analysis options request. Read
/// once per process; unrecognised values warn once and leave the bypass
/// enabled.
fn bypass_allowed() -> bool {
    static ALLOWED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ALLOWED.get_or_init(|| !super::envknob::hard_off("MCML_SPICE_BYPASS"))
}

/// Recorded transient simulation results.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    n_node_unk: usize,
    branch_of_elem: Vec<Option<usize>>,
    op0: OpPoint,
    t_end: f64,
    steps_taken: usize,
}

impl TranResult {
    /// Assemble a result from the marching loop's pieces — shared by the
    /// scalar [`transient`] and the ensemble engine.
    pub(crate) fn from_parts(
        times: Vec<f64>,
        states: Vec<Vec<f64>>,
        n_node_unk: usize,
        branch_of_elem: Vec<Option<usize>>,
        op0: OpPoint,
        t_end: f64,
        steps_taken: usize,
    ) -> Self {
        Self {
            times,
            states,
            n_node_unk,
            branch_of_elem,
            op0,
            t_end,
            steps_taken,
        }
    }

    /// Recorded time points (s).
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Raw recorded unknown vectors, one per time point — node voltages
    /// first, then branch currents. The ensemble regression tests use
    /// this to assert bit-identity against the scalar path.
    #[cfg(test)]
    pub(crate) fn states_raw(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// Number of recorded points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Initial operating point (t = 0).
    #[must_use]
    pub fn initial_op(&self) -> &OpPoint {
        &self.op0
    }

    /// The integrator's internal time when the march finished. Exactly
    /// equal (bitwise) to the last recorded time: the stepper snaps to
    /// each grid target instead of accumulating `t += h` rounding.
    #[must_use]
    pub fn end_time(&self) -> f64 {
        self.t_end
    }

    /// Accepted internal solver steps the march took (excluding rejected
    /// LTE trials and Newton-failure retries). On the fixed path this is
    /// at least the grid step count; with adaptive stepping it is the
    /// variable-grid size — the quantity the LTE controller shrinks on
    /// quiet traces.
    #[must_use]
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Node-voltage waveform.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Waveform {
        if node.is_ground() {
            return self.times.iter().map(|&t| (t, 0.0)).collect();
        }
        let idx = node.index() - 1;
        self.times
            .iter()
            .zip(self.states.iter())
            .map(|(&t, s)| (t, s[idx]))
            .collect()
    }

    /// Branch-current waveform of a voltage source (A, from the positive
    /// terminal through the source); `None` for other elements.
    #[must_use]
    pub fn branch_current(&self, elem: ElementId) -> Option<Waveform> {
        let b = self.branch_of_elem.get(elem.index()).copied().flatten()?;
        let idx = self.n_node_unk + b;
        Some(
            self.times
                .iter()
                .zip(self.states.iter())
                .map(|(&t, s)| (t, s[idx]))
                .collect(),
        )
    }

    /// Current delivered into the circuit by a voltage source (A): the
    /// negated branch current. For the Vdd rail this is the supply-current
    /// waveform of the paper's Fig. 5.
    #[must_use]
    pub fn supply_current(&self, elem: ElementId) -> Option<Waveform> {
        self.branch_current(elem).map(|w| w.scaled(-1.0))
    }
}

/// Relative snap window for landing on breakpoints and `t_stop`.
pub(crate) const T_SNAP: f64 = 1e-12;

/// Run a transient analysis.
///
/// The initial condition is the DC operating point with sources evaluated
/// at `t = 0`. When a time step fails to converge it is halved, up to
/// `max_subdiv` times.
///
/// With [`TranOptions::adaptive`] set, the march runs on an internal
/// variable grid instead: after each converged step the per-capacitor
/// LTE is estimated from divided differences of the companion history —
/// `h²·|f[t_{n-1},t_n,t_{n+1}]|` for backward Euler (order 1),
/// `h³/2·|f[t_{n-2},…,t_{n+1}]|` for trapezoidal (order 2) — and the
/// step is rejected when the worst ratio against
/// `reltol·|v| + abstol` exceeds 1 (unless already at `h_min`). The
/// next step grows or shrinks by the standard `0.9·r^{-1/(p+1)}`
/// controller, clamped to `[h_min, h_max]` and at most doubling.
/// Steps land exactly on every source breakpoint (pulse corners, PWL
/// knots, sine onsets), where the divided-difference history is reset.
/// Recorded output is the same uniform `dt` grid as the fixed path,
/// filled by linear dense output between internal points.
///
/// # Errors
///
/// Returns [`SpiceError::NoConvergence`] when a step fails at the smallest
/// subdivision, or the DC errors for the initial point.
pub fn transient(ckt: &Circuit, opts: &TranOptions) -> Result<TranResult> {
    let _span = mcml_obs::span(mcml_obs::Stage::Transient);
    mcml_obs::incr(mcml_obs::Counter::Transients);
    let dc_opts = DcOptions {
        solver: opts.solver,
        ..DcOptions::default()
    };
    let op0 = ckt.dc_op_with(&dc_opts)?;
    // Partitioned path: opt-in, fixed-grid only, and only when the
    // circuit actually splits — everything else falls through to the
    // monolithic reference march below, bit for bit.
    if opts.partition && opts.lte.is_none() && crate::analysis::partition::partition_allowed() {
        if let Some(structure) = crate::analysis::partition::PartitionStructure::build(ckt, true) {
            return crate::analysis::partition::march_partitioned(ckt, opts, &structure, op0);
        }
    }
    let mut engine = Engine::new(ckt);
    let nr = opts.nr();
    let trapezoidal = opts.integrator == Integrator::Trapezoidal;

    let mut x = op0.state().to_vec();
    let mut caps = init_cap_states(ckt, &x);
    let stride = opts.record_stride.max(1);

    // Step count covering [0, t_stop] exactly: when t_stop is not an
    // integer multiple of dt, a naive `round` either drops the tail of
    // the window or overshoots past t_stop; instead take `ceil` and clamp
    // the final grid point to t_stop (the last step is simply shorter).
    let ratio = opts.t_stop / opts.dt;
    let n_steps = if (ratio - ratio.round()).abs() < 1e-6 * ratio.max(1.0) {
        (ratio.round() as usize).max(1)
    } else {
        ratio.ceil() as usize
    };
    let mut times = Vec::with_capacity(n_steps / stride + 2);
    let mut states = Vec::with_capacity(n_steps / stride + 2);
    times.push(0.0);
    states.push(x.clone());

    let mut x_try = vec![0.0; x.len()];
    let t_end;
    let steps_taken;

    if let Some(lte) = opts.lte {
        let (int_times, int_states) = if lte.align_to_grid {
            march_aligned(
                ckt,
                opts,
                lte,
                &mut engine,
                &nr,
                trapezoidal,
                &mut x,
                &mut x_try,
                &mut caps,
                n_steps,
            )?
        } else {
            march_adaptive(
                ckt,
                opts,
                lte,
                &mut engine,
                &nr,
                trapezoidal,
                &mut x,
                &mut x_try,
                &mut caps,
            )?
        };
        t_end = *int_times.last().expect("adaptive march records t_stop");
        steps_taken = int_times.len() - 1;
        dense_output(
            opts,
            n_steps,
            stride,
            &int_times,
            &int_states,
            &mut times,
            &mut states,
        );
    } else {
        let mut t = 0.0;
        let mut accepted = 0usize;
        for step in 1..=n_steps {
            let t_target = if step == n_steps {
                opts.t_stop
            } else {
                opts.dt * step as f64
            };
            accepted += step_cell(
                ckt,
                opts,
                &mut engine,
                &nr,
                trapezoidal,
                &mut x,
                &mut x_try,
                &mut caps,
                &mut t,
                t_target,
            )?;
            if step % stride == 0 || step == n_steps {
                times.push(t_target);
                states.push(x.clone());
            }
        }
        t_end = t;
        steps_taken = accepted;
    }

    Ok(TranResult {
        times,
        states,
        n_node_unk: engine.n_node_unk,
        branch_of_elem: branch_map(ckt),
        op0,
        t_end,
        steps_taken,
    })
}

/// March from `*t` to `t_target`, subdividing on Newton failure — the
/// fixed path's reference cell step, also used by the grid-aligned
/// adaptive mode whenever its controller is down to single-cell steps
/// (which keeps the two trajectories identical there). Snaps `*t` to
/// the exact target on exit and returns the number of accepted
/// sub-steps.
#[allow(clippy::too_many_arguments)] // private worker sharing transient()'s locals
pub(crate) fn step_cell(
    ckt: &Circuit,
    opts: &TranOptions,
    engine: &mut Engine<impl std::borrow::Borrow<Circuit>>,
    nr: &NrOptions,
    trapezoidal: bool,
    x: &mut Vec<f64>,
    x_try: &mut Vec<f64>,
    caps: &mut [Option<crate::analysis::engine::CapState>],
    t: &mut f64,
    t_target: f64,
) -> Result<usize> {
    let mut accepted = 0usize;
    while *t < t_target - opts.dt * 1e-9 {
        let mut h = t_target - *t;
        let mut level = 0u32;
        loop {
            let ctx = CompanionCtx {
                h,
                trapezoidal,
                caps,
            };
            x_try.clone_from(x);
            match engine.solve_nr(x_try, *t + h, Some(&ctx), ckt.gmin, 1.0, nr, "tran") {
                Ok(()) => {
                    // Accept: update companion states.
                    mcml_obs::incr(mcml_obs::Counter::TranSteps);
                    update_caps(ckt, caps, x_try, h, trapezoidal);
                    std::mem::swap(x, x_try);
                    *t += h;
                    accepted += 1;
                    break;
                }
                Err(e) => {
                    mcml_obs::incr(mcml_obs::Counter::TranRetries);
                    level += 1;
                    if level > opts.max_subdiv {
                        return Err(retag_tran(e, *t + h));
                    }
                    h /= 2.0;
                }
            }
        }
    }
    // Snap to the exact grid time: repeated `t += h` rounding (and the
    // subdivision loop's exit threshold) would otherwise leave the
    // internal clock drifting below the recorded time.
    *t = t_target;
    Ok(accepted)
}

/// Re-tag a Newton failure with the transient analysis name and time.
pub(crate) fn retag_tran(e: SpiceError, time: f64) -> SpiceError {
    match e {
        SpiceError::NoConvergence { iterations, .. } => SpiceError::NoConvergence {
            analysis: "tran",
            time,
            iterations,
        },
        other => other,
    }
}

/// Up to three past `(t, capacitor voltages)` samples for the LTE
/// divided differences; the newest entry is at index `len - 1`.
pub(crate) struct CapHistory {
    t: [f64; 3],
    v: [Vec<f64>; 3],
    len: usize,
}

impl CapHistory {
    pub(crate) fn new(n_caps: usize) -> Self {
        Self {
            t: [0.0; 3],
            v: [vec![0.0; n_caps], vec![0.0; n_caps], vec![0.0; n_caps]],
            len: 0,
        }
    }

    /// Drop all history (called after crossing a source breakpoint,
    /// where the waveform slope is discontinuous and divided differences
    /// across the corner would be meaningless).
    pub(crate) fn clear(&mut self) {
        self.len = 0;
    }

    pub(crate) fn push(&mut self, t: f64, pairs: &[(NodeId, NodeId)], x: &[f64]) {
        if self.len == 3 {
            self.t.rotate_left(1);
            self.v.rotate_left(1);
            self.len = 2;
        }
        self.t[self.len] = t;
        let slot = &mut self.v[self.len];
        for (k, &(a, b)) in pairs.iter().enumerate() {
            slot[k] = v_node(x, a) - v_node(x, b);
        }
        self.len += 1;
    }
}

/// Worst per-capacitor `LTE / (reltol·|v| + abstol)` ratio for a
/// candidate step to `(t_new, x_new)`, or `None` when the history is
/// still too short to form the divided difference (such steps are
/// accepted without growing `h`).
pub(crate) fn lte_ratio(
    hist: &CapHistory,
    pairs: &[(NodeId, NodeId)],
    x_new: &[f64],
    t_new: f64,
    h: f64,
    trapezoidal: bool,
    lte: AdaptiveOptions,
) -> Option<f64> {
    if pairs.is_empty() {
        // No dynamic state: the solution is quasi-static between source
        // breakpoints, so any step size is exact.
        return Some(0.0);
    }
    let need = if trapezoidal { 3 } else { 2 };
    if hist.len < need {
        return None;
    }
    let n = hist.len;
    let (t1, t2) = (hist.t[n - 2], hist.t[n - 1]);
    let mut r_max = 0.0f64;
    for (k, &(a, b)) in pairs.iter().enumerate() {
        let v_new = v_node(x_new, a) - v_node(x_new, b);
        let (v1, v2) = (hist.v[n - 2][k], hist.v[n - 1][k]);
        let dd1a = (v2 - v1) / (t2 - t1);
        let dd1b = (v_new - v2) / (t_new - t2);
        let dd2 = (dd1b - dd1a) / (t_new - t1);
        let err = if trapezoidal {
            // Order 2: LTE ≈ h³/12·|v‴|, with v‴ ≈ 6·f[t_{n-2},…,t_{n+1}].
            let (t0, v0) = (hist.t[n - 3], hist.v[n - 3][k]);
            let dd1z = (v1 - v0) / (t1 - t0);
            let dd2a = (dd1a - dd1z) / (t2 - t0);
            let dd3 = (dd2 - dd2a) / (t_new - t0);
            0.5 * h * h * h * dd3.abs()
        } else {
            // Order 1: LTE ≈ h²/2·|v″|, with v″ ≈ 2·f[t_{n-1},t_n,t_{n+1}].
            h * h * dd2.abs()
        };
        let tol = lte.reltol * v_new.abs().max(v2.abs()) + lte.abstol;
        r_max = r_max.max(err / tol);
    }
    Some(r_max)
}

/// March the LTE-controlled variable grid from 0 to `t_stop`, returning
/// the internal `(times, states)` including both endpoints.
#[allow(clippy::too_many_arguments)] // private worker sharing transient()'s locals
fn march_adaptive(
    ckt: &Circuit,
    opts: &TranOptions,
    lte: AdaptiveOptions,
    engine: &mut Engine<impl std::borrow::Borrow<Circuit>>,
    nr: &NrOptions,
    trapezoidal: bool,
    x: &mut Vec<f64>,
    x_try: &mut Vec<f64>,
    caps: &mut [Option<crate::analysis::engine::CapState>],
) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    // Merged source breakpoints and the curvature step ceiling.
    let mut bps: Vec<f64> = Vec::new();
    let mut hint = f64::INFINITY;
    for (_, _, e) in ckt.elements() {
        let (Element::Vsource { wave, .. } | Element::Isource { wave, .. }) = e else {
            continue;
        };
        wave.breakpoints(opts.t_stop, &mut bps);
        if let Some(h) = wave.max_step_hint() {
            hint = hint.min(h);
        }
    }
    bps.sort_by(f64::total_cmp);
    bps.dedup_by(|a, b| (*a - *b).abs() <= T_SNAP * b.abs());

    let pairs: Vec<(NodeId, NodeId)> = ckt
        .elements()
        .filter_map(|(_, _, e)| match e {
            Element::Capacitor { a, b, .. } => Some((*a, *b)),
            _ => None,
        })
        .collect();
    let mut hist = CapHistory::new(pairs.len());
    hist.push(0.0, &pairs, x);

    // Restart step at t=0 and after each breakpoint. While the divided-
    // difference history is too short the LTE cannot be evaluated and
    // steps are accepted blindly, so restarts begin well below the
    // caller's dt; the controller doubles back up within a few accepted
    // steps once the history refills.
    let h_base = opts.dt.clamp(lte.h_min, lte.h_max);
    let h_restart = (h_base / 64.0).max(lte.h_min);
    let p_ord = if trapezoidal { 3.0 } else { 2.0 }; // p + 1
    let mut h_next = h_restart;
    let mut bp_idx = 0usize;
    let eps_t = opts.t_stop * T_SNAP;

    let mut int_times = vec![0.0];
    let mut int_states = vec![x.clone()];
    let mut t = 0.0;
    while opts.t_stop - t > eps_t {
        while bp_idx < bps.len() && bps[bp_idx] <= t + eps_t {
            bp_idx += 1;
        }
        let next_bp = bps.get(bp_idx).copied();
        let h_hi = (opts.t_stop - t).min(lte.h_max).min(hint);
        if h_hi <= 0.0 {
            break;
        }
        let mut h_try = h_next.min(h_hi).max(lte.h_min.min(h_hi));
        let mut lands_bp = false;
        if let Some(bp) = next_bp {
            if bp - t <= h_try + eps_t {
                h_try = bp - t;
                lands_bp = true;
            }
        }
        let mut level = 0u32;
        loop {
            let ctx = CompanionCtx {
                h: h_try,
                trapezoidal,
                caps,
            };
            x_try.clone_from(x);
            match engine.solve_nr(x_try, t + h_try, Some(&ctx), ckt.gmin, 1.0, nr, "tran") {
                Ok(()) => {
                    let r = lte_ratio(&hist, &pairs, x_try, t + h_try, h_try, trapezoidal, lte);
                    if let Some(r) = r {
                        if r > 1.0 && h_try > lte.h_min * (1.0 + 1e-9) {
                            mcml_obs::incr(mcml_obs::Counter::LteRejects);
                            let f = (0.9 * r.powf(-1.0 / p_ord)).clamp(0.1, 0.5);
                            h_try = (h_try * f).max(lte.h_min);
                            lands_bp = false;
                            continue;
                        }
                    }
                    mcml_obs::incr(mcml_obs::Counter::TranSteps);
                    mcml_obs::incr(mcml_obs::Counter::AdaptiveSteps);
                    update_caps(ckt, caps, x_try, h_try, trapezoidal);
                    std::mem::swap(x, x_try);
                    t += h_try;
                    if lands_bp {
                        // Land bitwise-exactly on the corner.
                        t = next_bp.expect("lands_bp implies a breakpoint");
                    }
                    if opts.t_stop - t <= eps_t {
                        t = opts.t_stop;
                    }
                    // Step-size controller for the next step.
                    let f = match r {
                        Some(r) if r > 0.0 => (0.9 * r.powf(-1.0 / p_ord)).min(2.0),
                        Some(_) => 2.0,
                        None => 1.0,
                    };
                    let h_new = (h_try * f).clamp(lte.h_min, lte.h_max);
                    if h_new > h_try {
                        mcml_obs::incr(mcml_obs::Counter::HGrowths);
                    }
                    h_next = h_new;
                    if lands_bp {
                        hist.clear();
                        h_next = h_restart;
                    }
                    hist.push(t, &pairs, x);
                    int_times.push(t);
                    int_states.push(x.clone());
                    break;
                }
                Err(e) => {
                    mcml_obs::incr(mcml_obs::Counter::TranRetries);
                    level += 1;
                    if level > opts.max_subdiv {
                        return Err(retag_tran(e, t + h_try));
                    }
                    h_try /= 2.0;
                    lands_bp = false;
                }
            }
        }
    }
    Ok((int_times, int_states))
}

/// March the grid-aligned LTE-controlled variant: every internal step
/// covers a whole number `k` of `dt` grid cells, so a `k = 1` step is
/// *exactly* the fixed path's reference step (same target time, same
/// Newton-failure subdivision). The controller leaps `k ≤ h_max/dt`
/// cells through quiet regions and collapses to `k = 1` at edges,
/// which bounds the drift against a fixed-step golden trace by the LTE
/// tolerance in the quiet regions and by zero elsewhere. A macro step
/// never jumps past the first grid point at-or-after a source
/// breakpoint, so a discontinuity can't fall unseen inside a leap.
#[allow(clippy::too_many_arguments)] // private worker sharing transient()'s locals
fn march_aligned(
    ckt: &Circuit,
    opts: &TranOptions,
    lte: AdaptiveOptions,
    engine: &mut Engine<impl std::borrow::Borrow<Circuit>>,
    nr: &NrOptions,
    trapezoidal: bool,
    x: &mut Vec<f64>,
    x_try: &mut Vec<f64>,
    caps: &mut [Option<crate::analysis::engine::CapState>],
    n_steps: usize,
) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    // Merged source breakpoints and the curvature step ceiling.
    let mut bps: Vec<f64> = Vec::new();
    let mut hint = f64::INFINITY;
    for (_, _, e) in ckt.elements() {
        let (Element::Vsource { wave, .. } | Element::Isource { wave, .. }) = e else {
            continue;
        };
        wave.breakpoints(opts.t_stop, &mut bps);
        if let Some(h) = wave.max_step_hint() {
            hint = hint.min(h);
        }
    }
    bps.sort_by(f64::total_cmp);
    // Barrier = first grid index at-or-after each breakpoint. The ceil is
    // rounding-tolerant so a breakpoint sitting exactly on the grid does
    // not spill into the next cell through FP noise.
    let mut barriers: Vec<usize> = bps
        .iter()
        .map(|&bp| {
            let q = bp / opts.dt;
            let idx = if (q - q.round()).abs() < 1e-9 * q.max(1.0) {
                q.round()
            } else {
                q.ceil()
            };
            (idx as usize).clamp(1, n_steps)
        })
        .collect();
    barriers.dedup();

    let pairs: Vec<(NodeId, NodeId)> = ckt
        .elements()
        .filter_map(|(_, _, e)| match e {
            Element::Capacitor { a, b, .. } => Some((*a, *b)),
            _ => None,
        })
        .collect();
    let mut hist = CapHistory::new(pairs.len());
    hist.push(0.0, &pairs, x);

    let k_hint = if hint.is_finite() {
        ((hint / opts.dt).floor() as usize).max(1)
    } else {
        usize::MAX
    };
    let k_max = ((lte.h_max / opts.dt).floor() as usize).max(1).min(k_hint);
    let p_ord = if trapezoidal { 3.0 } else { 2.0 }; // p + 1
    let grid_t = |i: usize| {
        if i == n_steps {
            opts.t_stop
        } else {
            opts.dt * i as f64
        }
    };

    let mut int_times = vec![0.0];
    let mut int_states = vec![x.clone()];
    let mut t = 0.0;
    let mut pos = 0usize;
    let mut k_next = 1usize;
    let mut bar_idx = 0usize;
    while pos < n_steps {
        while bar_idx < barriers.len() && barriers[bar_idx] <= pos {
            bar_idx += 1;
        }
        let mut k = k_next.min(k_max).min(n_steps - pos).max(1);
        if let Some(&bar) = barriers.get(bar_idx) {
            k = k.min(bar - pos);
        }
        let r_used: Option<f64>;
        loop {
            let t_target = grid_t(pos + k);
            if k == 1 {
                // The fixed path's reference step, bitwise.
                step_cell(
                    ckt,
                    opts,
                    engine,
                    nr,
                    trapezoidal,
                    x,
                    x_try,
                    caps,
                    &mut t,
                    t_target,
                )?;
                r_used = lte_ratio(&hist, &pairs, x, t, opts.dt, trapezoidal, lte);
                break;
            }
            let h = t_target - t;
            let ctx = CompanionCtx {
                h,
                trapezoidal,
                caps,
            };
            x_try.clone_from(x);
            match engine.solve_nr(x_try, t_target, Some(&ctx), ckt.gmin, 1.0, nr, "tran") {
                Ok(()) => {
                    let r = lte_ratio(&hist, &pairs, x_try, t_target, h, trapezoidal, lte);
                    if let Some(rv) = r {
                        if rv > 1.0 {
                            mcml_obs::incr(mcml_obs::Counter::LteRejects);
                            k /= 2;
                            continue;
                        }
                    }
                    mcml_obs::incr(mcml_obs::Counter::TranSteps);
                    update_caps(ckt, caps, x_try, h, trapezoidal);
                    std::mem::swap(x, x_try);
                    t = t_target;
                    r_used = r;
                    break;
                }
                Err(_) => {
                    // Shrink to a finer grid target; once k hits 1 the
                    // cell march owns any further subdivision (and the
                    // terminal error).
                    mcml_obs::incr(mcml_obs::Counter::TranRetries);
                    k /= 2;
                }
            }
        }
        mcml_obs::incr(mcml_obs::Counter::AdaptiveSteps);
        let landed_barrier = barriers.get(bar_idx) == Some(&(pos + k));
        pos += k;
        if landed_barrier {
            // Slope discontinuity behind us: divided differences across
            // the corner are meaningless, so restart the controller.
            hist.clear();
            k_next = 1;
        } else {
            let grown = match r_used {
                Some(r) => {
                    let f = if r > 0.0 {
                        0.9 * r.powf(-1.0 / p_ord)
                    } else {
                        f64::INFINITY
                    };
                    if f >= 2.0 {
                        (k * 2).min(k_max)
                    } else if r > 1.0 {
                        1
                    } else {
                        k
                    }
                }
                None => k,
            };
            if grown > k {
                mcml_obs::incr(mcml_obs::Counter::HGrowths);
            }
            k_next = grown;
        }
        hist.push(t, &pairs, x);
        int_times.push(t);
        int_states.push(x.clone());
    }
    Ok((int_times, int_states))
}

/// Interpolate the internal variable grid onto the caller's uniform
/// recording grid (same linear rule as [`Waveform::sample`]), appending
/// to `times`/`states` which already hold the t = 0 point.
pub(crate) fn dense_output(
    opts: &TranOptions,
    n_steps: usize,
    stride: usize,
    int_times: &[f64],
    int_states: &[Vec<f64>],
    times: &mut Vec<f64>,
    states: &mut Vec<Vec<f64>>,
) {
    let mut cursor = 0usize;
    for step in 1..=n_steps {
        if step % stride != 0 && step != n_steps {
            continue;
        }
        let t_g = if step == n_steps {
            opts.t_stop
        } else {
            opts.dt * step as f64
        };
        while cursor + 1 < int_times.len() - 1 && int_times[cursor + 1] < t_g {
            cursor += 1;
        }
        let (ta, tb) = (int_times[cursor], int_times[cursor + 1]);
        let u = if tb > ta {
            ((t_g - ta) / (tb - ta)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let (sa, sb) = (&int_states[cursor], &int_states[cursor + 1]);
        let interp: Vec<f64> = sa.iter().zip(sb).map(|(a, b)| a + (b - a) * u).collect();
        times.push(t_g);
        states.push(interp);
    }
}

pub(crate) fn update_caps(
    ckt: &Circuit,
    caps: &mut [Option<crate::analysis::engine::CapState>],
    x: &[f64],
    h: f64,
    trapezoidal: bool,
) {
    for (idx, (_, e)) in ckt.elements().map(|(id, n, e)| (id.index(), (n, e))) {
        if let (Element::Capacitor { a, b, .. }, Some(state)) = (e, caps[idx].as_mut()) {
            let v_new = v_node(x, *a) - v_node(x, *b);
            let (geq, hist) = companion_terms(state, h, trapezoidal);
            let i_new = geq * v_new + hist;
            state.prev_v = v_new;
            state.prev_i = i_new;
        }
    }
}

impl Circuit {
    /// Run a transient analysis (see [`transient`]).
    ///
    /// # Errors
    ///
    /// See [`transient`].
    pub fn transient(&self, opts: &TranOptions) -> Result<TranResult> {
        transient(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;

    fn rc_circuit() -> (Circuit, NodeId, ElementId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let v = c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
        c.resistor("R", vin, out, 1.0e3);
        c.capacitor("C", out, Circuit::GND, 1.0e-12);
        (c, out, v)
    }

    #[test]
    fn rc_step_time_constant() {
        let (c, out, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(8e-9, 5e-12)).unwrap();
        let w = res.voltage(out);
        // tau = 1 ns; at t = 1 ns after the step, v = 1 - 1/e ≈ 0.632.
        let v_tau = w.sample(2e-9);
        assert!((v_tau - 0.632).abs() < 0.02, "v(tau) = {v_tau}");
        assert!((w.last_value() - 1.0).abs() < 0.01);
    }

    #[test]
    fn trapezoidal_matches_analytic_better() {
        // Sine-driven RC low-pass: smooth waveform where the second-order
        // trapezoidal rule should clearly beat backward Euler at a coarse
        // step. (On discontinuous steps trapezoidal rings — that is
        // expected and why BE is the default.)
        let build = || {
            let mut c = Circuit::new();
            let vin = c.node("in");
            let out = c.node("out");
            c.vsource(
                "V",
                vin,
                Circuit::GND,
                SourceWave::Sine {
                    offset: 0.0,
                    ampl: 1.0,
                    freq: 100e6,
                    delay: 0.0,
                },
            );
            c.resistor("R", vin, out, 1.0e3);
            c.capacitor("C", out, Circuit::GND, 1.0e-12);
            (c, out)
        };
        let (c, out) = build();
        let dt = 100e-12;
        let be = c
            .transient(&TranOptions::new(40e-9, dt))
            .unwrap()
            .voltage(out);
        let tr = c
            .transient(&TranOptions::new(40e-9, dt).with_integrator(Integrator::Trapezoidal))
            .unwrap()
            .voltage(out);
        // Analytic steady state of RC low-pass driven by sin(wt):
        // vout = A·sin(wt − φ), A = 1/√(1+(wRC)²), φ = atan(wRC).
        let w_ang = 2.0 * std::f64::consts::PI * 100e6;
        let wrc = w_ang * 1.0e3 * 1.0e-12;
        let amp = 1.0 / (1.0 + wrc * wrc).sqrt();
        let phi = wrc.atan();
        let analytic = |t: f64| amp * (w_ang * t - phi).sin();
        // Compare after the transient has died (t > 10 RC = 10 ns).
        let err = |w: &Waveform| {
            w.iter()
                .filter(|&(t, _)| t > 10e-9)
                .map(|(t, v)| (v - analytic(t)).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(
            err(&tr) < err(&be),
            "trap err {} vs BE err {}",
            err(&tr),
            err(&be)
        );
    }

    #[test]
    fn capacitor_blocks_dc_supply_current_decays() {
        let (c, _, v) = rc_circuit();
        let res = c.transient(&TranOptions::new(10e-9, 10e-12)).unwrap();
        let i = res.supply_current(v).unwrap();
        // After many time constants the capacitor is charged; current ~ 0.
        assert!(i.last_value().abs() < 1e-6);
        // Peak current just after the step ≈ V/R = 1 mA.
        assert!(i.max() > 0.8e-3, "peak {}", i.max());
    }

    #[test]
    fn sine_source_propagates() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        c.vsource(
            "V",
            vin,
            Circuit::GND,
            SourceWave::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e9,
                delay: 0.0,
            },
        );
        c.resistor("R", vin, Circuit::GND, 1e3);
        let res = c.transient(&TranOptions::new(2e-9, 10e-12)).unwrap();
        let w = res.voltage(vin);
        assert!((w.max() - 1.0).abs() < 0.01);
        assert!((w.min() + 1.0).abs() < 0.01);
    }

    #[test]
    fn record_stride_thins_output() {
        let (c, _, _) = rc_circuit();
        let opts = TranOptions::new(4e-9, 10e-12).with_record_stride(4);
        let res = c.transient(&opts).unwrap();
        let full = c.transient(&TranOptions::new(4e-9, 10e-12)).unwrap();
        assert!(res.len() < full.len());
        assert!(!res.is_empty());
    }

    #[test]
    fn record_stride_zero_records_everything() {
        // Regression: record_stride = 0 used to hit a divide-by-zero
        // panic at `step % record_stride`; it is now clamped to 1.
        let (c, _, _) = rc_circuit();
        let mut opts = TranOptions::new(2e-9, 10e-12);
        opts.record_stride = 0;
        let res = c.transient(&opts).unwrap();
        let full = c.transient(&TranOptions::new(2e-9, 10e-12)).unwrap();
        assert_eq!(res.len(), full.len(), "stride 0 behaves like stride 1");
        assert_eq!(
            TranOptions::new(1e-9, 1e-12)
                .with_record_stride(0)
                .record_stride,
            1
        );
    }

    #[test]
    fn internal_time_matches_recorded_grid_exactly() {
        // Regression: repeated `t += h` accumulated rounding against the
        // exact recorded `t_target`; the stepper now snaps to the grid.
        // dt = 0.1 ns / 3 is not exactly representable, so without the
        // snap the final internal time is a few ulps off t_stop.
        let (c, _, _) = rc_circuit();
        let dt = 1e-10 / 3.0;
        let opts = TranOptions::new(4e-9, dt);
        let res = c.transient(&opts).unwrap();
        let last = *res.times().last().unwrap();
        assert_eq!(last, 4e-9, "grid ends exactly at t_stop");
        assert_eq!(
            res.end_time().to_bits(),
            last.to_bits(),
            "internal clock and recorded time agree bitwise"
        );
    }

    #[test]
    fn adaptive_matches_fixed_on_rc_step() {
        let (c, out, v) = rc_circuit();
        let fixed = c.transient(&TranOptions::new(8e-9, 5e-12)).unwrap();
        let adap = c
            .transient(&TranOptions::new(8e-9, 5e-12).adaptive(1e-4, 1e-13, 500e-12))
            .unwrap();
        // Identical recorded grid.
        assert_eq!(fixed.times(), adap.times());
        let (wf, wa) = (fixed.voltage(out), adap.voltage(out));
        let worst = wf
            .iter()
            .zip(wa.iter())
            .map(|((_, a), (_, b))| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 2e-3, "worst voltage deviation {worst}");
        // Supply current stays interface-compatible too.
        let (ifx, iad) = (
            fixed.supply_current(v).unwrap(),
            adap.supply_current(v).unwrap(),
        );
        assert!((ifx.max() - iad.max()).abs() < 0.05 * ifx.max());
    }

    #[test]
    fn adaptive_takes_fewer_steps_on_quiet_trace() {
        // Step at 1 ns, then 49 ns of settled tail: the controller must
        // open the step up after the edge instead of marching dt.
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
        c.resistor("R", vin, out, 1.0e3);
        c.capacitor("C", out, Circuit::GND, 1.0e-12);
        let opts = TranOptions::new(50e-9, 10e-12);
        let fixed = c.transient(&opts).unwrap();
        let adap = c.transient(&opts.adaptive(1e-3, 1e-13, 2e-9)).unwrap();
        // Same recorded grid, far fewer NR-bearing internal steps.
        assert_eq!(adap.len(), fixed.len());
        assert_eq!(*adap.times().last().unwrap(), 50e-9);
        assert!(
            adap.steps_taken() * 5 < fixed.steps_taken(),
            "adaptive {} vs fixed {} internal steps",
            adap.steps_taken(),
            fixed.steps_taken()
        );
        // And the settled value still agrees.
        let (vf, va) = (
            fixed.voltage(out).last_value(),
            adap.voltage(out).last_value(),
        );
        assert!((vf - va).abs() < 1e-3, "settled {vf} vs {va}");
    }

    #[test]
    fn adaptive_lands_on_breakpoints_and_matches_tail() {
        let (c, out, _) = rc_circuit();
        let fixed = c.transient(&TranOptions::new(8e-9, 5e-12)).unwrap();
        let adap = c
            .transient(&TranOptions::new(8e-9, 5e-12).adaptive(1e-4, 1e-13, 1e-9))
            .unwrap();
        // Settled values agree within the accumulated LTE budget.
        let (vf, va) = (
            fixed.voltage(out).last_value(),
            adap.voltage(out).last_value(),
        );
        assert!((vf - va).abs() < 1e-3, "settled {vf} vs {va}");
    }

    #[test]
    fn adaptive_trapezoidal_is_supported() {
        let (c, out, _) = rc_circuit();
        let adap = c
            .transient(
                &TranOptions::new(8e-9, 5e-12)
                    .with_integrator(Integrator::Trapezoidal)
                    .adaptive(1e-4, 1e-13, 500e-12),
            )
            .unwrap();
        let w = adap.voltage(out);
        assert!((w.last_value() - 1.0).abs() < 0.01);
    }

    #[test]
    fn adaptive_resistive_only_circuit_is_exact() {
        // No capacitors: LTE is zero, h opens to h_max, yet PWL knots are
        // hit exactly so the divider output is exact at every grid point.
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        c.vsource(
            "V",
            vin,
            Circuit::GND,
            SourceWave::Pwl(vec![(0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)]),
        );
        c.resistor("R1", vin, mid, 1e3);
        c.resistor("R2", mid, Circuit::GND, 1e3);
        let res = c
            .transient(&TranOptions::new(3e-9, 50e-12).adaptive(1e-4, 1e-13, 1e-9))
            .unwrap();
        let w = res.voltage(mid);
        for (t, v) in w.iter() {
            let src = if t <= 1e-9 {
                t / 1e-9
            } else if t <= 2e-9 {
                1.0 - 0.5 * (t - 1e-9) / 1e-9
            } else {
                0.5
            };
            assert!((v - src / 2.0).abs() < 1e-9, "t={t} v={v}");
        }
    }

    #[test]
    #[should_panic(expected = "need 0 < h_min <= h_max")]
    fn adaptive_rejects_inverted_step_bounds() {
        let _ = TranOptions::new(1e-9, 1e-12).adaptive(1e-4, 1e-9, 1e-12);
    }

    #[test]
    fn aligned_with_unit_ceiling_is_bitwise_fixed() {
        // h_max = dt forces k = 1 everywhere: the aligned controller must
        // reproduce the fixed-step reference bitwise, not just closely.
        let (c, out, _) = rc_circuit();
        let base = TranOptions::new(8e-9, 5e-12);
        let fixed = c.transient(&base).unwrap();
        let aligned = c
            .transient(&base.adaptive_grid_aligned(1e-6, 5e-12))
            .unwrap();
        assert_eq!(fixed.times(), aligned.times());
        let (wf, wa) = (fixed.voltage(out), aligned.voltage(out));
        for ((t, a), (_, b)) in wf.iter().zip(wa.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "t={t}: {a} vs {b}");
        }
    }

    #[test]
    fn aligned_leaps_quiet_regions_and_stays_close() {
        // Step at 1 ns, long settled tail: the aligned controller must
        // leap multi-cell steps through the quiet regions while keeping
        // the recorded trace within the LTE budget of the fixed one.
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
        c.resistor("R", vin, out, 1.0e3);
        c.capacitor("C", out, Circuit::GND, 1.0e-12);
        let opts = TranOptions::new(50e-9, 10e-12);
        let fixed = c.transient(&opts).unwrap();
        let aligned = c
            .transient(&opts.adaptive_grid_aligned(1e-5, 1e-9))
            .unwrap();
        assert_eq!(fixed.times(), aligned.times());
        assert!(
            aligned.steps_taken() * 3 < fixed.steps_taken(),
            "aligned {} vs fixed {} internal steps",
            aligned.steps_taken(),
            fixed.steps_taken()
        );
        let (wf, wa) = (fixed.voltage(out), aligned.voltage(out));
        let worst = wf
            .iter()
            .zip(wa.iter())
            .map(|((_, a), (_, b))| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-4, "worst deviation vs fixed reference {worst}");
    }

    #[test]
    #[should_panic(expected = "need h_max >= dt")]
    fn aligned_rejects_ceiling_below_dt() {
        let _ = TranOptions::new(1e-9, 1e-12).adaptive_grid_aligned(1e-4, 1e-13);
    }

    #[test]
    fn ground_voltage_is_zero() {
        let (c, _, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(2e-9, 20e-12)).unwrap();
        assert_eq!(res.voltage(Circuit::GND).max(), 0.0);
    }

    #[test]
    fn endpoint_reached_when_t_stop_not_multiple_of_dt() {
        // t_stop / dt = 3.33…: the old `round` step count stopped at
        // 0.9 ns, silently dropping the last 0.1 ns of the window.
        let (c, out, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(1e-9, 0.3e-9)).unwrap();
        let times = res.times();
        assert_eq!(*times.last().unwrap(), 1e-9, "ends exactly at t_stop");
        assert!(times.windows(2).all(|w| w[1] > w[0]), "monotonic grid");
        // Every full-dt grid point is still present.
        for (i, expect) in [0.0, 0.3e-9, 0.6e-9, 0.9e-9, 1.0e-9].iter().enumerate() {
            assert!((times[i] - expect).abs() < 1e-18, "grid point {i}");
        }
        // Waveform sampling at t_stop uses a real solution, not an
        // extrapolation.
        assert!(res.voltage(out).sample(1e-9).is_finite());
    }

    #[test]
    fn endpoint_never_overshoots_t_stop() {
        // t_stop / dt = 1.67: `round` used to march to 1.2 ns, past the
        // requested end of the window.
        let (c, _, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(1e-9, 0.6e-9)).unwrap();
        let times = res.times();
        assert_eq!(*times.last().unwrap(), 1e-9);
        assert!(times.iter().all(|&t| t <= 1e-9));
    }

    #[test]
    fn integer_grid_unchanged_by_endpoint_clamp() {
        let (c, _, _) = rc_circuit();
        let res = c.transient(&TranOptions::new(2e-9, 0.5e-9)).unwrap();
        let expect = [0.0, 0.5e-9, 1.0e-9, 1.5e-9, 2e-9];
        assert_eq!(res.len(), expect.len());
        for (t, e) in res.times().iter().zip(expect) {
            assert!((t - e).abs() < 1e-20, "{t} vs {e}");
        }
        assert_eq!(*res.times().last().unwrap(), 2e-9);
    }

    #[test]
    #[should_panic(expected = "need 0 < dt <= t_stop")]
    fn bad_options_panic() {
        let _ = TranOptions::new(1e-9, 0.0);
    }
}
