//! Circuit analyses: DC operating point, transient, and the lockstep
//! ensemble transient.

pub mod dc;
pub mod dcsweep;
pub(crate) mod engine;
pub mod ensemble;
pub(crate) mod envknob;
pub(crate) mod partition;
pub(crate) mod plan;
pub mod tran;
