//! Circuit analyses: DC operating point and transient.

pub mod dc;
pub mod dcsweep;
pub(crate) mod engine;
pub(crate) mod plan;
pub mod tran;
