//! Circuit analyses: DC operating point and transient.

pub mod dc;
pub mod dcsweep;
pub(crate) mod engine;
pub mod tran;
