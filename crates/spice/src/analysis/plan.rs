//! Per-circuit stamp plan: the Newton loop's fast assembly path.
//!
//! The legacy assembly path (`engine::Engine::assemble_reference`)
//! rebuilds a [`SystemMatrix`](crate::matrix::SystemMatrix) from scratch
//! every Newton iteration — push every stamp, sort-and-merge duplicates,
//! convert to column-compressed form for the solver. All of that work is
//! identical across iterations except for the handful of values that
//! actually change (MOSFET conductances, capacitor companion stamps,
//! source right-hand sides).
//!
//! A [`StampPlan`] hoists the invariant part out of the loop. Built once
//! per `(circuit, analysis)`, it:
//!
//! * fixes the Jacobian sparsity pattern as a [`CscPattern`] (the union
//!   of every element's stamp sites plus the gmin diagonal), handing each
//!   stamp site a flat slot index into a values buffer;
//! * pre-accumulates the constant linear part — resistor conductances and
//!   the ±1 incidence entries of voltage-source rows — into `base_vals`,
//!   so re-assembly starts from a `memcpy` instead of re-deriving them;
//! * records, per element, exactly which slots and residual rows its
//!   per-iteration contribution touches ([`PlanElem`]).
//!
//! [`StampPlan::assemble_into`] then refreshes a values buffer and
//! residual in place with no allocation, no sorting and no format
//! conversion. The residual is computed as `f = A_lin·x` (one sparse
//! mat-vec over the linear + companion part) plus per-element
//! corrections; MOSFET Jacobian entries are deliberately stamped *after*
//! the mat-vec so the residual carries the device current `i_d`, not the
//! linearised `J·x`.
//!
//! # Quiescent-device bypass
//!
//! The remaining per-iteration cost is dominated by [`Mosfet::eval`]
//! calls, and on digital workloads most devices are electrically idle
//! most of the time (in the reduced-AES testbench a single byte toggles
//! per clock edge while the rest of the S-box sits at its operating
//! point). SPICE3's `bypass` option exploits this, and so does the plan:
//! every evaluated MOSFET caches the terminal voltages it was evaluated
//! at together with the full linearization ([`MosBypassState`]). When a
//! later assembly finds all four terminal voltages within the bypass
//! tolerance of that cached eval point, the model call is skipped — the
//! cached conductances are re-stamped and the device current is
//! *linearly extrapolated* from the cached point
//! (`i ≈ i_c + gm·Δvg + gds·Δvd + gms·Δvs + gmb·Δvb`). Because the
//! extrapolation uses the exact first derivatives, the approximation
//! error is second order in the tolerance (curvature · Δv²/2), not first
//! order — a 10 µV tolerance on a mS-grade device perturbs currents by
//! ~1e-13 A, far below the Newton `itol`. Voltages are compared against
//! the *cached eval point*, not the previous iteration, so slow drift
//! can never accumulate past the tolerance without triggering a real
//! evaluation. A tolerance of `0.0` disables the bypass entirely (the
//! hard-off escape hatch; see `MCML_SPICE_BYPASS`).
//!
//! [`Mosfet::eval`]: mcml_device::Mosfet::eval

use crate::analysis::engine::{companion_terms, CompanionCtx};
use crate::circuit::{Circuit, NodeId};
use crate::element::Element;
use crate::matrix::CscPattern;

/// Sentinel slot for a stamp suppressed by a grounded terminal.
const SLOT_NONE: usize = usize::MAX;

/// Cached linearization of one MOSFET: the terminal voltages it was
/// evaluated at plus the resulting current and conductances. One entry
/// per MOS element, owned by the engine (the plan itself stays immutable
/// across iterations).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MosBypassState {
    /// True once the device has been evaluated at least once.
    valid: bool,
    /// Terminal voltages `[vg, vd, vs, vb]` at the cached eval.
    v: [f64; 4],
    /// Drain current at the cached eval (A).
    id: f64,
    /// Conductances `[gm, gds, gms, gmb]` at the cached eval (S).
    g: [f64; 4],
}

/// Per-assembly MOSFET work tally: model evaluations executed vs skipped
/// by the quiescent-device bypass.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MosStats {
    /// `Mosfet::eval` calls actually executed.
    pub evals: u64,
    /// Evaluations served from the cached linearization instead.
    pub bypassed: u64,
}

/// Conductance-stamp slots of a two-terminal element between `a` and `b`:
/// `[aa, ab, ba, bb]`, with [`SLOT_NONE`] where a terminal is ground.
type CondSlots = [usize; 4];

/// Per-element slice of the plan: which value slots and residual rows the
/// element touches during re-assembly. Elements whose stamps are entirely
/// constant (resistors) are [`PlanElem::Inert`] — their work happens in
/// the base-values copy.
enum PlanElem {
    /// Fully covered by `base_vals`; nothing to do per iteration.
    Inert,
    /// Capacitor: companion conductance `geq` into the conductance slots,
    /// history current into the residual rows.
    Cap {
        /// Residual row of terminal `a` (`None` when grounded).
        fa: Option<usize>,
        /// Residual row of terminal `b`.
        fb: Option<usize>,
        /// Conductance stamp slots.
        g: CondSlots,
    },
    /// Voltage source: incidence entries live in `base_vals`; only the
    /// KVL target `−V(t)·scale` changes per assembly.
    Vsource {
        /// KVL row (branch unknown index in the full system).
        row: usize,
    },
    /// Current source: pure right-hand-side contribution.
    Isource {
        /// Residual row of terminal `p`.
        fp: Option<usize>,
        /// Residual row of terminal `n`.
        fneg: Option<usize>,
    },
    /// MOSFET: device current into the drain/source residual rows,
    /// small-signal conductances into two stamp-row slot quadruples.
    Mos {
        /// Residual row of the drain.
        fd: Option<usize>,
        /// Residual row of the source.
        fs: Option<usize>,
        /// Drain-row slots for columns `[g, d, s, b]`.
        drow: CondSlots,
        /// Source-row slots for columns `[g, d, s, b]` (negated stamps).
        srow: CondSlots,
        /// Index into the engine-owned [`MosBypassState`] buffer.
        mos_idx: usize,
    },
}

/// The per-circuit fast assembly plan. See the module docs.
pub(crate) struct StampPlan {
    /// Fixed sparsity pattern shared with the LU backends.
    pub pattern: CscPattern,
    /// Constant linear part of the Jacobian (resistors, vsource rows).
    base_vals: Vec<f64>,
    /// Diagonal slots `(i, i)` for the node unknowns, for gmin.
    diag_slots: Vec<usize>,
    /// Parallel to the circuit's element list.
    elems: Vec<PlanElem>,
    /// How many legacy matrix stamps the base copy replaces per assembly
    /// (feeds the `spice.linear_stamps_skipped` counter).
    pub linear_stamps: u64,
    /// Number of MOS elements — the size of the bypass-state buffer the
    /// engine must provide.
    pub n_mos: usize,
}

#[inline]
fn unk(node: NodeId) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

#[inline]
fn v(x: &[f64], node: NodeId) -> f64 {
    match unk(node) {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Collects stamp sites during plan construction and resolves them to
/// slots once the full pattern is known.
struct SiteCollector {
    n: usize,
    sites: Vec<(usize, usize)>,
}

impl SiteCollector {
    /// Register a stamp site, returning its position (not yet a slot).
    fn site(&mut self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.n && c < self.n);
        self.sites.push((r, c));
        self.sites.len() - 1
    }

    /// Register the (up to four) sites of a conductance between `a`/`b`.
    fn cond_sites(&mut self, a: Option<usize>, b: Option<usize>) -> CondSlots {
        let mut s = [SLOT_NONE; 4];
        if let Some(ai) = a {
            s[0] = self.site(ai, ai);
            if let Some(bi) = b {
                s[1] = self.site(ai, bi);
            }
        }
        if let Some(bi) = b {
            s[3] = self.site(bi, bi);
            if let Some(ai) = a {
                s[2] = self.site(bi, ai);
            }
        }
        s
    }
}

/// Map site positions to final slots, skipping [`SLOT_NONE`] sentinels.
fn resolve(slots: &[usize], s: CondSlots) -> CondSlots {
    s.map(|p| if p == SLOT_NONE { SLOT_NONE } else { slots[p] })
}

/// A [`PlanElem`] in the making: same shape, but holding site positions
/// that are only resolved to slots once the full pattern is known.
enum Pending {
    Inert,
    Cap {
        fa: Option<usize>,
        fb: Option<usize>,
        g: CondSlots,
    },
    Vsource {
        row: usize,
    },
    Isource {
        fp: Option<usize>,
        fneg: Option<usize>,
    },
    Mos {
        fd: Option<usize>,
        fs: Option<usize>,
        drow: CondSlots,
        srow: CondSlots,
        mos_idx: usize,
    },
}

impl StampPlan {
    /// Build the plan for a circuit with `n_node_unk` node unknowns and
    /// `n_unk` total unknowns.
    pub fn build(ckt: &Circuit, n_node_unk: usize, n_unk: usize) -> Self {
        let mut col = SiteCollector {
            n: n_unk,
            sites: Vec::new(),
        };

        // gmin sites on the node-unknown diagonal come first.
        let diag_pos: Vec<usize> = (0..n_node_unk).map(|i| col.site(i, i)).collect();

        // Pending constant contributions as (site position, value).
        let mut base: Vec<(usize, f64)> = Vec::new();
        let mut linear_stamps: u64 = 0;

        let mut pending: Vec<Pending> = Vec::new();
        let mut n_mos = 0usize;
        for (_, _, elem) in ckt.elements() {
            let p = match elem {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let s = col.cond_sites(unk(*a), unk(*b));
                    for (pos, val) in s.iter().zip([g, -g, -g, g]) {
                        if *pos != SLOT_NONE {
                            base.push((*pos, val));
                            linear_stamps += 1;
                        }
                    }
                    Pending::Inert
                }
                Element::Capacitor { a, b, .. } => {
                    let (ua, ub) = (unk(*a), unk(*b));
                    Pending::Cap {
                        fa: ua,
                        fb: ub,
                        g: col.cond_sites(ua, ub),
                    }
                }
                Element::Vsource { p, n, branch, .. } => {
                    let row = n_node_unk + branch;
                    // Incidence entries are constant ±1: into the base.
                    for (node, sign) in [(p, 1.0), (n, -1.0)] {
                        if let Some(i) = unk(*node) {
                            base.push((col.site(i, row), sign));
                            base.push((col.site(row, i), sign));
                            linear_stamps += 2;
                        }
                    }
                    Pending::Vsource { row }
                }
                Element::Isource { p, n, .. } => Pending::Isource {
                    fp: unk(*p),
                    fneg: unk(*n),
                },
                Element::Mos { d, g, s, b, .. } => {
                    let (ud, ug, us, ub) = (unk(*d), unk(*g), unk(*s), unk(*b));
                    let row_sites = |col: &mut SiteCollector, row: Option<usize>| {
                        let mut slots = [SLOT_NONE; 4];
                        if let Some(r) = row {
                            for (slot, c) in slots.iter_mut().zip([ug, ud, us, ub]) {
                                if let Some(ci) = c {
                                    *slot = col.site(r, ci);
                                }
                            }
                        }
                        slots
                    };
                    let drow = row_sites(&mut col, ud);
                    let srow = row_sites(&mut col, us);
                    let mos_idx = n_mos;
                    n_mos += 1;
                    Pending::Mos {
                        fd: ud,
                        fs: us,
                        drow,
                        srow,
                        mos_idx,
                    }
                }
                // `Element` is non-exhaustive; new kinds must grow a plan
                // arm before they can be simulated.
                #[allow(unreachable_patterns)]
                _ => unreachable!("element kind without a stamp plan"),
            };
            pending.push(p);
        }

        let (pattern, slots) = CscPattern::from_sites(n_unk, &col.sites);
        let mut base_vals = vec![0.0f64; pattern.nnz()];
        for (pos, val) in base {
            base_vals[slots[pos]] += val;
        }
        let diag_slots: Vec<usize> = diag_pos.into_iter().map(|p| slots[p]).collect();
        let elems = pending
            .into_iter()
            .map(|p| match p {
                Pending::Inert => PlanElem::Inert,
                Pending::Cap { fa, fb, g } => PlanElem::Cap {
                    fa,
                    fb,
                    g: resolve(&slots, g),
                },
                Pending::Vsource { row } => PlanElem::Vsource { row },
                Pending::Isource { fp, fneg } => PlanElem::Isource { fp, fneg },
                Pending::Mos {
                    fd,
                    fs,
                    drow,
                    srow,
                    mos_idx,
                } => PlanElem::Mos {
                    fd,
                    fs,
                    drow: resolve(&slots, drow),
                    srow: resolve(&slots, srow),
                    mos_idx,
                },
            })
            .collect();

        Self {
            pattern,
            base_vals,
            diag_slots,
            elems,
            linear_stamps,
            n_mos,
        }
    }

    /// Refresh `vals` (Jacobian values, parallel to the pattern) and `f`
    /// (residual) in place for state `x` at time `t`. Allocation-free.
    ///
    /// KCL sign convention matches the legacy path: `f[row]` accumulates
    /// the currents *leaving* each node, and KVL rows hold
    /// `v_p − v_n − V(t)·scale`.
    ///
    /// `mos_state` is the engine-owned bypass cache, `self.n_mos` entries
    /// long; `bypass_tol > 0.0` enables the quiescent-device bypass (see
    /// the module docs). Returns the per-assembly MOS work tally.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_into(
        &self,
        ckt: &Circuit,
        x: &[f64],
        t: f64,
        companion: Option<&CompanionCtx<'_>>,
        gmin: f64,
        src_scale: f64,
        bypass_tol: f64,
        mos_state: &mut [MosBypassState],
        vals: &mut [f64],
        f: &mut [f64],
    ) -> MosStats {
        debug_assert_eq!(vals.len(), self.pattern.nnz());
        debug_assert_eq!(f.len(), self.pattern.dim());
        debug_assert_eq!(mos_state.len(), self.n_mos);
        let mut stats = MosStats::default();

        // 1. Constant linear part, then gmin on the node diagonal.
        vals.copy_from_slice(&self.base_vals);
        for &s in &self.diag_slots {
            vals[s] += gmin;
        }
        f.iter_mut().for_each(|fv| *fv = 0.0);

        // 2. Companion conductances (and history currents into f) must be
        // in place before the mat-vec so `A_lin·x` covers `geq·v`.
        if let Some(ctx) = companion {
            for (plan, state) in self.elems.iter().zip(ctx.caps) {
                let (PlanElem::Cap { fa, fb, g }, Some(cap)) = (plan, state) else {
                    continue;
                };
                let (geq, hist) = companion_terms(cap, ctx.h, ctx.trapezoidal);
                for (slot, val) in g.iter().zip([geq, -geq, -geq, geq]) {
                    if *slot != SLOT_NONE {
                        vals[*slot] += val;
                    }
                }
                if let Some(ai) = fa {
                    f[*ai] += hist;
                }
                if let Some(bi) = fb {
                    f[*bi] -= hist;
                }
            }
        }

        // 3. Residual of the linear + companion part in one mat-vec:
        // covers resistor and companion currents, gmin leakage, vsource
        // incidence (branch currents into KCL rows, `v_p − v_n` into KVL
        // rows).
        self.pattern.spmv_add(vals, x, f);

        // 4. Source right-hand sides and nonlinear devices. MOSFET
        // Jacobian stamps happen *after* the mat-vec on purpose: the
        // residual must carry the device current, not `J·x`.
        for (plan, (_, _, elem)) in self.elems.iter().zip(ckt.elements()) {
            match (plan, elem) {
                (PlanElem::Vsource { row }, Element::Vsource { wave, .. }) => {
                    f[*row] -= wave.value(t) * src_scale;
                }
                (PlanElem::Isource { fp, fneg }, Element::Isource { wave, .. }) => {
                    let i = wave.value(t) * src_scale;
                    if let Some(pi) = fp {
                        f[*pi] += i;
                    }
                    if let Some(ni) = fneg {
                        f[*ni] -= i;
                    }
                }
                (
                    PlanElem::Mos {
                        fd,
                        fs,
                        drow,
                        srow,
                        mos_idx,
                    },
                    Element::Mos { d, g, s, b, dev },
                ) => {
                    let vt = [v(x, *g), v(x, *d), v(x, *s), v(x, *b)];
                    let st = &mut mos_state[*mos_idx];
                    let (id, conds) = if bypass_tol > 0.0
                        && st.valid
                        && vt
                            .iter()
                            .zip(&st.v)
                            .all(|(now, was)| (now - was).abs() <= bypass_tol)
                    {
                        // Quiescent: reuse the cached linearization; the
                        // current is extrapolated with the exact cached
                        // derivatives, so the error is O(Δv²).
                        stats.bypassed += 1;
                        let id = st.id
                            + st.g
                                .iter()
                                .zip(vt.iter().zip(&st.v))
                                .map(|(g, (now, was))| g * (now - was))
                                .sum::<f64>();
                        (id, st.g)
                    } else {
                        stats.evals += 1;
                        let e = dev.eval(vt[0], vt[1], vt[2], vt[3]);
                        *st = MosBypassState {
                            valid: true,
                            v: vt,
                            id: e.id,
                            g: [e.gm, e.gds, e.gms, e.gmb],
                        };
                        (e.id, st.g)
                    };
                    if let Some(di) = fd {
                        f[*di] += id;
                    }
                    if let Some(si) = fs {
                        f[*si] -= id;
                    }
                    for (slot, val) in drow.iter().zip(conds) {
                        if *slot != SLOT_NONE {
                            vals[*slot] += val;
                        }
                    }
                    for (slot, val) in srow.iter().zip(conds) {
                        if *slot != SLOT_NONE {
                            vals[*slot] -= val;
                        }
                    }
                }
                _ => {}
            }
        }
        stats
    }
}
