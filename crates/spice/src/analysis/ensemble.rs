//! Structure-of-arrays ensemble transient: N input vectors marched
//! lockstep over one shared stamp plan and symbolic LU.
//!
//! A trace campaign solves the *same circuit* thousands of times with
//! different source waveforms. Everything structural — the MNA sparsity
//! pattern, the pre-accumulated linear stamps, the LU elimination order
//! and fill pattern — depends only on the topology, so the ensemble
//! engine builds it once and shares it across all lanes:
//!
//! * **one `StampPlan`** (behind an `Arc`) serves every lane's assembly;
//! * **one symbolic factorisation**: lane 0 factors first and donates its
//!   factors to the other lanes, whose first "factorisation" is then a
//!   numeric-only replay of the recorded elimination order;
//! * **per-lane numeric state**: Jacobian values, residuals, LU numbers,
//!   MOS bypass caches and companion histories stay per lane, and a lane
//!   refactors only when its own Newton step demands it — an assembly
//!   that evaluated zero MOS devices under an unchanged step size reuses
//!   the lane's existing factors outright (`spice.lane_refactors` counts
//!   the refactorisations that actually ran);
//! * **flat `[lane × unknown]` state**: lane states live contiguously in
//!   one `f64` buffer, so the lockstep march streams through memory in
//!   lane order.
//!
//! Lockstep semantics are chosen so that a **one-lane ensemble is
//! bit-identical to the scalar [`transient`](super::tran::transient)
//! path** (the property tests pin this): every ensemble decision is a
//! fold over lanes — the adaptive step is the minimum of the per-lane
//! proposals, a step is rejected when *any* lane rejects it (all lanes
//! re-run at the shrunken step, keeping them aligned on the caller's
//! output grid), and state is committed only when the whole ensemble
//! accepts. With one lane each fold degenerates to exactly the scalar
//! controller.

use std::sync::Arc;

use crate::analysis::dc::{branch_map, DcOptions, OpPoint};
use crate::analysis::engine::{init_cap_states, CapState, CompanionCtx, Engine, NrOptions};
use crate::analysis::partition;
use crate::analysis::plan::StampPlan;
use crate::analysis::tran::{
    dense_output, lte_ratio, retag_tran, step_cell, update_caps, CapHistory, Integrator,
    TranOptions, TranResult, T_SNAP,
};
use crate::circuit::{Circuit, NodeId};
use crate::element::Element;
use crate::error::SpiceError;
use crate::Result;

/// Whether two circuits can share one stamp plan: identical node and
/// branch counts and the same element kinds on the same nodes in the
/// same order. Resistor values must also match (they are baked into the
/// plan's constant `base_vals`); source waveforms, capacitances and MOS
/// device parameters are re-read from each lane's own circuit during
/// assembly and may differ freely.
fn same_topology(a: &Circuit, b: &Circuit) -> bool {
    if a.node_count() != b.node_count() || a.branch_count() != b.branch_count() {
        return false;
    }
    let mut ea = a.elements();
    let mut eb = b.elements();
    loop {
        match (ea.next(), eb.next()) {
            (None, None) => return true,
            (Some((_, _, x)), Some((_, _, y))) => {
                let ok = match (x, y) {
                    (
                        Element::Resistor {
                            a: a1,
                            b: b1,
                            ohms: o1,
                        },
                        Element::Resistor {
                            a: a2,
                            b: b2,
                            ohms: o2,
                        },
                    ) => a1 == a2 && b1 == b2 && o1 == o2,
                    (
                        Element::Capacitor { a: a1, b: b1, .. },
                        Element::Capacitor { a: a2, b: b2, .. },
                    ) => a1 == a2 && b1 == b2,
                    (
                        Element::Vsource {
                            p: p1,
                            n: n1,
                            branch: br1,
                            ..
                        },
                        Element::Vsource {
                            p: p2,
                            n: n2,
                            branch: br2,
                            ..
                        },
                    ) => p1 == p2 && n1 == n2 && br1 == br2,
                    (
                        Element::Isource { p: p1, n: n1, .. },
                        Element::Isource { p: p2, n: n2, .. },
                    ) => p1 == p2 && n1 == n2,
                    (
                        Element::Mos {
                            d: d1,
                            g: g1,
                            s: s1,
                            b: b1,
                            ..
                        },
                        Element::Mos {
                            d: d2,
                            g: g2,
                            s: s2,
                            b: b2,
                            ..
                        },
                    ) => d1 == d2 && g1 == g2 && s1 == s2 && b1 == b2,
                    _ => false,
                };
                if !ok {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

/// Hand lane 0's factors to every other lane exactly once, right after
/// lane 0's first solve: their first factorisation then replays the
/// recorded symbolic structure numerically instead of re-running the
/// DFS and pivot search.
fn seed_factors(engines: &mut [Engine<&Circuit>], seeded: &mut bool) {
    if *seeded {
        return;
    }
    *seeded = true;
    if engines.len() > 1 {
        let (lane0, rest) = engines.split_at_mut(1);
        for e in rest {
            e.adopt_factors_from(&lane0[0]);
        }
    }
}

/// Union of every lane's source breakpoints (sorted, deduped) and the
/// tightest curvature step ceiling, exactly as the scalar marches
/// compute them from their single circuit.
fn merged_breakpoints(ckts: &[Circuit], t_stop: f64) -> (Vec<f64>, f64) {
    let mut bps: Vec<f64> = Vec::new();
    let mut hint = f64::INFINITY;
    for ckt in ckts {
        for (_, _, e) in ckt.elements() {
            let (Element::Vsource { wave, .. } | Element::Isource { wave, .. }) = e else {
                continue;
            };
            wave.breakpoints(t_stop, &mut bps);
            if let Some(h) = wave.max_step_hint() {
                hint = hint.min(h);
            }
        }
    }
    bps.sort_by(f64::total_cmp);
    bps.dedup_by(|a, b| (*a - *b).abs() <= T_SNAP * b.abs());
    (bps, hint)
}

/// The marching state every mode shares: per-lane engines, the flat
/// `[lane × unknown]` state buffers, companion caps, and scratch.
struct Lanes<'a, 'c> {
    ckts: &'a [Circuit],
    engines: Vec<Engine<&'c Circuit>>,
    n_unk: usize,
    /// Flat committed state, lane `l` at `l*n_unk..(l+1)*n_unk`.
    x_all: Vec<f64>,
    /// Flat trial state for uncommitted candidate steps.
    x_try_all: Vec<f64>,
    caps: Vec<Vec<Option<CapState>>>,
    /// Scratch pair for delegating a lane to the scalar `step_cell`.
    xv: Vec<f64>,
    xt: Vec<f64>,
    seeded: bool,
}

impl Lanes<'_, '_> {
    fn lane(&self, l: usize) -> &[f64] {
        &self.x_all[l * self.n_unk..(l + 1) * self.n_unk]
    }

    fn commit_lane(&mut self, l: usize) {
        let (a, b) = (l * self.n_unk, (l + 1) * self.n_unk);
        let (x_all, x_try) = (&mut self.x_all, &self.x_try_all);
        x_all[a..b].copy_from_slice(&x_try[a..b]);
    }

    /// Run the scalar reference cell step for lane `l` (bitwise the
    /// fixed path), committing directly into the flat state.
    #[allow(clippy::too_many_arguments)]
    fn step_cell_lane(
        &mut self,
        l: usize,
        opts: &TranOptions,
        nr: &NrOptions,
        trapezoidal: bool,
        t: &mut f64,
        t_target: f64,
    ) -> Result<usize> {
        let (a, b) = (l * self.n_unk, (l + 1) * self.n_unk);
        self.xv.clear();
        self.xv.extend_from_slice(&self.x_all[a..b]);
        let accepted = step_cell(
            &self.ckts[l],
            opts,
            &mut self.engines[l],
            nr,
            trapezoidal,
            &mut self.xv,
            &mut self.xt,
            &mut self.caps[l],
            t,
            t_target,
        )?;
        self.x_all[a..b].copy_from_slice(&self.xv);
        Ok(accepted)
    }

    /// One candidate Newton solve of lane `l` to `t_target` with step
    /// `h`, into the trial buffer (nothing committed).
    fn solve_lane(
        &mut self,
        l: usize,
        h: f64,
        t_target: f64,
        trapezoidal: bool,
        nr: &NrOptions,
    ) -> Result<()> {
        let (a, b) = (l * self.n_unk, (l + 1) * self.n_unk);
        self.x_try_all[a..b].copy_from_slice(&self.x_all[a..b]);
        let ctx = CompanionCtx {
            h,
            trapezoidal,
            caps: &self.caps[l],
        };
        self.engines[l].solve_nr(
            &mut self.x_try_all[a..b],
            t_target,
            Some(&ctx),
            self.ckts[l].gmin,
            1.0,
            nr,
            "tran",
        )
    }
}

/// Run a transient analysis over an ensemble of lanes: one circuit per
/// input vector, all sharing one stamp plan and symbolic LU.
///
/// All circuits must share lane 0's topology (same elements on the same
/// nodes in the same order; resistor values equal) and may differ in
/// source waveforms, capacitances, and MOS device parameters — the
/// degrees of freedom of a trace campaign or a local-mismatch
/// Monte-Carlo sweep. Results come back one [`TranResult`] per lane, in
/// lane order, each indistinguishable from a scalar
/// [`transient`](crate::analysis::tran::transient) result.
///
/// Lockstep guarantees (pinned by the regression tests):
///
/// * a **one-lane ensemble is bit-identical to the scalar path**, for
///   fixed-step and both adaptive modes;
/// * with adaptive stepping, all lanes advance on one shared internal
///   grid — a step is accepted only when every lane accepts it, a
///   rejecting lane shrinks the step for the whole ensemble, and source
///   breakpoints are the union over lanes — so completed lanes can be
///   streamed straight into chunked attack accumulators in lane order;
/// * peak solver memory is `lanes × state`, independent of how many
///   ensembles a campaign runs.
///
/// Observability: the run is wrapped in an `ensemble_tran` span,
/// `spice.ensemble_lanes` counts lanes launched, and
/// `spice.lane_refactors` counts the per-lane LU refactorisations that
/// actually ran (the gap to `spice.matrix_solves` is the solves served
/// by the unchanged-Jacobian reuse check).
///
/// # Errors
///
/// Returns [`SpiceError::NoConvergence`] when any lane fails a step at
/// the smallest subdivision, or the lane's DC operating point fails.
///
/// # Panics
///
/// Panics when `ckts` is empty or a lane does not share lane 0's
/// topology — both are programmer errors, not data-dependent failures.
pub fn ensemble_transient(ckts: &[Circuit], opts: &TranOptions) -> Result<Vec<TranResult>> {
    assert!(!ckts.is_empty(), "ensemble needs at least one lane");
    let lanes = ckts.len();
    for (l, ckt) in ckts.iter().enumerate().skip(1) {
        assert!(
            same_topology(&ckts[0], ckt),
            "ensemble lane {l} does not share lane 0's topology"
        );
    }
    let _span = mcml_obs::span(mcml_obs::Stage::EnsembleTran);
    mcml_obs::add(mcml_obs::Counter::EnsembleLanes, lanes as u64);
    mcml_obs::add(mcml_obs::Counter::Transients, lanes as u64);

    // Per-lane DC operating point — the very same cold solve the scalar
    // transient makes, so each lane starts from the bit-identical
    // state. Deliberately *not* accelerated: differential MCML cells
    // have multiple locally stable operating points whose supply
    // currents are indistinguishable (that is the style's whole point),
    // so any shortcut that changes the Newton path from zero — warm
    // starting from a sibling's op, skipping a continuation rung,
    // lagged-Jacobian iterations inside the ladder — can silently
    // settle internal nodes into a different basin and corrupt the
    // clock-edge transient. The march below may chord; the op may not.
    let dc_opts = DcOptions {
        solver: opts.solver,
        ..DcOptions::default()
    };
    let mut ops: Vec<OpPoint> = Vec::with_capacity(lanes);
    for ckt in ckts {
        ops.push(ckt.dc_op_with(&dc_opts)?);
    }

    // Partitioned path: per-lane block solves with independent skip
    // decisions — lanes whose active partitions differ stop paying for
    // each other. The partition structure is topology-only, so lane 0's
    // serves every lane (the same contract as the shared stamp plan);
    // block circuits are still built from each lane's own element
    // values, so per-lane Monte-Carlo parameters are preserved. The
    // fixed-grid ensemble march never shared step decisions between
    // lanes, so the per-lane marches are equivalent by construction.
    if opts.partition && opts.lte.is_none() && partition::partition_allowed() {
        if let Some(structure) = partition::PartitionStructure::build(&ckts[0], true) {
            let mut results = Vec::with_capacity(lanes);
            for (ckt, op) in ckts.iter().zip(ops) {
                results.push(partition::march_partitioned(ckt, opts, &structure, op)?);
            }
            return Ok(results);
        }
    }

    // One plan, built from lane 0, shared by every engine.
    let mut engines: Vec<Engine<&Circuit>> = Vec::with_capacity(lanes);
    engines.push(Engine::new(&ckts[0]));
    let plan: Arc<StampPlan> = engines[0].plan_handle();
    for ckt in &ckts[1..] {
        engines.push(Engine::with_shared_plan(ckt, Arc::clone(&plan)));
    }
    for e in &mut engines {
        e.set_reuse_unchanged_jacobian(true);
    }
    let n_unk = engines[0].n_unk;
    let n_node_unk = engines[0].n_node_unk;

    let nr = opts.nr();
    let trapezoidal = opts.integrator == Integrator::Trapezoidal;
    let mut x_all = vec![0.0f64; lanes * n_unk];
    for (l, op) in ops.iter().enumerate() {
        x_all[l * n_unk..(l + 1) * n_unk].copy_from_slice(op.state());
    }
    let caps: Vec<Vec<Option<CapState>>> = ckts
        .iter()
        .zip(x_all.chunks(n_unk))
        .map(|(ckt, x)| init_cap_states(ckt, x))
        .collect();
    let mut lanes_st = Lanes {
        ckts,
        engines,
        n_unk,
        x_all,
        x_try_all: vec![0.0f64; lanes * n_unk],
        caps,
        xv: Vec::with_capacity(n_unk),
        xt: vec![0.0f64; n_unk],
        seeded: false,
    };

    // The caller's uniform output grid, computed exactly as the scalar
    // path computes it.
    let stride = opts.record_stride.max(1);
    let ratio = opts.t_stop / opts.dt;
    let n_steps = if (ratio - ratio.round()).abs() < 1e-6 * ratio.max(1.0) {
        (ratio.round() as usize).max(1)
    } else {
        ratio.ceil() as usize
    };

    let mut times: Vec<f64> = Vec::with_capacity(n_steps / stride + 2);
    times.push(0.0);
    let mut rec_states: Vec<Vec<Vec<f64>>> = (0..lanes)
        .map(|l| vec![lanes_st.lane(l).to_vec()])
        .collect();
    let t_end;
    let steps_taken: Vec<usize>;

    if let Some(lte) = opts.lte {
        let (int_times, int_states) = if lte.align_to_grid {
            march_aligned_ensemble(&mut lanes_st, opts, lte, &nr, trapezoidal, n_steps)?
        } else {
            march_adaptive_ensemble(&mut lanes_st, opts, lte, &nr, trapezoidal)?
        };
        t_end = *int_times.last().expect("adaptive march records t_stop");
        let taken = int_times.len() - 1;
        steps_taken = vec![taken; lanes];
        for (l, lane_states) in int_states.iter().enumerate() {
            dense_output(
                opts,
                n_steps,
                stride,
                &int_times,
                lane_states,
                &mut times,
                &mut rec_states[l],
            );
            if l + 1 < lanes {
                // `dense_output` appends to `times` too; keep one copy.
                times.truncate(1);
            }
        }
    } else {
        let mut t_lane = vec![0.0f64; lanes];
        let mut accepted = vec![0usize; lanes];
        for step in 1..=n_steps {
            let t_target = if step == n_steps {
                opts.t_stop
            } else {
                opts.dt * step as f64
            };
            for l in 0..lanes {
                accepted[l] +=
                    lanes_st.step_cell_lane(l, opts, &nr, trapezoidal, &mut t_lane[l], t_target)?;
                if l == 0 {
                    let Lanes {
                        engines, seeded, ..
                    } = &mut lanes_st;
                    seed_factors(engines, seeded);
                }
            }
            if step % stride == 0 || step == n_steps {
                times.push(t_target);
                for (l, rec) in rec_states.iter_mut().enumerate() {
                    rec.push(lanes_st.lane(l).to_vec());
                }
            }
        }
        t_end = t_lane[0];
        steps_taken = accepted;
    }

    let mut results = Vec::with_capacity(lanes);
    for (l, (op0, states)) in ops.into_iter().zip(rec_states).enumerate() {
        results.push(TranResult::from_parts(
            times.clone(),
            states,
            n_node_unk,
            branch_map(&ckts[l]),
            op0,
            t_end,
            steps_taken[l],
        ));
    }
    Ok(results)
}

/// Per-lane internal states for the adaptive marches: the shared
/// internal time grid plus each lane's state at every internal point.
type InternalGrid = (Vec<f64>, Vec<Vec<Vec<f64>>>);

/// Grid-aligned lockstep march: the ensemble macro step covers
/// `k = min` over lanes' proposals grid cells; any lane's LTE reject or
/// Newton failure halves `k` for everyone and the whole ensemble
/// re-runs; `k = 1` delegates each lane to the scalar reference cell
/// step. At one lane this is exactly the scalar aligned controller.
fn march_aligned_ensemble(
    lanes_st: &mut Lanes<'_, '_>,
    opts: &TranOptions,
    lte: crate::analysis::tran::AdaptiveOptions,
    nr: &NrOptions,
    trapezoidal: bool,
    n_steps: usize,
) -> Result<InternalGrid> {
    let lanes = lanes_st.ckts.len();
    let (bps, hint) = merged_breakpoints(lanes_st.ckts, opts.t_stop);
    // Barrier = first grid index at-or-after each breakpoint, with the
    // same rounding-tolerant ceil as the scalar march.
    let mut barriers: Vec<usize> = bps
        .iter()
        .map(|&bp| {
            let q = bp / opts.dt;
            let idx = if (q - q.round()).abs() < 1e-9 * q.max(1.0) {
                q.round()
            } else {
                q.ceil()
            };
            (idx as usize).clamp(1, n_steps)
        })
        .collect();
    barriers.dedup();

    let pairs: Vec<(NodeId, NodeId)> = lanes_st.ckts[0]
        .elements()
        .filter_map(|(_, _, e)| match e {
            Element::Capacitor { a, b, .. } => Some((*a, *b)),
            _ => None,
        })
        .collect();
    let mut hist: Vec<CapHistory> = (0..lanes).map(|_| CapHistory::new(pairs.len())).collect();
    for (l, h) in hist.iter_mut().enumerate() {
        h.push(0.0, &pairs, lanes_st.lane(l));
    }

    let k_hint = if hint.is_finite() {
        ((hint / opts.dt).floor() as usize).max(1)
    } else {
        usize::MAX
    };
    let k_max = ((lte.h_max / opts.dt).floor() as usize).max(1).min(k_hint);
    let p_ord = if trapezoidal { 3.0 } else { 2.0 }; // p + 1
    let grid_t = |i: usize| {
        if i == n_steps {
            opts.t_stop
        } else {
            opts.dt * i as f64
        }
    };

    let mut int_times = vec![0.0];
    let mut int_states: Vec<Vec<Vec<f64>>> = (0..lanes)
        .map(|l| vec![lanes_st.lane(l).to_vec()])
        .collect();
    let mut t = 0.0;
    let mut pos = 0usize;
    let mut k_next_lane = vec![1usize; lanes];
    let mut bar_idx = 0usize;
    while pos < n_steps {
        while bar_idx < barriers.len() && barriers[bar_idx] <= pos {
            bar_idx += 1;
        }
        let k_next = k_next_lane.iter().copied().min().expect("lanes >= 1");
        let mut k = k_next.min(k_max).min(n_steps - pos).max(1);
        if let Some(&bar) = barriers.get(bar_idx) {
            k = k.min(bar - pos);
        }
        let mut r_used: Vec<Option<f64>> = vec![None; lanes];
        loop {
            let t_target = grid_t(pos + k);
            if k == 1 {
                // Every lane takes the fixed path's reference step.
                for l in 0..lanes {
                    let mut t_l = t;
                    lanes_st.step_cell_lane(l, opts, nr, trapezoidal, &mut t_l, t_target)?;
                    if l == 0 {
                        let Lanes {
                            engines, seeded, ..
                        } = lanes_st;
                        seed_factors(engines, seeded);
                    }
                    r_used[l] = lte_ratio(
                        &hist[l],
                        &pairs,
                        lanes_st.lane(l),
                        t_target,
                        opts.dt,
                        trapezoidal,
                        lte,
                    );
                }
                t = t_target;
                break;
            }
            let h = t_target - t;
            let mut rejected = false;
            let mut nr_failed = false;
            for l in 0..lanes {
                match lanes_st.solve_lane(l, h, t_target, trapezoidal, nr) {
                    Ok(()) => {
                        if l == 0 {
                            let Lanes {
                                engines, seeded, ..
                            } = lanes_st;
                            seed_factors(engines, seeded);
                        }
                        let r = lte_ratio(
                            &hist[l],
                            &pairs,
                            &lanes_st.x_try_all[l * lanes_st.n_unk..(l + 1) * lanes_st.n_unk],
                            t_target,
                            h,
                            trapezoidal,
                            lte,
                        );
                        r_used[l] = r;
                        if r.is_some_and(|rv| rv > 1.0) {
                            mcml_obs::incr(mcml_obs::Counter::LteRejects);
                            rejected = true;
                        }
                    }
                    Err(_) => {
                        mcml_obs::incr(mcml_obs::Counter::TranRetries);
                        nr_failed = true;
                    }
                }
                if rejected || nr_failed {
                    break;
                }
            }
            if rejected || nr_failed {
                // One lane balked: the whole ensemble re-runs at the
                // halved step, staying aligned on the shared grid.
                k /= 2;
                continue;
            }
            for l in 0..lanes {
                mcml_obs::incr(mcml_obs::Counter::TranSteps);
                let (a, b) = (l * lanes_st.n_unk, (l + 1) * lanes_st.n_unk);
                let x_new = &lanes_st.x_try_all[a..b];
                update_caps(
                    &lanes_st.ckts[l],
                    &mut lanes_st.caps[l],
                    x_new,
                    h,
                    trapezoidal,
                );
                lanes_st.commit_lane(l);
            }
            t = t_target;
            break;
        }
        mcml_obs::add(mcml_obs::Counter::AdaptiveSteps, lanes as u64);
        let landed_barrier = barriers.get(bar_idx) == Some(&(pos + k));
        pos += k;
        for l in 0..lanes {
            if landed_barrier {
                hist[l].clear();
                k_next_lane[l] = 1;
            } else {
                let grown = match r_used[l] {
                    Some(r) => {
                        let f = if r > 0.0 {
                            0.9 * r.powf(-1.0 / p_ord)
                        } else {
                            f64::INFINITY
                        };
                        if f >= 2.0 {
                            (k * 2).min(k_max)
                        } else if r > 1.0 {
                            1
                        } else {
                            k
                        }
                    }
                    None => k,
                };
                if grown > k {
                    mcml_obs::incr(mcml_obs::Counter::HGrowths);
                }
                k_next_lane[l] = grown;
            }
            hist[l].push(t, &pairs, lanes_st.lane(l));
            int_states[l].push(lanes_st.lane(l).to_vec());
        }
        int_times.push(t);
    }
    Ok((int_times, int_states))
}

/// Free-running lockstep march: the trial step is the minimum of the
/// per-lane controller proposals; any lane's LTE reject shrinks the
/// step for the whole ensemble, any Newton failure halves it, and state
/// is committed only when every lane accepts — so all lanes share one
/// internal time grid. At one lane this is exactly the scalar free
/// controller.
fn march_adaptive_ensemble(
    lanes_st: &mut Lanes<'_, '_>,
    opts: &TranOptions,
    lte: crate::analysis::tran::AdaptiveOptions,
    nr: &NrOptions,
    trapezoidal: bool,
) -> Result<InternalGrid> {
    let lanes = lanes_st.ckts.len();
    let (bps, hint) = merged_breakpoints(lanes_st.ckts, opts.t_stop);
    let pairs: Vec<(NodeId, NodeId)> = lanes_st.ckts[0]
        .elements()
        .filter_map(|(_, _, e)| match e {
            Element::Capacitor { a, b, .. } => Some((*a, *b)),
            _ => None,
        })
        .collect();
    let mut hist: Vec<CapHistory> = (0..lanes).map(|_| CapHistory::new(pairs.len())).collect();
    for (l, h) in hist.iter_mut().enumerate() {
        h.push(0.0, &pairs, lanes_st.lane(l));
    }

    let h_base = opts.dt.clamp(lte.h_min, lte.h_max);
    let h_restart = (h_base / 64.0).max(lte.h_min);
    let p_ord = if trapezoidal { 3.0 } else { 2.0 }; // p + 1
    let mut h_next_lane = vec![h_restart; lanes];
    let mut bp_idx = 0usize;
    let eps_t = opts.t_stop * T_SNAP;

    let mut int_times = vec![0.0];
    let mut int_states: Vec<Vec<Vec<f64>>> = (0..lanes)
        .map(|l| vec![lanes_st.lane(l).to_vec()])
        .collect();
    let mut t = 0.0;
    while opts.t_stop - t > eps_t {
        while bp_idx < bps.len() && bps[bp_idx] <= t + eps_t {
            bp_idx += 1;
        }
        let next_bp = bps.get(bp_idx).copied();
        let h_hi = (opts.t_stop - t).min(lte.h_max).min(hint);
        if h_hi <= 0.0 {
            break;
        }
        let h_next = h_next_lane.iter().copied().fold(f64::INFINITY, f64::min);
        let mut h_try = h_next.min(h_hi).max(lte.h_min.min(h_hi));
        let mut lands_bp = false;
        if let Some(bp) = next_bp {
            if bp - t <= h_try + eps_t {
                h_try = bp - t;
                lands_bp = true;
            }
        }
        let mut level = 0u32;
        let mut r_used: Vec<Option<f64>> = vec![None; lanes];
        loop {
            let mut reject_r: Option<f64> = None;
            let mut nr_err: Option<SpiceError> = None;
            for l in 0..lanes {
                match lanes_st.solve_lane(l, h_try, t + h_try, trapezoidal, nr) {
                    Ok(()) => {
                        if l == 0 {
                            let Lanes {
                                engines, seeded, ..
                            } = lanes_st;
                            seed_factors(engines, seeded);
                        }
                        let r = lte_ratio(
                            &hist[l],
                            &pairs,
                            &lanes_st.x_try_all[l * lanes_st.n_unk..(l + 1) * lanes_st.n_unk],
                            t + h_try,
                            h_try,
                            trapezoidal,
                            lte,
                        );
                        r_used[l] = r;
                        if let Some(rv) = r {
                            if rv > 1.0 && h_try > lte.h_min * (1.0 + 1e-9) {
                                mcml_obs::incr(mcml_obs::Counter::LteRejects);
                                reject_r = Some(rv);
                            }
                        }
                    }
                    Err(e) => {
                        mcml_obs::incr(mcml_obs::Counter::TranRetries);
                        nr_err = Some(e);
                    }
                }
                if reject_r.is_some() || nr_err.is_some() {
                    break;
                }
            }
            if let Some(e) = nr_err {
                level += 1;
                if level > opts.max_subdiv {
                    return Err(retag_tran(e, t + h_try));
                }
                h_try /= 2.0;
                lands_bp = false;
                continue;
            }
            if let Some(rv) = reject_r {
                // The rejecting lane sets the ensemble's shrink; every
                // lane re-runs at the smaller step.
                let f = (0.9 * rv.powf(-1.0 / p_ord)).clamp(0.1, 0.5);
                h_try = (h_try * f).max(lte.h_min);
                lands_bp = false;
                continue;
            }
            // Ensemble accept: commit every lane.
            for l in 0..lanes {
                mcml_obs::incr(mcml_obs::Counter::TranSteps);
                let (a, b) = (l * lanes_st.n_unk, (l + 1) * lanes_st.n_unk);
                let x_new = &lanes_st.x_try_all[a..b];
                update_caps(
                    &lanes_st.ckts[l],
                    &mut lanes_st.caps[l],
                    x_new,
                    h_try,
                    trapezoidal,
                );
                lanes_st.commit_lane(l);
            }
            mcml_obs::add(mcml_obs::Counter::AdaptiveSteps, lanes as u64);
            t += h_try;
            if lands_bp {
                t = next_bp.expect("lands_bp implies a breakpoint");
            }
            if opts.t_stop - t <= eps_t {
                t = opts.t_stop;
            }
            for l in 0..lanes {
                let f = match r_used[l] {
                    Some(r) if r > 0.0 => (0.9 * r.powf(-1.0 / p_ord)).min(2.0),
                    Some(_) => 2.0,
                    None => 1.0,
                };
                let h_new = (h_try * f).clamp(lte.h_min, lte.h_max);
                if h_new > h_try {
                    mcml_obs::incr(mcml_obs::Counter::HGrowths);
                }
                h_next_lane[l] = h_new;
                if lands_bp {
                    hist[l].clear();
                    h_next_lane[l] = h_restart;
                }
                hist[l].push(t, &pairs, lanes_st.lane(l));
                int_states[l].push(lanes_st.lane(l).to_vec());
            }
            int_times.push(t);
            break;
        }
    }
    Ok((int_times, int_states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWave;

    fn rc_lane(level: f64) -> (Circuit, NodeId, crate::circuit::ElementId) {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        let v = c.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, level, 1e-9));
        c.resistor("R", vin, out, 1.0e3);
        c.capacitor("C", out, Circuit::GND, 1.0e-12);
        (c, out, v)
    }

    fn assert_bitwise(a: &TranResult, b: &TranResult) {
        assert_eq!(a.times(), b.times());
        for (i, (&t, sa)) in a.times().iter().zip(a.states_raw()).enumerate() {
            let sb = &b.states_raw()[i];
            for (x, y) in sa.iter().zip(sb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "t={t}");
            }
        }
    }

    #[test]
    fn single_lane_fixed_is_bitwise_scalar() {
        let (c, _, _) = rc_lane(1.0);
        let opts = TranOptions::new(8e-9, 5e-12);
        let scalar = c.transient(&opts).unwrap();
        let ens = ensemble_transient(std::slice::from_ref(&c), &opts).unwrap();
        assert_bitwise(&scalar, &ens[0]);
    }

    #[test]
    fn single_lane_aligned_is_bitwise_scalar() {
        let (c, _, _) = rc_lane(1.0);
        let opts = TranOptions::new(8e-9, 5e-12).adaptive_grid_aligned(1e-4, 100e-12);
        let scalar = c.transient(&opts).unwrap();
        let ens = ensemble_transient(std::slice::from_ref(&c), &opts).unwrap();
        assert_eq!(scalar.steps_taken(), ens[0].steps_taken());
        assert_bitwise(&scalar, &ens[0]);
    }

    #[test]
    fn single_lane_free_adaptive_is_bitwise_scalar() {
        let (c, _, _) = rc_lane(1.0);
        let opts = TranOptions::new(8e-9, 5e-12).adaptive(1e-4, 1e-13, 500e-12);
        let scalar = c.transient(&opts).unwrap();
        let ens = ensemble_transient(std::slice::from_ref(&c), &opts).unwrap();
        assert_eq!(scalar.steps_taken(), ens[0].steps_taken());
        assert_bitwise(&scalar, &ens[0]);
    }

    #[test]
    fn lanes_superpose_like_scalar_runs() {
        // Linear circuit: each lane's ensemble trajectory must match its
        // own scalar run to solver precision even though the ensemble
        // shares step-size decisions across lanes.
        let levels = [0.5, 1.0, 2.0, 4.0];
        let built: Vec<_> = levels.iter().map(|&v| rc_lane(v)).collect();
        let ckts: Vec<Circuit> = built.iter().map(|(c, _, _)| c.clone()).collect();
        let opts = TranOptions::new(8e-9, 5e-12).adaptive_grid_aligned(1e-5, 100e-12);
        let ens = ensemble_transient(&ckts, &opts).unwrap();
        for (((c, out, _), res), level) in built.iter().zip(&ens).zip(levels) {
            let scalar = c.transient(&opts).unwrap();
            let (ws, we) = (scalar.voltage(*out), res.voltage(*out));
            let worst = ws
                .iter()
                .zip(we.iter())
                .map(|((_, a), (_, b))| (a - b).abs())
                .fold(0.0f64, f64::max);
            // The ensemble's shared internal grid differs from each
            // scalar run's own grid, so trajectories may differ by the
            // local truncation error — a few × reltol × amplitude.
            assert!(
                worst < 1e-4 * level,
                "lane deviates from scalar by {worst} at level {level}"
            );
        }
    }

    #[test]
    fn supply_current_per_lane() {
        let built: Vec<_> = [1.0, 2.0].iter().map(|&v| rc_lane(v)).collect();
        let ckts: Vec<Circuit> = built.iter().map(|(c, _, _)| c.clone()).collect();
        let opts = TranOptions::new(10e-9, 10e-12);
        let ens = ensemble_transient(&ckts, &opts).unwrap();
        let i0 = ens[0].supply_current(built[0].2).unwrap();
        let i1 = ens[1].supply_current(built[1].2).unwrap();
        // Twice the step level drives twice the peak current (linear RC).
        assert!((i1.max() / i0.max() - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "does not share lane 0's topology")]
    fn mismatched_topology_rejected() {
        let (a, _, _) = rc_lane(1.0);
        let mut b = Circuit::new();
        let vin = b.node("in");
        b.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
        b.resistor("R", vin, Circuit::GND, 1.0e3);
        let _ = ensemble_transient(&[a, b], &TranOptions::new(1e-9, 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_ensemble_rejected() {
        let _ = ensemble_transient(&[], &TranOptions::new(1e-9, 1e-12));
    }
}
