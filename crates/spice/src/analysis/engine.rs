//! Shared MNA assembly and damped Newton–Raphson iteration.
//!
//! The engine owns the per-circuit [`StampPlan`] plus every buffer the
//! Newton loop needs (Jacobian values, residual, update, dense scratch,
//! sparse LU factors), so after the first iteration the inner loop runs
//! allocation-free: re-assembly refreshes a flat values buffer, the
//! sparse backend reuses its symbolic factorisation numerically, and
//! solves land in preallocated vectors.

use std::borrow::Borrow;
use std::sync::Arc;

use crate::analysis::plan::{MosBypassState, StampPlan};
use crate::circuit::{Circuit, NodeId};
use crate::element::Element;
use crate::error::SpiceError;
use crate::matrix::dense::DenseWorkspace;
use crate::matrix::sparse::SparseLu;
use crate::matrix::{SolverKind, SystemMatrix, AUTO_DENSE_LIMIT};
use crate::Result;

/// Per-capacitor companion-model state for transient analysis.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CapState {
    /// Capacitance (F), cached from the element.
    pub c: f64,
    /// Voltage across the capacitor at the previous accepted time point.
    pub prev_v: f64,
    /// Current through the capacitor at the previous accepted time point
    /// (used by the trapezoidal rule).
    pub prev_i: f64,
}

/// Companion-model context handed to assembly during transient steps.
/// Borrows the caller's capacitor states — building one per Newton solve
/// is free.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompanionCtx<'c> {
    /// Current step size (s).
    pub h: f64,
    /// True for trapezoidal, false for backward Euler.
    pub trapezoidal: bool,
    /// Parallel to the circuit's element list; `Some` for capacitors.
    pub caps: &'c [Option<CapState>],
}

/// Newton–Raphson tuning knobs shared by DC and transient.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NrOptions {
    pub max_iter: usize,
    pub vtol: f64,
    pub itol: f64,
    pub vstep_limit: f64,
    pub solver: SolverKind,
    /// Quiescent-MOS bypass tolerance (V); `0.0` disables the bypass.
    /// See the `plan` module docs for the reuse rule and error bound.
    pub bypass_tol: f64,
    /// Demand-driven refactorisation (modified Newton): keep solving
    /// against the last numeric LU factors — across iterations *and*
    /// steps whose [`JacKey`]s are chord-compatible (same integrator
    /// and gmin; the step size may drift) — and refactor only when the
    /// iteration's contraction rate says the stale Jacobian has stopped
    /// converging. The residual is always assembled fresh, so the
    /// convergence test is unchanged; only the Newton *direction* comes
    /// from a lagged Jacobian. Off by default: full Newton refactors
    /// every iteration.
    pub reuse_jacobian: bool,
}

impl Default for NrOptions {
    fn default() -> Self {
        Self {
            max_iter: 150,
            vtol: 1e-6,
            itol: 1e-9,
            vstep_limit: 0.4,
            solver: SolverKind::Auto,
            bypass_tol: 0.0,
            reuse_jacobian: false,
        }
    }
}

/// Batched observability tallies for one Newton sequence, flushed once
/// per `solve_nr` exit so the inner loop stays instrumentation-free.
#[derive(Default)]
struct NrTally {
    iters: u64,
    symbolic_reuse: u64,
    numeric_refactor: u64,
    stamps_skipped: u64,
    mos_evals: u64,
    mos_bypassed: u64,
    lane_refactors: u64,
}

impl NrTally {
    fn flush(&self, count_lane_refactors: bool) {
        use mcml_obs::{add, Counter};
        add(Counter::NrIterations, self.iters);
        add(Counter::MatrixSolves, self.iters);
        add(Counter::SymbolicReuse, self.symbolic_reuse);
        add(Counter::NumericRefactor, self.numeric_refactor);
        add(Counter::LinearStampsSkipped, self.stamps_skipped);
        add(Counter::MosEvals, self.mos_evals);
        add(Counter::MosBypassed, self.mos_bypassed);
        if count_lane_refactors {
            add(Counter::LaneRefactors, self.lane_refactors);
        }
    }
}

/// Everything the stamped Jacobian *values* can depend on besides the
/// MOS linearizations: the companion conductances (step size and
/// integration method) and the gmin ground leak. Source waveforms only
/// reach the residual, never the matrix, so they are deliberately
/// absent. Used by the ensemble engine's reuse check: when an assembly
/// evaluated zero MOS devices (every device served from its bypass
/// cache) and this key matches the one recorded at the last
/// factorisation, the stamped values are bit-identical to the factored
/// ones and the refactorisation can be skipped outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JacKey {
    /// `h.to_bits()` of the companion context, `u64::MAX` for DC.
    h_bits: u64,
    trapezoidal: bool,
    gmin_bits: u64,
}

impl JacKey {
    fn new(companion: Option<&CompanionCtx<'_>>, gmin: f64) -> Self {
        Self {
            h_bits: companion.map_or(u64::MAX, |c| c.h.to_bits()),
            trapezoidal: companion.is_some_and(|c| c.trapezoidal),
            gmin_bits: gmin.to_bits(),
        }
    }

    /// Whether factors computed under `self` may serve as a *lagged*
    /// Jacobian for a solve under `other`. Exact reuse demands equal
    /// keys; the chord path additionally tolerates a changed step size
    /// — an `h` change only rescales the capacitor companion
    /// conductances, a mild, uniform Jacobian drift that the
    /// contraction monitor polices like any other staleness. Method or
    /// gmin changes, or crossing the DC/transient boundary, change the
    /// matrix structure semantics and always demand a refactor.
    fn chord_compatible(self, other: Self) -> bool {
        self.trapezoidal == other.trapezoidal
            && self.gmin_bits == other.gmin_bits
            && self.h_bits != u64::MAX
            && other.h_bits != u64::MAX
    }
}

/// Generic over how the circuit is held: the scalar and ensemble paths
/// borrow (`Engine<&Circuit>`), while the partitioned solver's per-block
/// engines *own* their sub-circuits (`Engine<Circuit>`) so the boundary
/// replica-source values can be rewritten between solves without
/// fighting the borrow of a long-lived engine.
pub(crate) struct Engine<C: Borrow<Circuit>> {
    pub ckt: C,
    pub n_node_unk: usize,
    pub n_unk: usize,
    plan: Arc<StampPlan>,
    /// Jacobian values, parallel to the plan's pattern.
    vals: Vec<f64>,
    /// Residual `f(x)`.
    f: Vec<f64>,
    /// Right-hand side / Newton update (`−f`, overwritten by `dx`).
    dx: Vec<f64>,
    /// Scratch for the sparse backend's separate-rhs solve.
    rhs: Vec<f64>,
    dense: DenseWorkspace,
    /// Sparse factors; `Some` once factored, reused numerically while the
    /// fixed pivot order stays healthy.
    lu: Option<SparseLu>,
    /// Per-MOS cached linearizations for the quiescent-device bypass,
    /// parallel to the plan's MOS indices. Persists across Newton
    /// iterations *and* time steps — idle devices stay bypassed for the
    /// whole quiet window.
    mos_state: Vec<MosBypassState>,
    /// When set (ensemble lanes only — the scalar path never enables
    /// it), a Newton iteration whose assembly evaluated zero MOS devices
    /// and whose [`JacKey`] matches `last_factored` reuses the existing
    /// sparse factors without a refactorisation: the stamped values are
    /// provably bit-identical to the ones already factored.
    reuse_unchanged_jacobian: bool,
    /// The [`JacKey`] the current sparse factors were computed under;
    /// `None` when no factors exist or they came from a foreign lane.
    last_factored: Option<JacKey>,
}

impl<C: Borrow<Circuit>> Engine<C> {
    pub fn new(ckt: C) -> Self {
        let (n_node_unk, n_unk) = {
            let c = ckt.borrow();
            let n_node_unk = c.node_count() - 1;
            (n_node_unk, n_node_unk + c.branch_count())
        };
        let plan = Arc::new(StampPlan::build(ckt.borrow(), n_node_unk, n_unk));
        Self::with_shared_plan(ckt, plan)
    }

    /// Build an engine around an existing stamp plan — the ensemble path,
    /// where every lane shares one plan built from lane 0's circuit. The
    /// caller guarantees `plan` was built for a circuit with identical
    /// topology (same elements in the same order, same node/branch
    /// counts); only source waveform values may differ.
    pub fn with_shared_plan(ckt: C, plan: Arc<StampPlan>) -> Self {
        let n_node_unk = ckt.borrow().node_count() - 1;
        let n_unk = n_node_unk + ckt.borrow().branch_count();
        let nnz = plan.pattern.nnz();
        let n_mos = plan.n_mos;
        Self {
            ckt,
            n_node_unk,
            n_unk,
            plan,
            vals: vec![0.0; nnz],
            f: vec![0.0; n_unk],
            dx: vec![0.0; n_unk],
            rhs: vec![0.0; n_unk],
            dense: DenseWorkspace::new(),
            lu: None,
            mos_state: vec![MosBypassState::default(); n_mos],
            reuse_unchanged_jacobian: false,
            last_factored: None,
        }
    }

    /// A cheap clone of this engine's stamp plan for sharing with sibling
    /// lanes.
    pub fn plan_handle(&self) -> Arc<StampPlan> {
        Arc::clone(&self.plan)
    }

    /// Adopt another engine's sparse factors (symbolic structure + its
    /// numbers). The first solve after this replays the recorded
    /// elimination order numerically instead of re-running the symbolic
    /// DFS and pivot search — the ensemble's "shared symbolic LU". The
    /// adopted numbers are treated as stale (`last_factored` cleared), so
    /// the next Newton iteration always refactors before solving.
    pub fn adopt_factors_from(&mut self, donor: &Engine<impl Borrow<Circuit>>) {
        self.lu = donor.lu.clone();
        self.last_factored = None;
    }

    /// Enable the unchanged-Jacobian reuse check (ensemble lanes only;
    /// see the field docs). Off by default — the scalar path is the
    /// reference the golden and perf baselines pin, so it stays exactly
    /// as it was.
    pub fn set_reuse_unchanged_jacobian(&mut self, on: bool) {
        self.reuse_unchanged_jacobian = on;
    }

    #[inline]
    fn unk(node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    #[inline]
    fn v(x: &[f64], node: NodeId) -> f64 {
        match Self::unk(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Reference assembly: build Jacobian `mat` and residual `f` (KCL:
    /// sum of currents leaving each node; KVL rows for voltage-source
    /// branches) at state `x`, time `t`, from scratch.
    ///
    /// The Newton loop no longer calls this — it uses the stamp plan —
    /// but it stays as the independent oracle the equivalence tests
    /// compare the plan against (`crate::testing`).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_reference(
        &self,
        x: &[f64],
        t: f64,
        companion: Option<&CompanionCtx<'_>>,
        gmin: f64,
        src_scale: f64,
        mat: &mut SystemMatrix,
        f: &mut [f64],
    ) {
        mat.clear();
        f.iter_mut().for_each(|v| *v = 0.0);

        // gmin from every non-ground node to ground keeps the matrix
        // non-singular for floating subcircuits.
        for i in 0..self.n_node_unk {
            mat.add(i, i, gmin);
            f[i] += gmin * x[i];
        }

        for (idx, (_, elem)) in self
            .ckt
            .borrow()
            .elements()
            .map(|(id, n, e)| (id.index(), (n, e)))
        {
            match elem {
                Element::Resistor { a, b, ohms } => {
                    let g = 1.0 / ohms;
                    let i = g * (Self::v(x, *a) - Self::v(x, *b));
                    self.stamp_conductance(mat, f, *a, *b, g, i);
                }
                Element::Capacitor { a, b, .. } => {
                    let Some(ctx) = companion else { continue };
                    let Some(state) = ctx.caps[idx] else { continue };
                    let (geq, hist) = companion_terms(&state, ctx.h, ctx.trapezoidal);
                    let v_now = Self::v(x, *a) - Self::v(x, *b);
                    let i = geq * v_now + hist;
                    self.stamp_conductance(mat, f, *a, *b, geq, i);
                }
                Element::Vsource {
                    p, n, wave, branch, ..
                } => {
                    let br = self.n_node_unk + branch;
                    let i_br = x[br];
                    // KCL contributions of the branch current.
                    if let Some(pi) = Self::unk(*p) {
                        f[pi] += i_br;
                        mat.add(pi, br, 1.0);
                    }
                    if let Some(ni) = Self::unk(*n) {
                        f[ni] -= i_br;
                        mat.add(ni, br, -1.0);
                    }
                    // KVL row: v_p − v_n = V(t)·scale.
                    let target = wave.value(t) * src_scale;
                    f[br] = Self::v(x, *p) - Self::v(x, *n) - target;
                    if let Some(pi) = Self::unk(*p) {
                        mat.add(br, pi, 1.0);
                    }
                    if let Some(ni) = Self::unk(*n) {
                        mat.add(br, ni, -1.0);
                    }
                }
                Element::Isource { p, n, wave } => {
                    let i = wave.value(t) * src_scale;
                    if let Some(pi) = Self::unk(*p) {
                        f[pi] += i;
                    }
                    if let Some(ni) = Self::unk(*n) {
                        f[ni] -= i;
                    }
                }
                Element::Mos { d, g, s, b, dev } => {
                    let e = dev.eval(
                        Self::v(x, *g),
                        Self::v(x, *d),
                        Self::v(x, *s),
                        Self::v(x, *b),
                    );
                    // Current enters the drain, leaves the source.
                    if let Some(di) = Self::unk(*d) {
                        f[di] += e.id;
                        if let Some(gi) = Self::unk(*g) {
                            mat.add(di, gi, e.gm);
                        }
                        mat.add(di, di, e.gds);
                        if let Some(si) = Self::unk(*s) {
                            mat.add(di, si, e.gms);
                        }
                        if let Some(bi) = Self::unk(*b) {
                            mat.add(di, bi, e.gmb);
                        }
                    }
                    if let Some(si) = Self::unk(*s) {
                        f[si] -= e.id;
                        if let Some(gi) = Self::unk(*g) {
                            mat.add(si, gi, -e.gm);
                        }
                        if let Some(di) = Self::unk(*d) {
                            mat.add(si, di, -e.gds);
                        }
                        mat.add(si, si, -e.gms);
                        if let Some(bi) = Self::unk(*b) {
                            mat.add(si, bi, -e.gmb);
                        }
                    }
                }
            }
        }
    }

    fn stamp_conductance(
        &self,
        mat: &mut SystemMatrix,
        f: &mut [f64],
        a: NodeId,
        b: NodeId,
        g: f64,
        i_ab: f64,
    ) {
        if let Some(ai) = Self::unk(a) {
            f[ai] += i_ab;
            mat.add(ai, ai, g);
            if let Some(bi) = Self::unk(b) {
                mat.add(ai, bi, -g);
            }
        }
        if let Some(bi) = Self::unk(b) {
            f[bi] -= i_ab;
            mat.add(bi, bi, g);
            if let Some(ai) = Self::unk(a) {
                mat.add(bi, ai, -g);
            }
        }
    }

    /// Factor (or numerically refactor) and solve `J·dx = −f` for the
    /// current `vals`/`f`, leaving the update in `self.dx`.
    ///
    /// `reusable` is the ensemble fast path: the caller proved the
    /// stamped values are bit-identical to the currently factored ones,
    /// so the triangular solve runs against the existing factors without
    /// a refactorisation.
    fn solve_linear(
        &mut self,
        solver: SolverKind,
        key: JacKey,
        reusable: bool,
        tally: &mut NrTally,
    ) -> Result<()> {
        let use_dense = match solver {
            SolverKind::Dense => true,
            SolverKind::Sparse => false,
            SolverKind::Auto => self.n_unk <= AUTO_DENSE_LIMIT,
        };
        if use_dense {
            for (d, fv) in self.dx.iter_mut().zip(&self.f) {
                *d = -fv;
            }
            let _t = mcml_obs::span(mcml_obs::Stage::LuFactor);
            return self
                .dense
                .solve_csc_into(&self.plan.pattern, &self.vals, &mut self.dx);
        }

        if reusable && self.lu.is_some() {
            // The factors already match `vals` bit for bit; skip straight
            // to the triangular solve.
            tally.symbolic_reuse += 1;
        } else {
            let _t = mcml_obs::span(mcml_obs::Stage::LuFactor);
            if self.reuse_unchanged_jacobian {
                tally.lane_refactors += 1;
            }
            // Invalidate first: a failed refactor can leave the factors
            // partially updated, and they must never match a later
            // reuse check.
            self.last_factored = None;
            match &mut self.lu {
                Some(lu) => {
                    // Numeric-only refactorisation on the cached symbolic
                    // structure; a degraded pivot falls back to a fresh
                    // symbolic factorisation (new pivot order).
                    tally.numeric_refactor += 1;
                    if lu.refactor(&self.plan.pattern, &self.vals).is_ok() {
                        tally.symbolic_reuse += 1;
                    } else {
                        self.lu = Some(SparseLu::factor_csc(&self.plan.pattern, &self.vals)?);
                    }
                }
                None => {
                    self.lu = Some(SparseLu::factor_csc(&self.plan.pattern, &self.vals)?);
                }
            }
            self.last_factored = Some(key);
        }
        let lu = self.lu.as_ref().expect("factored above");
        for (r, fv) in self.rhs.iter_mut().zip(&self.f) {
            *r = -fv;
        }
        let _t = mcml_obs::span(mcml_obs::Stage::LuSolve);
        lu.solve_into(&self.rhs, &mut self.dx);
        Ok(())
    }

    /// Damped Newton–Raphson from the warm start in `x`.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_nr(
        &mut self,
        x: &mut [f64],
        t: f64,
        companion: Option<&CompanionCtx<'_>>,
        gmin: f64,
        src_scale: f64,
        opts: &NrOptions,
        analysis: &'static str,
    ) -> Result<()> {
        let mut tally = NrTally::default();
        let key = JacKey::new(companion, gmin);
        // Demand-driven refactorisation state (see `NrOptions::
        // reuse_jacobian`). `chord_enabled` governs the whole solve and
        // only drops permanently when the final polish begins;
        // `refactor_pending` is the contraction monitor's one-shot
        // demand — the next iteration factors fresh, after which the
        // chord resumes (and the monitor re-trips if even the refreshed
        // factors go stale again). A genuinely nonlinear step thus
        // alternates chord/fresh instead of degrading to
        // refactor-every-iteration.
        let mut chord_enabled = opts.reuse_jacobian;
        let mut refactor_pending = false;
        let mut prev_dv: Option<f64> = None;
        // A solve is "clean" while no iteration has needed damping and
        // the contraction monitor has never tripped — i.e. the lagged
        // Jacobian has behaved like the exact one throughout. A clean
        // chord convergence may be accepted as-is (the residual it is
        // judged by is always assembled fresh); a dirty one must be
        // polished with a full-Newton iteration first.
        let mut clean = true;
        for iter in 0..opts.max_iter {
            tally.iters += 1;
            let evals;
            {
                let _t = mcml_obs::span(mcml_obs::Stage::MnaAssemble);
                let mos = self.plan.assemble_into(
                    self.ckt.borrow(),
                    x,
                    t,
                    companion,
                    gmin,
                    src_scale,
                    opts.bypass_tol,
                    &mut self.mos_state,
                    &mut self.vals,
                    &mut self.f,
                );
                tally.mos_evals += mos.evals;
                tally.mos_bypassed += mos.bypassed;
                evals = mos.evals;
            }
            tally.stamps_skipped += self.plan.linear_stamps;
            // Ensemble fast path: an assembly with zero MOS evaluations
            // under the same (h, method, gmin) as the last factorisation
            // reproduced the factored values bit for bit (bypassed
            // devices stamp their cached conductances; everything else in
            // the matrix is constant given the key), so the factors can
            // be reused without refactoring.
            let exact =
                self.reuse_unchanged_jacobian && evals == 0 && self.last_factored == Some(key);
            // Demand-driven (modified-Newton) reuse: solve against the
            // stale numeric factors while they were computed under the
            // same key — across iterations and across steps — and let
            // the contraction monitor below decide when a refactor is
            // actually demanded. The residual `f` is fresh either way,
            // so the convergence test never lies.
            let stale = !exact
                && chord_enabled
                && !refactor_pending
                && self.lu.is_some()
                && self.last_factored.is_some_and(|k| k.chord_compatible(key));
            let reusable = exact || stale;
            if let Err(e) = self.solve_linear(opts.solver, key, reusable, &mut tally) {
                tally.flush(self.reuse_unchanged_jacobian);
                return Err(e);
            }
            if !stale {
                // Either a fresh factorisation just ran or the factors
                // are bit-exact — the monitor's demand is satisfied.
                refactor_pending = false;
            }

            // Damping: cap the largest node-voltage update.
            let max_dv = self.dx[..self.n_node_unk]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()));
            let damp = if max_dv > opts.vstep_limit {
                opts.vstep_limit / max_dv
            } else {
                1.0
            };
            for (xi, di) in x.iter_mut().zip(self.dx.iter()) {
                *xi += damp * di;
            }
            if !x.iter().all(|v| v.is_finite()) {
                tally.flush(self.reuse_unchanged_jacobian);
                return Err(SpiceError::NoConvergence {
                    analysis,
                    time: t,
                    iterations: iter,
                });
            }

            let max_f = self.f[..self.n_node_unk]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()));
            if damp == 1.0 && max_dv < opts.vtol && max_f < opts.itol {
                if stale && !clean {
                    // Converged along a lagged direction after a rough
                    // ride (damping or a monitor trip earlier in this
                    // solve). Polish with one full-Newton iteration so
                    // the accepted point satisfies the tolerances with
                    // a *fresh* Jacobian direction — the same
                    // acceptance the scalar path applies — instead of
                    // wherever in the tolerance ball the chord happened
                    // to stop. Keeps the lagged-Jacobian wobble out of
                    // the LTE controller and the recorded waveforms. A
                    // *clean* chord convergence skips the polish: every
                    // iteration contracted at full Newton rate, so the
                    // stale factors were numerically indistinguishable
                    // from fresh ones, and the fresh residual already
                    // vouches for the point.
                    chord_enabled = false;
                    prev_dv = Some(max_dv);
                    continue;
                }
                tally.flush(self.reuse_unchanged_jacobian);
                return Ok(());
            }

            // Contraction monitor for the stale-factor path: a chord
            // iteration that needed damping, or that failed to shrink
            // the largest update by at least half, means the lagged
            // Jacobian no longer points downhill fast enough — demand
            // one real refactorisation before chording again.
            if damp < 1.0 {
                clean = false;
            }
            if stale && (damp < 1.0 || prev_dv.is_some_and(|p| max_dv > 0.7 * p)) {
                refactor_pending = true;
                clean = false;
            }
            prev_dv = Some(max_dv);
        }
        tally.flush(self.reuse_unchanged_jacobian);
        Err(SpiceError::NoConvergence {
            analysis,
            time: t,
            iterations: opts.max_iter,
        })
    }
}

/// Companion conductance and history current for a capacitor.
pub(crate) fn companion_terms(state: &CapState, h: f64, trapezoidal: bool) -> (f64, f64) {
    if trapezoidal {
        let geq = 2.0 * state.c / h;
        (geq, -geq * state.prev_v - state.prev_i)
    } else {
        let geq = state.c / h;
        (geq, -geq * state.prev_v)
    }
}

/// Initialise companion states (capacitor voltages) from a solved state.
pub(crate) fn init_cap_states(ckt: &Circuit, x: &[f64]) -> Vec<Option<CapState>> {
    ckt.elements()
        .map(|(_, _, e)| match e {
            Element::Capacitor { a, b, farads } => Some(CapState {
                c: *farads,
                prev_v: v_node(x, *a) - v_node(x, *b),
                prev_i: 0.0,
            }),
            _ => None,
        })
        .collect()
}

/// Dense `(row-major matrix, residual)` snapshot of one assembly path.
pub(crate) type DenseSystem = (Vec<f64>, Vec<f64>);

/// Voltage accessor used by the analyses when mapping states to
/// waveforms (node voltages sit at `index - 1`; ground is 0 V).
#[inline]
pub(crate) fn v_node(x: &[f64], node: NodeId) -> f64 {
    if node.is_ground() {
        0.0
    } else {
        x[node.index() - 1]
    }
}

impl Engine<Circuit> {
    /// Mutable access to an owned circuit — the partitioned solver
    /// rewrites its boundary replica-source values between solves.
    /// Source waveform values never reach the stamp plan or the matrix
    /// sparsity (they only enter the residual), so this cannot
    /// invalidate the engine's cached plan or factors; the caller must
    /// not change the topology.
    pub fn ckt_mut(&mut self) -> &mut Circuit {
        &mut self.ckt
    }
}

impl<C: Borrow<Circuit>> Engine<C> {
    /// Assemble both paths to dense `(matrix, residual)` pairs — the
    /// equivalence-test hook behind `crate::testing`.
    pub(crate) fn assemble_both_dense(
        &mut self,
        x: &[f64],
        t: f64,
        companion: Option<&CompanionCtx<'_>>,
        gmin: f64,
        src_scale: f64,
    ) -> (DenseSystem, DenseSystem) {
        let n = self.n_unk;

        let mut mat = SystemMatrix::new(n);
        let mut f_ref = vec![0.0; n];
        self.assemble_reference(x, t, companion, gmin, src_scale, &mut mat, &mut f_ref);
        mat.consolidate();
        let mut a_ref = vec![0.0; n * n];
        for (r, row) in mat.rows().iter().enumerate() {
            for &(c, v) in row {
                a_ref[r * n + c] += v;
            }
        }

        self.plan.assemble_into(
            self.ckt.borrow(),
            x,
            t,
            companion,
            gmin,
            src_scale,
            0.0, // the equivalence oracle always evaluates for real
            &mut self.mos_state,
            &mut self.vals,
            &mut self.f,
        );
        let mut a_plan = vec![0.0; n * n];
        for c in 0..n {
            for (r, v) in self.plan.pattern.col(c, &self.vals) {
                a_plan[r * n + c] += v;
            }
        }

        ((a_ref, f_ref), (a_plan, self.f.clone()))
    }
}
