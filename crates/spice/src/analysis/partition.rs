//! Connected-component / block-triangular partitioning of the MNA solve.
//!
//! MCML and PG-MCML netlists are naturally block-structured: each cell is
//! a differential island whose only couplings to the rest of the design
//! are the shared supply rails (held by voltage sources) and the
//! high-impedance gate inputs of downstream cells. Splitting the node
//! graph at the rail nodes therefore decomposes the MNA system into
//! small, nearly independent blocks — and because a MOSFET's gate and
//! bulk terminals carry no current (they contribute Jacobian *columns*
//! to the drain/source rows but no KCL row entries of their own), the
//! inter-block coupling is strictly one-directional: upstream outputs
//! feed downstream gates, never the reverse. The quotient graph over
//! blocks is a DAG (after merging the rare strongly-connected cluster,
//! e.g. a latch coupled only through gates), so a single topological
//! sweep per time step solves every block against already-final upstream
//! interface voltages. No inner relaxation loop is needed; the result
//! matches the monolithic Newton solve to solver tolerance.
//!
//! # Splitting rule
//!
//! 1. **Pin the rails.** Run a fixpoint over the voltage sources: a
//!    source with one terminal at ground (or at an already-pinned node)
//!    pins its other terminal to a known waveform — a *chain* of source
//!    values. Sources forming a loop, or floating between two free
//!    nodes, abort partitioning (the monolithic path handles them).
//! 2. **Union the free nodes** over the bidirectional couplings:
//!    resistors, capacitors and current sources between two free nodes,
//!    and the drain–source pair of every MOSFET.
//! 3. **Direct the gate edges.** A free gate (or bulk) node in component
//!    `A` driving a device whose channel lives in component `B` adds the
//!    edge `A → B`. Strongly-connected components of this quotient graph
//!    are merged into one block; the condensation is topologically
//!    ordered, upstream first.
//!
//! # Block sub-circuits
//!
//! Each block owns a real [`Circuit`] holding its elements verbatim; any
//! terminal outside the block (a pinned rail or an upstream free node)
//! becomes a local boundary node held by a *replica* voltage source
//! whose DC value is rewritten before every solve. The block then runs
//! the ordinary damped-Newton [`Engine`] — stamp plan, sparse/dense LU,
//! quiescent-MOS bypass and per-block chord reuse all come along for
//! free, and a block small enough for the dense fast path takes it.
//!
//! # Event-driven scheduling and the skip rule
//!
//! Per committed sub-step, a block is re-solved only when it is not yet
//! settled (its last solve still moved some node voltage by more than
//! `vtol`) or some boundary input moved by more than the skip tolerance
//! (the bypass tolerance when enabled, else `vtol`) since the last
//! solve; otherwise its cached solution is replayed and only its
//! companion states advance (exact under frozen voltages). The identity
//! `block_solves + block_skips == blocks × committed sub-steps` holds
//! per run. Supply currents are reconstructed exactly from the replica
//! branch currents: KCL at each rail node determines the global source
//! currents by a leaves-first sweep over the pinning forest, with
//! rail-to-rail elements evaluated directly and a `(1 − replicas)·gmin`
//! correction so the accounting matches the monolithic gmin row.

use std::collections::HashMap;

use crate::analysis::dc::{branch_map, OpPoint};
use crate::analysis::engine::{
    companion_terms, init_cap_states, v_node, CapState, CompanionCtx, Engine,
};
use crate::analysis::tran::{retag_tran, update_caps, Integrator, TranOptions, TranResult};
use crate::circuit::{Circuit, ElementId, NodeId};
use crate::element::Element;
use crate::error::SpiceError;
use crate::source::SourceWave;
use crate::Result;

/// A node's role in the partition.
#[derive(Debug, Clone, Copy)]
enum NodeClass {
    Ground,
    /// Held by a voltage-source chain; index into `PartitionStructure::pins`.
    Pinned(usize),
    /// Free unknown; member of the given solve block.
    #[allow(dead_code)] // block id kept for diagnostics
    Free(usize),
}

/// A rail node pinned by the voltage-source fixpoint.
#[derive(Debug, Clone)]
struct Pin {
    /// Global node index of the pinned node.
    node: usize,
    /// The voltage source that pinned it.
    elem: ElementId,
    /// +1 when `node` is the source's positive terminal.
    sign: f64,
    /// Global node index of the other (parent) terminal; 0 = ground.
    parent: usize,
    /// `v(node, t) = Σ sign_i · wave_i(t)` over the chain to ground.
    chain: Vec<(f64, ElementId)>,
}

/// Which boundary value a replica source mirrors.
#[derive(Debug, Clone, Copy)]
enum Boundary {
    /// A pinned rail; index into `PartitionStructure::pins`.
    Pin(usize),
    /// A free node outside this block; global unknown index (`node - 1`).
    Upstream(usize),
}

/// One solve block of the condensed quotient DAG, in topological order.
#[derive(Debug, Clone)]
struct BlockStructure {
    /// Global node indices of the member free nodes.
    members: Vec<usize>,
    /// Global element ids owned by this block, in circuit order.
    elems: Vec<ElementId>,
    /// Boundary nodes referenced by the block's elements, in the order
    /// their replica sources are created (global node index + value).
    boundaries: Vec<(usize, Boundary)>,
    /// True when the block contains a time-varying current source and
    /// must re-solve every sub-step regardless of its inputs.
    always_active: bool,
}

/// Topology-only partition of a circuit: value-independent, so it is
/// shared across ensemble lanes with identical topology (the same
/// contract as the shared stamp plan).
#[derive(Debug, Clone)]
pub(crate) struct PartitionStructure {
    class: Vec<NodeClass>,
    /// Pins in pinning order (parents before children).
    pins: Vec<Pin>,
    /// Blocks in topological order (upstream first).
    blocks: Vec<BlockStructure>,
    /// Elements with every terminal on a rail or ground, excluded from
    /// all blocks and evaluated directly during supply accounting.
    rail_elems: Vec<ElementId>,
    /// Free nodes in element-less components, frozen at the operating
    /// point (the monolithic system holds them through gmin alone).
    #[allow(dead_code)] // diagnostic surface; the march never touches them
    inert_nodes: Vec<usize>,
}

/// Union-find over node indices.
struct Dsu(Vec<usize>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n).collect())
    }

    fn find(&mut self, mut a: usize) -> usize {
        while self.0[a] != a {
            self.0[a] = self.0[self.0[a]];
            a = self.0[a];
        }
        a
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra] = rb;
        }
    }
}

/// Iterative Tarjan SCC over a small digraph; returns `(scc count, scc
/// id per vertex)` with ids in *reverse* topological order of the
/// condensation (every edge points to an equal-or-lower id).
fn tarjan_scc(n: usize, adj: &[Vec<usize>]) -> (usize, Vec<usize>) {
    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![UNSEEN; n];
    let (mut next_index, mut next_scc) = (0usize, 0usize);
    // Explicit DFS frames: (vertex, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSEEN {
            continue;
        }
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        frames.push((start, 0));
        while let Some(&(v, ci)) = frames.last() {
            if let Some(&w) = adj[v].get(ci) {
                frames.last_mut().expect("frame exists").1 += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            frames.pop();
            if let Some(&(p, _)) = frames.last() {
                low[p] = low[p].min(low[v]);
            }
            if low[v] == index[v] {
                loop {
                    let w = stack.pop().expect("SCC root on stack");
                    on_stack[w] = false;
                    scc_of[w] = next_scc;
                    if w == v {
                        break;
                    }
                }
                next_scc += 1;
            }
        }
    }
    (next_scc, scc_of)
}

impl PartitionStructure {
    /// Build the partition for a circuit, or `None` when the circuit
    /// does not usefully partition (voltage-source loop or floating
    /// source, or at most one solve block) and the monolithic path
    /// should run instead. `include_caps` controls whether capacitors
    /// count as bidirectional couplings: the solver requires it (their
    /// companion conductances stamp off-diagonals); the lint report
    /// turns it off to expose the DC-coupling structure.
    pub(crate) fn build(ckt: &Circuit, include_caps: bool) -> Option<Self> {
        let n = ckt.node_count();

        // 1. Pin rails via the voltage-source fixpoint.
        let mut pin_of: Vec<Option<usize>> = vec![None; n];
        let mut pins: Vec<Pin> = Vec::new();
        let vsources: Vec<(ElementId, usize, usize)> = ckt
            .elements()
            .filter_map(|(id, _, e)| match e {
                Element::Vsource { p, n, .. } => Some((id, p.index(), n.index())),
                _ => None,
            })
            .collect();
        let mut done = vec![false; vsources.len()];
        let mut remaining = vsources.len();
        loop {
            let mut progressed = false;
            for (k, &(id, p, q)) in vsources.iter().enumerate() {
                if done[k] {
                    continue;
                }
                let p_known = p == 0 || pin_of[p].is_some();
                let q_known = q == 0 || pin_of[q].is_some();
                match (p_known, q_known) {
                    (true, true) => return None, // source loop between rails
                    (false, false) => {}
                    (true, false) | (false, true) => {
                        let (child, parent, sign) =
                            if q_known { (p, q, 1.0) } else { (q, p, -1.0) };
                        let mut chain = match pin_of[parent] {
                            Some(pi) => pins[pi].chain.clone(),
                            None => Vec::new(),
                        };
                        chain.push((sign, id));
                        pin_of[child] = Some(pins.len());
                        pins.push(Pin {
                            node: child,
                            elem: id,
                            sign,
                            parent,
                            chain,
                        });
                        done[k] = true;
                        remaining -= 1;
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        if remaining > 0 {
            return None; // floating source between two free nodes
        }

        // 2. Union free nodes over bidirectional couplings.
        let free = |idx: usize| idx != 0 && pin_of[idx].is_none();
        let mut dsu = Dsu::new(n);
        for (_, _, e) in ckt.elements() {
            match e {
                Element::Resistor { a, b, .. } | Element::Isource { p: a, n: b, .. } => {
                    if free(a.index()) && free(b.index()) {
                        dsu.union(a.index(), b.index());
                    }
                }
                Element::Capacitor { a, b, .. } => {
                    if include_caps && free(a.index()) && free(b.index()) {
                        dsu.union(a.index(), b.index());
                    }
                }
                Element::Mos { d, s, .. } => {
                    if free(d.index()) && free(s.index()) {
                        dsu.union(d.index(), s.index());
                    }
                }
                Element::Vsource { .. } => {}
            }
        }
        let mut comp_of: Vec<Option<usize>> = vec![None; n];
        let mut comp_ids: HashMap<usize, usize> = HashMap::new();
        for (idx, slot) in comp_of.iter_mut().enumerate().skip(1) {
            if free(idx) {
                let root = dsu.find(idx);
                let next = comp_ids.len();
                let id = *comp_ids.entry(root).or_insert(next);
                *slot = Some(id);
            }
        }
        let n_comps = comp_ids.len();

        // 3. Element ownership: the component of any free *row* terminal
        //    (KCL rows: both terminals for R/C/I, drain/source for MOS —
        //    gate and bulk stamp no rows of their own).
        let owner = |e: &Element| -> Option<usize> {
            let rows: [usize; 2] = match e {
                Element::Resistor { a, b, .. }
                | Element::Capacitor { a, b, .. }
                | Element::Isource { p: a, n: b, .. } => [a.index(), b.index()],
                Element::Mos { d, s, .. } => [d.index(), s.index()],
                Element::Vsource { .. } => return None,
            };
            rows.iter().find_map(|&r| comp_of[r])
        };

        // 4. Direct gate/bulk edges between components and condense.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_comps];
        for (_, _, e) in ckt.elements() {
            if let Element::Mos { g, b, .. } = e {
                let Some(to) = owner(e) else { continue };
                for &inp in &[g.index(), b.index()] {
                    if let Some(from) = comp_of[inp] {
                        if from != to {
                            adj[from].push(to);
                        }
                    }
                }
            }
        }
        let (n_sccs, scc_of) = tarjan_scc(n_comps, &adj);
        // Tarjan ids are reverse-topological (downstream first); flip so
        // block 0 is the most upstream.
        let block_id = |comp: usize| n_sccs - 1 - scc_of[comp];

        let mut blocks: Vec<BlockStructure> = (0..n_sccs)
            .map(|_| BlockStructure {
                members: Vec::new(),
                elems: Vec::new(),
                boundaries: Vec::new(),
                always_active: false,
            })
            .collect();
        for (idx, comp) in comp_of.iter().enumerate().skip(1) {
            if let Some(c) = *comp {
                blocks[block_id(c)].members.push(idx);
            }
        }
        let mut rail_elems: Vec<ElementId> = Vec::new();
        for (id, _, e) in ckt.elements() {
            if matches!(e, Element::Vsource { .. }) {
                continue; // every source is a pinning edge by now
            }
            let Some(c) = owner(e) else {
                rail_elems.push(id);
                continue;
            };
            let b = block_id(c);
            blocks[b].elems.push(id);
            if let Element::Isource { wave, .. } = e {
                if !matches!(wave, SourceWave::Dc(_)) {
                    blocks[b].always_active = true;
                }
            }
            // Record this element's out-of-block terminals as boundary
            // nodes, in deterministic first-reference order.
            for tn in e.nodes() {
                let tn = tn.index();
                if tn == 0 {
                    continue;
                }
                let boundary = match (pin_of[tn], comp_of[tn]) {
                    (Some(pi), _) => Some(Boundary::Pin(pi)),
                    (None, Some(c2)) if block_id(c2) != b => Some(Boundary::Upstream(tn - 1)),
                    _ => None,
                };
                if let Some(src) = boundary {
                    let blk = &mut blocks[b];
                    if !blk.boundaries.iter().any(|&(g, _)| g == tn) {
                        blk.boundaries.push((tn, src));
                    }
                }
            }
        }

        // 5. Drop element-less blocks (floating gate nets): the
        //    monolithic system holds them at 0 V through gmin alone, so
        //    they stay frozen at the operating point.
        let mut inert_nodes = Vec::new();
        let mut kept: Vec<BlockStructure> = Vec::new();
        let mut kept_id: Vec<Option<usize>> = vec![None; n_sccs];
        for (b, blk) in blocks.into_iter().enumerate() {
            if blk.elems.is_empty() {
                inert_nodes.extend(blk.members);
            } else {
                kept_id[b] = Some(kept.len());
                kept.push(blk);
            }
        }
        if kept.len() <= 1 {
            return None; // single block: the monolithic plan IS the block
        }

        let mut class = vec![NodeClass::Ground; n];
        for (pi, p) in pins.iter().enumerate() {
            class[p.node] = NodeClass::Pinned(pi);
        }
        for idx in 1..n {
            if let Some(c) = comp_of[idx] {
                if let Some(k) = kept_id[block_id(c)] {
                    class[idx] = NodeClass::Free(k);
                }
            }
        }
        Some(PartitionStructure {
            class,
            pins,
            blocks: kept,
            rail_elems,
            inert_nodes,
        })
    }

    /// Number of solve blocks.
    pub(crate) fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// `v(node, t)` of a pinned rail from its source chain.
    fn pin_value(&self, ckt: &Circuit, pi: usize, t: f64) -> f64 {
        self.pins[pi]
            .chain
            .iter()
            .map(|&(sign, id)| match ckt.element(id) {
                Element::Vsource { wave, .. } => sign * wave.value(t),
                _ => unreachable!("pin chains reference voltage sources"),
            })
            .sum()
    }
}

/// How one block fared in the current sub-step attempt.
#[derive(Debug, Clone, Copy)]
enum Pending {
    Skip,
    /// Solved; payload: whether the solve left the block settled.
    Solved(bool),
}

/// A boundary replica source inside a block's local circuit.
#[derive(Debug, Clone, Copy)]
struct Replica {
    /// Local element id of the replica voltage source.
    elem: ElementId,
    /// Local branch unknown index.
    branch: usize,
    /// Local *unknown* index of the boundary node it holds.
    node_unk: usize,
}

/// Per-block mutable solver state: an owned sub-circuit behind its own
/// engine (own stamp plan, LU factors, chord key and MOS bypass cache),
/// the committed/trial local states, and the skip bookkeeping.
struct BlockRuntime {
    engine: Engine<Circuit>,
    /// Committed local state at the last accepted time point.
    x: Vec<f64>,
    /// Trial state for the in-flight sub-step attempt.
    x_try: Vec<f64>,
    caps: Vec<Option<CapState>>,
    /// `(local unknown, global unknown)` pairs for the member free nodes.
    copy_out: Vec<(usize, usize)>,
    /// Replica sources in `boundaries` order.
    replicas: Vec<Replica>,
    /// Replica branch taps at pinned rails: `(local branch unknown,
    /// pin index)` — the block's exact current draw from each rail.
    rail_taps: Vec<(usize, usize)>,
    /// Boundary values at the last committed solve (NaN before the
    /// first, which forces the initial solve), compared against the
    /// skip tolerance.
    last_inputs: Vec<f64>,
    /// Boundary values of the in-flight attempt, committed on accept.
    try_inputs: Vec<f64>,
    settled: bool,
    pending: Pending,
}

impl BlockRuntime {
    fn build(ckt: &Circuit, blk: &BlockStructure) -> Self {
        let mut local = Circuit::new();
        local.gmin = ckt.gmin;
        let mut node_map: HashMap<usize, NodeId> = HashMap::new();
        // Boundary nodes first, each held by a replica source.
        let mut replicas = Vec::with_capacity(blk.boundaries.len());
        let mut rail_taps = Vec::new();
        for &(gn, src) in &blk.boundaries {
            let ln = local.node(ckt.node_name(NodeId(gn)));
            let branch = local.branch_count();
            let elem = local.vsource(
                &format!("__bnd/{}", ckt.node_name(NodeId(gn))),
                ln,
                Circuit::GND,
                SourceWave::Dc(0.0),
            );
            replicas.push(Replica {
                elem,
                branch,
                node_unk: ln.index() - 1,
            });
            if let Boundary::Pin(pi) = src {
                rail_taps.push((branch, pi));
            }
            node_map.insert(gn, ln);
        }
        let mut map_node = |local: &mut Circuit, n: NodeId| -> NodeId {
            if n.is_ground() {
                return Circuit::GND;
            }
            *node_map
                .entry(n.index())
                .or_insert_with(|| local.node(ckt.node_name(n)))
        };
        for &id in &blk.elems {
            let name = ckt
                .elements()
                .nth(id.index())
                .map(|(_, n, _)| n.to_owned())
                .expect("owned element exists");
            match ckt.element(id) {
                Element::Resistor { a, b, ohms } => {
                    let (a, b) = (map_node(&mut local, *a), map_node(&mut local, *b));
                    local.resistor(&name, a, b, *ohms);
                }
                Element::Capacitor { a, b, farads } => {
                    let (a, b) = (map_node(&mut local, *a), map_node(&mut local, *b));
                    local.capacitor(&name, a, b, *farads);
                }
                Element::Isource { p, n, wave } => {
                    let wave = wave.clone();
                    let (p, n) = (map_node(&mut local, *p), map_node(&mut local, *n));
                    local.isource(&name, p, n, wave);
                }
                Element::Mos { d, g, s, b, dev } => {
                    let dev = dev.clone();
                    let (d, g) = (map_node(&mut local, *d), map_node(&mut local, *g));
                    let (s, b) = (map_node(&mut local, *s), map_node(&mut local, *b));
                    local.mosfet(&name, d, g, s, b, dev);
                }
                Element::Vsource { .. } => unreachable!("blocks own no voltage sources"),
            }
        }
        let copy_out: Vec<(usize, usize)> = blk
            .members
            .iter()
            .map(|&gn| {
                let ln = node_map
                    .get(&gn)
                    .copied()
                    .expect("every member node is referenced by an owned element");
                (ln.index() - 1, gn - 1)
            })
            .collect();
        let n_unk = local.unknown_count();
        let n_bounds = blk.boundaries.len();
        BlockRuntime {
            engine: Engine::new(local),
            x: vec![0.0; n_unk],
            x_try: vec![0.0; n_unk],
            caps: Vec::new(),
            copy_out,
            replicas,
            rail_taps,
            last_inputs: vec![f64::NAN; n_bounds],
            try_inputs: Vec::with_capacity(n_bounds),
            settled: false,
            pending: Pending::Skip,
        }
    }

    /// Seed the local state from the global operating point and
    /// initialise companion states. Replica branch currents start at 0;
    /// the first (forced) solve produces them.
    fn seed(&mut self, x_global: &[f64], inputs: &[f64]) {
        for &(li, gi) in &self.copy_out {
            self.x[li] = x_global[gi];
        }
        let nn = self.engine.n_node_unk;
        for (r, &v) in self.replicas.iter().zip(inputs) {
            self.x[r.node_unk] = v;
            self.x[nn + r.branch] = 0.0;
        }
        self.caps = init_cap_states(&self.engine.ckt, &self.x);
    }
}

/// Rail-to-rail capacitor state tracked outside any block.
struct RailCap {
    a: NodeId,
    b: NodeId,
    state: CapState,
}

/// Hard-off escape hatch mirroring `MCML_SPICE_BYPASS`: setting
/// `MCML_SPICE_PARTITION=off` (or `0`, or `none`, in any case) forces
/// every transient back to the monolithic solve regardless of the
/// analysis options. Unrecognised values warn once and leave
/// partitioning enabled.
pub(crate) fn partition_allowed() -> bool {
    static ALLOWED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ALLOWED.get_or_init(|| !super::envknob::hard_off("MCML_SPICE_PARTITION"))
}

/// March a partitioned fixed-grid transient from the given operating
/// point. The caller (scalar [`super::tran::transient`] or the ensemble
/// engine) has already opened its span and counted the analysis; this
/// routine owns the partition counters.
pub(crate) fn march_partitioned(
    ckt: &Circuit,
    opts: &TranOptions,
    structure: &PartitionStructure,
    op0: OpPoint,
) -> Result<TranResult> {
    debug_assert!(opts.lte.is_none(), "partitioned march is fixed-grid only");
    let nr = opts.nr();
    let trapezoidal = opts.integrator == Integrator::Trapezoidal;
    let skip_tol = if nr.bypass_tol > 0.0 {
        nr.bypass_tol
    } else {
        nr.vtol
    };
    let n_node_unk = ckt.node_count() - 1;
    let mut x: Vec<f64> = op0.state().to_vec();

    // Build per-block runtimes and rail-element state under the
    // partition span.
    let mut runtimes: Vec<BlockRuntime> = Vec::with_capacity(structure.n_blocks());
    let mut rail_caps: Vec<RailCap> = Vec::new();
    {
        let _span = mcml_obs::span(mcml_obs::Stage::Partition);
        for blk in &structure.blocks {
            let mut rt = BlockRuntime::build(ckt, blk);
            let inputs: Vec<f64> = blk
                .boundaries
                .iter()
                .map(|&(_, src)| match src {
                    Boundary::Pin(pi) => structure.pin_value(ckt, pi, 0.0),
                    Boundary::Upstream(gu) => x[gu],
                })
                .collect();
            rt.seed(&x, &inputs);
            runtimes.push(rt);
        }
        for &id in &structure.rail_elems {
            if let Element::Capacitor { a, b, farads } = ckt.element(id) {
                rail_caps.push(RailCap {
                    a: *a,
                    b: *b,
                    state: CapState {
                        c: *farads,
                        prev_v: v_node(&x, *a) - v_node(&x, *b),
                        prev_i: 0.0,
                    },
                });
            }
        }
    }
    mcml_obs::add(
        mcml_obs::Counter::PartitionBlocks,
        structure.n_blocks() as u64,
    );
    let mut block_solves = 0u64;
    let mut block_skips = 0u64;
    let flush = |solves: u64, skips: u64| {
        mcml_obs::add(mcml_obs::Counter::BlockSolves, solves);
        mcml_obs::add(mcml_obs::Counter::BlockSkips, skips);
    };

    // Replica counts per pin, for the gmin accounting correction.
    let mut n_replicas = vec![0u64; structure.pins.len()];
    for rt in &runtimes {
        for &(_, pi) in &rt.rail_taps {
            n_replicas[pi] += 1;
        }
    }

    // Step grid identical to the monolithic fixed path.
    let stride = opts.record_stride.max(1);
    let ratio = opts.t_stop / opts.dt;
    let n_steps = if (ratio - ratio.round()).abs() < 1e-6 * ratio.max(1.0) {
        (ratio.round() as usize).max(1)
    } else {
        ratio.ceil() as usize
    };
    let mut times = Vec::with_capacity(n_steps / stride + 2);
    let mut states = Vec::with_capacity(n_steps / stride + 2);
    times.push(0.0);
    states.push(x.clone());

    let mut x_stage = x.clone();
    let mut accepted = 0usize;
    let mut t = 0.0f64;

    for step in 1..=n_steps {
        let t_target = if step == n_steps {
            opts.t_stop
        } else {
            opts.dt * step as f64
        };
        while t < t_target - opts.dt * 1e-9 {
            let mut h = t_target - t;
            let mut level = 0u32;
            loop {
                // Stage the candidate global state at t + h.
                x_stage.copy_from_slice(&x);
                for (pi, pin) in structure.pins.iter().enumerate() {
                    x_stage[pin.node - 1] = structure.pin_value(ckt, pi, t + h);
                }
                let mut failed: Option<SpiceError> = None;
                for (rt, blk) in runtimes.iter_mut().zip(&structure.blocks) {
                    rt.try_inputs.clear();
                    for &(_, src) in &blk.boundaries {
                        rt.try_inputs.push(match src {
                            Boundary::Pin(pi) => structure.pin_value(ckt, pi, t + h),
                            Boundary::Upstream(gu) => x_stage[gu],
                        });
                    }
                    let unchanged = rt
                        .try_inputs
                        .iter()
                        .zip(&rt.last_inputs)
                        .all(|(a, b)| (a - b).abs() <= skip_tol);
                    if rt.settled && !blk.always_active && unchanged {
                        rt.pending = Pending::Skip;
                        continue;
                    }
                    for (r, &v) in rt.replicas.iter().zip(&rt.try_inputs) {
                        if let Element::Vsource { wave, .. } =
                            rt.engine.ckt_mut().element_mut(r.elem)
                        {
                            *wave = SourceWave::Dc(v);
                        }
                    }
                    rt.x_try.clone_from(&rt.x);
                    let BlockRuntime {
                        engine,
                        x_try,
                        caps,
                        ..
                    } = rt;
                    let ctx = CompanionCtx {
                        h,
                        trapezoidal,
                        caps,
                    };
                    match engine.solve_nr(x_try, t + h, Some(&ctx), ckt.gmin, 1.0, &nr, "tran") {
                        Ok(()) => {
                            let nn = rt.engine.n_node_unk;
                            let settled = rt.x_try[..nn]
                                .iter()
                                .zip(&rt.x[..nn])
                                .all(|(a, b)| (a - b).abs() <= nr.vtol);
                            for &(li, gi) in &rt.copy_out {
                                x_stage[gi] = rt.x_try[li];
                            }
                            rt.pending = Pending::Solved(settled);
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                if let Some(e) = failed {
                    mcml_obs::incr(mcml_obs::Counter::TranRetries);
                    level += 1;
                    if level > opts.max_subdiv {
                        flush(block_solves, block_skips);
                        return Err(retag_tran(e, t + h));
                    }
                    h /= 2.0;
                    continue;
                }
                // Commit the sub-step; nothing before this point touched
                // committed state, so a failed attempt retries cleanly.
                mcml_obs::incr(mcml_obs::Counter::TranSteps);
                accepted += 1;
                for rt in &mut runtimes {
                    match rt.pending {
                        Pending::Skip => {
                            block_skips += 1;
                            // Companion states still advance — exact
                            // under frozen node voltages.
                            update_caps(&rt.engine.ckt, &mut rt.caps, &rt.x, h, trapezoidal);
                        }
                        Pending::Solved(settled) => {
                            block_solves += 1;
                            update_caps(&rt.engine.ckt, &mut rt.caps, &rt.x_try, h, trapezoidal);
                            rt.x.clone_from(&rt.x_try);
                            rt.settled = settled;
                            std::mem::swap(&mut rt.last_inputs, &mut rt.try_inputs);
                        }
                    }
                }
                for rc in &mut rail_caps {
                    let v_now = v_node(&x_stage, rc.a) - v_node(&x_stage, rc.b);
                    let (geq, hist) = companion_terms(&rc.state, h, trapezoidal);
                    rc.state.prev_i = geq * v_now + hist;
                    rc.state.prev_v = v_now;
                }
                x.copy_from_slice(&x_stage);
                t += h;
                break;
            }
        }
        t = t_target;
        if step % stride == 0 || step == n_steps {
            let mut rec = x.clone();
            reconstruct_branch_currents(
                ckt,
                structure,
                &runtimes,
                &rail_caps,
                &n_replicas,
                t_target,
                &mut rec,
            );
            times.push(t_target);
            states.push(rec);
        }
    }
    flush(block_solves, block_skips);

    Ok(TranResult::from_parts(
        times,
        states,
        n_node_unk,
        branch_map(ckt),
        op0,
        t,
        accepted,
    ))
}

/// Fill the global voltage-source branch currents of a recorded state by
/// KCL at every pinned rail: sum the replica branch taps (each block's
/// exact draw), the directly evaluated rail-to-rail element currents and
/// the gmin correction, then sweep the pinning forest leaves-first.
fn reconstruct_branch_currents(
    ckt: &Circuit,
    structure: &PartitionStructure,
    runtimes: &[BlockRuntime],
    rail_caps: &[RailCap],
    n_replicas: &[u64],
    t: f64,
    rec: &mut [f64],
) {
    let n_node_unk = ckt.node_count() - 1;
    // acc[pi] = total current demanded at the rail, excluding the global
    // voltage sources themselves. The monolithic KCL row at a rail node
    // carries exactly one gmin term; each block replica already absorbed
    // one locally, hence the (1 - replicas) correction.
    let mut acc: Vec<f64> = structure
        .pins
        .iter()
        .enumerate()
        .map(|(pi, pin)| (1.0 - n_replicas[pi] as f64) * ckt.gmin * rec[pin.node - 1])
        .collect();
    for rt in runtimes {
        let nn = rt.engine.n_node_unk;
        for &(branch, pi) in &rt.rail_taps {
            // The replica branch current satisfies the block's local KCL
            // at the rail: -i_br = current leaving the rail into the
            // block (including the block's own gmin row there).
            acc[pi] -= rt.x[nn + branch];
        }
    }
    let pin_idx = |node: NodeId| -> Option<usize> {
        match structure.class[node.index()] {
            NodeClass::Pinned(pi) => Some(pi),
            _ => None,
        }
    };
    let leave = |acc: &mut Vec<f64>, node: NodeId, i: f64| {
        if let Some(pi) = pin_idx(node) {
            acc[pi] += i;
        }
    };
    for &id in &structure.rail_elems {
        match ckt.element(id) {
            Element::Resistor { a, b, ohms } => {
                let i = (v_node(rec, *a) - v_node(rec, *b)) / ohms;
                leave(&mut acc, *a, i);
                leave(&mut acc, *b, -i);
            }
            Element::Capacitor { .. } => {} // handled via rail_caps below
            Element::Isource { p, n, wave } => {
                let i = wave.value(t);
                leave(&mut acc, *p, i);
                leave(&mut acc, *n, -i);
            }
            Element::Mos { d, g, s, b, dev } => {
                let e = dev.eval(
                    v_node(rec, *g),
                    v_node(rec, *d),
                    v_node(rec, *s),
                    v_node(rec, *b),
                );
                leave(&mut acc, *d, e.id);
                leave(&mut acc, *s, -e.id);
            }
            Element::Vsource { .. } => {}
        }
    }
    for rc in rail_caps {
        leave(&mut acc, rc.a, rc.state.prev_i);
        leave(&mut acc, rc.b, -rc.state.prev_i);
    }
    // Leaves-first sweep: children were pinned after their parents, so
    // reverse pinning order resolves every child branch before its
    // parent's KCL needs it. The branch current is defined flowing
    // p -> n through the source; sigma(V, child) = pin.sign.
    let branch_of = branch_map(ckt);
    for (pi, pin) in structure.pins.iter().enumerate().rev() {
        let i_br = -pin.sign * acc[pi];
        let branch = branch_of[pin.elem.index()].expect("pin sources carry a branch");
        rec[n_node_unk + branch] = i_br;
        if pin.parent != 0 {
            if let NodeClass::Pinned(ppi) = structure.class[pin.parent] {
                // sigma(V, parent) = -sigma(V, child).
                acc[ppi] += -pin.sign * i_br;
            }
        }
    }
}

/// Public summary of how a circuit's MNA system decomposes into solve
/// blocks — the surface behind `mcml-lint`'s partition report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionReport {
    /// Number of solve blocks (1 when the design collapses into a single
    /// component or partitioning had to fall back).
    pub blocks: usize,
    /// Free nodes per block, largest first.
    pub block_sizes: Vec<usize>,
    /// Rail nodes pinned by voltage-source chains.
    pub rail_nodes: usize,
    /// True when the solver would fall back to the monolithic path for a
    /// structural reason (voltage-source loop or floating source) rather
    /// than because the design is one block.
    pub fallback: bool,
}

/// Analyse how `ckt` partitions into solve blocks. With
/// `dc_coupling_only`, capacitors are ignored as couplings, exposing the
/// DC connectivity that a differential-design audit cares about (a
/// parasitic gate–drain capacitor merges blocks for the solver but is
/// not a galvanic bridge).
#[must_use]
pub fn partition_report(ckt: &Circuit, dc_coupling_only: bool) -> PartitionReport {
    match PartitionStructure::build(ckt, !dc_coupling_only) {
        Some(s) => {
            let mut sizes: Vec<usize> = s.blocks.iter().map(|b| b.members.len()).collect();
            sizes.sort_unstable_by(|a, b| b.cmp(a));
            PartitionReport {
                blocks: s.blocks.len(),
                block_sizes: sizes,
                rail_nodes: s.pins.len(),
                fallback: false,
            }
        }
        None => {
            // Distinguish "genuinely one block" from a structural
            // fallback by re-running just the pinning fixpoint.
            let (rails, fallback, free_nodes) = pin_summary(ckt);
            PartitionReport {
                blocks: usize::from(free_nodes > 0),
                block_sizes: if free_nodes > 0 {
                    vec![free_nodes]
                } else {
                    Vec::new()
                },
                rail_nodes: rails,
                fallback,
            }
        }
    }
}

/// Pinning fixpoint only: `(rail count, structural fallback?, free nodes)`.
fn pin_summary(ckt: &Circuit) -> (usize, bool, usize) {
    let n = ckt.node_count();
    let mut pinned = vec![false; n];
    let vsources: Vec<(usize, usize)> = ckt
        .elements()
        .filter_map(|(_, _, e)| match e {
            Element::Vsource { p, n, .. } => Some((p.index(), n.index())),
            _ => None,
        })
        .collect();
    let mut done = vec![false; vsources.len()];
    let mut fallback = false;
    loop {
        let mut progressed = false;
        for (k, &(p, q)) in vsources.iter().enumerate() {
            if done[k] {
                continue;
            }
            let p_known = p == 0 || pinned[p];
            let q_known = q == 0 || pinned[q];
            match (p_known, q_known) {
                (true, true) => {
                    fallback = true;
                    done[k] = true;
                    progressed = true;
                }
                (false, false) => {}
                (true, false) => {
                    pinned[q] = true;
                    done[k] = true;
                    progressed = true;
                }
                (false, true) => {
                    pinned[p] = true;
                    done[k] = true;
                    progressed = true;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    if done.iter().any(|d| !d) {
        fallback = true;
    }
    let rails = pinned.iter().filter(|&&b| b).count();
    let free = (1..n).filter(|&i| !pinned[i]).count();
    (rails, fallback, free)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// vdd -R-> a -R-> gnd, and an independent vdd -R-> b -R-> gnd:
    /// two blocks split at the rail.
    fn two_island_circuit() -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource("VDD", vdd, Circuit::GND, SourceWave::Dc(1.2));
        ckt.resistor("Ra1", vdd, a, 1e3);
        ckt.resistor("Ra2", a, Circuit::GND, 2e3);
        ckt.resistor("Rb1", vdd, b, 1e3);
        ckt.resistor("Rb2", b, Circuit::GND, 1e3);
        ckt
    }

    #[test]
    fn splits_rail_coupled_islands() {
        let ckt = two_island_circuit();
        let s = PartitionStructure::build(&ckt, true).expect("two blocks");
        assert_eq!(s.n_blocks(), 2);
        assert_eq!(s.pins.len(), 1);
        assert!(s.rail_elems.is_empty());
    }

    #[test]
    fn single_component_returns_none() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let a = ckt.node("a");
        ckt.vsource("VDD", vdd, Circuit::GND, SourceWave::Dc(1.2));
        ckt.resistor("R1", vdd, a, 1e3);
        ckt.resistor("R2", a, Circuit::GND, 2e3);
        assert!(PartitionStructure::build(&ckt, true).is_none());
    }

    #[test]
    fn floating_source_returns_none() {
        let mut ckt = two_island_circuit();
        let (a, b) = (ckt.node("a"), ckt.node("b"));
        ckt.vsource("VF", a, b, SourceWave::Dc(0.1));
        assert!(PartitionStructure::build(&ckt, true).is_none());
    }

    #[test]
    fn source_loop_returns_none() {
        let mut ckt = two_island_circuit();
        let vdd = ckt.node("vdd");
        ckt.vsource("VDUP", vdd, Circuit::GND, SourceWave::Dc(1.2));
        assert!(PartitionStructure::build(&ckt, true).is_none());
    }

    #[test]
    fn capacitor_bridge_merges_unless_dc_only() {
        let mut ckt = two_island_circuit();
        let (a, b) = (ckt.node("a"), ckt.node("b"));
        ckt.capacitor("Cbridge", a, b, 1e-15);
        assert!(PartitionStructure::build(&ckt, true).is_none());
        let s = PartitionStructure::build(&ckt, false).expect("DC view still splits");
        assert_eq!(s.n_blocks(), 2);
    }

    #[test]
    fn stacked_sources_pin_a_chain() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vmid = ckt.node("vmid");
        let a = ckt.node("a");
        let b = ckt.node("b");
        // vmid is pinned *through* vdd: v(vmid) = 1.2 - 0.4.
        ckt.vsource("VDD", vdd, Circuit::GND, SourceWave::Dc(1.2));
        ckt.vsource("VDROP", vdd, vmid, SourceWave::Dc(0.4));
        ckt.resistor("Ra1", vmid, a, 1e3);
        ckt.resistor("Ra2", a, Circuit::GND, 2e3);
        ckt.resistor("Rb1", vdd, b, 1e3);
        ckt.resistor("Rb2", b, Circuit::GND, 1e3);
        let s = PartitionStructure::build(&ckt, true).expect("two blocks");
        assert_eq!(s.n_blocks(), 2);
        assert_eq!(s.pins.len(), 2);
        let vmid_pin = s
            .pins
            .iter()
            .position(|p| ckt.node_name(NodeId(p.node)) == "vmid")
            .expect("vmid pinned");
        let v = s.pin_value(&ckt, vmid_pin, 0.0);
        assert!((v - 0.8).abs() < 1e-12, "chain value {v}");
    }

    #[test]
    fn report_surfaces_block_sizes() {
        let ckt = two_island_circuit();
        let r = partition_report(&ckt, false);
        assert_eq!(r.blocks, 2);
        assert_eq!(r.block_sizes, vec![1, 1]);
        assert_eq!(r.rail_nodes, 1);
        assert!(!r.fallback);

        let mut merged = two_island_circuit();
        let (a, b) = (merged.node("a"), merged.node("b"));
        merged.resistor("Rbridge", a, b, 1e6);
        let r = partition_report(&merged, false);
        assert_eq!(r.blocks, 1);
        assert_eq!(r.block_sizes, vec![2]);
        assert!(!r.fallback);

        let mut floating = two_island_circuit();
        let (fa, fb) = (floating.node("a"), floating.node("b"));
        floating.vsource("VF", fa, fb, SourceWave::Dc(0.1));
        let r = partition_report(&floating, false);
        assert!(r.fallback);
    }

    #[test]
    fn tarjan_condenses_cycles() {
        // 0 -> 1 -> 2 -> 1 (cycle 1,2), 2 -> 3.
        let adj = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let (n, scc) = tarjan_scc(4, &adj);
        assert_eq!(n, 3);
        assert_eq!(scc[1], scc[2]);
        // Reverse-topological ids: every edge points to an equal-or-lower id.
        assert!(scc[0] > scc[1]);
        assert!(scc[2] > scc[3]);
    }
}
