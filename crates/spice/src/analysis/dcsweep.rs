//! DC sweep analysis: solve the operating point along a swept source
//! value (the SPICE `.DC` card), used for transfer curves, noise margins
//! and bias-point exploration.

use crate::analysis::dc::{dc_op, DcOptions, OpPoint};
use crate::circuit::{Circuit, ElementId};
use crate::element::Element;
use crate::source::SourceWave;
use crate::waveform::Waveform;
use crate::Result;

/// Result of a DC sweep: one operating point per swept value.
#[derive(Debug, Clone)]
pub struct DcSweepResult {
    /// Swept source values.
    pub values: Vec<f64>,
    /// Operating point at each value.
    pub points: Vec<OpPoint>,
}

impl DcSweepResult {
    /// Transfer curve of a node voltage vs the swept value.
    #[must_use]
    pub fn transfer(&self, node: crate::circuit::NodeId) -> Waveform {
        self.values
            .iter()
            .zip(&self.points)
            .map(|(&x, op)| (x, op.voltage(node)))
            .collect()
    }

    /// Supply-current curve of a voltage source vs the swept value.
    #[must_use]
    pub fn supply_current(&self, elem: ElementId) -> Waveform {
        self.values
            .iter()
            .zip(&self.points)
            .map(|(&x, op)| (x, op.supply_current(elem).unwrap_or(0.0)))
            .collect()
    }

    /// Largest |dV(node)/dx| along the sweep — the small-signal gain at
    /// the steepest point of a transfer curve.
    #[must_use]
    pub fn peak_gain(&self, node: crate::circuit::NodeId) -> f64 {
        let w = self.transfer(node);
        let (t, v) = (w.times(), w.values());
        let mut g: f64 = 0.0;
        for i in 1..t.len() {
            let dx = t[i] - t[i - 1];
            if dx > 0.0 {
                g = g.max(((v[i] - v[i - 1]) / dx).abs());
            }
        }
        g
    }
}

/// Sweep the DC value of the named voltage source over `[from, to]` in
/// `steps` increments, warm-starting each point from the previous
/// solution.
///
/// # Errors
///
/// Propagates DC convergence failures; returns
/// [`crate::SpiceError::InvalidCircuit`] if `source` is not a voltage
/// source.
///
/// # Panics
///
/// Panics unless `steps >= 2` and the span is finite.
pub fn dc_sweep(
    ckt: &Circuit,
    source: ElementId,
    from: f64,
    to: f64,
    steps: usize,
    opts: &DcOptions,
) -> Result<DcSweepResult> {
    assert!(steps >= 2, "a sweep needs at least two points");
    assert!(from.is_finite() && to.is_finite(), "finite sweep span");
    let Element::Vsource { .. } = ckt.element(source) else {
        return Err(crate::SpiceError::InvalidCircuit(
            "dc_sweep target must be a voltage source".to_owned(),
        ));
    };

    let mut values = Vec::with_capacity(steps);
    let mut points = Vec::with_capacity(steps);
    // One working clone for the whole sweep; only the swept source's
    // waveform is rewritten per point.
    let mut c = ckt.clone();
    for k in 0..steps {
        let x = from + (to - from) * k as f64 / (steps - 1) as f64;
        c.set_vsource_wave(source, SourceWave::dc(x));
        points.push(dc_op(&c, opts)?);
        values.push(x);
    }
    Ok(DcSweepResult { values, points })
}

impl Circuit {
    /// Replace the waveform of an existing voltage source (used by the
    /// DC sweep; handy for testbench reconfiguration generally).
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a voltage source of this circuit.
    pub fn set_vsource_wave(&mut self, source: ElementId, wave: SourceWave) {
        match self.element_mut(source) {
            Element::Vsource { wave: w, .. } => *w = wave,
            other => panic!("set_vsource_wave on a {}", other.kind()),
        }
    }

    /// Run a DC sweep with default options (see [`dc_sweep`]).
    ///
    /// # Errors
    ///
    /// See [`dc_sweep`].
    pub fn dc_sweep(
        &self,
        source: ElementId,
        from: f64,
        to: f64,
        steps: usize,
    ) -> Result<DcSweepResult> {
        dc_sweep(self, source, from, to, steps, &DcOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcml_device::{MosParams, Mosfet};

    #[test]
    fn resistor_divider_sweep_is_linear() {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let mid = c.node("mid");
        let v = c.vsource("V", vin, Circuit::GND, SourceWave::dc(0.0));
        c.resistor("R1", vin, mid, 1e3);
        c.resistor("R2", mid, Circuit::GND, 1e3);
        let sweep = c.dc_sweep(v, 0.0, 2.0, 5).unwrap();
        let w = sweep.transfer(mid);
        assert!((w.sample(0.0) - 0.0).abs() < 1e-9);
        assert!((w.sample(1.0) - 0.5).abs() < 1e-6);
        assert!((w.sample(2.0) - 1.0).abs() < 1e-6);
        assert!((sweep.peak_gain(mid) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn inverter_vtc_has_gain_above_one() {
        // Static CMOS inverter: the voltage transfer curve must swing
        // rail to rail with |gain| > 1 at the switching threshold.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(1.2));
        let v = c.vsource("VIN", vin, Circuit::GND, SourceWave::dc(0.0));
        c.mosfet(
            "MN",
            out,
            vin,
            Circuit::GND,
            Circuit::GND,
            Mosfet::nmos(MosParams::nmos_lvt_90(), 1e-6, 0.1e-6),
        );
        c.mosfet(
            "MP",
            out,
            vin,
            vdd,
            vdd,
            Mosfet::pmos(MosParams::pmos_lvt_90(), 2e-6, 0.1e-6),
        );
        let sweep = c.dc_sweep(v, 0.0, 1.2, 49).unwrap();
        let w = sweep.transfer(out);
        assert!(w.sample(0.0) > 1.1, "output high at Vin=0");
        assert!(w.sample(1.2) < 0.1, "output low at Vin=Vdd");
        assert!(
            sweep.peak_gain(out) > 1.5,
            "regenerative gain {}",
            sweep.peak_gain(out)
        );
        // Monotone falling VTC.
        let vals = w.values();
        assert!(vals.windows(2).all(|p| p[1] <= p[0] + 1e-6));
    }

    #[test]
    fn sweep_rejects_non_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let r = c.resistor("R", a, Circuit::GND, 1e3);
        c.vsource("V", a, Circuit::GND, SourceWave::dc(1.0));
        assert!(c.dc_sweep(r, 0.0, 1.0, 3).is_err());
    }
}
