//! Independent source waveform descriptions (DC, pulse, PWL, sine).

use serde::{Deserialize, Serialize};

/// Waveform of an independent voltage or current source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SourceWave {
    /// Constant value.
    Dc(
        /// Value in volts or amperes.
        f64,
    ),
    /// SPICE-style periodic pulse.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge (s).
        delay: f64,
        /// Rise time (s).
        rise: f64,
        /// Fall time (s).
        fall: f64,
        /// Pulse width at `v2` (s).
        width: f64,
        /// Period (s); 0 or infinite means single-shot.
        period: f64,
    },
    /// Piece-wise-linear: `(time, value)` breakpoints with strictly
    /// increasing times; the value is held constant outside the span.
    Pwl(
        /// Breakpoints.
        Vec<(f64, f64)>,
    ),
    /// Sinusoid `offset + ampl · sin(2π·freq·(t − delay))` for `t ≥ delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency (Hz).
        freq: f64,
        /// Start delay (s).
        delay: f64,
    },
}

impl SourceWave {
    /// A constant source.
    #[must_use]
    pub fn dc(value: f64) -> Self {
        SourceWave::Dc(value)
    }

    /// A single step from `v1` to `v2` at time `at`, with a 1 ps edge.
    #[must_use]
    pub fn step(v1: f64, v2: f64, at: f64) -> Self {
        SourceWave::Pwl(vec![(0.0, v1), (at, v1), (at + 1e-12, v2)])
    }

    /// A clock: 50 % duty pulse between `v_low` and `v_high` with the given
    /// period and edge time.
    #[must_use]
    pub fn clock(v_low: f64, v_high: f64, period: f64, edge: f64) -> Self {
        SourceWave::Pulse {
            v1: v_low,
            v2: v_high,
            delay: period / 2.0,
            rise: edge,
            fall: edge,
            width: period / 2.0 - edge,
            period,
        }
    }

    /// Evaluate the source at time `t` (seconds).
    #[must_use]
    pub fn value(&self, t: f64) -> f64 {
        match self {
            SourceWave::Dc(v) => *v,
            SourceWave::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let tl = if *period > 0.0 && period.is_finite() {
                    (t - delay) % period
                } else {
                    t - delay
                };
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                if tl < rise {
                    v1 + (v2 - v1) * tl / rise
                } else if tl < rise + width {
                    *v2
                } else if tl < rise + width + fall {
                    v2 + (v1 - v2) * (tl - rise - width) / fall
                } else {
                    *v1
                }
            }
            SourceWave::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                let last = points.last().expect("non-empty");
                if t >= last.0 {
                    return last.1;
                }
                let idx = points.partition_point(|&(pt, _)| pt < t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
            SourceWave::Sine {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < *delay {
                    *offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }

    /// The value at `t = 0`, used by the DC operating-point analysis.
    #[must_use]
    pub fn dc_value(&self) -> f64 {
        self.value(0.0)
    }

    /// Append the waveform's discontinuity times in `(0, t_stop]` to `out`.
    ///
    /// Breakpoints are the instants where the waveform's slope changes
    /// (pulse edge corners, PWL knots, a sine's start-of-oscillation).
    /// The adaptive transient stepper lands a step exactly on each one so
    /// an edge can never fall unseen inside a long quiet-region step.
    /// Times are appended unsorted and may duplicate across sources; the
    /// caller sorts and dedups the merged list.
    pub fn breakpoints(&self, t_stop: f64, out: &mut Vec<f64>) {
        let mut push = |t: f64| {
            if t > 0.0 && t <= t_stop {
                out.push(t);
            }
        };
        match self {
            SourceWave::Dc(_) => {}
            SourceWave::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let rise = rise.max(1e-15);
                let fall = fall.max(1e-15);
                let corners = [0.0, rise, rise + width, rise + width + fall];
                if *period > 0.0 && period.is_finite() {
                    let mut start = *delay;
                    while start <= t_stop {
                        for c in corners {
                            push(start + c);
                        }
                        start += period;
                    }
                } else {
                    for c in corners {
                        push(delay + c);
                    }
                }
            }
            SourceWave::Pwl(points) => {
                for &(t, _) in points {
                    push(t);
                }
            }
            SourceWave::Sine { delay, .. } => push(*delay),
        }
    }

    /// Upper bound on the step size that still resolves the waveform's
    /// curvature, or `None` for piecewise-linear sources (whose shape is
    /// captured exactly by their [`breakpoints`](Self::breakpoints)).
    ///
    /// Only the sinusoid constrains the step between breakpoints: a
    /// sixteenth of a period keeps a linear-interpolation dense output
    /// within a fraction of a percent of the true curve.
    #[must_use]
    pub fn max_step_hint(&self) -> Option<f64> {
        match self {
            SourceWave::Sine { freq, .. } if *freq > 0.0 => Some(1.0 / (16.0 * freq)),
            _ => None,
        }
    }

    /// Largest value the source ever takes (used for scaling heuristics).
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        match self {
            SourceWave::Dc(v) => v.abs(),
            SourceWave::Pulse { v1, v2, .. } => v1.abs().max(v2.abs()),
            SourceWave::Pwl(points) => points.iter().map(|&(_, v)| v.abs()).fold(0.0, f64::max),
            SourceWave::Sine { offset, ampl, .. } => offset.abs() + ampl.abs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let s = SourceWave::dc(1.2);
        assert_eq!(s.value(0.0), 1.2);
        assert_eq!(s.value(1.0), 1.2);
        assert_eq!(s.dc_value(), 1.2);
    }

    #[test]
    fn step_transitions_once() {
        let s = SourceWave::step(0.0, 1.0, 1e-9);
        assert_eq!(s.value(0.0), 0.0);
        assert_eq!(s.value(0.9e-9), 0.0);
        assert_eq!(s.value(2e-9), 1.0);
    }

    #[test]
    fn pulse_cycles() {
        let s = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.8e-9,
            period: 2e-9,
        };
        assert_eq!(s.value(0.5e-9), 0.0);
        assert!((s.value(1.05e-9) - 0.5).abs() < 1e-9, "mid rise");
        assert_eq!(s.value(1.5e-9), 1.0);
        assert_eq!(s.value(2.5e-9), 0.0, "back low");
        assert_eq!(s.value(3.5e-9), 1.0, "next period high");
    }

    #[test]
    fn clock_has_half_duty() {
        let c = SourceWave::clock(0.0, 1.2, 2.5e-9, 50e-12);
        // 400 MHz clock: low for the first half period.
        assert_eq!(c.value(0.0), 0.0);
        assert_eq!(c.value(1.9e-9), 1.2);
        assert_eq!(c.value(2.6e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_holds() {
        let s = SourceWave::Pwl(vec![(1.0, 0.0), (2.0, 2.0)]);
        assert_eq!(s.value(0.0), 0.0);
        assert_eq!(s.value(1.5), 1.0);
        assert_eq!(s.value(9.0), 2.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        assert_eq!(SourceWave::Pwl(vec![]).value(1.0), 0.0);
    }

    #[test]
    fn sine_starts_after_delay() {
        let s = SourceWave::Sine {
            offset: 0.5,
            ampl: 0.5,
            freq: 1.0,
            delay: 1.0,
        };
        assert_eq!(s.value(0.0), 0.5);
        assert!((s.value(1.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pulse_breakpoints_repeat_per_period() {
        let s = SourceWave::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.8e-9,
            period: 2e-9,
        };
        let mut bps = Vec::new();
        s.breakpoints(4e-9, &mut bps);
        // Two periods fit; the very last corner may fall on t_stop ± ulp.
        assert!(bps.len() >= 7, "got {} corners", bps.len());
        let near = |t: f64| bps.iter().any(|&b| (b - t).abs() < 1e-15);
        assert!(near(1e-9), "first edge start");
        assert!(near(3e-9), "second-period edge start");
        assert!(bps.iter().all(|&t| t > 0.0 && t <= 4e-9));
    }

    #[test]
    fn pwl_breakpoints_are_knots() {
        let s = SourceWave::step(0.0, 1.0, 1e-9);
        let mut bps = Vec::new();
        s.breakpoints(2e-9, &mut bps);
        // t=0 knot is excluded (not in (0, t_stop]).
        assert_eq!(bps, vec![1e-9, 1e-9 + 1e-12]);
    }

    #[test]
    fn dc_has_no_breakpoints_and_sine_hints_step() {
        let mut bps = Vec::new();
        SourceWave::dc(1.0).breakpoints(1.0, &mut bps);
        assert!(bps.is_empty());
        assert_eq!(SourceWave::dc(1.0).max_step_hint(), None);
        let sine = SourceWave::Sine {
            offset: 0.0,
            ampl: 1.0,
            freq: 1e9,
            delay: 0.0,
        };
        let hint = sine.max_step_hint().expect("sine hints");
        assert!((hint - 1.0 / 16e9).abs() < 1e-24);
    }

    #[test]
    fn amplitude_bounds() {
        assert_eq!(SourceWave::dc(-2.0).amplitude(), 2.0);
        assert_eq!(SourceWave::step(0.0, 1.2, 0.0).amplitude(), 1.2);
        let s = SourceWave::Sine {
            offset: 1.0,
            ampl: 0.5,
            freq: 1.0,
            delay: 0.0,
        };
        assert_eq!(s.amplitude(), 1.5);
    }
}
