//! # mcml-spice — a small analog circuit simulator
//!
//! Transistor-level simulation substrate for the PG-MCML reproduction. The
//! paper characterises its cells and measures the S-box current waveforms
//! with commercial SPICE-class tools (Synopsys Nanosim); this crate is the
//! open replacement: a modified-nodal-analysis (MNA) engine with
//!
//! * Newton–Raphson DC operating-point analysis with **gmin stepping** and
//!   **source stepping** continuation,
//! * transient analysis with **backward-Euler** and **trapezoidal**
//!   companion models and automatic step subdivision on non-convergence,
//! * dense and sparse (Gilbert–Peierls left-looking) LU factorisation,
//! * elements: resistors, capacitors, independent V/I sources (DC, pulse,
//!   PWL, sine), and the smooth MOSFET model from [`mcml_device`],
//! * branch-current probing (supply-current measurement comes for free from
//!   the MNA voltage-source branch unknowns).
//!
//! # Example: RC step response
//!
//! ```
//! use mcml_spice::{Circuit, SourceWave, TranOptions};
//!
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let out = c.node("out");
//! c.vsource("VIN", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 1e-9));
//! c.resistor("R", vin, out, 1.0e3);
//! c.capacitor("C", out, Circuit::GND, 1.0e-12);
//!
//! let res = c.transient(&TranOptions::new(10e-9, 10e-12)).unwrap();
//! let v_end = res.voltage(out).last_value();
//! assert!((v_end - 1.0).abs() < 0.01, "cap charges to the step level");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod circuit;
pub mod element;
pub mod error;
pub mod matrix;
pub mod source;
pub mod waveform;

pub use analysis::dc::{DcOptions, OpPoint};
pub use analysis::dcsweep::{dc_sweep, DcSweepResult};
pub use analysis::ensemble::ensemble_transient;
pub use analysis::partition::{partition_report, PartitionReport};
pub use analysis::tran::{AdaptiveOptions, Integrator, TranOptions, TranResult};
pub use circuit::{Circuit, ElementId, NodeId};
pub use element::Element;
pub use error::SpiceError;
pub use source::SourceWave;
pub use waveform::Waveform;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SpiceError>;

/// Test-only hooks: not part of the supported API.
#[doc(hidden)]
pub mod testing {
    use crate::analysis::engine::{init_cap_states, CompanionCtx, Engine};
    use crate::circuit::Circuit;

    /// Dense `(row-major matrix, residual)` snapshot of one assembly path.
    pub type DenseSystem = (Vec<f64>, Vec<f64>);

    /// Dense `(row-major matrix, residual)` snapshots of one MNA assembly
    /// through the legacy full-restamp path and the stamp-plan fast path,
    /// in that order. `companion` is `(h, trapezoidal, state)` with the
    /// capacitor voltages initialised from `state`.
    #[must_use]
    pub fn assemble_both_dense(
        ckt: &Circuit,
        x: &[f64],
        t: f64,
        companion: Option<(f64, bool, &[f64])>,
        gmin: f64,
        src_scale: f64,
    ) -> (DenseSystem, DenseSystem) {
        let mut engine = Engine::new(ckt);
        match companion {
            Some((h, trapezoidal, state)) => {
                let caps = init_cap_states(ckt, state);
                let ctx = CompanionCtx {
                    h,
                    trapezoidal,
                    caps: &caps,
                };
                engine.assemble_both_dense(x, t, Some(&ctx), gmin, src_scale)
            }
            None => engine.assemble_both_dense(x, t, None, gmin, src_scale),
        }
    }

    /// Number of unknowns (nodes + branches) the MNA system has.
    #[must_use]
    pub fn n_unknowns(ckt: &Circuit) -> usize {
        ckt.node_count() - 1 + ckt.branch_count()
    }
}
