//! Circuit construction: named nodes, element builders, validation.

use std::collections::HashMap;

use mcml_device::{Mosfet, Technology};

use crate::element::Element;
use crate::error::SpiceError;
use crate::source::SourceWave;
use crate::Result;

/// Handle to a circuit node. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (0 = ground).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    #[must_use]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to an element within its circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index into the circuit's element list.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A flat transistor-level circuit: named nodes plus a list of elements.
///
/// Built programmatically (the cell generators in `mcml-cells` emit these),
/// then analysed with [`Circuit::dc_op`] or [`Circuit::transient`].
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, usize>,
    elements: Vec<(String, Element)>,
    elem_index: HashMap<String, usize>,
    n_branches: usize,
    /// Minimum conductance added from every node to ground for numerical
    /// robustness (SPICE `gmin`).
    pub gmin: f64,
}

impl Circuit {
    /// The ground node, shared by every circuit.
    pub const GND: NodeId = NodeId(0);

    /// An empty circuit.
    #[must_use]
    pub fn new() -> Self {
        let mut node_index = HashMap::new();
        node_index.insert("0".to_owned(), 0);
        Self {
            node_names: vec!["0".to_owned()],
            node_index,
            elements: Vec::new(),
            elem_index: HashMap::new(),
            n_branches: 0,
            gmin: 1e-12,
        }
    }

    /// Get or create the node with the given name. The names `"0"` and
    /// `"gnd"` refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GND;
        }
        if let Some(&idx) = self.node_index.get(name) {
            return NodeId(idx);
        }
        let idx = self.node_names.len();
        self.node_names.push(name.to_owned());
        self.node_index.insert(name.to_owned(), idx);
        NodeId(idx)
    }

    /// Create a fresh anonymous node with a unique generated name.
    pub fn fresh_node(&mut self, prefix: &str) -> NodeId {
        let mut i = self.node_names.len();
        loop {
            let name = format!("{prefix}#{i}");
            if !self.node_index.contains_key(&name) {
                return self.node(&name);
            }
            i += 1;
        }
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Look up an existing node by name.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_index.get(name).map(|&i| NodeId(i))
    }

    /// Number of nodes including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of voltage-source branch unknowns.
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.n_branches
    }

    /// Number of MNA unknowns (non-ground nodes + branches).
    #[must_use]
    pub fn unknown_count(&self) -> usize {
        self.node_count() - 1 + self.n_branches
    }

    /// Elements in insertion order, with their names.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, &str, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, (n, e))| (ElementId(i), n.as_str(), e))
    }

    /// Element by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    #[must_use]
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.0].1
    }

    /// Mutable element access (used by testbench reconfiguration).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    #[must_use]
    pub fn element_mut(&mut self, id: ElementId) -> &mut Element {
        &mut self.elements[id.0].1
    }

    /// Element lookup by name.
    #[must_use]
    pub fn find_element(&self, name: &str) -> Option<ElementId> {
        self.elem_index.get(name).map(|&i| ElementId(i))
    }

    fn insert(&mut self, name: &str, e: Element) -> Result<ElementId> {
        if self.elem_index.contains_key(name) {
            return Err(SpiceError::InvalidCircuit(format!(
                "duplicate element name `{name}`"
            )));
        }
        let id = ElementId(self.elements.len());
        self.elem_index.insert(name.to_owned(), id.0);
        self.elements.push((name.to_owned(), e));
        Ok(id)
    }

    fn check_positive(name: &str, what: &str, v: f64) -> Result<()> {
        if !v.is_finite() || v <= 0.0 {
            return Err(SpiceError::InvalidParameter {
                element: name.to_owned(),
                reason: format!("{what} must be positive and finite, got {v}"),
            });
        }
        Ok(())
    }

    /// Add a resistor.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate element name or a non-positive resistance —
    /// these are construction bugs in generator code. Use
    /// [`Circuit::try_resistor`] for fallible insertion.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        self.try_resistor(name, a, b, ohms).expect("valid resistor")
    }

    /// Fallible [`Circuit::resistor`].
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names or invalid values.
    pub fn try_resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<ElementId> {
        Self::check_positive(name, "resistance", ohms)?;
        self.insert(name, Element::Resistor { a, b, ohms })
    }

    /// Add a capacitor.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or non-positive capacitance.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        self.try_capacitor(name, a, b, farads)
            .expect("valid capacitor")
    }

    /// Fallible [`Circuit::capacitor`].
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate names or invalid values.
    pub fn try_capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<ElementId> {
        Self::check_positive(name, "capacitance", farads)?;
        self.insert(name, Element::Capacitor { a, b, farads })
    }

    /// Add an independent voltage source (positive terminal `p`).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn vsource(&mut self, name: &str, p: NodeId, n: NodeId, wave: SourceWave) -> ElementId {
        let branch = self.n_branches;
        self.n_branches += 1;
        self.insert(name, Element::Vsource { p, n, wave, branch })
            .expect("valid vsource")
    }

    /// Add an independent current source pushing current from `p` to `n`
    /// through itself.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn isource(&mut self, name: &str, p: NodeId, n: NodeId, wave: SourceWave) -> ElementId {
        self.insert(name, Element::Isource { p, n, wave })
            .expect("valid isource")
    }

    /// Add a MOSFET (no parasitic capacitors).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    pub fn mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        dev: Mosfet,
    ) -> ElementId {
        self.insert(name, Element::Mos { d, g, s, b, dev })
            .expect("valid mosfet")
    }

    /// Add a MOSFET together with its estimated parasitic capacitances
    /// (Cgs, Cgd, Cdb, Csb) as linear capacitors, which is what gives the
    /// transient waveforms realistic edges and the delay its load
    /// dependence.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name.
    #[allow(clippy::too_many_arguments)] // name + 4 terminals + device + tech
    pub fn mosfet_with_caps(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        dev: Mosfet,
        tech: &Technology,
    ) -> ElementId {
        let cgs = dev.cgs(tech);
        let cgd = dev.cgd(tech);
        let cdb = dev.cdb(tech);
        let csb = dev.sb_cap(tech);
        let add_cap = |c: &mut Self, suffix: &str, x: NodeId, y: NodeId, val: f64| {
            if x != y && val > 0.0 {
                c.capacitor(&format!("{name}.{suffix}"), x, y, val);
            }
        };
        add_cap(self, "cgs", g, s, cgs);
        add_cap(self, "cgd", g, d, cgd);
        add_cap(self, "cdb", d, b, cdb);
        add_cap(self, "csb", s, b, csb);
        self.insert(name, Element::Mos { d, g, s, b, dev })
            .expect("valid mosfet")
    }

    /// Basic structural validation: at least one element and at least one
    /// source or ground-connected element.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidCircuit`] on an empty circuit.
    pub fn validate(&self) -> Result<()> {
        if self.elements.is_empty() {
            return Err(SpiceError::InvalidCircuit("no elements".to_owned()));
        }
        Ok(())
    }

    /// Merge another circuit into this one, prefixing its node and element
    /// names with `prefix/`; the ground node is shared, and nodes listed in
    /// `connections` are merged with the given existing nodes instead of
    /// being copied.
    ///
    /// Returns a map from the sub-circuit's node ids to the new ids.
    ///
    /// # Panics
    ///
    /// Panics if element names collide after prefixing (generator bug).
    pub fn instantiate(
        &mut self,
        prefix: &str,
        sub: &Circuit,
        connections: &[(NodeId, NodeId)],
    ) -> Vec<NodeId> {
        let mut map: Vec<Option<NodeId>> = vec![None; sub.node_count()];
        map[0] = Some(Self::GND);
        for &(inner, outer) in connections {
            map[inner.0] = Some(outer);
        }
        let mut resolved = Vec::with_capacity(sub.node_count());
        for (idx, slot) in map.iter_mut().enumerate() {
            let id = match *slot {
                Some(id) => id,
                None => {
                    let name = format!("{prefix}/{}", sub.node_names[idx]);
                    self.node(&name)
                }
            };
            *slot = Some(id);
            resolved.push(id);
        }
        let remap = |n: NodeId| resolved[n.0];
        for (name, e) in &sub.elements {
            let new_name = format!("{prefix}/{name}");
            match e {
                Element::Resistor { a, b, ohms } => {
                    self.resistor(&new_name, remap(*a), remap(*b), *ohms);
                }
                Element::Capacitor { a, b, farads } => {
                    self.capacitor(&new_name, remap(*a), remap(*b), *farads);
                }
                Element::Vsource { p, n, wave, .. } => {
                    self.vsource(&new_name, remap(*p), remap(*n), wave.clone());
                }
                Element::Isource { p, n, wave } => {
                    self.isource(&new_name, remap(*p), remap(*n), wave.clone());
                }
                Element::Mos { d, g, s, b, dev } => {
                    self.mosfet(
                        &new_name,
                        remap(*d),
                        remap(*g),
                        remap(*s),
                        remap(*b),
                        dev.clone(),
                    );
                }
            }
        }
        resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GND);
        assert_eq!(c.node("gnd"), Circuit::GND);
        assert_eq!(c.node("GND"), Circuit::GND);
        assert!(Circuit::GND.is_ground());
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("a"), Some(a));
        assert_eq!(c.find_node("zz"), None);
    }

    #[test]
    fn fresh_nodes_are_unique() {
        let mut c = Circuit::new();
        let x = c.fresh_node("tmp");
        let y = c.fresh_node("tmp");
        assert_ne!(x, y);
    }

    #[test]
    fn duplicate_element_name_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GND, 1e3);
        assert!(c.try_resistor("R1", a, Circuit::GND, 1e3).is_err());
    }

    #[test]
    fn invalid_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.try_resistor("R", a, Circuit::GND, 0.0).is_err());
        assert!(c.try_resistor("R", a, Circuit::GND, -5.0).is_err());
        assert!(c.try_resistor("R", a, Circuit::GND, f64::NAN).is_err());
    }

    #[test]
    fn branch_indices_count_up() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("V1", a, Circuit::GND, SourceWave::dc(1.0));
        c.vsource("V2", b, Circuit::GND, SourceWave::dc(2.0));
        assert_eq!(c.branch_count(), 2);
        assert_eq!(c.unknown_count(), 2 + 2);
    }

    #[test]
    fn validate_empty_circuit_fails() {
        assert!(Circuit::new().validate().is_err());
    }

    #[test]
    fn instantiate_merges_and_prefixes() {
        let mut sub = Circuit::new();
        let sin = sub.node("in");
        let sout = sub.node("out");
        sub.resistor("R", sin, sout, 1e3);

        let mut top = Circuit::new();
        let tin = top.node("top_in");
        let nodes = top.instantiate("u1", &sub, &[(sin, tin)]);
        assert_eq!(nodes[sin.0], tin, "connected node mapped");
        assert!(top.find_node("u1/out").is_some(), "inner node prefixed");
        assert!(top.find_element("u1/R").is_some(), "element prefixed");
    }
}
