//! Linear-system assembly and LU solvers.
//!
//! Two assembly paths feed the solvers:
//!
//! * the legacy row-wise [`SystemMatrix`] accumulator (stamps appended,
//!   consolidated on demand) — the reference path, still used by one-shot
//!   solves and the equivalence tests, and
//! * a fixed [`CscPattern`] plus a flat values buffer — the fast path the
//!   Newton loop uses via `analysis::plan::StampPlan`, where the sparsity
//!   pattern is computed once per circuit and only values change.
//!
//! Depending on size (or an explicit [`SolverKind`] choice) systems are
//! solved by dense partial-pivoting LU ([`dense::DenseWorkspace`]) or by a
//! left-looking Gilbert–Peierls sparse LU ([`sparse::SparseLu`]) with a
//! symbolic/numeric split for allocation-free refactorisation.

pub mod dense;
pub mod sparse;

use crate::error::SpiceError;

/// Immutable column-compressed sparsity pattern of an MNA Jacobian.
///
/// Built once per `(circuit, analysis)` by the stamp plan; every Newton
/// iteration then rewrites only a parallel values buffer (`vals[slot]`
/// for slot indices handed out at construction). Both LU backends consume
/// the pattern directly, so no per-iteration format conversion remains.
#[derive(Debug, Clone)]
pub struct CscPattern {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl CscPattern {
    /// Build a pattern from (possibly duplicate) `(row, col)` stamp sites.
    ///
    /// Returns the pattern plus one slot index per input site: duplicate
    /// sites share a slot, so stamping is `vals[slot] += v`.
    ///
    /// # Panics
    ///
    /// Panics if any site is out of range.
    #[must_use]
    pub fn from_sites(n: usize, sites: &[(usize, usize)]) -> (Self, Vec<usize>) {
        for &(r, c) in sites {
            assert!(r < n && c < n, "site ({r},{c}) out of range {n}");
        }
        // Sort site indices by (col, row); equal sites collapse to a slot.
        let mut order: Vec<usize> = (0..sites.len()).collect();
        order.sort_unstable_by_key(|&i| (sites[i].1, sites[i].0));
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(sites.len());
        let mut slots = vec![0usize; sites.len()];
        let mut prev: Option<(usize, usize)> = None;
        for &i in &order {
            let (r, c) = sites[i];
            if prev != Some((r, c)) {
                row_idx.push(r);
                col_ptr[c + 1] += 1;
                prev = Some((r, c));
            }
            slots[i] = row_idx.len() - 1;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        (
            Self {
                n,
                col_ptr,
                row_idx,
            },
            slots,
        )
    }

    /// Build a pattern and values from a consolidated [`SystemMatrix`].
    #[must_use]
    pub fn from_system(m: &SystemMatrix) -> (Self, Vec<f64>) {
        let n = m.dim();
        let mut col_ptr = vec![0usize; n + 1];
        for row in m.rows() {
            for &(c, _) in row {
                col_ptr[c + 1] += 1;
            }
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut next = col_ptr.clone();
        for (r, row) in m.rows().iter().enumerate() {
            for &(c, v) in row {
                let p = next[c];
                row_idx[p] = r;
                vals[p] = v;
                next[c] += 1;
            }
        }
        (
            Self {
                n,
                col_ptr,
                row_idx,
            },
            vals,
        )
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of structural non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Value-slot range of column `j`.
    #[inline]
    #[must_use]
    pub fn col_range(&self, j: usize) -> std::ops::Range<usize> {
        self.col_ptr[j]..self.col_ptr[j + 1]
    }

    /// Row indices, parallel to the values buffer.
    #[inline]
    #[must_use]
    pub fn row_indices(&self) -> &[usize] {
        &self.row_idx
    }

    /// `(row, value)` pairs of column `j` for the given values buffer.
    #[inline]
    pub fn col<'a>(&'a self, j: usize, vals: &'a [f64]) -> impl Iterator<Item = (usize, f64)> + 'a {
        self.col_range(j).map(move |p| (self.row_idx[p], vals[p]))
    }

    /// Accumulate `y += A·x` for the given values buffer.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn spmv_add(&self, vals: &[f64], x: &[f64], y: &mut [f64]) {
        assert_eq!(vals.len(), self.nnz(), "values length mismatch");
        assert!(x.len() == self.n && y.len() == self.n, "vector mismatch");
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                for p in self.col_range(j) {
                    y[self.row_idx[p]] += vals[p] * xj;
                }
            }
        }
    }
}

/// Which factorisation backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Pick dense below [`AUTO_DENSE_LIMIT`] unknowns, sparse above.
    #[default]
    Auto,
    /// Always dense.
    Dense,
    /// Always sparse.
    Sparse,
}

/// Unknown-count threshold for the automatic dense/sparse switch.
pub const AUTO_DENSE_LIMIT: usize = 96;

/// Row-wise sparse accumulator for the MNA Jacobian.
///
/// Stamps are appended (duplicates allowed) and consolidated on demand.
#[derive(Debug, Clone)]
pub struct SystemMatrix {
    n: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl SystemMatrix {
    /// An `n × n` zero matrix.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Clear all entries, keeping allocations.
    pub fn clear(&mut self) {
        for r in &mut self.rows {
            r.clear();
        }
    }

    /// Add `v` at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.n && c < self.n,
            "stamp ({r},{c}) out of range {}",
            self.n
        );
        if v != 0.0 {
            self.rows[r].push((c, v));
        }
    }

    /// Merge duplicate column entries within each row (sorted by column).
    pub fn consolidate(&mut self) {
        for row in &mut self.rows {
            if row.len() < 2 {
                continue;
            }
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut w = 0;
            for i in 1..row.len() {
                if row[i].0 == row[w].0 {
                    row[w].1 += row[i].1;
                } else {
                    w += 1;
                    row[w] = row[i];
                }
            }
            row.truncate(w + 1);
        }
    }

    /// Consolidated rows (call [`SystemMatrix::consolidate`] first for
    /// duplicate-free access).
    #[must_use]
    pub fn rows(&self) -> &[Vec<(usize, f64)>] {
        &self.rows
    }

    /// Number of stored (possibly duplicate) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Solve `A·x = b` with the requested backend, consuming neither.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when a pivot vanishes.
    pub fn solve(&mut self, b: &[f64], kind: SolverKind) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        self.consolidate();
        let use_dense = match kind {
            SolverKind::Dense => true,
            SolverKind::Sparse => false,
            SolverKind::Auto => self.n <= AUTO_DENSE_LIMIT,
        };
        if use_dense {
            dense::solve_dense(self, b)
        } else {
            sparse::solve_sparse(self, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidate_merges_duplicates() {
        let mut m = SystemMatrix::new(2);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.0);
        m.add(0, 1, -1.0);
        m.consolidate();
        assert_eq!(m.rows()[0], vec![(0, 3.0), (1, -1.0)]);
    }

    #[test]
    fn zero_stamps_are_skipped() {
        let mut m = SystemMatrix::new(2);
        m.add(0, 0, 0.0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn dense_and_sparse_agree_on_small_system() {
        // 2x2: [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let build = || {
            let mut m = SystemMatrix::new(2);
            m.add(0, 0, 2.0);
            m.add(0, 1, 1.0);
            m.add(1, 0, 1.0);
            m.add(1, 1, 3.0);
            m
        };
        let b = vec![3.0, 5.0];
        let xd = build().solve(&b, SolverKind::Dense).unwrap();
        let xs = build().solve(&b, SolverKind::Sparse).unwrap();
        for (a, b) in xd.iter().zip(xs.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((xd[0] - 0.8).abs() < 1e-12);
        assert!((xd[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_reported() {
        let mut m = SystemMatrix::new(2);
        m.add(0, 0, 1.0);
        // row 1 empty -> singular
        let err = m.solve(&[1.0, 1.0], SolverKind::Dense).unwrap_err();
        assert!(matches!(err, SpiceError::SingularMatrix { .. }));
        let mut m2 = SystemMatrix::new(2);
        m2.add(0, 0, 1.0);
        let err2 = m2.solve(&[1.0, 1.0], SolverKind::Sparse).unwrap_err();
        assert!(matches!(err2, SpiceError::SingularMatrix { .. }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_stamp_panics() {
        let mut m = SystemMatrix::new(2);
        m.add(2, 0, 1.0);
    }
}
