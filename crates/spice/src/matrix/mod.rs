//! Linear-system assembly and LU solvers.
//!
//! The MNA Jacobian is assembled into a row-wise sparse [`SystemMatrix`];
//! depending on size (or an explicit [`SolverKind`] choice) it is solved by
//! dense partial-pivoting LU or by a left-looking Gilbert–Peierls sparse LU.

pub mod dense;
pub mod sparse;

use crate::error::SpiceError;

/// Which factorisation backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// Pick dense below [`AUTO_DENSE_LIMIT`] unknowns, sparse above.
    #[default]
    Auto,
    /// Always dense.
    Dense,
    /// Always sparse.
    Sparse,
}

/// Unknown-count threshold for the automatic dense/sparse switch.
pub const AUTO_DENSE_LIMIT: usize = 96;

/// Row-wise sparse accumulator for the MNA Jacobian.
///
/// Stamps are appended (duplicates allowed) and consolidated on demand.
#[derive(Debug, Clone)]
pub struct SystemMatrix {
    n: usize,
    rows: Vec<Vec<(usize, f64)>>,
}

impl SystemMatrix {
    /// An `n × n` zero matrix.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            rows: vec![Vec::new(); n],
        }
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Clear all entries, keeping allocations.
    pub fn clear(&mut self) {
        for r in &mut self.rows {
            r.clear();
        }
    }

    /// Add `v` at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.n && c < self.n,
            "stamp ({r},{c}) out of range {}",
            self.n
        );
        if v != 0.0 {
            self.rows[r].push((c, v));
        }
    }

    /// Merge duplicate column entries within each row (sorted by column).
    pub fn consolidate(&mut self) {
        for row in &mut self.rows {
            if row.len() < 2 {
                continue;
            }
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut w = 0;
            for i in 1..row.len() {
                if row[i].0 == row[w].0 {
                    row[w].1 += row[i].1;
                } else {
                    w += 1;
                    row[w] = row[i];
                }
            }
            row.truncate(w + 1);
        }
    }

    /// Consolidated rows (call [`SystemMatrix::consolidate`] first for
    /// duplicate-free access).
    #[must_use]
    pub fn rows(&self) -> &[Vec<(usize, f64)>] {
        &self.rows
    }

    /// Number of stored (possibly duplicate) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Solve `A·x = b` with the requested backend, consuming neither.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when a pivot vanishes.
    pub fn solve(&mut self, b: &[f64], kind: SolverKind) -> Result<Vec<f64>, SpiceError> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        self.consolidate();
        let use_dense = match kind {
            SolverKind::Dense => true,
            SolverKind::Sparse => false,
            SolverKind::Auto => self.n <= AUTO_DENSE_LIMIT,
        };
        if use_dense {
            dense::solve_dense(self, b)
        } else {
            sparse::solve_sparse(self, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidate_merges_duplicates() {
        let mut m = SystemMatrix::new(2);
        m.add(0, 0, 1.0);
        m.add(0, 0, 2.0);
        m.add(0, 1, -1.0);
        m.consolidate();
        assert_eq!(m.rows()[0], vec![(0, 3.0), (1, -1.0)]);
    }

    #[test]
    fn zero_stamps_are_skipped() {
        let mut m = SystemMatrix::new(2);
        m.add(0, 0, 0.0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn dense_and_sparse_agree_on_small_system() {
        // 2x2: [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let build = || {
            let mut m = SystemMatrix::new(2);
            m.add(0, 0, 2.0);
            m.add(0, 1, 1.0);
            m.add(1, 0, 1.0);
            m.add(1, 1, 3.0);
            m
        };
        let b = vec![3.0, 5.0];
        let xd = build().solve(&b, SolverKind::Dense).unwrap();
        let xs = build().solve(&b, SolverKind::Sparse).unwrap();
        for (a, b) in xd.iter().zip(xs.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((xd[0] - 0.8).abs() < 1e-12);
        assert!((xd[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_reported() {
        let mut m = SystemMatrix::new(2);
        m.add(0, 0, 1.0);
        // row 1 empty -> singular
        let err = m.solve(&[1.0, 1.0], SolverKind::Dense).unwrap_err();
        assert!(matches!(err, SpiceError::SingularMatrix { .. }));
        let mut m2 = SystemMatrix::new(2);
        m2.add(0, 0, 1.0);
        let err2 = m2.solve(&[1.0, 1.0], SolverKind::Sparse).unwrap_err();
        assert!(matches!(err2, SpiceError::SingularMatrix { .. }));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_stamp_panics() {
        let mut m = SystemMatrix::new(2);
        m.add(2, 0, 1.0);
    }
}
