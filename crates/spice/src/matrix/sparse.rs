//! Left-looking Gilbert–Peierls sparse LU with partial pivoting.
//!
//! Large transistor-level netlists (e.g. the reduced-AES security testbench
//! of Fig. 6) produce MNA systems with thousands of unknowns but only a
//! handful of entries per row; this module factorises them in time
//! proportional to the flop count of the factors, following the classic
//! Gilbert–Peierls algorithm (symbolic depth-first reachability per column,
//! then a sparse triangular solve).

use super::SystemMatrix;
use crate::error::SpiceError;

/// Threshold below which a pivot is treated as numerically zero.
const PIVOT_EPS: f64 = 1e-13;

/// Column-compressed copy of the assembled matrix.
struct Csc {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl Csc {
    fn from_rows(m: &SystemMatrix) -> Self {
        let n = m.dim();
        let mut counts = vec![0usize; n + 1];
        for row in m.rows() {
            for &(c, _) in row {
                counts[c + 1] += 1;
            }
        }
        for c in 0..n {
            counts[c + 1] += counts[c];
        }
        let nnz = counts[n];
        let mut row_idx = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut next = counts.clone();
        for (r, row) in m.rows().iter().enumerate() {
            for &(c, v) in row {
                let p = next[c];
                row_idx[p] = r;
                vals[p] = v;
                next[c] += 1;
            }
        }
        Csc {
            n,
            col_ptr: counts,
            row_idx,
            vals,
        }
    }

    fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        (self.col_ptr[j]..self.col_ptr[j + 1]).map(move |p| (self.row_idx[p], self.vals[p]))
    }
}

/// LU factors with row permutation. `l_cols[k]` holds the strictly-lower
/// entries of L's column `k` as `(original_row, value)`; `u_cols[k]` holds
/// the strictly-upper entries of U's column `k` as
/// `(pivot_position, value)`; `u_diag[k]` is the pivot.
pub struct SparseLu {
    n: usize,
    l_cols: Vec<Vec<(usize, f64)>>,
    u_cols: Vec<Vec<(usize, f64)>>,
    u_diag: Vec<f64>,
    /// `pinv[original_row] = pivot position`.
    pinv: Vec<usize>,
}

impl SparseLu {
    /// Factor the consolidated matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if a column has no usable
    /// pivot.
    pub fn factor(m: &SystemMatrix) -> Result<Self, SpiceError> {
        const UNPIVOTED: usize = usize::MAX;

        let a = Csc::from_rows(m);
        let n = a.n;

        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_diag = vec![0.0f64; n];
        let mut pinv = vec![UNPIVOTED; n];

        // Dense workspace for the current column and DFS bookkeeping.
        let mut x = vec![0.0f64; n];
        let mut mark = vec![usize::MAX; n]; // column stamp for visited rows
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n);
        let mut order: Vec<usize> = Vec::with_capacity(n);

        // The left-looking factorisation is written over column index k;
        // an iterator over `u_diag` would hide the algorithm's shape.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            // --- symbolic: rows reachable from the pattern of A[:,k]
            // through already-pivoted columns of L, in topological order.
            order.clear();
            for (r, _) in a.col(k) {
                if mark[r] == k {
                    continue;
                }
                // Iterative DFS with explicit child cursor.
                stack.push((r, 0));
                mark[r] = k;
                while let Some(&(node, cursor)) = stack.last() {
                    let col = pinv[node];
                    if col == UNPIVOTED {
                        // Unpivoted row: leaf.
                        order.push(node);
                        stack.pop();
                        continue;
                    }
                    let children = &l_cols[col];
                    if cursor < children.len() {
                        stack.last_mut().expect("non-empty").1 += 1;
                        let child = children[cursor].0;
                        if mark[child] != k {
                            mark[child] = k;
                            stack.push((child, 0));
                        }
                    } else {
                        order.push(node);
                        stack.pop();
                    }
                }
            }
            // `order` is now a topological order with dependencies first...
            // actually DFS post-order gives dependents *after* their
            // dependencies only if edges point dependency->dependent; here
            // edges go from a row to the rows its elimination updates, so
            // post-order must be *reversed* to process updates in
            // elimination order.
            order.reverse();

            // --- numeric: scatter A[:,k], then eliminate in topo order.
            for (r, v) in a.col(k) {
                x[r] = v;
            }
            for &r in &order {
                let col = pinv[r];
                if col == UNPIVOTED {
                    continue;
                }
                let xv = x[r];
                if xv != 0.0 {
                    for &(rr, lv) in &l_cols[col] {
                        x[rr] -= lv * xv;
                    }
                }
            }

            // --- pivot: largest magnitude among unpivoted rows.
            let mut ipiv = UNPIVOTED;
            let mut best = 0.0f64;
            for &r in &order {
                if pinv[r] == UNPIVOTED {
                    let mag = x[r].abs();
                    if mag > best {
                        best = mag;
                        ipiv = r;
                    }
                }
            }
            if ipiv == UNPIVOTED || best < PIVOT_EPS {
                return Err(SpiceError::SingularMatrix { index: k });
            }

            // --- store factors and clear the workspace.
            let pivot_val = x[ipiv];
            u_diag[k] = pivot_val;
            let mut ucol = Vec::new();
            let mut lcol = Vec::new();
            for &r in &order {
                let v = x[r];
                x[r] = 0.0;
                if r == ipiv || v == 0.0 {
                    continue;
                }
                match pinv[r] {
                    UNPIVOTED => lcol.push((r, v / pivot_val)),
                    pos => ucol.push((pos, v)),
                }
            }
            x[ipiv] = 0.0;
            pinv[ipiv] = k;
            l_cols.push(lcol);
            u_cols.push(ucol);
        }

        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            pinv,
        })
    }

    /// Solve `A·x = b` using the computed factors.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        // Apply the row permutation: y[k] = b[row_of_pivot_k].
        let mut perm_row = vec![0usize; self.n];
        for (orig, &pos) in self.pinv.iter().enumerate() {
            perm_row[pos] = orig;
        }
        let mut y: Vec<f64> = (0..self.n).map(|k| b[perm_row[k]]).collect();

        // Forward substitution with unit-diagonal L.
        for k in 0..self.n {
            let yk = y[k];
            if yk != 0.0 {
                for &(orig_row, v) in &self.l_cols[k] {
                    y[self.pinv[orig_row]] -= v * yk;
                }
            }
        }
        // Back substitution with U.
        for k in (0..self.n).rev() {
            y[k] /= self.u_diag[k];
            let yk = y[k];
            if yk != 0.0 {
                for &(pos, v) in &self.u_cols[k] {
                    y[pos] -= v * yk;
                }
            }
        }
        y
    }
}

/// One-shot factor + solve. `m` must be consolidated.
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] when factorisation fails.
pub fn solve_sparse(m: &SystemMatrix, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
    Ok(SparseLu::factor(m)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dense::solve_dense;

    fn mat(n: usize, entries: &[(usize, usize, f64)]) -> SystemMatrix {
        let mut m = SystemMatrix::new(n);
        for &(r, c, v) in entries {
            m.add(r, c, v);
        }
        m.consolidate();
        m
    }

    #[test]
    fn diagonal_system() {
        let m = mat(3, &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)]);
        let x = solve_sparse(&m, &[2.0, 4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn permutation_matrix() {
        // Pure permutation requires pivoting on every column.
        let m = mat(3, &[(0, 2, 1.0), (1, 0, 1.0), (2, 1, 1.0)]);
        let x = solve_sparse(&m, &[3.0, 1.0, 2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_dense_on_random_sparse_system() {
        let n = 60;
        let mut state = 0xdead_beef_u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut entries = Vec::new();
        for r in 0..n {
            entries.push((r, r, 5.0 + rnd()));
            for _ in 0..3 {
                let c = ((rnd().abs() * n as f64) as usize).min(n - 1);
                entries.push((r, c, rnd()));
            }
        }
        let m = mat(n, &entries);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xs = solve_sparse(&m, &b).unwrap();
        let xd = solve_dense(&m, &b).unwrap();
        for (a, d) in xs.iter().zip(xd.iter()) {
            assert!((a - d).abs() < 1e-8, "sparse {a} vs dense {d}");
        }
    }

    #[test]
    fn singular_column_detected() {
        let m = mat(2, &[(0, 0, 1.0), (1, 0, 2.0)]);
        assert!(matches!(
            solve_sparse(&m, &[1.0, 1.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn factor_reuse_solves_multiple_rhs() {
        let m = mat(2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
        let lu = SparseLu::factor(&m).unwrap();
        let x1 = lu.solve(&[3.0, 5.0]);
        let x2 = lu.solve(&[1.0, 0.0]);
        assert!((x1[0] - 0.8).abs() < 1e-12 && (x1[1] - 1.4).abs() < 1e-12);
        assert!((x2[0] - 0.6).abs() < 1e-12 && (x2[1] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn mna_like_zero_diagonal() {
        // Structure of a voltage source row: zero diagonal block.
        // [G  1; 1  0] [v; i] = [0; V]
        let g = 1e-3;
        let m = mat(2, &[(0, 0, g), (0, 1, 1.0), (1, 0, 1.0)]);
        let x = solve_sparse(&m, &[0.0, 1.2]).unwrap();
        assert!((x[0] - 1.2).abs() < 1e-12, "node voltage pinned");
        assert!((x[1] + g * 1.2).abs() < 1e-15, "branch current");
    }
}
