//! Left-looking Gilbert–Peierls sparse LU with partial pivoting and a
//! symbolic/numeric split.
//!
//! Large transistor-level netlists (e.g. the reduced-AES security testbench
//! of Fig. 6) produce MNA systems with thousands of unknowns but only a
//! handful of entries per row; this module factorises them in time
//! proportional to the flop count of the factors, following the classic
//! Gilbert–Peierls algorithm (symbolic depth-first reachability per column,
//! then a sparse triangular solve).
//!
//! The expensive part of every factorisation — the per-column DFS that
//! discovers the fill-in pattern, plus the pivot-order search — depends
//! only on the sparsity pattern, which the Newton loop keeps fixed. A
//! first [`SparseLu::factor_csc`] therefore records the elimination
//! order, fill pattern and row permutation; subsequent
//! [`SparseLu::refactor`] calls on the same [`CscPattern`] replay the
//! recorded structure and recompute numbers only, and
//! [`SparseLu::solve_into`] back-substitutes without allocating. A
//! refactorisation whose fixed pivot degrades numerically (threshold
//! pivot test) fails over to a fresh full factorisation at the caller.

use super::{CscPattern, SystemMatrix};
use crate::error::SpiceError;

/// Threshold below which a pivot is treated as numerically zero.
const PIVOT_EPS: f64 = 1e-13;

/// Threshold-pivoting guard for numeric-only refactorisation: the fixed
/// pivot must retain at least this fraction of the column's largest
/// candidate magnitude, bounding element growth per column to 1/τ.
const REFACTOR_PIVOT_TAU: f64 = 1e-3;

const UNPIVOTED: usize = usize::MAX;

/// LU factors with row permutation. `l_cols[k]` holds the strictly-lower
/// entries of L's column `k` as `(original_row, value)`; `u_cols[k]` holds
/// the strictly-upper entries of U's column `k` as
/// `(pivot_position, value)`; `u_diag[k]` is the pivot.
///
/// The struct also carries the reusable symbolic state: the per-column
/// elimination order discovered by the DFS and the row permutation, which
/// [`SparseLu::refactor`] replays for numeric-only refactorisation.
/// Cloning copies both the symbolic structure and the current numbers —
/// the ensemble transient hands lane 0's factors to sibling lanes so
/// their first factorisation is a numeric-only replay.
#[derive(Clone)]
pub struct SparseLu {
    n: usize,
    l_cols: Vec<Vec<(usize, f64)>>,
    u_cols: Vec<Vec<(usize, f64)>>,
    u_diag: Vec<f64>,
    /// `pinv[original_row] = pivot position`.
    pinv: Vec<usize>,
    /// `perm_row[pivot position] = original_row` (inverse of `pinv`).
    perm_row: Vec<usize>,
    /// Per-column elimination order (reach set in topological order), as
    /// discovered by the symbolic DFS of the initial factorisation.
    order: Vec<Vec<usize>>,
    /// Dense workspace reused by refactor (cleared between columns).
    work: Vec<f64>,
}

impl SparseLu {
    /// Factor the consolidated matrix (convenience wrapper that builds a
    /// column-compressed copy first).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if a column has no usable
    /// pivot.
    pub fn factor(m: &SystemMatrix) -> Result<Self, SpiceError> {
        let (pattern, vals) = CscPattern::from_system(m);
        Self::factor_csc(&pattern, &vals)
    }

    /// Full symbolic + numeric factorisation of `pattern` with the given
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if a column has no usable
    /// pivot.
    pub fn factor_csc(pattern: &CscPattern, vals: &[f64]) -> Result<Self, SpiceError> {
        let n = pattern.dim();

        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_diag = vec![0.0f64; n];
        let mut pinv = vec![UNPIVOTED; n];
        let mut orders: Vec<Vec<usize>> = Vec::with_capacity(n);

        // Dense workspace for the current column and DFS bookkeeping.
        let mut x = vec![0.0f64; n];
        let mut mark = vec![usize::MAX; n]; // column stamp for visited rows
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n);

        // The left-looking factorisation is written over column index k;
        // an iterator over `u_diag` would hide the algorithm's shape.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            // --- symbolic: rows reachable from the pattern of A[:,k]
            // through already-pivoted columns of L, in topological order.
            let mut order: Vec<usize> = Vec::new();
            for (r, _) in pattern.col(k, vals) {
                if mark[r] == k {
                    continue;
                }
                // Iterative DFS with explicit child cursor.
                stack.push((r, 0));
                mark[r] = k;
                while let Some(&(node, cursor)) = stack.last() {
                    let col = pinv[node];
                    if col == UNPIVOTED {
                        // Unpivoted row: leaf.
                        order.push(node);
                        stack.pop();
                        continue;
                    }
                    let children = &l_cols[col];
                    if cursor < children.len() {
                        stack.last_mut().expect("non-empty").1 += 1;
                        let child = children[cursor].0;
                        if mark[child] != k {
                            mark[child] = k;
                            stack.push((child, 0));
                        }
                    } else {
                        order.push(node);
                        stack.pop();
                    }
                }
            }
            // `order` is now a topological order with dependencies first...
            // actually DFS post-order gives dependents *after* their
            // dependencies only if edges point dependency->dependent; here
            // edges go from a row to the rows its elimination updates, so
            // post-order must be *reversed* to process updates in
            // elimination order.
            order.reverse();

            // --- numeric: scatter A[:,k], then eliminate in topo order.
            for (r, v) in pattern.col(k, vals) {
                x[r] = v;
            }
            for &r in &order {
                let col = pinv[r];
                if col == UNPIVOTED {
                    continue;
                }
                let xv = x[r];
                if xv != 0.0 {
                    for &(rr, lv) in &l_cols[col] {
                        x[rr] -= lv * xv;
                    }
                }
            }

            // --- pivot: largest magnitude among unpivoted rows.
            let mut ipiv = UNPIVOTED;
            let mut best = 0.0f64;
            for &r in &order {
                if pinv[r] == UNPIVOTED {
                    let mag = x[r].abs();
                    if mag > best {
                        best = mag;
                        ipiv = r;
                    }
                }
            }
            if ipiv == UNPIVOTED || best < PIVOT_EPS {
                return Err(SpiceError::SingularMatrix { index: k });
            }

            // --- store factors and clear the workspace. Every reachable
            // position is stored, including exact numeric zeros: the
            // stored pattern must be the *symbolic* fill pattern so a
            // later numeric-only refactor can deposit any value there.
            let pivot_val = x[ipiv];
            u_diag[k] = pivot_val;
            let mut ucol = Vec::new();
            let mut lcol = Vec::new();
            for &r in &order {
                let v = x[r];
                x[r] = 0.0;
                if r == ipiv {
                    continue;
                }
                match pinv[r] {
                    UNPIVOTED => lcol.push((r, v / pivot_val)),
                    pos => ucol.push((pos, v)),
                }
            }
            x[ipiv] = 0.0;
            pinv[ipiv] = k;
            l_cols.push(lcol);
            u_cols.push(ucol);
            orders.push(order);
        }

        let mut perm_row = vec![0usize; n];
        for (orig, &pos) in pinv.iter().enumerate() {
            perm_row[pos] = orig;
        }
        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            pinv,
            perm_row,
            order: orders,
            work: x,
        })
    }

    /// Numeric-only refactorisation: recompute L/U values for new matrix
    /// values on the *same* sparsity pattern, replaying the recorded
    /// elimination order and row permutation. No allocation, no DFS, no
    /// pivot search.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when a fixed pivot fails the
    /// threshold test (degraded below `REFACTOR_PIVOT_TAU` of its
    /// column's largest candidate, or below `PIVOT_EPS` absolutely) —
    /// the caller should fall back to [`SparseLu::factor_csc`].
    ///
    /// # Panics
    ///
    /// Panics if `pattern` has a different dimension than the factored
    /// matrix (refactor against a foreign pattern is a logic error).
    pub fn refactor(&mut self, pattern: &CscPattern, vals: &[f64]) -> Result<(), SpiceError> {
        assert_eq!(pattern.dim(), self.n, "pattern dimension mismatch");
        let x = &mut self.work;
        for k in 0..self.n {
            // Scatter A[:,k] and eliminate in the recorded order; columns
            // 0..k of L already hold their refactored values (left-looking).
            for (r, v) in pattern.col(k, vals) {
                x[r] = v;
            }
            for &r in &self.order[k] {
                let col = self.pinv[r];
                // Rows pivoted in an *earlier* column trigger updates; the
                // rest belong to this column's L part. After the initial
                // factorisation `pinv` is total, so "earlier" is `< k`.
                if col < k {
                    let xv = x[r];
                    if xv != 0.0 {
                        for &(rr, lv) in &self.l_cols[col] {
                            x[rr] -= lv * xv;
                        }
                    }
                }
            }

            // Threshold-pivot check against the fixed pivot row.
            let ipiv = self.perm_row[k];
            let pivot_val = x[ipiv];
            let mut cand_max = pivot_val.abs();
            for &(r, _) in &self.l_cols[k] {
                cand_max = cand_max.max(x[r].abs());
            }
            if pivot_val.abs() < PIVOT_EPS || pivot_val.abs() < REFACTOR_PIVOT_TAU * cand_max {
                // Clear the workspace before bailing so a later call
                // starts clean.
                for &r in &self.order[k] {
                    x[r] = 0.0;
                }
                x[ipiv] = 0.0;
                return Err(SpiceError::SingularMatrix { index: k });
            }

            self.u_diag[k] = pivot_val;
            for entry in &mut self.u_cols[k] {
                entry.1 = x[self.perm_row[entry.0]];
            }
            for entry in &mut self.l_cols[k] {
                entry.1 = x[entry.0] / pivot_val;
            }
            for &r in &self.order[k] {
                x[r] = 0.0;
            }
            x[ipiv] = 0.0;
        }
        Ok(())
    }

    /// Solve `A·x = b` using the computed factors.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0f64; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solve `A·x = b` into a caller-provided buffer — no allocation, for
    /// call sites that loop (the Newton iteration, transient stepping).
    ///
    /// # Panics
    ///
    /// Panics if `b` or `x` do not match the system dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        // Apply the row permutation: x[k] = b[row_of_pivot_k].
        for (k, xk) in x.iter_mut().enumerate() {
            *xk = b[self.perm_row[k]];
        }

        // Forward substitution with unit-diagonal L.
        for k in 0..self.n {
            let xk = x[k];
            if xk != 0.0 {
                for &(orig_row, v) in &self.l_cols[k] {
                    x[self.pinv[orig_row]] -= v * xk;
                }
            }
        }
        // Back substitution with U.
        for k in (0..self.n).rev() {
            x[k] /= self.u_diag[k];
            let xk = x[k];
            if xk != 0.0 {
                for &(pos, v) in &self.u_cols[k] {
                    x[pos] -= v * xk;
                }
            }
        }
    }

    /// Structural non-zero count of the factors (fill-in included).
    #[must_use]
    pub fn factor_nnz(&self) -> usize {
        self.n
            + self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
    }
}

/// One-shot factor + solve. `m` must be consolidated.
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] when factorisation fails.
pub fn solve_sparse(m: &SystemMatrix, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
    Ok(SparseLu::factor(m)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::dense::solve_dense;

    fn mat(n: usize, entries: &[(usize, usize, f64)]) -> SystemMatrix {
        let mut m = SystemMatrix::new(n);
        for &(r, c, v) in entries {
            m.add(r, c, v);
        }
        m.consolidate();
        m
    }

    #[test]
    fn diagonal_system() {
        let m = mat(3, &[(0, 0, 2.0), (1, 1, 4.0), (2, 2, 8.0)]);
        let x = solve_sparse(&m, &[2.0, 4.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn permutation_matrix() {
        // Pure permutation requires pivoting on every column.
        let m = mat(3, &[(0, 2, 1.0), (1, 0, 1.0), (2, 1, 1.0)]);
        let x = solve_sparse(&m, &[3.0, 1.0, 2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_dense_on_random_sparse_system() {
        let n = 60;
        let mut state = 0xdead_beef_u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut entries = Vec::new();
        for r in 0..n {
            entries.push((r, r, 5.0 + rnd()));
            for _ in 0..3 {
                let c = ((rnd().abs() * n as f64) as usize).min(n - 1);
                entries.push((r, c, rnd()));
            }
        }
        let m = mat(n, &entries);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let xs = solve_sparse(&m, &b).unwrap();
        let xd = solve_dense(&m, &b).unwrap();
        for (a, d) in xs.iter().zip(xd.iter()) {
            assert!((a - d).abs() < 1e-8, "sparse {a} vs dense {d}");
        }
    }

    #[test]
    fn singular_column_detected() {
        let m = mat(2, &[(0, 0, 1.0), (1, 0, 2.0)]);
        assert!(matches!(
            solve_sparse(&m, &[1.0, 1.0]),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn factor_reuse_solves_multiple_rhs() {
        let m = mat(2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
        let lu = SparseLu::factor(&m).unwrap();
        let x1 = lu.solve(&[3.0, 5.0]);
        let x2 = lu.solve(&[1.0, 0.0]);
        assert!((x1[0] - 0.8).abs() < 1e-12 && (x1[1] - 1.4).abs() < 1e-12);
        assert!((x2[0] - 0.6).abs() < 1e-12 && (x2[1] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve() {
        let m = mat(
            3,
            &[
                (0, 0, 4.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 1.0),
                (2, 2, 2.0),
            ],
        );
        let lu = SparseLu::factor(&m).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x1 = lu.solve(&b);
        let mut x2 = vec![0.0; 3];
        lu.solve_into(&b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn mna_like_zero_diagonal() {
        // Structure of a voltage source row: zero diagonal block.
        // [G  1; 1  0] [v; i] = [0; V]
        let g = 1e-3;
        let m = mat(2, &[(0, 0, g), (0, 1, 1.0), (1, 0, 1.0)]);
        let x = solve_sparse(&m, &[0.0, 1.2]).unwrap();
        assert!((x[0] - 1.2).abs() < 1e-12, "node voltage pinned");
        assert!((x[1] + g * 1.2).abs() < 1e-15, "branch current");
    }

    /// Deterministic PRNG-driven refactor check: numeric-only
    /// refactorisation on changed values must match a fresh factorisation
    /// on many random systems.
    #[test]
    fn refactor_matches_fresh_factor() {
        let n = 40;
        let mut state = 0x5eed_u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        // Fixed pattern: diagonal plus a few off-diagonal sites.
        let mut sites = Vec::new();
        for r in 0..n {
            sites.push((r, r));
            for _ in 0..3 {
                let c = ((rnd().abs() * n as f64) as usize).min(n - 1);
                sites.push((r, c));
            }
        }
        let (pattern, slots) = CscPattern::from_sites(n, &sites);
        let fill = |rnd: &mut dyn FnMut() -> f64| {
            let mut vals = vec![0.0f64; pattern.nnz()];
            for (site, &slot) in sites.iter().zip(&slots) {
                let diag_boost = if site.0 == site.1 { 6.0 } else { 0.0 };
                vals[slot] += rnd() + diag_boost;
            }
            vals
        };
        let vals0 = fill(&mut rnd);
        let mut lu = SparseLu::factor_csc(&pattern, &vals0).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        for _ in 0..10 {
            let vals = fill(&mut rnd);
            lu.refactor(&pattern, &vals).expect("refactor");
            let x_re = lu.solve(&b);
            let fresh = SparseLu::factor_csc(&pattern, &vals).unwrap();
            let x_fresh = fresh.solve(&b);
            for (a, c) in x_re.iter().zip(&x_fresh) {
                assert!((a - c).abs() < 1e-9, "refactor {a} vs fresh {c}");
            }
            // Residual check against the actual matrix values.
            let mut ax = vec![0.0; n];
            pattern.spmv_add(&vals, &x_re, &mut ax);
            for (r, (axr, br)) in ax.iter().zip(&b).enumerate() {
                assert!((axr - br).abs() < 1e-8, "row {r}: {axr} vs {br}");
            }
        }
    }

    #[test]
    fn refactor_rejects_degraded_pivot() {
        // Factor with a healthy diagonal, then refactor with the first
        // pivot zeroed out: the threshold test must reject it.
        let sites = [(0usize, 0usize), (0, 1), (1, 0), (1, 1)];
        let (pattern, slots) = CscPattern::from_sites(2, &sites);
        let mut vals = vec![0.0; pattern.nnz()];
        for (&(_r, _c), (&slot, v)) in sites.iter().zip(slots.iter().zip([4.0f64, 1.0, 1.0, 4.0])) {
            vals[slot] = v;
        }
        let mut lu = SparseLu::factor_csc(&pattern, &vals).unwrap();
        let mut bad = vals.clone();
        bad[slots[0]] = 1e-16; // a(0,0) ~ 0 with a(1,0) = 1: pivot degraded
        assert!(lu.refactor(&pattern, &bad).is_err());
        // The workspace must be clean: a good refactor afterwards works.
        lu.refactor(&pattern, &vals).unwrap();
        let x = lu.solve(&[5.0, 5.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }
}
