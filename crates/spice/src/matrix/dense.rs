//! Dense LU factorisation with partial pivoting.
//!
//! MNA matrices for individual standard cells have a few dozen unknowns;
//! at that size a cache-friendly dense factorisation beats any sparse code.

use super::{CscPattern, SystemMatrix};
use crate::error::SpiceError;

/// Threshold below which a pivot is treated as numerically zero.
const PIVOT_EPS: f64 = 1e-13;

/// Reusable dense scratch matrix so the Newton loop's dense solves stop
/// allocating an `n × n` buffer per iteration.
///
/// Holds the working copy of `A` between solves; `solve_csc_into`
/// scatters a [`CscPattern`] + values buffer into it and runs the same
/// in-place partial-pivoting LU as [`solve_dense`], overwriting the
/// right-hand side with the solution.
#[derive(Debug, Default)]
pub struct DenseWorkspace {
    a: Vec<f64>,
}

impl DenseWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Solve `A·x = b` where `A` is given as pattern + values and `bx`
    /// holds `b` on entry and `x` on return. Allocation-free after the
    /// first call at a given dimension.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if no usable pivot exists
    /// in some column.
    ///
    /// # Panics
    ///
    /// Panics if `bx` does not match the pattern dimension.
    pub fn solve_csc_into(
        &mut self,
        pattern: &CscPattern,
        vals: &[f64],
        bx: &mut [f64],
    ) -> Result<(), SpiceError> {
        let n = pattern.dim();
        assert_eq!(bx.len(), n, "rhs length mismatch");
        self.a.clear();
        self.a.resize(n * n, 0.0);
        let a = &mut self.a;
        for c in 0..n {
            for (r, v) in pattern.col(c, vals) {
                a[r * n + c] += v;
            }
        }
        lu_in_place(a, n, bx)
    }
}

/// In-place partial-pivoting LU on a row-major `n × n` buffer, with the
/// right-hand side eliminated alongside (Doolittle with immediate forward
/// substitution) and overwritten by the solution.
fn lu_in_place(a: &mut [f64], n: usize, x: &mut [f64]) -> Result<(), SpiceError> {
    for k in 0..n {
        // Pivot search in column k, rows k..n.
        let mut piv = k;
        let mut best = a[k * n + k].abs();
        for r in (k + 1)..n {
            let cand = a[r * n + k].abs();
            if cand > best {
                best = cand;
                piv = r;
            }
        }
        if best < PIVOT_EPS {
            return Err(SpiceError::SingularMatrix { index: k });
        }
        if piv != k {
            for c in 0..n {
                a.swap(k * n + c, piv * n + c);
            }
            x.swap(k, piv);
        }
        let pivot = a[k * n + k];
        for r in (k + 1)..n {
            let factor = a[r * n + k] / pivot;
            if factor == 0.0 {
                continue;
            }
            a[r * n + k] = 0.0;
            for c in (k + 1)..n {
                a[r * n + c] -= factor * a[k * n + c];
            }
            x[r] -= factor * x[k];
        }
    }

    // Back substitution.
    for k in (0..n).rev() {
        let mut acc = x[k];
        for c in (k + 1)..n {
            acc -= a[k * n + c] * x[c];
        }
        x[k] = acc / a[k * n + k];
    }
    Ok(())
}

/// Solve `A·x = b` densely. `m` must already be consolidated.
///
/// # Errors
///
/// Returns [`SpiceError::SingularMatrix`] if no usable pivot exists in some
/// column.
pub fn solve_dense(m: &SystemMatrix, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
    let n = m.dim();
    let mut a = vec![0.0_f64; n * n];
    for (r, row) in m.rows().iter().enumerate() {
        for &(c, v) in row {
            a[r * n + c] += v;
        }
    }
    let mut x = b.to_vec();
    lu_in_place(&mut a, n, &mut x)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(entries: &[(usize, usize, f64)], n: usize, b: &[f64]) -> Result<Vec<f64>, SpiceError> {
        let mut m = SystemMatrix::new(n);
        for &(r, c, v) in entries {
            m.add(r, c, v);
        }
        m.consolidate();
        solve_dense(&m, b)
    }

    #[test]
    fn identity_returns_rhs() {
        let x = solve(
            &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)],
            3,
            &[4.0, 5.0, 6.0],
        )
        .unwrap();
        assert_eq!(x, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn requires_pivoting_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3, 2]; fails without row swap.
        let x = solve(&[(0, 1, 1.0), (1, 0, 1.0)], 2, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn known_3x3() {
        // A = [[2,1,1],[1,3,2],[1,0,0]], b = [4,5,6] -> x = [6,15,-23]
        let x = solve(
            &[
                (0, 0, 2.0),
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 2.0),
                (2, 0, 1.0),
            ],
            3,
            &[4.0, 5.0, 6.0],
        )
        .unwrap();
        assert!((x[0] - 6.0).abs() < 1e-9);
        assert!((x[1] - 15.0).abs() < 1e-9);
        assert!((x[2] + 23.0).abs() < 1e-9);
    }

    #[test]
    fn singular_detected() {
        let err = solve(&[(0, 0, 1.0), (1, 0, 1.0)], 2, &[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SpiceError::SingularMatrix { .. }));
    }

    #[test]
    fn workspace_matches_solve_dense_and_reuses_buffer() {
        let sites = [(0usize, 0usize), (0, 1), (1, 0), (1, 1)];
        let (pattern, slots) = CscPattern::from_sites(2, &sites);
        let mut vals = vec![0.0; pattern.nnz()];
        for (&slot, v) in slots.iter().zip([2.0f64, 1.0, 1.0, 3.0]) {
            vals[slot] += v;
        }
        let mut ws = DenseWorkspace::new();
        let mut bx = vec![3.0, 5.0];
        ws.solve_csc_into(&pattern, &vals, &mut bx).unwrap();
        assert!((bx[0] - 0.8).abs() < 1e-12 && (bx[1] - 1.4).abs() < 1e-12);
        // Second solve with different values reuses the same buffer.
        vals[slots[1]] = 0.0;
        vals[slots[2]] = 0.0;
        let mut bx2 = vec![4.0, 6.0];
        ws.solve_csc_into(&pattern, &vals, &mut bx2).unwrap();
        assert!((bx2[0] - 2.0).abs() < 1e-12 && (bx2[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn random_systems_residual_small() {
        // Deterministic pseudo-random matrix; verify A·x ≈ b.
        let n = 24;
        let mut state = 0x1234_5678_u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut entries = Vec::new();
        let mut dense = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                let v = rnd() + if r == c { 4.0 } else { 0.0 };
                entries.push((r, c, v));
                dense[r * n + c] = v;
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let x = solve(&entries, n, &b).unwrap();
        for r in 0..n {
            let mut acc = 0.0;
            for c in 0..n {
                acc += dense[r * n + c] * x[c];
            }
            assert!((acc - b[r]).abs() < 1e-9, "residual row {r}");
        }
    }
}
