//! Circuit element definitions.

use mcml_device::Mosfet;

use crate::circuit::NodeId;
use crate::source::SourceWave;

/// A circuit element. Constructed through the [`crate::Circuit`] builder
/// methods, which validate parameters and allocate branch unknowns.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance (Ω), strictly positive.
        ohms: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance (F), strictly positive.
        farads: f64,
    },
    /// Independent voltage source; contributes one MNA branch unknown. The
    /// branch current is defined flowing from `p` through the source to
    /// `n`, so a battery powering a load carries a *negative* branch
    /// current (see [`crate::TranResult::supply_current`]).
    Vsource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        wave: SourceWave,
        /// Index of the MNA branch unknown (assigned by the builder).
        branch: usize,
    },
    /// Independent current source pushing `wave` amperes from `p` through
    /// the element to `n`.
    Isource {
        /// Terminal the defined current leaves the circuit at.
        p: NodeId,
        /// Terminal the defined current re-enters the circuit at.
        n: NodeId,
        /// Source waveform.
        wave: SourceWave,
    },
    /// MOSFET (drain, gate, source, bulk) using the smooth
    /// [`mcml_device`] model.
    Mos {
        /// Drain terminal.
        d: NodeId,
        /// Gate terminal.
        g: NodeId,
        /// Source terminal.
        s: NodeId,
        /// Bulk terminal.
        b: NodeId,
        /// Device instance (parameters + geometry).
        dev: Mosfet,
    },
}

impl Element {
    /// Short type tag used in diagnostics.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Element::Resistor { .. } => "resistor",
            Element::Capacitor { .. } => "capacitor",
            Element::Vsource { .. } => "vsource",
            Element::Isource { .. } => "isource",
            Element::Mos { .. } => "mosfet",
        }
    }

    /// Nodes this element touches.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => vec![*a, *b],
            Element::Vsource { p, n, .. } | Element::Isource { p, n, .. } => vec![*p, *n],
            Element::Mos { d, g, s, b, .. } => vec![*d, *g, *s, *b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn kind_tags() {
        let r = Element::Resistor {
            a: Circuit::GND,
            b: Circuit::GND,
            ohms: 1.0,
        };
        assert_eq!(r.kind(), "resistor");
        assert_eq!(r.nodes().len(), 2);
    }
}
