//! Time-series container with the measurement utilities the experiments
//! need: interpolation, integration, averaging, threshold crossings and
//! delay extraction.

use serde::{Deserialize, Serialize};

use crate::error::SpiceError;

/// A sampled waveform `v(t)` with strictly increasing time points.
///
/// Produced by transient analysis (node voltages and branch currents) and
/// by the cell-level current-template power simulator; consumed by the
/// characterisation and DPA crates.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Waveform {
    t: Vec<f64>,
    v: Vec<f64>,
}

impl Waveform {
    /// Create a waveform from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length or time is not strictly
    /// increasing.
    #[must_use]
    pub fn new(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "time/value length mismatch");
        assert!(
            t.windows(2).all(|w| w[0] < w[1]),
            "time points must be strictly increasing"
        );
        Self { t, v }
    }

    /// An empty waveform.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the waveform holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Time points.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Sample values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// Append a sample; `t` must exceed the current last time point.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not advance time.
    pub fn push(&mut self, t: f64, v: f64) {
        if let Some(&last) = self.t.last() {
            assert!(t > last, "time must advance: {t} after {last}");
        }
        self.t.push(t);
        self.v.push(v);
    }

    /// Last sample value, or 0.0 for an empty waveform.
    #[must_use]
    pub fn last_value(&self) -> f64 {
        self.v.last().copied().unwrap_or(0.0)
    }

    /// Linear interpolation at time `t`; clamps to the end values outside
    /// the recorded span.
    #[must_use]
    pub fn sample(&self, t: f64) -> f64 {
        let (Some(&t_last), Some(&v_last)) = (self.t.last(), self.v.last()) else {
            return 0.0;
        };
        if t <= self.t[0] {
            return self.v[0];
        }
        if t >= t_last {
            return v_last;
        }
        let idx = match self
            .t
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => return self.v[i],
            Err(i) => i,
        };
        let (t0, t1) = (self.t[idx - 1], self.t[idx]);
        let (v0, v1) = (self.v[idx - 1], self.v[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Resample onto a uniform grid of `n` points spanning `[t0, t1]`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `t1 <= t0`. See [`Waveform::try_resample`]
    /// for a fallible variant that also rejects empty waveforms.
    #[must_use]
    pub fn resample(&self, t0: f64, t1: f64, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        assert!(t1 > t0, "empty resample window");
        let dt = (t1 - t0) / (n - 1) as f64;
        let t: Vec<f64> = (0..n).map(|i| t0 + dt * i as f64).collect();
        let v = t.iter().map(|&x| self.sample(x)).collect();
        Self { t, v }
    }

    /// Fallible [`Waveform::resample`]: a typed error instead of a panic
    /// on a degenerate request, and — unlike the panicking variant, which
    /// clamps an empty waveform to all-zero samples — an explicit
    /// [`SpiceError::EmptyWaveform`] when there is nothing to resample
    /// (e.g. a transient that produced no probe data mid-acquisition).
    ///
    /// # Errors
    ///
    /// [`SpiceError::EmptyWaveform`] when the waveform is empty;
    /// [`SpiceError::InvalidParameter`] when `n < 2` or `t1 <= t0`.
    pub fn try_resample(&self, t0: f64, t1: f64, n: usize) -> Result<Self, SpiceError> {
        if self.is_empty() {
            return Err(SpiceError::EmptyWaveform {
                op: "resample",
                len: 0,
            });
        }
        if n < 2 || t1 <= t0 {
            return Err(SpiceError::InvalidParameter {
                element: "waveform".to_owned(),
                reason: format!("resample window [{t0:e}, {t1:e}] with {n} points"),
            });
        }
        Ok(self.resample(t0, t1, n))
    }

    /// Fallible trapezoidal integral over `[a, b]`: a typed error where
    /// [`Waveform::integral_between`] silently returns `0.0` for a
    /// waveform with fewer than two samples.
    ///
    /// # Errors
    ///
    /// [`SpiceError::EmptyWaveform`] when fewer than two samples exist.
    pub fn try_integral_between(&self, a: f64, b: f64) -> Result<f64, SpiceError> {
        if self.t.len() < 2 {
            return Err(SpiceError::EmptyWaveform {
                op: "integral",
                len: self.t.len(),
            });
        }
        Ok(self.integral_between(a, b))
    }

    /// Fallible time-average over `[a, b]`; see
    /// [`Waveform::try_integral_between`].
    ///
    /// # Errors
    ///
    /// [`SpiceError::EmptyWaveform`] when fewer than two samples exist.
    pub fn try_mean_between(&self, a: f64, b: f64) -> Result<f64, SpiceError> {
        if self.t.len() < 2 {
            return Err(SpiceError::EmptyWaveform {
                op: "mean",
                len: self.t.len(),
            });
        }
        Ok(self.mean_between(a, b))
    }

    /// Trapezoidal integral over the full span.
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.integral_between(
            self.t.first().copied().unwrap_or(0.0),
            self.t.last().copied().unwrap_or(0.0),
        )
    }

    /// Trapezoidal integral over `[a, b]` (clipped to the recorded span,
    /// with interpolated end segments).
    #[must_use]
    pub fn integral_between(&self, a: f64, b: f64) -> f64 {
        if self.t.len() < 2 || b <= a {
            return 0.0;
        }
        let a = a.max(self.t[0]);
        let b = b.min(self.t[self.t.len() - 1]);
        if b <= a {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut prev_t = a;
        let mut prev_v = self.sample(a);
        for i in 0..self.t.len() {
            let ti = self.t[i];
            if ti <= a {
                continue;
            }
            if ti >= b {
                break;
            }
            acc += 0.5 * (prev_v + self.v[i]) * (ti - prev_t);
            prev_t = ti;
            prev_v = self.v[i];
        }
        acc += 0.5 * (prev_v + self.sample(b)) * (b - prev_t);
        acc
    }

    /// Time-average value over `[a, b]`.
    #[must_use]
    pub fn mean_between(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        self.integral_between(a, b) / (b - a)
    }

    /// Time-average over the full span.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match (self.t.first(), self.t.last()) {
            (Some(&a), Some(&b)) if b > a => self.mean_between(a, b),
            _ => self.last_value(),
        }
    }

    /// Minimum sample value (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// All times at which the waveform crosses `level` in the requested
    /// direction (linearly interpolated).
    #[must_use]
    pub fn crossings(&self, level: f64, rising: bool) -> Vec<f64> {
        let mut out = Vec::new();
        for w in 0..self.t.len().saturating_sub(1) {
            let (v0, v1) = (self.v[w], self.v[w + 1]);
            let crosses = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crosses {
                let f = (level - v0) / (v1 - v0);
                out.push(self.t[w] + f * (self.t[w + 1] - self.t[w]));
            }
        }
        out
    }

    /// First crossing of `level` at or after time `after`, if any.
    #[must_use]
    pub fn first_crossing_after(&self, level: f64, rising: bool, after: f64) -> Option<f64> {
        self.crossings(level, rising)
            .into_iter()
            .find(|&t| t >= after)
    }

    /// Propagation delay between this waveform (input) crossing its 50 %
    /// level and `output` crossing its own 50 % level, both measured from
    /// `after`; directions are given per signal. Returns `None` when either
    /// crossing is missing.
    #[must_use]
    pub fn delay_to(
        &self,
        output: &Waveform,
        in_rising: bool,
        out_rising: bool,
        after: f64,
    ) -> Option<f64> {
        let in_mid = 0.5 * (self.min() + self.max());
        let out_mid = 0.5 * (output.min() + output.max());
        let t_in = self.first_crossing_after(in_mid, in_rising, after)?;
        let t_out = output.first_crossing_after(out_mid, out_rising, t_in)?;
        Some(t_out - t_in)
    }

    /// Pointwise sum with another waveform, sampled on the union grid of
    /// both waveforms' time points.
    #[must_use]
    pub fn add(&self, other: &Waveform) -> Waveform {
        let mut grid: Vec<f64> = self.t.iter().chain(other.t.iter()).copied().collect();
        grid.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        grid.dedup();
        let v = grid
            .iter()
            .map(|&t| self.sample(t) + other.sample(t))
            .collect();
        Waveform { t: grid, v }
    }

    /// Scale all values by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Waveform {
        Waveform {
            t: self.t.clone(),
            v: self.v.iter().map(|x| x * k).collect(),
        }
    }

    /// Root-mean-square value over the full span.
    #[must_use]
    pub fn rms(&self) -> f64 {
        if self.t.len() < 2 {
            return self.last_value().abs();
        }
        let sq = Waveform {
            t: self.t.clone(),
            v: self.v.iter().map(|x| x * x).collect(),
        };
        sq.mean().sqrt()
    }

    /// Iterate over `(t, v)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.t.iter().copied().zip(self.v.iter().copied())
    }
}

impl FromIterator<(f64, f64)> for Waveform {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut w = Waveform::empty();
        for (t, v) in iter {
            w.push(t, v);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0])
    }

    #[test]
    fn sample_interpolates_and_clamps() {
        let w = ramp();
        assert_eq!(w.sample(0.5), 0.5);
        assert_eq!(w.sample(-1.0), 0.0);
        assert_eq!(w.sample(5.0), 2.0);
        assert_eq!(w.sample(1.0), 1.0);
    }

    #[test]
    fn integral_of_ramp() {
        let w = ramp();
        assert!((w.integral() - 2.0).abs() < 1e-12);
        assert!((w.integral_between(0.5, 1.5) - 1.0).abs() < 1e-12);
        assert!((w.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integral_outside_span_clips() {
        let w = ramp();
        assert!((w.integral_between(-5.0, 10.0) - 2.0).abs() < 1e-12);
        assert_eq!(w.integral_between(3.0, 5.0), 0.0);
        assert_eq!(w.integral_between(1.0, 1.0), 0.0);
    }

    #[test]
    fn crossings_detect_both_edges() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0, 1.0]);
        let rising = w.crossings(0.5, true);
        assert_eq!(rising.len(), 2);
        assert!((rising[0] - 0.5).abs() < 1e-12);
        assert!((rising[1] - 2.5).abs() < 1e-12);
        let falling = w.crossings(0.5, false);
        assert_eq!(falling.len(), 1);
        assert!((falling[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn delay_between_shifted_edges() {
        let a = Waveform::new(vec![0.0, 1.0, 2.0, 10.0], vec![0.0, 0.0, 1.0, 1.0]);
        let b = Waveform::new(vec![0.0, 3.0, 4.0, 10.0], vec![0.0, 0.0, 1.0, 1.0]);
        let d = a.delay_to(&b, true, true, 0.0).expect("both edges exist");
        assert!((d - 2.0).abs() < 1e-9, "delay {d}");
    }

    #[test]
    fn add_merges_grids() {
        let a = Waveform::new(vec![0.0, 2.0], vec![1.0, 1.0]);
        let b = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]);
        let s = a.add(&b);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sample(1.0), 2.0);
    }

    #[test]
    fn rms_of_constant() {
        let w = Waveform::new(vec![0.0, 1.0], vec![3.0, 3.0]);
        assert!((w.rms() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn resample_uniform() {
        let w = ramp();
        let r = w.resample(0.0, 2.0, 5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.values()[2], 1.0);
    }

    #[test]
    fn from_iterator_collects() {
        let w: Waveform = (0..4).map(|i| (f64::from(i), f64::from(i * i))).collect();
        assert_eq!(w.len(), 4);
        assert_eq!(w.sample(3.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_time_rejected() {
        let _ = Waveform::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn empty_waveform_behaviour() {
        let w = Waveform::empty();
        assert!(w.is_empty());
        assert_eq!(w.sample(1.0), 0.0);
        assert_eq!(w.last_value(), 0.0);
        assert_eq!(w.integral(), 0.0);
    }

    #[test]
    fn try_apis_reject_degenerate_waveforms() {
        let empty = Waveform::empty();
        assert!(matches!(
            empty.try_resample(0.0, 1.0, 4),
            Err(SpiceError::EmptyWaveform { op: "resample", .. })
        ));
        let single = Waveform::new(vec![0.0], vec![1.0]);
        assert!(matches!(
            single.try_integral_between(0.0, 1.0),
            Err(SpiceError::EmptyWaveform {
                op: "integral",
                len: 1
            })
        ));
        assert!(matches!(
            single.try_mean_between(0.0, 1.0),
            Err(SpiceError::EmptyWaveform { op: "mean", .. })
        ));
        // Bad window on a healthy waveform: parameter error, not empty.
        assert!(matches!(
            ramp().try_resample(1.0, 0.0, 4),
            Err(SpiceError::InvalidParameter { .. })
        ));
        // Healthy request round-trips to the panicking API's result.
        let ok = ramp().try_resample(0.0, 2.0, 5).unwrap();
        assert_eq!(ok, ramp().resample(0.0, 2.0, 5));
    }

    #[test]
    fn scaled_multiplies_values() {
        let w = ramp().scaled(2.0);
        assert_eq!(w.sample(1.0), 2.0);
    }
}
