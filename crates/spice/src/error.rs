//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by circuit construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// Newton–Raphson failed to converge within the iteration budget.
    NoConvergence {
        /// Analysis that failed (`"dc"` or `"tran"`).
        analysis: &'static str,
        /// Simulation time at the failure (seconds; 0 for DC).
        time: f64,
        /// Iterations spent.
        iterations: usize,
    },
    /// The system matrix became numerically singular.
    SingularMatrix {
        /// Row/column of the zero (or tiny) pivot.
        index: usize,
    },
    /// An element parameter was rejected (non-finite, non-positive where
    /// positivity is required, …).
    InvalidParameter {
        /// Element name.
        element: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A circuit-level inconsistency, e.g. no elements or no ground path.
    InvalidCircuit(
        /// Human-readable reason.
        String,
    ),
    /// A waveform operation required more samples than the waveform holds
    /// (empty, or single-sample where an interval is needed). Returned by
    /// the fallible `Waveform::try_*` measurement APIs instead of
    /// panicking or silently yielding zeros mid-measurement.
    EmptyWaveform {
        /// The operation that failed (`"resample"`, `"integral"`, …).
        op: &'static str,
        /// Samples actually available.
        len: usize,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::NoConvergence {
                analysis,
                time,
                iterations,
            } => write!(
                f,
                "{analysis} analysis failed to converge after {iterations} iterations at t = {time:.3e} s"
            ),
            SpiceError::SingularMatrix { index } => {
                write!(f, "singular system matrix at pivot {index}")
            }
            SpiceError::InvalidParameter { element, reason } => {
                write!(f, "invalid parameter on element `{element}`: {reason}")
            }
            SpiceError::InvalidCircuit(reason) => write!(f, "invalid circuit: {reason}"),
            SpiceError::EmptyWaveform { op, len } => {
                write!(f, "waveform {op} needs more samples (have {len})")
            }
        }
    }
}

impl Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpiceError::NoConvergence {
            analysis: "dc",
            time: 0.0,
            iterations: 120,
        };
        assert!(e.to_string().contains("dc"));
        assert!(e.to_string().contains("120"));

        let s = SpiceError::SingularMatrix { index: 7 };
        assert!(s.to_string().contains('7'));

        let w = SpiceError::EmptyWaveform {
            op: "resample",
            len: 0,
        };
        assert!(w.to_string().contains("resample"));
        assert!(w.to_string().contains('0'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
