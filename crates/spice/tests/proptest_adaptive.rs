//! Property-based equivalence of adaptive and fixed-step transients.
//!
//! The LTE-controlled adaptive path must reproduce the fixed-step
//! reference within the configured tolerance — over random RC ladders
//! and MOS inverter stages, for both integrators — while the dense
//! output keeps the recorded grid bitwise identical. A dedicated test
//! proves the adaptive path resolves a pulse narrower than the base
//! `dt` that the fixed grid steps straight across.

use proptest::prelude::*;

use mcml_device::{MosParams, Mosfet};
use mcml_spice::{Circuit, Integrator, SourceWave, TranOptions};

/// Worst absolute difference between two results' node voltage at the
/// shared recorded grid.
fn worst_dev(
    a: &mcml_spice::TranResult,
    b: &mcml_spice::TranResult,
    node: mcml_spice::NodeId,
) -> f64 {
    let (wa, wb) = (a.voltage(node), b.voltage(node));
    wa.iter()
        .zip(wb.iter())
        .map(|((_, x), (_, y))| (x - y).abs())
        .fold(0.0f64, f64::max)
}

/// Driven RC ladder: `stages` sections of series R and shunt C.
fn rc_ladder(
    stages: usize,
    rs: &[f64],
    cs: &[f64],
    wave: SourceWave,
) -> (Circuit, Vec<mcml_spice::NodeId>) {
    let mut c = Circuit::new();
    let vin = c.node("in");
    c.vsource("V", vin, Circuit::GND, wave);
    let mut prev = vin;
    let mut taps = Vec::new();
    for k in 0..stages {
        let n = c.node(&format!("n{k}"));
        c.resistor(&format!("R{k}"), prev, n, rs[k]);
        c.capacitor(&format!("C{k}"), n, Circuit::GND, cs[k]);
        taps.push(n);
        prev = n;
    }
    (c, taps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adaptive ≡ fixed on random RC ladders, both integrators.
    #[test]
    fn adaptive_matches_fixed_on_rc_ladders(
        stages in 1usize..4,
        rs in collection::vec(0.5e3f64..20e3, 4),
        cs in collection::vec(0.2e-12f64..2e-12, 4),
        edge_at in 0.5e-9f64..2e-9,
        v_hi in 0.5f64..1.5,
        trapezoidal in any::<bool>(),
    ) {
        let wave = SourceWave::step(0.0, v_hi, edge_at);
        let (c, taps) = rc_ladder(stages, &rs, &cs, wave);
        let integ = if trapezoidal { Integrator::Trapezoidal } else { Integrator::BackwardEuler };
        let base = TranOptions::new(10e-9, 10e-12).with_integrator(integ);
        let fixed = c.transient(&base).unwrap();
        let adap = c.transient(&base.adaptive(1e-4, 1e-13, 1e-9)).unwrap();
        prop_assert_eq!(fixed.times(), adap.times(), "dense output keeps the grid");
        for &tap in &taps {
            let dev = worst_dev(&fixed, &adap, tap);
            // Per-step LTE reltol 1e-4 against a <=1.5 V swing; the global
            // budget accumulated over the trace stays well under 1 %.
            prop_assert!(dev < 0.01 * v_hi, "tap deviates by {dev}");
        }
        prop_assert!(
            adap.steps_taken() <= fixed.steps_taken(),
            "controller must not take more steps than the fixed grid ({} vs {})",
            adap.steps_taken(),
            fixed.steps_taken()
        );
    }

    /// Adaptive ≡ fixed on a MOS inverter driving a random load, both
    /// integrators.
    #[test]
    fn adaptive_matches_fixed_on_mos_inverter(
        w_n in 0.5e-6f64..4e-6,
        c_load in 2e-15f64..50e-15,
        edge_at in 0.5e-9f64..1.5e-9,
        trapezoidal in any::<bool>(),
    ) {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(1.2));
        c.vsource("VIN", vin, Circuit::GND, SourceWave::step(0.0, 1.2, edge_at));
        c.mosfet(
            "MP",
            out,
            vin,
            vdd,
            vdd,
            Mosfet::pmos(MosParams::pmos_lvt_90(), 2.0 * w_n, 0.1e-6),
        );
        c.mosfet(
            "MN",
            out,
            vin,
            Circuit::GND,
            Circuit::GND,
            Mosfet::nmos(MosParams::nmos_lvt_90(), w_n, 0.1e-6),
        );
        c.capacitor("CL", out, Circuit::GND, c_load);
        let integ = if trapezoidal { Integrator::Trapezoidal } else { Integrator::BackwardEuler };
        let base = TranOptions::new(4e-9, 5e-12).with_integrator(integ);
        let fixed = c.transient(&base).unwrap();
        let adap = c.transient(&base.adaptive(1e-4, 1e-13, 200e-12)).unwrap();
        prop_assert_eq!(fixed.times(), adap.times());
        // At the switching instant the two discretisations legitimately
        // differ (the fixed 5 ps grid smears the 1 ps input edge and is
        // itself coarse against the output pole), so the edge window
        // only guards against gross divergence while the quiet/settled
        // regions must agree tightly.
        let (wf, wa) = (fixed.voltage(out), adap.voltage(out));
        let mut edge_dev = 0.0f64;
        let mut calm_dev = 0.0f64;
        for ((t, x), (_, y)) in wf.iter().zip(wa.iter()) {
            if t > edge_at - 10e-12 && t < edge_at + 1.5e-9 {
                // During the transition a sub-grid time shift between the
                // two discretisations shows up as a full-swing pointwise
                // difference, so compare modulo a ±10 ps shift.
                let d = (-4i32..=4)
                    .map(|k| (x - wa.sample(t + f64::from(k) * 2.5e-12)).abs())
                    .fold(f64::INFINITY, f64::min);
                edge_dev = edge_dev.max(d);
            } else {
                calm_dev = calm_dev.max((x - y).abs());
            }
        }
        prop_assert!(calm_dev < 5e-3, "settled region deviates by {calm_dev}");
        // Generous bound: the fixed 5 ps reference is itself first-order
        // inaccurate across the switching edge; gross divergence (a
        // missed transition, ringing) would blow far past this.
        prop_assert!(edge_dev < 0.25, "edge region deviates by {edge_dev}");
    }
}

/// A 100 ps insertion spike under a 500 ps base grid: the fixed path
/// steps straight across it (the source is only evaluated at grid
/// times, after the pulse has ended), while the adaptive path lands on
/// the pulse corners and carries the correct capacitor charge out of
/// the spike. This is the fig. 5 wake-up-spike scenario in miniature.
#[test]
fn adaptive_resolves_pulse_narrower_than_dt() {
    let build = || {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource(
            "V",
            vin,
            Circuit::GND,
            SourceWave::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.7e-9,
                rise: 20e-12,
                fall: 20e-12,
                width: 100e-12,
                period: f64::INFINITY,
            },
        );
        // tau = 200 ps: the capacitor charges appreciably during the
        // spike and still holds most of it at the next grid point.
        c.resistor("R", vin, out, 1.0e3);
        c.capacitor("C", out, Circuit::GND, 0.2e-12);
        (c, out)
    };
    let coarse_dt = 500e-12;
    let t_stop = 2e-9;

    // Ground truth: fixed-step at 1 ps.
    let (c, out) = build();
    let truth = c.transient(&TranOptions::new(t_stop, 1e-12)).unwrap();
    let v_truth = truth.voltage(out).sample(1e-9);
    assert!(v_truth > 0.05, "spike must charge the cap: {v_truth}");

    // Fixed at the coarse base dt never sees the pulse.
    let fixed = c.transient(&TranOptions::new(t_stop, coarse_dt)).unwrap();
    let v_fixed = fixed.voltage(out).sample(1e-9);
    assert!(
        (v_fixed - v_truth).abs() > 0.5 * v_truth,
        "coarse fixed grid unexpectedly resolved the spike: {v_fixed} vs {v_truth}"
    );

    // Adaptive at the same coarse base dt lands on the pulse corners.
    let adap = c
        .transient(&TranOptions::new(t_stop, coarse_dt).adaptive(1e-4, 1e-14, coarse_dt))
        .unwrap();
    let v_adap = adap.voltage(out).sample(1e-9);
    assert!(
        (v_adap - v_truth).abs() < 0.05 * v_truth,
        "adaptive missed the spike: {v_adap} vs truth {v_truth}"
    );
}
