//! Property-based tests of the linear solvers and waveform utilities.

use proptest::prelude::*;

use mcml_spice::matrix::{SolverKind, SystemMatrix};
use mcml_spice::{Circuit, SourceWave, TranOptions, Waveform};

/// A strictly diagonally dominant random system (guaranteed solvable).
fn dominant_system(n: usize) -> impl Strategy<Value = (Vec<(usize, usize, f64)>, Vec<f64>)> {
    let entries = collection::vec((0..n, 0..n, -1.0f64..1.0), n..(4 * n));
    let rhs = collection::vec(-10.0f64..10.0, n);
    (entries, rhs).prop_map(move |(mut es, b)| {
        // Strong diagonal on top of whatever landed there.
        for i in 0..n {
            es.push((i, i, 8.0));
        }
        (es, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sparse Gilbert–Peierls LU and dense partial-pivot LU agree.
    #[test]
    fn sparse_equals_dense((entries, b) in dominant_system(24)) {
        let build = || {
            let mut m = SystemMatrix::new(24);
            for &(r, c, v) in &entries {
                m.add(r, c, v);
            }
            m
        };
        let xd = build().solve(&b, SolverKind::Dense).unwrap();
        let xs = build().solve(&b, SolverKind::Sparse).unwrap();
        for (d, s) in xd.iter().zip(&xs) {
            prop_assert!((d - s).abs() < 1e-8, "dense {d} vs sparse {s}");
        }
    }

    /// The solution actually satisfies A·x = b.
    #[test]
    fn residual_is_small((entries, b) in dominant_system(16)) {
        let mut m = SystemMatrix::new(16);
        let mut dense = vec![0.0f64; 16 * 16];
        for &(r, c, v) in &entries {
            m.add(r, c, v);
            dense[r * 16 + c] += v;
        }
        let x = m.solve(&b, SolverKind::Auto).unwrap();
        for r in 0..16 {
            let acc: f64 = (0..16).map(|c| dense[r * 16 + c] * x[c]).sum();
            prop_assert!((acc - b[r]).abs() < 1e-7, "row {r}: {acc} vs {}", b[r]);
        }
    }

    /// Waveform sampling stays within the sample extremes, and the
    /// integral over [a,c] splits additively at any interior b.
    #[test]
    fn waveform_invariants(values in collection::vec(-5.0f64..5.0, 3..40),
                           split in 0.1f64..0.9) {
        let n = values.len();
        let t: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let w = Waveform::new(t, values.clone());
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for k in 0..20 {
            let ts = (n - 1) as f64 * k as f64 / 19.0;
            let v = w.sample(ts);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
        let b = (n - 1) as f64 * split;
        let total = w.integral_between(0.0, (n - 1) as f64);
        let parts = w.integral_between(0.0, b) + w.integral_between(b, (n - 1) as f64);
        prop_assert!((total - parts).abs() < 1e-9 * (1.0 + total.abs()));
    }

    /// RC transient matches the analytic exponential for random R, C.
    #[test]
    fn rc_matches_analytic(r_kohm in 0.5f64..20.0, c_ff in 100.0f64..5000.0) {
        let r = r_kohm * 1e3;
        let c = c_ff * 1e-15;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V", vin, Circuit::GND, SourceWave::step(0.0, 1.0, 0.0));
        ckt.resistor("R", vin, out, r);
        ckt.capacitor("C", out, Circuit::GND, c);
        let t_stop = 5.0 * tau;
        let res = ckt.transient(&TranOptions::new(t_stop, tau / 200.0)).unwrap();
        let w = res.voltage(out);
        for frac in [0.5, 1.0, 2.0, 4.0] {
            let t = frac * tau;
            let expect = 1.0 - (-t / tau).exp();
            let got = w.sample(t);
            prop_assert!((got - expect).abs() < 0.02, "v({frac}·tau) = {got} vs {expect}");
        }
    }

    /// Superposition: doubling every independent source doubles every
    /// node voltage of a linear (R-only) network.
    #[test]
    fn linear_superposition(r1 in 1.0f64..100.0, r2 in 1.0f64..100.0, v in 0.1f64..5.0) {
        let build = |scale: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.vsource("V", a, Circuit::GND, SourceWave::dc(v * scale));
            ckt.resistor("R1", a, b, r1 * 1e3);
            ckt.resistor("R2", b, Circuit::GND, r2 * 1e3);
            let op = ckt.dc_op().unwrap();
            op.voltage(b)
        };
        let v1 = build(1.0);
        let v2 = build(2.0);
        prop_assert!((v2 - 2.0 * v1).abs() < 1e-9 * (1.0 + v2.abs()));
    }
}
