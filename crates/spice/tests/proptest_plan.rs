//! Property-based equivalence of the two MNA assembly paths.
//!
//! The stamp-plan fast path must produce, at any state, the same Jacobian
//! and residual as the legacy full-restamp reference path — over random
//! circuit topologies (resistors, capacitors, sources, MOSFETs, with
//! terminals free to coincide or sit on ground), random states, and both
//! DC and companion-model (transient) assembly.

use proptest::prelude::*;

use mcml_device::{MosParams, Mosfet};
use mcml_spice::testing::{assemble_both_dense, n_unknowns};
use mcml_spice::{Circuit, SourceWave};

/// One randomly generated element, with node picks as indices into the
/// circuit's node list (0 = ground).
#[derive(Debug, Clone)]
enum ElemSpec {
    Resistor(usize, usize, f64),
    Capacitor(usize, usize, f64),
    Vsource(usize, usize, f64),
    Isource(usize, usize, f64),
    Mos(usize, usize, usize, usize, bool, f64),
}

fn elem_spec(n_nodes: usize) -> impl Strategy<Value = ElemSpec> {
    let node = 0..=n_nodes; // 0 is ground
    prop_oneof![
        (node.clone(), node.clone(), 10.0f64..1e5)
            .prop_map(|(a, b, r)| ElemSpec::Resistor(a, b, r)),
        (node.clone(), node.clone(), 1e-15f64..1e-11)
            .prop_map(|(a, b, c)| ElemSpec::Capacitor(a, b, c)),
        (node.clone(), node.clone(), -2.0f64..2.0).prop_map(|(p, n, v)| ElemSpec::Vsource(p, n, v)),
        (node.clone(), node.clone(), -1e-3f64..1e-3)
            .prop_map(|(p, n, i)| ElemSpec::Isource(p, n, i)),
        (
            node.clone(),
            node.clone(),
            node.clone(),
            node,
            any::<bool>(),
            0.2e-6f64..5e-6
        )
            .prop_map(|(d, g, s, b, nmos, w)| ElemSpec::Mos(d, g, s, b, nmos, w)),
    ]
}

fn build_circuit(n_nodes: usize, specs: &[ElemSpec]) -> Circuit {
    let mut c = Circuit::new();
    let mut nodes = vec![Circuit::GND];
    for i in 1..=n_nodes {
        nodes.push(c.node(&format!("n{i}")));
    }
    for (k, spec) in specs.iter().enumerate() {
        match *spec {
            ElemSpec::Resistor(a, b, r) => {
                c.resistor(&format!("R{k}"), nodes[a], nodes[b], r);
            }
            ElemSpec::Capacitor(a, b, f) => {
                c.capacitor(&format!("C{k}"), nodes[a], nodes[b], f);
            }
            ElemSpec::Vsource(p, n, v) => {
                c.vsource(&format!("V{k}"), nodes[p], nodes[n], SourceWave::dc(v));
            }
            ElemSpec::Isource(p, n, i) => {
                c.isource(&format!("I{k}"), nodes[p], nodes[n], SourceWave::dc(i));
            }
            ElemSpec::Mos(d, g, s, b, nmos, w) => {
                let dev = if nmos {
                    Mosfet::nmos(MosParams::nmos_lvt_90(), w, 0.1e-6)
                } else {
                    Mosfet::pmos(MosParams::pmos_lvt_90(), w, 0.1e-6)
                };
                c.mosfet(
                    &format!("M{k}"),
                    nodes[d],
                    nodes[g],
                    nodes[s],
                    nodes[b],
                    dev,
                );
            }
        }
    }
    c
}

/// Per-entry agreement: tiny absolute floor plus 1e-12 relative slack for
/// summation-order differences between the two paths.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-15 + 1e-12 * a.abs().max(b.abs())
}

fn check_equivalence(
    n_nodes: usize,
    specs: &[ElemSpec],
    raw_x: &[f64],
    t: f64,
    companion: Option<(f64, bool)>,
    gmin: f64,
    src_scale: f64,
) -> Result<(), String> {
    let ckt = build_circuit(n_nodes, specs);
    let n = n_unknowns(&ckt);
    prop_assume!(n > 0);
    let x: Vec<f64> = (0..n).map(|i| raw_x[i % raw_x.len()]).collect();
    let comp = companion.map(|(h, trap)| (h, trap, x.as_slice()));
    let ((a_ref, f_ref), (a_plan, f_plan)) =
        assemble_both_dense(&ckt, &x, t, comp, gmin, src_scale);
    for (i, (r, p)) in a_ref.iter().zip(&a_plan).enumerate() {
        prop_assert!(
            close(*r, *p),
            "matrix entry ({}, {}): reference {r} vs plan {p}",
            i / n,
            i % n
        );
    }
    for (i, (r, p)) in f_ref.iter().zip(&f_plan).enumerate() {
        prop_assert!(close(*r, *p), "residual row {i}: reference {r} vs plan {p}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// DC assembly (no companion models) agrees on random circuits.
    #[test]
    fn plan_matches_reference_dc(
        n_nodes in 1usize..5,
        specs in collection::vec(elem_spec(4), 1..12),
        raw_x in collection::vec(-2.0f64..2.0, 8),
        src_scale in 0.05f64..1.0,
    ) {
        // Node picks above n_nodes fold back into range.
        let specs: Vec<ElemSpec> = specs
            .iter()
            .map(|s| fold_nodes(s, n_nodes))
            .collect();
        check_equivalence(n_nodes, &specs, &raw_x, 0.0, None, 1e-12, src_scale)?;
    }

    /// Transient assembly (backward-Euler and trapezoidal companions)
    /// agrees on random circuits.
    #[test]
    fn plan_matches_reference_companion(
        n_nodes in 1usize..5,
        specs in collection::vec(elem_spec(4), 1..12),
        raw_x in collection::vec(-2.0f64..2.0, 8),
        h in 1e-13f64..1e-9,
        trapezoidal in any::<bool>(),
    ) {
        let specs: Vec<ElemSpec> = specs
            .iter()
            .map(|s| fold_nodes(s, n_nodes))
            .collect();
        check_equivalence(
            n_nodes,
            &specs,
            &raw_x,
            1e-10,
            Some((h, trapezoidal)),
            1e-12,
            1.0,
        )?;
    }
}

/// Clamp a spec's node indices into `0..=n_nodes`.
fn fold_nodes(spec: &ElemSpec, n_nodes: usize) -> ElemSpec {
    let f = |i: usize| i % (n_nodes + 1);
    match *spec {
        ElemSpec::Resistor(a, b, r) => ElemSpec::Resistor(f(a), f(b), r),
        ElemSpec::Capacitor(a, b, c) => ElemSpec::Capacitor(f(a), f(b), c),
        ElemSpec::Vsource(p, n, v) => ElemSpec::Vsource(f(p), f(n), v),
        ElemSpec::Isource(p, n, i) => ElemSpec::Isource(f(p), f(n), i),
        ElemSpec::Mos(d, g, s, b, nmos, w) => ElemSpec::Mos(f(d), f(g), f(s), f(b), nmos, w),
    }
}
