//! Property-based degeneracy of the ensemble transient.
//!
//! A one-lane ensemble must be **bit-identical** to the scalar transient
//! — same recorded grid, same node voltages, same branch currents, same
//! step count — over random RC ladders and MOS inverter stages, for
//! every stepping policy (fixed, free adaptive, grid-aligned adaptive,
//! grid-aligned with demand-driven Jacobian refactorisation) and both
//! integrators. The ensemble path shares the scalar path's
//! step cells and controller formulas; this is the regression proving
//! the sharing is exact, not approximate. A multi-lane companion
//! property pins the other degeneracy: lanes of *identical* circuits
//! march through identical states, so every lane reproduces the scalar
//! waveform to solver precision.

use proptest::prelude::*;

use mcml_device::{MosParams, Mosfet};
use mcml_spice::{ensemble_transient, Circuit, Integrator, SourceWave, TranOptions};

/// The four stepping/solver policies under test, built over a common
/// base. The last one layers the demand-driven refactorisation (chord)
/// policy on the grid-aligned controller — the exact combination the
/// ensemble campaign runs — and is covered by the same bitwise N=1
/// contract: the policy lives inside the shared Newton loop, so scalar
/// and ensemble take identical decisions given identical options.
fn policy(base: &TranOptions, which: u8) -> TranOptions {
    match which % 4 {
        0 => *base,
        1 => base.adaptive(1e-4, 1e-13, 1e-9),
        2 => base.adaptive_grid_aligned(1e-4, 1e-9),
        _ => base.adaptive_grid_aligned(1e-4, 1e-9).with_jacobian_reuse(),
    }
}

/// Driven RC ladder: `stages` sections of series R and shunt C.
fn rc_ladder(
    stages: usize,
    rs: &[f64],
    cs: &[f64],
    wave: &SourceWave,
) -> (Circuit, Vec<mcml_spice::NodeId>, mcml_spice::ElementId) {
    let mut c = Circuit::new();
    let vin = c.node("in");
    let src = c.vsource("V", vin, Circuit::GND, wave.clone());
    let mut prev = vin;
    let mut taps = Vec::new();
    for k in 0..stages {
        let n = c.node(&format!("n{k}"));
        c.resistor(&format!("R{k}"), prev, n, rs[k]);
        c.capacitor(&format!("C{k}"), n, Circuit::GND, cs[k]);
        taps.push(n);
        prev = n;
    }
    (c, taps, src)
}

/// CMOS inverter driving a load capacitor.
fn inverter(
    w_n: f64,
    c_load: f64,
    edge_at: f64,
) -> (Circuit, Vec<mcml_spice::NodeId>, mcml_spice::ElementId) {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in");
    let out = c.node("out");
    let src = c.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(1.2));
    c.vsource(
        "VIN",
        vin,
        Circuit::GND,
        SourceWave::step(0.0, 1.2, edge_at),
    );
    c.mosfet(
        "MP",
        out,
        vin,
        vdd,
        vdd,
        Mosfet::pmos(MosParams::pmos_lvt_90(), 2.0 * w_n, 0.1e-6),
    );
    c.mosfet(
        "MN",
        out,
        vin,
        Circuit::GND,
        Circuit::GND,
        Mosfet::nmos(MosParams::nmos_lvt_90(), w_n, 0.1e-6),
    );
    c.capacitor("CL", out, Circuit::GND, c_load);
    (c, vec![out], src)
}

/// Bitwise equality of the scalar result and one ensemble lane: grid,
/// every tapped node voltage, the source branch current, and the step
/// count.
fn assert_lane_bitwise(
    scalar: &mcml_spice::TranResult,
    lane: &mcml_spice::TranResult,
    taps: &[mcml_spice::NodeId],
    src: mcml_spice::ElementId,
) -> Result<(), String> {
    prop_assert_eq!(scalar.times(), lane.times(), "recorded grid differs");
    prop_assert_eq!(
        scalar.steps_taken(),
        lane.steps_taken(),
        "step count differs"
    );
    for &tap in taps {
        let (ws, wl) = (scalar.voltage(tap), lane.voltage(tap));
        for (i, ((_, s), (_, l))) in ws.iter().zip(wl.iter()).enumerate() {
            prop_assert!(
                s.to_bits() == l.to_bits(),
                "voltage sample {i} differs: scalar {s:e} vs lane {l:e}"
            );
        }
    }
    let (is_, il) = (
        scalar.branch_current(src).expect("scalar source current"),
        lane.branch_current(src).expect("lane source current"),
    );
    for (i, ((_, s), (_, l))) in is_.iter().zip(il.iter()).enumerate() {
        prop_assert!(
            s.to_bits() == l.to_bits(),
            "branch sample {i} differs: scalar {s:e} vs lane {l:e}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N=1 ensemble ≡ scalar, bitwise, on random RC ladders under all
    /// four stepping/solver policies and both integrators.
    #[test]
    fn one_lane_ensemble_is_bitwise_scalar_on_rc_ladders(
        stages in 1usize..4,
        rs in collection::vec(0.5e3f64..20e3, 4),
        cs in collection::vec(0.2e-12f64..2e-12, 4),
        edge_at in 0.5e-9f64..2e-9,
        v_hi in 0.5f64..1.5,
        which_policy in 0u8..4,
        trapezoidal in any::<bool>(),
    ) {
        let wave = SourceWave::step(0.0, v_hi, edge_at);
        let (c, taps, src) = rc_ladder(stages, &rs, &cs, &wave);
        let integ = if trapezoidal { Integrator::Trapezoidal } else { Integrator::BackwardEuler };
        let opts = policy(&TranOptions::new(10e-9, 10e-12).with_integrator(integ), which_policy);
        let scalar = c.transient(&opts).unwrap();
        let lanes = ensemble_transient(std::slice::from_ref(&c), &opts).unwrap();
        prop_assert_eq!(lanes.len(), 1);
        assert_lane_bitwise(&scalar, &lanes[0], &taps, src)?;
    }

    /// N=1 ensemble ≡ scalar, bitwise, on a MOS inverter under all
    /// four stepping/solver policies.
    #[test]
    fn one_lane_ensemble_is_bitwise_scalar_on_mos_inverter(
        w_n in 0.5e-6f64..4e-6,
        c_load in 2e-15f64..50e-15,
        edge_at in 0.5e-9f64..1.5e-9,
        which_policy in 0u8..4,
    ) {
        let (c, taps, src) = inverter(w_n, c_load, edge_at);
        let opts = policy(&TranOptions::new(4e-9, 5e-12), which_policy);
        let scalar = c.transient(&opts).unwrap();
        let lanes = ensemble_transient(std::slice::from_ref(&c), &opts).unwrap();
        prop_assert_eq!(lanes.len(), 1);
        assert_lane_bitwise(&scalar, &lanes[0], &taps, src)?;
    }

    /// Lanes of *identical* circuits march through identical states:
    /// every lane of a k-wide ensemble reproduces the scalar waveform
    /// to solver precision (the shared step decisions are degenerate —
    /// all lanes demand the same step).
    #[test]
    fn identical_lanes_reproduce_scalar(
        n_lanes in 2usize..5,
        rs in collection::vec(0.5e3f64..20e3, 4),
        cs in collection::vec(0.2e-12f64..2e-12, 4),
        edge_at in 0.5e-9f64..2e-9,
        v_hi in 0.5f64..1.5,
        which_policy in 0u8..4,
    ) {
        let wave = SourceWave::step(0.0, v_hi, edge_at);
        let (c, taps, _) = rc_ladder(3, &rs, &cs, &wave);
        let opts = policy(&TranOptions::new(10e-9, 10e-12), which_policy);
        let scalar = c.transient(&opts).unwrap();
        let ckts: Vec<Circuit> = (0..n_lanes).map(|_| c.clone()).collect();
        let lanes = ensemble_transient(&ckts, &opts).unwrap();
        prop_assert_eq!(lanes.len(), n_lanes);
        for (l, lane) in lanes.iter().enumerate() {
            prop_assert_eq!(scalar.times(), lane.times(), "lane {} grid", l);
            for &tap in &taps {
                let (ws, wl) = (scalar.voltage(tap), lane.voltage(tap));
                for ((_, s), (_, v)) in ws.iter().zip(wl.iter()) {
                    // Lanes beyond 0 run through factors adopted from
                    // lane 0 (same pivot order, identical values here),
                    // so agreement is exact in practice — but the
                    // contract is solver precision, not bit equality.
                    prop_assert!(
                        (s - v).abs() <= 1e-9,
                        "lane {} deviates: {:e} vs {:e}", l, s, v
                    );
                }
            }
        }
    }
}
