//! Property-based equivalence of the quiescent-device bypass.
//!
//! With the bypass enabled, a converged MOSFET whose terminal voltages
//! stay within the tolerance of the cached evaluation point reuses the
//! cached linearization instead of calling the device model. That reuse
//! must be invisible in the waveforms: over random MOS inverter chains
//! and random load/drive conditions, the bypassed transient has to
//! match the exact one to well within the Newton tolerances, on the
//! identical time grid with the identical accepted step count (a bypass
//! that destabilised Newton would show up as failed-step retries).

use proptest::prelude::*;

use mcml_device::{MosParams, Mosfet};
use mcml_spice::{Circuit, SourceWave, TranOptions};

/// Inverter chain: `stages` CMOS inverters between random capacitive
/// loads, driven by a step. Most devices sit quiescent for most of the
/// trace, so the bypass gets real work to do.
fn inverter_chain(
    stages: usize,
    w_n: f64,
    c_load: f64,
    edge_at: f64,
) -> (Circuit, Vec<mcml_spice::NodeId>) {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in");
    c.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(1.2));
    c.vsource(
        "VIN",
        vin,
        Circuit::GND,
        SourceWave::step(0.0, 1.2, edge_at),
    );
    let mut prev = vin;
    let mut outs = Vec::new();
    for k in 0..stages {
        let out = c.node(&format!("o{k}"));
        c.mosfet(
            &format!("MP{k}"),
            out,
            prev,
            vdd,
            vdd,
            Mosfet::pmos(MosParams::pmos_lvt_90(), 2.0 * w_n, 0.1e-6),
        );
        c.mosfet(
            &format!("MN{k}"),
            out,
            prev,
            Circuit::GND,
            Circuit::GND,
            Mosfet::nmos(MosParams::nmos_lvt_90(), w_n, 0.1e-6),
        );
        c.capacitor(&format!("CL{k}"), out, Circuit::GND, c_load);
        outs.push(out);
        prev = out;
    }
    (c, outs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bypassed ≡ exact on random inverter chains: waveform deviation
    /// stays far below the Newton voltage tolerance scale, and the
    /// bypass never costs extra Newton iterations.
    #[test]
    fn bypass_matches_exact_on_inverter_chains(
        stages in 1usize..4,
        w_n in 0.5e-6f64..4e-6,
        c_load in 2e-15f64..50e-15,
        edge_at in 0.5e-9f64..1.5e-9,
        tol_uv in 1.0f64..50.0,
    ) {
        let (c, outs) = inverter_chain(stages, w_n, c_load, edge_at);
        let base = TranOptions::new(4e-9, 5e-12);
        let exact = c.transient(&base).unwrap();
        let fast = c.transient(&base.with_bypass(tol_uv * 1e-6)).unwrap();
        prop_assert_eq!(exact.times(), fast.times(), "bypass must not change the grid");
        for &out in &outs {
            let (we, wf) = (exact.voltage(out), fast.voltage(out));
            let dev = we
                .iter()
                .zip(wf.iter())
                .map(|((_, x), (_, y))| (x - y).abs())
                .fold(0.0f64, f64::max);
            // The reused linearization is exact to second order in the
            // bypass tolerance; at <=50 µV that is sub-nV. What survives
            // into the solution is bounded by Newton's own vtol, so a
            // 10 µV ceiling proves the bypass adds nothing observable.
            prop_assert!(dev <= 10e-6, "output deviates by {dev}");
        }
        prop_assert_eq!(
            fast.steps_taken(),
            exact.steps_taken(),
            "bypass must not change the accepted step count"
        );
    }

    /// A zero tolerance is the documented hard-off: the bypassed path
    /// must be bit-identical to the default.
    #[test]
    fn zero_tolerance_is_bitwise_off(
        w_n in 0.5e-6f64..4e-6,
        c_load in 2e-15f64..50e-15,
    ) {
        let (c, outs) = inverter_chain(2, w_n, c_load, 1e-9);
        let base = TranOptions::new(3e-9, 5e-12);
        let a = c.transient(&base).unwrap();
        let b = c.transient(&base.with_bypass(0.0)).unwrap();
        for &out in &outs {
            let (wa, wb) = (a.voltage(out), b.voltage(out));
            for ((_, x), (_, y)) in wa.iter().zip(wb.iter()) {
                prop_assert!(x.to_bits() == y.to_bits(), "{x} != {y}");
            }
        }
    }
}
