//! Property-based equivalence of the partitioned MNA solve.
//!
//! With partitioning enabled, the node graph splits at the rail nodes
//! into independently factored solve blocks scheduled along the
//! gate-coupling DAG, and settled blocks with unmoved boundary inputs
//! replay their cached solution. None of that may be visible in the
//! physics: over random farms of rail-coupled inverter islands the
//! partitioned transient has to match the monolithic one to well within
//! the Newton tolerances — node voltages *and* the reconstructed supply
//! currents — on the identical time grid with the identical accepted
//! step count. Circuits that do not split (one block, floating source)
//! must fall back to the monolithic path bit for bit.
//!
//! The obs counters are process-global, so every test that runs a
//! partitioned transient serializes on one lock; the counter-identity
//! test reads clean deltas under the same lock.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use mcml_device::{MosParams, Mosfet};
use mcml_spice::{partition_report, Circuit, ElementId, NodeId, SourceWave, TranOptions};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A farm of `islands` independent CMOS inverter chains sharing one
/// supply rail, each driven by its own step source with a staggered
/// edge. Every stage output is its own solve block (stages couple only
/// through gates), so the farm exercises multi-block scheduling, the
/// topological sweep, and — once an island's edge has passed — block
/// skipping on the quiet islands.
fn island_farm(
    islands: usize,
    stages: usize,
    w_n: f64,
    c_load: f64,
    edge0: f64,
    spread: f64,
) -> (Circuit, ElementId, Vec<NodeId>) {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vdd_src = c.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(1.2));
    let mut outs = Vec::new();
    for isl in 0..islands {
        let vin = c.node(&format!("in{isl}"));
        c.vsource(
            &format!("VIN{isl}"),
            vin,
            Circuit::GND,
            SourceWave::step(0.0, 1.2, edge0 + spread * isl as f64),
        );
        let mut prev = vin;
        for k in 0..stages {
            let out = c.node(&format!("i{isl}o{k}"));
            c.mosfet(
                &format!("MP{isl}_{k}"),
                out,
                prev,
                vdd,
                vdd,
                Mosfet::pmos(MosParams::pmos_lvt_90(), 2.0 * w_n, 0.1e-6),
            );
            c.mosfet(
                &format!("MN{isl}_{k}"),
                out,
                prev,
                Circuit::GND,
                Circuit::GND,
                Mosfet::nmos(MosParams::nmos_lvt_90(), w_n, 0.1e-6),
            );
            c.capacitor(&format!("CL{isl}_{k}"), out, Circuit::GND, c_load);
            outs.push(out);
            prev = out;
        }
    }
    (c, vdd_src, outs)
}

/// Max absolute deviation between two waveforms on the same grid.
fn max_dev(a: &mcml_spice::Waveform, b: &mcml_spice::Waveform) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|((_, x), (_, y))| (x - y).abs())
        .fold(0.0f64, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Partitioned ≡ monolithic on random island farms: identical grid
    /// and step count, node voltages within the Newton tolerance scale,
    /// and the reconstructed rail current within the conductance-scaled
    /// equivalent of that bound.
    #[test]
    fn partition_matches_monolithic_on_island_farms(
        islands in 2usize..4,
        stages in 1usize..3,
        w_n in 0.5e-6f64..4e-6,
        c_load in 2e-15f64..50e-15,
        edge0 in 0.4e-9f64..0.8e-9,
        spread in 0.2e-9f64..0.6e-9,
    ) {
        let _g = lock();
        let (c, vdd_src, outs) = island_farm(islands, stages, w_n, c_load, edge0, spread);
        let report = partition_report(&c, false);
        prop_assert_eq!(report.blocks, islands * stages, "one block per stage");

        let base = TranOptions::new(4e-9, 5e-12);
        let mono = c.transient(&base).unwrap();
        let part = c.transient(&base.with_partitioning()).unwrap();

        prop_assert_eq!(mono.times(), part.times(), "partitioning must not change the grid");
        prop_assert_eq!(
            mono.steps_taken(),
            part.steps_taken(),
            "partitioning must not change the accepted step count"
        );
        // Both paths start from the very same DC operating point.
        let (s0m, s0p) = (mono.voltage(outs[0]), part.voltage(outs[0]));
        prop_assert!(s0m.values()[0].to_bits() == s0p.values()[0].to_bits());

        for &out in &outs {
            let dev = max_dev(&mono.voltage(out), &part.voltage(out));
            // Block interface voltages are exact to the solver tolerance
            // and skips only freeze voltages that moved < vtol, so the
            // same 10 µV ceiling as the bypass equivalence suite holds.
            prop_assert!(dev <= 10e-6, "output deviates by {dev}");
        }
        let im = mono.supply_current(vdd_src).unwrap();
        let ip = part.supply_current(vdd_src).unwrap();
        let dev = max_dev(&im, &ip);
        // The reconstruction is KCL-exact given the block solutions;
        // what survives is the solver tolerance through device
        // conductances (mS · 10 µV ≪ 1 µA).
        prop_assert!(dev <= 2e-6, "supply current deviates by {dev} A");
    }

    /// Partitioning composes with the quiescent-MOS bypass: both
    /// accelerations on together still match the plain monolithic
    /// reference within the same waveform ceiling.
    #[test]
    fn partition_composes_with_bypass(
        islands in 2usize..4,
        w_n in 0.5e-6f64..4e-6,
        c_load in 2e-15f64..50e-15,
        tol_uv in 1.0f64..50.0,
    ) {
        let _g = lock();
        let (c, vdd_src, outs) = island_farm(islands, 2, w_n, c_load, 0.6e-9, 0.4e-9);
        let base = TranOptions::new(4e-9, 5e-12);
        let mono = c.transient(&base).unwrap();
        let fast = c
            .transient(&base.with_partitioning().with_bypass(tol_uv * 1e-6))
            .unwrap();
        prop_assert_eq!(mono.times(), fast.times());
        // The block-skip freeze is zeroth order in the skip tolerance
        // (the bypass tolerance doubles as both here), so unlike the
        // second-order bypass extrapolation the ceiling scales with the
        // tolerance: a settled block's boundary may sit up to `tol` off,
        // amplified by the (near-rail, well below unity — budget 5×)
        // small-signal gain of the stage.
        let ceiling = 10e-6 + 5.0 * tol_uv * 1e-6;
        for &out in &outs {
            let dev = max_dev(&mono.voltage(out), &fast.voltage(out));
            prop_assert!(dev <= ceiling, "output deviates by {dev} (ceiling {ceiling})");
        }
        let dev = max_dev(
            &mono.supply_current(vdd_src).unwrap(),
            &fast.supply_current(vdd_src).unwrap(),
        );
        prop_assert!(dev <= 2e-6 + tol_uv * 1e-6, "supply current deviates by {dev} A");
    }

    /// A circuit that does not split (every stage resistively bridged
    /// into one component) must take the monolithic path bit for bit
    /// even with partitioning requested.
    #[test]
    fn single_block_falls_back_bitwise(
        w_n in 0.5e-6f64..4e-6,
        c_load in 2e-15f64..50e-15,
    ) {
        let _g = lock();
        let (mut c, vdd_src, outs) = island_farm(2, 2, w_n, c_load, 0.8e-9, 0.3e-9);
        // Bridge every output into one resistive component.
        for (i, w) in outs.windows(2).enumerate() {
            c.resistor(&format!("RB{i}"), w[0], w[1], 1e6);
        }
        prop_assert_eq!(partition_report(&c, false).blocks, 1);
        let base = TranOptions::new(3e-9, 5e-12);
        let mono = c.transient(&base).unwrap();
        let part = c.transient(&base.with_partitioning()).unwrap();
        for &out in &outs {
            for ((_, x), (_, y)) in mono.voltage(out).iter().zip(part.voltage(out).iter()) {
                prop_assert!(x.to_bits() == y.to_bits(), "{x} != {y}");
            }
        }
        let im = mono.supply_current(vdd_src).unwrap();
        let ip = part.supply_current(vdd_src).unwrap();
        for ((_, x), (_, y)) in im.iter().zip(ip.iter()) {
            prop_assert!(x.to_bits() == y.to_bits(), "{x} != {y}");
        }
    }
}

/// PG-MCML-style stacked rails: the islands hang off a virtual rail
/// pinned *through* the main supply (vdd → sleep drop → vvdd), so the
/// branch-current reconstruction has to sweep a two-deep pinning chain
/// for both sources.
#[test]
fn stacked_rail_supply_currents_match() {
    let _g = lock();
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vvdd = c.node("vvdd");
    let vdd_src = c.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(1.2));
    let slp_src = c.vsource("VSLP", vdd, vvdd, SourceWave::dc(0.05));
    for isl in 0..3 {
        let vin = c.node(&format!("in{isl}"));
        c.vsource(
            &format!("VIN{isl}"),
            vin,
            Circuit::GND,
            SourceWave::step(0.0, 1.2, 0.5e-9 + 0.4e-9 * isl as f64),
        );
        let out = c.node(&format!("out{isl}"));
        c.mosfet(
            &format!("MP{isl}"),
            out,
            vin,
            vvdd,
            vvdd,
            Mosfet::pmos(MosParams::pmos_lvt_90(), 2.0e-6, 0.1e-6),
        );
        c.mosfet(
            &format!("MN{isl}"),
            out,
            vin,
            Circuit::GND,
            Circuit::GND,
            Mosfet::nmos(MosParams::nmos_lvt_90(), 1.0e-6, 0.1e-6),
        );
        c.capacitor(&format!("CL{isl}"), out, Circuit::GND, 10e-15);
    }
    assert_eq!(partition_report(&c, false).blocks, 3);

    let base = TranOptions::new(4e-9, 5e-12);
    let mono = c.transient(&base).unwrap();
    let part = c.transient(&base.with_partitioning()).unwrap();
    assert_eq!(mono.times(), part.times());
    for src in [vdd_src, slp_src] {
        let im = mono.supply_current(src).unwrap();
        let ip = part.supply_current(src).unwrap();
        let dev = im
            .iter()
            .zip(ip.iter())
            .map(|((_, x), (_, y))| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(
            dev <= 2e-6,
            "stacked-rail supply current deviates by {dev} A"
        );
    }
}

/// The partition counters obey the identity
/// `block_solves + block_skips == blocks × committed sub-steps`, and a
/// farm with staggered edges and a long quiet tail actually skips.
#[test]
fn counter_identity_and_skips() {
    let _g = lock();
    let (c, _, _) = island_farm(3, 2, 1.0e-6, 10e-15, 0.3e-9, 0.2e-9);
    let blocks = partition_report(&c, false).blocks as u64;
    assert_eq!(blocks, 6);

    let before_blocks = mcml_obs::total(mcml_obs::Counter::PartitionBlocks);
    let before_solves = mcml_obs::total(mcml_obs::Counter::BlockSolves);
    let before_skips = mcml_obs::total(mcml_obs::Counter::BlockSkips);

    // Long quiet tail after the last edge: plenty of room to skip.
    // The 10 µV skip tolerance comes from the bypass setting.
    let res = c
        .transient(
            &TranOptions::new(6e-9, 5e-12)
                .with_partitioning()
                .with_bypass(10e-6),
        )
        .unwrap();

    let d_blocks = mcml_obs::total(mcml_obs::Counter::PartitionBlocks) - before_blocks;
    let d_solves = mcml_obs::total(mcml_obs::Counter::BlockSolves) - before_solves;
    let d_skips = mcml_obs::total(mcml_obs::Counter::BlockSkips) - before_skips;

    assert_eq!(d_blocks, blocks);
    assert_eq!(
        d_solves + d_skips,
        blocks * res.steps_taken() as u64,
        "identity: every block is either solved or skipped each sub-step"
    );
    assert!(d_skips > 0, "quiet tail must produce skips");
    assert!(d_solves > 0, "edges must produce solves");
}

/// The ensemble engine routes lanes through the same partitioned march:
/// per-lane results match the scalar partitioned runs exactly, and
/// lane-varying parameters keep their own physics.
#[test]
fn ensemble_lanes_match_scalar_partitioned() {
    let _g = lock();
    let mk = |c_load: f64| island_farm(2, 2, 1.0e-6, c_load, 0.5e-9, 0.4e-9);
    let (c0, _, outs) = mk(8e-15);
    let (c1, _, _) = mk(8e-15); // same topology, same values
    let opts = TranOptions::new(3e-9, 5e-12)
        .with_partitioning()
        .with_bypass(10e-6);

    let scalar = c0.transient(&opts).unwrap();
    let ens = mcml_spice::ensemble_transient(&[c0, c1], &opts).unwrap();
    assert_eq!(ens.len(), 2);
    for res in &ens {
        for &out in &outs {
            for ((_, x), (_, y)) in scalar.voltage(out).iter().zip(res.voltage(out).iter()) {
                assert!(x.to_bits() == y.to_bits(), "lane diverged: {x} != {y}");
            }
        }
    }
}
