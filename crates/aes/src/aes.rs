//! AES-128 (FIPS-197) — the software workload the augmented `OpenRISC`
//! core executes in the paper's Table 3 experiment.

use crate::sbox::{INV_SBOX, SBOX};

/// Number of rounds for a 128-bit key.
pub const ROUNDS: usize = 10;

/// An expanded AES-128 key ready for encryption/decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (if x & 0x80 != 0 { 0x1b } else { 0 })
}

/// GF(2⁸) multiplication.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

impl Aes128 {
    /// Expand a 128-bit key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, chunk) in key.chunks(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in 4..4 * (ROUNDS + 1) {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self { round_keys }
    }

    /// Round keys (for the instruction-level model in `mcml-or1k`).
    #[must_use]
    pub fn round_keys(&self) -> &[[u8; 16]; ROUNDS + 1] {
        &self.round_keys
    }

    /// Encrypt one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, plain: &[u8; 16]) -> [u8; 16] {
        let mut s = *plain;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..ROUNDS {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[ROUNDS]);
        s
    }

    /// Decrypt one 16-byte block.
    #[must_use]
    pub fn decrypt_block(&self, cipher: &[u8; 16]) -> [u8; 16] {
        let mut s = *cipher;
        add_round_key(&mut s, &self.round_keys[ROUNDS]);
        inv_shift_rows(&mut s);
        inv_sub_bytes(&mut s);
        for r in (1..ROUNDS).rev() {
            add_round_key(&mut s, &self.round_keys[r]);
            inv_mix_columns(&mut s);
            inv_shift_rows(&mut s);
            inv_sub_bytes(&mut s);
        }
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }
}

// State layout: byte `s[r + 4c]` is row r, column c (FIPS-197 §3.4).

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for (a, b) in s.iter_mut().zip(rk) {
        *a ^= b;
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

fn shift_rows(s: &mut [u8; 16]) {
    for r in 1..4 {
        let row: [u8; 4] = [s[r], s[r + 4], s[r + 8], s[r + 12]];
        for c in 0..4 {
            s[r + 4 * c] = row[(c + r) % 4];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    for r in 1..4 {
        let row: [u8; 4] = [s[r], s[r + 4], s[r + 8], s[r + 12]];
        for c in 0..4 {
            s[r + 4 * c] = row[(c + 4 - r) % 4];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        s[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        s[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        s[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        s[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = (0..16u8).collect::<Vec<_>>().try_into().unwrap();
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt_block(&plain), expect);
        assert_eq!(aes.decrypt_block(&expect), plain);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(Aes128::new(&key).encrypt_block(&plain), expect);
    }

    #[test]
    fn key_expansion_first_round_key_is_key() {
        let key = [7u8; 16];
        let aes = Aes128::new(&key);
        assert_eq!(aes.round_keys()[0], key);
    }

    #[test]
    fn decrypt_inverts_encrypt_on_many_blocks() {
        let aes = Aes128::new(&[0xA5; 16]);
        let mut block = [0u8; 16];
        for round in 0..64u8 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = b.wrapping_mul(31).wrapping_add(round).wrapping_add(i as u8);
            }
            let c = aes.encrypt_block(&block);
            assert_eq!(aes.decrypt_block(&c), block);
            assert_ne!(c, block, "ciphertext differs from plaintext");
        }
    }

    #[test]
    fn gmul_basics() {
        assert_eq!(gmul(0x57, 0x13), 0xfe, "FIPS-197 §4.2 example");
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn avalanche_on_key_bit() {
        let plain = [0x42u8; 16];
        let c1 = Aes128::new(&[0u8; 16]).encrypt_block(&plain);
        let mut key2 = [0u8; 16];
        key2[0] = 1;
        let c2 = Aes128::new(&key2).encrypt_block(&plain);
        let differing: u32 = c1
            .iter()
            .zip(c2.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert!(differing > 30, "avalanche: {differing} bits differ");
    }
}
