//! # mcml-aes — the AES workload
//!
//! The cryptographic workload of the paper's evaluation:
//!
//! * [`aes`] — a complete software AES-128 (FIPS-197) used as the program
//!   the OpenRISC core executes 5000 times for the Table 3 power study;
//! * [`sbox`] — the AES S-box (plus a 4-bit mini S-box used for the
//!   transistor-level CPA tier, where an 8-bit LUT would be too large to
//!   SPICE for all plaintext–key pairs);
//! * [`reduced`] — the *"commonly accepted reduced version of the AES
//!   algorithm composed by a key addition and a S-box look-up-table"*
//!   (§6) that the security evaluation attacks, with its gate-level
//!   netlist generator;
//! * [`sbox_ise`] — the S-box instruction-set-extension functional unit:
//!   four parallel 8×8 S-box LUTs matching the processor's 32-bit word,
//!   as a mapped netlist in any of the three styles.

#![deny(missing_docs)]

pub mod aes;
pub mod reduced;
pub mod sbox;
pub mod sbox_ise;

pub use aes::Aes128;
pub use reduced::ReducedAes;
pub use sbox::{MINI_SBOX, SBOX};
pub use sbox_ise::build_sbox_ise;
