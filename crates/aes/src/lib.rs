//! # mcml-aes — the AES workload
//!
//! The cryptographic workload of the paper's evaluation:
//!
//! * [`aes`] — a complete software AES-128 (FIPS-197) used as the program
//!   the `OpenRISC` core executes 5000 times for the Table 3 power study;
//! * [`sbox`] — the AES S-box (plus a 4-bit mini S-box used for the
//!   transistor-level CPA tier, where an 8-bit LUT would be too large to
//!   SPICE for all plaintext–key pairs);
//! * [`reduced`] — the *"commonly accepted reduced version of the AES
//!   algorithm composed by a key addition and a S-box look-up-table"*
//!   (§6) that the security evaluation attacks, with its gate-level
//!   netlist generator;
//! * [`sbox_ise`] — the S-box instruction-set-extension functional unit:
//!   four parallel 8×8 S-box LUTs matching the processor's 32-bit word,
//!   as a mapped netlist in any of the three styles.
//!
//! ```
//! use mcml_aes::{Aes128, ReducedAes, SBOX};
//!
//! // FIPS-197 appendix C.1 known-answer vector.
//! let aes = Aes128::new(&[
//!     0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
//!     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f,
//! ]);
//! let ct = aes.encrypt_block(&[
//!     0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
//!     0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff,
//! ]);
//! assert_eq!(ct[0], 0x69);
//!
//! // The reduced AES the security evaluation attacks: key-add + S-box.
//! let reduced = ReducedAes::new(8);
//! assert_eq!(reduced.output(0x3b, 0xa7), SBOX[0x3b ^ 0xa7]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aes;
pub mod reduced;
pub mod sbox;
pub mod sbox_ise;

pub use aes::Aes128;
pub use reduced::ReducedAes;
pub use sbox::{MINI_SBOX, SBOX};
pub use sbox_ise::build_sbox_ise;
