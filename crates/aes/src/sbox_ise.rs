//! The S-box instruction-set-extension functional unit.
//!
//! §6: *"we augmented the `OpenRISC` 1000 32-bit embedded processor with a
//! custom functional unit, sitting in the processor's pipeline,
//! consisting of four identical S-boxes (each S-box is implemented in the
//! form of 8 × 8 look-up-table) to match the processor's word size."*
//!
//! This module builds that unit as a mapped gate-level netlist in any of
//! the three styles, optionally with an output register bank at the
//! pipeline boundary.

use mcml_cells::{CellKind, LogicStyle};
use mcml_netlist::{map_network, Conn, GateKind, Netlist, PortClass, TechmapOptions};

use crate::sbox::SBOX;

/// Options for the ISE generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SboxIseOptions {
    /// Number of parallel S-boxes (4 for a 32-bit word).
    pub n_sboxes: usize,
    /// Register the outputs with DFFs (pipeline boundary).
    pub output_regs: bool,
}

impl Default for SboxIseOptions {
    fn default() -> Self {
        Self {
            n_sboxes: 4,
            output_regs: true,
        }
    }
}

/// Build the S-box ISE netlist: inputs `x0…x{8n-1}`, outputs
/// `y0…y{8n-1}`, plus `clk` when output registers are enabled.
///
/// # Panics
///
/// Panics if `n_sboxes == 0`.
#[must_use]
pub fn build_sbox_ise(style: LogicStyle, opts: &SboxIseOptions) -> Netlist {
    assert!(opts.n_sboxes > 0, "need at least one S-box");
    // One S-box as a boolean network, replicated at mapping level by
    // building the full network with distinct input names.
    let mut bn = mcml_netlist::BoolNetwork::new();
    for s in 0..opts.n_sboxes {
        let ins: Vec<_> = (0..8)
            .map(|b| bn.input(&format!("x{}", s * 8 + b)))
            .collect();
        for bit in 0..8 {
            let table: Vec<bool> = (0..256).map(|v| (SBOX[v] >> bit) & 1 == 1).collect();
            let y = bn.lut(&ins, &table);
            bn.set_output(&format!("comb_y{}", s * 8 + bit), y);
        }
    }
    let mut nl = map_network(&bn, style, &TechmapOptions::default());
    nl.name = format!("sbox_ise_{}x_{}", opts.n_sboxes, style);
    // The unit sits after key addition in the pipeline, so its state
    // word is key-dependent: every x bit is a taint source for the
    // mcml-lint dataflow analyses.
    for b in 0..8 * opts.n_sboxes {
        nl.set_port_class(&format!("x{b}"), PortClass::Secret);
    }

    if opts.output_regs {
        let clk = nl.add_input("clk");
        nl.set_port_class("clk", PortClass::Clock);
        // Re-register each combinational output behind a DFF named y*.
        let combs: Vec<(String, Conn)> = nl.outputs().to_vec();
        nl.clear_outputs();
        for (name, conn) in combs {
            let idx = name.trim_start_matches("comb_y").to_owned();
            let qnet = nl.add_net(&format!("y{idx}"));
            nl.add_gate(
                &format!("u_ff_y{idx}"),
                GateKind::Lib(CellKind::Dff),
                vec![conn, Conn::plain(clk)],
                vec![qnet],
            );
            nl.set_output(&format!("y{idx}"), Conn::plain(qnet));
        }
    } else {
        // Rename outputs to y*.
        let combs: Vec<(String, Conn)> = nl.outputs().to_vec();
        nl.clear_outputs();
        for (name, conn) in combs {
            let idx = name.trim_start_matches("comb_y");
            nl.set_output(&format!("y{idx}"), conn);
        }
    }
    nl
}

/// Reference model: apply the AES S-box to each byte of a word.
#[must_use]
pub fn sbox_word(x: u32) -> u32 {
    let b = x.to_le_bytes();
    u32::from_le_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn eval_comb(nl: &Netlist, x: u32, n_bits: usize) -> u32 {
        let mut asg = HashMap::new();
        for b in 0..n_bits {
            asg.insert(format!("x{b}"), (x >> b) & 1 == 1);
        }
        if nl.inputs().iter().any(|(n, _)| n == "clk") {
            asg.insert("clk".to_owned(), false);
        }
        let values = nl.evaluate(&asg, &HashMap::new());
        let mut y = 0u32;
        for b in 0..n_bits {
            if nl.output_value(&format!("y{b}"), &values) {
                y |= 1 << b;
            }
        }
        y
    }

    #[test]
    fn single_sbox_matches_table() {
        let opts = SboxIseOptions {
            n_sboxes: 1,
            output_regs: false,
        };
        let nl = build_sbox_ise(LogicStyle::PgMcml, &opts);
        nl.validate().unwrap();
        for x in (0..256u32).step_by(7) {
            let y = eval_comb(&nl, x, 8);
            assert_eq!(y, u32::from(SBOX[x as usize]), "x = {x:#x}");
        }
    }

    #[test]
    fn word_ise_matches_reference_model() {
        let opts = SboxIseOptions {
            n_sboxes: 4,
            output_regs: false,
        };
        let nl = build_sbox_ise(LogicStyle::Mcml, &opts);
        nl.validate().unwrap();
        for &x in &[0u32, 0xdead_beef, 0x0123_4567, 0xffff_ffff] {
            assert_eq!(eval_comb(&nl, x, 32), sbox_word(x), "word {x:#x}");
        }
    }

    #[test]
    fn registered_ise_has_clk_and_32_ffs() {
        let nl = build_sbox_ise(LogicStyle::PgMcml, &SboxIseOptions::default());
        nl.validate().unwrap();
        assert!(nl.inputs().iter().any(|(n, _)| n == "clk"));
        let h = nl.cell_histogram();
        assert_eq!(h[&GateKind::Lib(CellKind::Dff)], 32);
    }

    #[test]
    fn ise_cell_count_in_paper_band() {
        // Paper Table 3: 2911 (MCML) / 3076 (PG-MCML) / 3865 (CMOS) cells.
        // Our mapper lands in the same order of magnitude.
        let nl = build_sbox_ise(LogicStyle::PgMcml, &SboxIseOptions::default());
        assert!(
            nl.gate_count() > 800 && nl.gate_count() < 8000,
            "ISE cells: {}",
            nl.gate_count()
        );
    }

    #[test]
    fn sbox_word_per_byte() {
        assert_eq!(sbox_word(0x0000_0000), 0x6363_6363);
        assert_eq!(sbox_word(0x0000_0053) & 0xff, 0xed);
    }
}
