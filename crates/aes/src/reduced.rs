//! The reduced AES used for the security evaluation: key addition
//! followed by one S-box look-up (§6), with gate-level netlist
//! generation in any style.
//!
//! The width is configurable: 8 bits is the paper's exact target (and
//! what the current-template CPA tier attacks over all 256×256
//! plaintext–key pairs); 4 bits swaps in the mini S-box so the
//! *transistor-level* CPA tier can SPICE every one of the 16×16 pairs in
//! reasonable time while exercising the identical circuit structure.

use mcml_cells::LogicStyle;
use mcml_netlist::{map_network, BoolNetwork, Netlist, PortClass, Signal, TechmapOptions};

use crate::sbox::{MINI_SBOX, SBOX};

/// A reduced AES instance (key-add + S-box) of a given bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReducedAes {
    width: usize,
}

impl ReducedAes {
    /// Create a reduced AES of the given width.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is 4 or 8.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width == 4 || width == 8, "width must be 4 or 8");
        Self { width }
    }

    /// Bit width.
    #[must_use]
    pub fn width(self) -> usize {
        self.width
    }

    /// Number of possible values per word.
    #[must_use]
    pub fn space(self) -> usize {
        1 << self.width
    }

    /// The S-box lookup for this width.
    #[must_use]
    pub fn sbox(self, x: u8) -> u8 {
        match self.width {
            4 => MINI_SBOX[(x & 0xF) as usize],
            _ => SBOX[x as usize],
        }
    }

    /// Reference output: `S(p ⊕ k)`.
    #[must_use]
    pub fn output(self, plain: u8, key: u8) -> u8 {
        let mask = (self.space() - 1) as u8;
        self.sbox((plain ^ key) & mask)
    }

    /// Build the boolean network: inputs `p0…`, `k0…`, outputs `y0…`.
    #[must_use]
    pub fn network(self) -> BoolNetwork {
        let w = self.width;
        let mut bn = BoolNetwork::new();
        let p: Vec<Signal> = (0..w).map(|i| bn.input(&format!("p{i}"))).collect();
        let k: Vec<Signal> = (0..w).map(|i| bn.input(&format!("k{i}"))).collect();
        let x: Vec<Signal> = (0..w).map(|i| bn.xor(p[i], k[i])).collect();
        for bit in 0..w {
            let table: Vec<bool> = (0..self.space())
                .map(|v| (self.sbox(v as u8) >> bit) & 1 == 1)
                .collect();
            let y = bn.lut(&x, &table);
            bn.set_output(&format!("y{bit}"), y);
        }
        bn
    }

    /// Build the mapped gate-level netlist in the given style.
    ///
    /// Ports carry their security class for the `mcml-lint` dataflow
    /// analyses: `k*` is the key ([`PortClass::Secret`]), `p*` the
    /// attacker-chosen plaintext ([`PortClass::Public`]).
    #[must_use]
    pub fn build_netlist(self, style: LogicStyle) -> Netlist {
        let mut nl = map_network(&self.network(), style, &TechmapOptions::default());
        nl.name = format!("reduced_aes_{}b_{}", self.width, style);
        for b in 0..self.width {
            nl.set_port_class(&format!("k{b}"), PortClass::Secret);
            nl.set_port_class(&format!("p{b}"), PortClass::Public);
        }
        nl
    }

    /// Build the **registered** variant: the S-box outputs are captured
    /// by DFFs on the rising edge of an added `clk` input, as in the
    /// synthesised/placed design the paper attacks. The register bank is
    /// what makes the Hamming weight of the S-box output physically
    /// observable in CMOS: at the capture edge the flops charge exactly
    /// the output-value bits.
    #[must_use]
    pub fn build_registered_netlist(self, style: LogicStyle) -> Netlist {
        use mcml_cells::CellKind;
        use mcml_netlist::{Conn, GateKind};
        let mut nl = self.build_netlist(style);
        nl.name = format!("reduced_aes_{}b_{}_reg", self.width, style);
        let clk = nl.add_input("clk");
        nl.set_port_class("clk", PortClass::Clock);
        let combs: Vec<(String, Conn)> = nl.outputs().to_vec();
        nl.clear_outputs();
        for (name, conn) in combs {
            let qnet = nl.add_net(&format!("{name}_q"));
            nl.add_gate(
                &format!("u_ff_{name}"),
                GateKind::Lib(CellKind::Dff),
                vec![conn, Conn::plain(clk)],
                vec![qnet],
            );
            nl.set_output(&name, Conn::plain(qnet));
        }
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn reference_output() {
        let r = ReducedAes::new(8);
        assert_eq!(r.output(0x00, 0x00), SBOX[0]);
        assert_eq!(r.output(0x53, 0x00), SBOX[0x53]);
        assert_eq!(r.output(0x50, 0x03), SBOX[0x53]);
        let m = ReducedAes::new(4);
        assert_eq!(m.output(0x3, 0x1), MINI_SBOX[2]);
    }

    #[test]
    fn netlist_matches_reference_4bit_exhaustive() {
        let r = ReducedAes::new(4);
        for style in [LogicStyle::PgMcml, LogicStyle::Cmos] {
            let nl = r.build_netlist(style);
            nl.validate().unwrap();
            for p in 0..16u8 {
                for k in 0..16u8 {
                    let mut asg = HashMap::new();
                    for b in 0..4 {
                        asg.insert(format!("p{b}"), (p >> b) & 1 == 1);
                        asg.insert(format!("k{b}"), (k >> b) & 1 == 1);
                    }
                    let values = nl.evaluate(&asg, &HashMap::new());
                    let mut y = 0u8;
                    for b in 0..4 {
                        if nl.output_value(&format!("y{b}"), &values) {
                            y |= 1 << b;
                        }
                    }
                    assert_eq!(y, r.output(p, k), "{style} p={p:#x} k={k:#x}");
                }
            }
        }
    }

    #[test]
    fn netlist_matches_reference_8bit_sampled() {
        let r = ReducedAes::new(8);
        let nl = r.build_netlist(LogicStyle::PgMcml);
        nl.validate().unwrap();
        for seed in 0..64u32 {
            let p = (seed.wrapping_mul(2654435761) >> 8) as u8;
            let k = (seed.wrapping_mul(40503) >> 4) as u8;
            let mut asg = HashMap::new();
            for b in 0..8 {
                asg.insert(format!("p{b}"), (p >> b) & 1 == 1);
                asg.insert(format!("k{b}"), (k >> b) & 1 == 1);
            }
            let values = nl.evaluate(&asg, &HashMap::new());
            let mut y = 0u8;
            for b in 0..8 {
                if nl.output_value(&format!("y{b}"), &values) {
                    y |= 1 << b;
                }
            }
            assert_eq!(y, r.output(p, k), "p={p:#x} k={k:#x}");
        }
    }

    #[test]
    fn four_bit_netlist_is_small_enough_for_spice() {
        let nl = ReducedAes::new(4).build_netlist(LogicStyle::PgMcml);
        assert!(
            nl.gate_count() < 80,
            "4-bit reduced AES: {} gates",
            nl.gate_count()
        );
    }

    #[test]
    fn eight_bit_netlist_has_hundreds_of_gates() {
        let nl = ReducedAes::new(8).build_netlist(LogicStyle::PgMcml);
        assert!(
            nl.gate_count() > 150 && nl.gate_count() < 2500,
            "8-bit reduced AES: {} gates",
            nl.gate_count()
        );
    }

    #[test]
    #[should_panic(expected = "width must be 4 or 8")]
    fn bad_width_rejected() {
        let _ = ReducedAes::new(6);
    }
}
