//! Property-based tests of the AES workload crate.

use std::collections::HashMap;

use proptest::prelude::*;

use mcml_aes::{aes::Aes128, sbox_ise, ReducedAes, SBOX};
use mcml_cells::LogicStyle;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Decryption inverts encryption for arbitrary keys and blocks.
    #[test]
    fn encrypt_decrypt_round_trip(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        let c = aes.encrypt_block(&block);
        prop_assert_eq!(aes.decrypt_block(&c), block);
    }

    /// Two different plaintexts never collide (permutation property).
    #[test]
    fn encryption_is_injective(key in any::<[u8; 16]>(), a in any::<[u8; 16]>(), b in any::<[u8; 16]>()) {
        prop_assume!(a != b);
        let aes = Aes128::new(&key);
        prop_assert_ne!(aes.encrypt_block(&a), aes.encrypt_block(&b));
    }

    /// The word-level ISE reference equals per-byte S-box application.
    #[test]
    fn sbox_word_matches_bytes(x in any::<u32>()) {
        let y = sbox_ise::sbox_word(x);
        for i in 0..4 {
            let xb = x.to_le_bytes()[i];
            prop_assert_eq!(y.to_le_bytes()[i], SBOX[xb as usize]);
        }
    }

    /// Reduced-AES netlists compute S(p ⊕ k) for random pairs (8-bit,
    /// differential style).
    #[test]
    fn reduced_netlist_matches_model(p in any::<u8>(), k in any::<u8>()) {
        let r = ReducedAes::new(8);
        let nl = r.build_netlist(LogicStyle::PgMcml);
        let mut asg = HashMap::new();
        for b in 0..8 {
            asg.insert(format!("p{b}"), (p >> b) & 1 == 1);
            asg.insert(format!("k{b}"), (k >> b) & 1 == 1);
        }
        let values = nl.evaluate(&asg, &HashMap::new());
        let mut y = 0u8;
        for b in 0..8 {
            if nl.output_value(&format!("y{b}"), &values) {
                y |= 1 << b;
            }
        }
        prop_assert_eq!(y, r.output(p, k));
    }

    /// The registered netlist captures the same value after one clock
    /// edge (cycle-level semantics).
    #[test]
    fn registered_netlist_captures_model(p in any::<u8>(), k in any::<u8>()) {
        let r = ReducedAes::new(8);
        let nl = r.build_registered_netlist(LogicStyle::Cmos);
        let mut asg = HashMap::new();
        asg.insert("clk".to_owned(), false);
        for b in 0..8 {
            asg.insert(format!("p{b}"), (p >> b) & 1 == 1);
            asg.insert(format!("k{b}"), (k >> b) & 1 == 1);
        }
        let values = nl.evaluate(&asg, &HashMap::new());
        let state = nl.next_state(&values, &HashMap::new());
        let values2 = nl.evaluate(&asg, &state);
        let mut y = 0u8;
        for b in 0..8 {
            if nl.output_value(&format!("y{b}"), &values2) {
                y |= 1 << b;
            }
        }
        prop_assert_eq!(y, r.output(p, k));
    }
}

#[test]
fn ise_netlist_equivalent_for_sampled_words() {
    let opts = sbox_ise::SboxIseOptions {
        n_sboxes: 4,
        output_regs: false,
    };
    let nl = sbox_ise::build_sbox_ise(LogicStyle::PgMcml, &opts);
    let mut x = 0x0bad_f00du32;
    for _ in 0..32 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        let mut asg = HashMap::new();
        for b in 0..32 {
            asg.insert(format!("x{b}"), (x >> b) & 1 == 1);
        }
        let values = nl.evaluate(&asg, &HashMap::new());
        let mut y = 0u32;
        for b in 0..32 {
            if nl.output_value(&format!("y{b}"), &values) {
                y |= 1 << b;
            }
        }
        assert_eq!(y, sbox_ise::sbox_word(x), "word {x:#010x}");
    }
}
