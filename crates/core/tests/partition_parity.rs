//! Golden parity for the partitioned (block-scheduled) solve path.
//!
//! Three claims, mirroring the bypass/adaptive contracts in
//! `golden_fig6.rs`:
//!
//! 1. The fig. 6 tier is **bitwise** unaffected by `with_partitioning()`
//!    — its options are grid-aligned adaptive (the partitioned scheduler
//!    is fixed-grid only) and its default parameters attach gate-overlap
//!    parasitics (which bridge every stage into one block), so both
//!    dispatch guards independently fall back to the monolithic march.
//!    The committed golden supply pins therefore did not move.
//! 2. The `aes_tran` tier (fixed grid, parasitics off) genuinely
//!    partitions — multiple blocks, nonzero skips — and its supply
//!    trace stays inside the acquisition-resolution band of the
//!    monolithic reference.
//! 3. A CPA attack over traces acquired with partitioning on recovers
//!    the same best key guess as one over monolithic traces: the
//!    optimisation does not move the security verdict.

use mcml_cells::{CellParams, LogicStyle};
use mcml_obs::Counter;
use pg_mcml::experiments::{
    aes_tran_options, aes_tran_params, aes_tran_trace, fig6_supply_trace_with, fig6_tran_options,
};
use pg_mcml::prelude::{cpa_attack, HammingWeight, ReducedAes, TraceSet};

const KEY: u8 = 0xb;

fn aes_trace(params: &CellParams, p: u8, partition: bool) -> Vec<f64> {
    aes_tran_trace(
        params,
        KEY,
        LogicStyle::PgMcml,
        p,
        &aes_tran_options(partition),
    )
    .expect("aes_tran trace")
}

#[test]
fn fig6_tier_is_bitwise_identical_with_partitioning_on() {
    let params = CellParams::default();
    let off = fig6_supply_trace_with(&params, KEY, LogicStyle::PgMcml, 0x3, &fig6_tran_options())
        .expect("partition-off trace");
    let blocks_before = mcml_obs::total(Counter::PartitionBlocks);
    let on = fig6_supply_trace_with(
        &params,
        KEY,
        LogicStyle::PgMcml,
        0x3,
        &fig6_tran_options().with_partitioning(),
    )
    .expect("partition-on trace");
    assert_eq!(
        mcml_obs::total(Counter::PartitionBlocks),
        blocks_before,
        "fig. 6 options must fall back to the monolithic path"
    );
    assert_eq!(off, on, "fallback must be bitwise");
}

#[test]
fn aes_tran_partitions_and_stays_in_acquisition_band() {
    // Same bound rationale as the fig. 6 ensemble contract: the paper's
    // 1 µA acquisition resolution on the ~2 mA tail current, plus the
    // golden pins' relative tolerance. The skip freeze perturbs settled
    // boundary nodes by at most the 10 µV skip tolerance — orders of
    // magnitude below this band.
    const ABS_TOL: f64 = 1.0e-6;
    const REL_TOL: f64 = 1e-4;

    let params = aes_tran_params();
    let mono = aes_trace(&params, 0x3, false);
    let blocks_before = mcml_obs::total(Counter::PartitionBlocks);
    let skips_before = mcml_obs::total(Counter::BlockSkips);
    let part = aes_trace(&params, 0x3, true);
    let blocks = mcml_obs::total(Counter::PartitionBlocks) - blocks_before;
    let skips = mcml_obs::total(Counter::BlockSkips) - skips_before;
    if std::env::var("MCML_SPICE_PARTITION").is_err() {
        assert!(
            blocks > 1,
            "aes_tran must decompose into blocks, got {blocks}"
        );
        assert!(
            skips > 0,
            "event-driven scheduling must skip settled blocks"
        );
    }
    assert_eq!(mono.len(), part.len());
    for (j, (m, p)) in mono.iter().zip(&part).enumerate() {
        let tol = ABS_TOL + REL_TOL * m.abs();
        assert!(
            (p - m).abs() <= tol,
            "sample {j}: partitioned {p:e} vs monolithic {m:e} (tol {tol:e})"
        );
    }
}

#[test]
fn cpa_best_guess_unchanged_by_partitioning() {
    let params = aes_tran_params();
    let reduced = ReducedAes::new(4);
    let model = HammingWeight::new(|x| reduced.sbox(x), 4);
    let attack = |partition: bool| {
        let mut ts = TraceSet::new(60);
        for p in 0..16u8 {
            ts.push(p, &aes_trace(&params, p, partition));
        }
        cpa_attack(&ts, &model)
    };
    let mono = attack(false);
    let part = attack(true);
    assert_eq!(
        mono.best_guess(),
        part.best_guess(),
        "partitioning must not move the CPA verdict"
    );
}
