//! Golden-waveform regression for the fig. 6 transistor tier.
//!
//! Pins one plaintext's supply-current trace (PG-MCML, key 0xb,
//! plaintext 0x3) against samples captured from the reference solver
//! path. Solver-level changes — assembly reordering, factorisation
//! strategy, step-size handling — may shift samples only within the
//! tolerances below; anything larger is a physics change, not an
//! optimisation.

use mcml_cells::{CellParams, LogicStyle};
use mcml_spice::TranOptions;
use pg_mcml::experiments::{
    fig6_base_waveforms, fig6_supply_trace, fig6_supply_trace_with, fig6_tran_options,
};
use pg_mcml::Parallelism;

/// Captured from the reference implementation (legacy full-restamp
/// assembly + per-iteration factorisation): every 6th of the 60 samples
/// of the resampled Vdd current (A).
const GOLDEN_STRIDE: usize = 6;
const GOLDEN_SAMPLES: [f64; 10] = [
    1.997807770513804e-3,
    1.9912301692238733e-3,
    2.000289957344394e-3,
    1.998945213251309e-3,
    1.9985504824845796e-3,
    1.998425244737777e-3,
    1.9983534146545173e-3,
    1.9982955312894423e-3,
    1.998244929338689e-3,
    1.9982008252221618e-3,
];

/// Relative tolerance on each pinned sample (0.01 %, comfortably above
/// the Newton tolerances `vtol`/`itol` that bound legitimate solver
/// noise, and far below the paper's 1 µA acquisition resolution on the
/// ~2 mA tail current), plus an absolute floor at `itol`.
const REL_TOL: f64 = 1e-4;
const ABS_TOL: f64 = 1e-9;

#[test]
fn fig6_pg_mcml_trace_matches_golden() {
    let trace = fig6_supply_trace(&CellParams::default(), 0xb, LogicStyle::PgMcml, 0x3)
        .expect("transistor-tier trace");
    assert_eq!(trace.len(), 60, "capture window sampling");
    let picked: Vec<f64> = trace.iter().copied().step_by(GOLDEN_STRIDE).collect();
    assert_eq!(picked.len(), GOLDEN_SAMPLES.len());
    for (i, (got, want)) in picked.iter().zip(GOLDEN_SAMPLES).enumerate() {
        let tol = ABS_TOL + REL_TOL * want.abs();
        assert!(
            (got - want).abs() <= tol,
            "sample {}: got {got:e}, golden {want:e} (tol {tol:e})",
            i * GOLDEN_STRIDE
        );
    }
}

/// The fig. 6 tier runs with grid-aligned adaptive stepping
/// (`fig6_tran_options`); this proves the policy drifts no more than
/// 0.01 % from the fixed-step reference at *every* one of the 60
/// samples — not just the ten pinned above — so the golden values did
/// not need re-pinning when adaptive stepping was enabled.
/// The quiescent-device bypass (enabled at 10 µV in
/// `fig6_tran_options`) must be an *optimisation*, not a physics
/// change: re-running the tier with the bypass disabled has to land
/// within the pin tolerance at every sample, and the enabled run has
/// to actually skip model evaluations (otherwise the knob is dead and
/// this test is vacuous).
#[test]
fn fig6_bypass_drift_vs_exact_below_pin_tolerance() {
    use mcml_obs::Counter;
    let params = CellParams::default();
    let exact = fig6_supply_trace_with(
        &params,
        0xb,
        LogicStyle::PgMcml,
        0x3,
        &fig6_tran_options().with_bypass(0.0),
    )
    .expect("bypass-off trace");
    let bypassed_before = mcml_obs::total(Counter::MosBypassed);
    let bypassing =
        fig6_supply_trace_with(&params, 0xb, LogicStyle::PgMcml, 0x3, &fig6_tran_options())
            .expect("bypass-on trace");
    let skipped = mcml_obs::total(Counter::MosBypassed) - bypassed_before;
    if std::env::var("MCML_SPICE_BYPASS").is_err() {
        assert!(skipped > 0, "bypass enabled but no evaluations skipped");
    }
    assert_eq!(exact.len(), bypassing.len());
    let mut worst = 0.0f64;
    for (e, b) in exact.iter().zip(&bypassing) {
        worst = worst.max((b - e).abs() / e.abs().max(ABS_TOL));
    }
    assert!(worst <= REL_TOL, "worst bypass-vs-exact drift {worst:e}");
}

/// The batched acquisition path must be an *optimisation*, not a physics
/// change: a full 16-lane ensemble (every plaintext nibble in one
/// lockstep march over a shared stamp plan and symbolic LU) has to land
/// the golden plaintext's supply pins inside the same tolerance as the
/// scalar path, and every lane has to stay within the acquisition-
/// resolution band of the fixed-step physics anchor for its plaintext.
/// Lanes beyond lane 0 adopt lane 0's factors and share the ensemble's
/// step decisions, so they are *not* bitwise copies of the scalar run —
/// the tolerance band is the contract.
#[test]
fn fig6_sixteen_lane_ensemble_matches_scalar_goldens() {
    // Per-lane drift bound against the fixed-step anchor. Drift
    // concentrates on the one or two samples riding the clock-edge
    // transient, where the adaptive policy's grid interpolates the fast
    // edge differently per plaintext: measured worst is 1.9 µA (lane
    // 0x1, a sample where the ensemble matches its scalar adaptive run
    // to 1 nA — the drift is the shared adaptive policy's, not the
    // ensemble's; everywhere else it is ≤ 0.9 µA, *below* the scalar
    // adaptive path's own edge error). Bound at 2.5× the paper's 1 µA
    // acquisition resolution on the ~2 mA tail, plus the pin's relative
    // tolerance.
    const EDGE_ABS_TOL: f64 = 2.5e-6;

    let params = CellParams::default();
    let rows = fig6_base_waveforms(&params, 0xb, LogicStyle::PgMcml, 16, Parallelism::Serial)
        .expect("16-lane ensemble acquisition");
    assert_eq!(rows.len(), 16, "one lane per plaintext nibble");

    // Lane 0x3 against the committed golden samples.
    let picked: Vec<f64> = rows[0x3].iter().copied().step_by(GOLDEN_STRIDE).collect();
    for (i, (got, want)) in picked.iter().zip(GOLDEN_SAMPLES).enumerate() {
        let tol = ABS_TOL + REL_TOL * want.abs();
        assert!(
            (got - want).abs() <= tol,
            "ensemble lane 0x3 sample {}: got {got:e}, golden {want:e} (tol {tol:e})",
            i * GOLDEN_STRIDE
        );
    }

    // Every lane against the fixed-step physics anchor for its own
    // plaintext (bound rationale at EDGE_ABS_TOL above).
    for (p, row) in rows.iter().enumerate() {
        let anchor = fig6_supply_trace_with(
            &params,
            0xb,
            LogicStyle::PgMcml,
            p as u8,
            &TranOptions::new(3.6e-9, 10e-12),
        )
        .expect("fixed-step reference trace");
        for (j, (e, f)) in row.iter().zip(&anchor).enumerate() {
            let tol = EDGE_ABS_TOL + REL_TOL * f.abs();
            assert!(
                (e - f).abs() <= tol,
                "lane {p:#x} sample {j}: ensemble {e:e} vs fixed-step {f:e} (tol {tol:e})"
            );
        }
    }
}

#[test]
fn fig6_adaptive_drift_vs_fixed_below_pin_tolerance() {
    let params = CellParams::default();
    let fixed = fig6_supply_trace_with(
        &params,
        0xb,
        LogicStyle::PgMcml,
        0x3,
        &TranOptions::new(3.6e-9, 10e-12),
    )
    .expect("fixed-step trace");
    let adaptive =
        fig6_supply_trace_with(&params, 0xb, LogicStyle::PgMcml, 0x3, &fig6_tran_options())
            .expect("adaptive trace");
    assert_eq!(fixed.len(), adaptive.len());
    let mut worst = 0.0f64;
    for (f, a) in fixed.iter().zip(&adaptive) {
        worst = worst.max((a - f).abs() / f.abs().max(ABS_TOL));
    }
    assert!(worst <= REL_TOL, "worst adaptive-vs-fixed drift {worst:e}");
}
