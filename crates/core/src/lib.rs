//! # pg-mcml — Power-Gated MOS Current Mode Logic
//!
//! Top-level crate of the PG-MCML reproduction (Cevrero et al., DAC
//! 2011): a power-aware, DPA-resistant standard cell library and the
//! complete evaluation flow around it.
//!
//! The crate ties the substrates together behind a single façade:
//!
//! * [`flow::DesignFlow`] — synthesise → map → characterise → simulate →
//!   measure, with a cached [`mcml_char::TimingLibrary`];
//! * [`elaborate`] — expand a mapped gate-level netlist to a flat
//!   transistor-level circuit (differential fat wires included) for
//!   SPICE-grade simulation, as used by the transistor-level CPA tier;
//! * [`experiments`] — one driver per table/figure of the paper (Table 1,
//!   Table 2, Table 3, Fig. 3, Fig. 5, Fig. 6), shared by the examples
//!   and the benchmark binaries.
//!
//! # Quick start
//!
//! ```no_run
//! use pg_mcml::prelude::*;
//!
//! // Characterise the PG-MCML buffer and inspect the headline numbers.
//! let params = CellParams::default();
//! let t = mcml_char::characterize_cell(CellKind::Buffer, LogicStyle::PgMcml, &params)?;
//! println!("delay {:.1} ps, awake {:.1} µW, asleep {:.3} nW",
//!          t.delay_fo1_ps, t.static_power_w * 1e6, t.leakage_sleep_w * 1e9);
//! # Ok::<(), mcml_spice::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod elaborate;
pub mod experiments;
pub mod flow;

/// Convenient re-exports of the most used types across the workspace.
pub mod prelude {
    pub use mcml_aes::{Aes128, ReducedAes};
    pub use mcml_cells::{
        build_cell, cell_area_um2, BiasPoint, CellKind, CellParams, DriveStrength, LogicStyle,
        SleepTopology,
    };
    pub use mcml_char::{characterize_cell, CellTiming, TimingLibrary};
    pub use mcml_dpa::{cpa_attack, key_rank, HammingWeight, TraceSet};
    pub use mcml_netlist::{map_network, BoolNetwork, Netlist, TechmapOptions};
    pub use mcml_sim::{circuit_current, CurrentModel, EventSim, Stimulus};
    pub use mcml_spice::{Circuit, SourceWave, TranOptions, Waveform};

    pub use crate::elaborate::{checked_elaborate, elaborate};
    pub use crate::flow::DesignFlow;
    pub use mcml_exec::Parallelism;
    pub use mcml_lint::{LintConfig, LintEngine, LintReport};
}

pub use flow::DesignFlow;
pub use mcml_exec::Parallelism;
