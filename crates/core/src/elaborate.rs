//! Netlist → transistor-level elaboration.
//!
//! Expands a mapped gate-level [`Netlist`] into one flat [`Circuit`] by
//! instantiating every gate's transistor-level cell and wiring the nets:
//! differential styles get a **fat wire** (rail pair) per net with free
//! inversion realised as a rail swap, CMOS gets single wires plus real
//! two-transistor inverters for `GateKind::Inv`. The result is what the
//! paper feeds to its fast-SPICE simulator for the Fig. 6 security
//! analysis.

use std::collections::HashMap;

use mcml_cells::{build_cell, solve_bias, CellParams, LogicStyle};
use mcml_device::{MosParams, Mosfet};
use mcml_netlist::{GateKind, NetId, Netlist};
use mcml_spice::{Circuit, ElementId, NodeId, SourceWave};

/// A flattened transistor-level design with its testbench rails.
pub struct Elaborated {
    /// The complete circuit including supplies and bias sources.
    pub circuit: Circuit,
    /// Supply source (probe it for the Fig. 5/6 current).
    pub vdd_src: ElementId,
    /// Per primary input: the node(s) to drive. Differential styles get
    /// `(p, Some(n))`, CMOS `(node, None)`.
    pub inputs: HashMap<String, (NodeId, Option<NodeId>)>,
    /// Per primary output: the node(s) to observe (already
    /// polarity-resolved, i.e. output inversions are folded into the rail
    /// order).
    pub outputs: HashMap<String, (NodeId, Option<NodeId>)>,
    /// Style of the source netlist.
    pub style: LogicStyle,
    /// Wire capacitance attached per net rail (F).
    pub wire_cap: f64,
}

/// Per-net rail pair (differential) or single node.
#[derive(Clone, Copy)]
struct NetNodes {
    p: NodeId,
    n: Option<NodeId>,
}

/// [`elaborate`] behind the lint gate: run the `mcml-lint` gate-level
/// rule pack first and refuse to expand a netlist with deny-severity
/// findings — catching broken structure *before* any SPICE runs, the
/// way the paper's flow runs DRC/ERC decks before simulation.
///
/// # Errors
///
/// [`mcml_spice::SpiceError::InvalidCircuit`] listing every deny
/// diagnostic when the netlist is not lint-clean.
pub fn checked_elaborate(
    nl: &Netlist,
    params: &CellParams,
    engine: &mcml_lint::LintEngine,
) -> crate::flow::Result<Elaborated> {
    let report = engine.lint_netlist(nl, None);
    if !report.is_clean() {
        let denies: Vec<String> = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == mcml_lint::Severity::Deny)
            .map(ToString::to_string)
            .collect();
        return Err(mcml_spice::SpiceError::InvalidCircuit(format!(
            "netlist `{}` fails lint with {} deny diagnostic(s): {}",
            nl.name,
            denies.len(),
            denies.join("; ")
        )));
    }
    Ok(elaborate(nl, params))
}

/// Elaborate a netlist to transistors.
///
/// The supply, `Vn`/`Vp` bias rails and (for PG-MCML) an always-on sleep
/// rail are included, so the caller only adds input drivers. Sequential
/// cells are supported: note their storage loops sit at a metastable
/// midpoint in the DC operating point and resolve at the first clock
/// edge of a transient — start measurements after one edge.
///
/// # Panics
///
/// Panics if the netlist fails validation.
#[must_use]
pub fn elaborate(nl: &Netlist, params: &CellParams) -> Elaborated {
    nl.validate().expect("netlist must validate");
    let style = nl.style;
    let differential = style.is_differential();
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let vdd_v = params.tech.vdd;
    let vdd_src = ckt.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(vdd_v));

    // Bias rails for differential styles.
    let (vn, vp, sleep) = if differential {
        let bias = solve_bias(params);
        let vn = ckt.node("vn");
        let vp = ckt.node("vp");
        ckt.vsource("VN", vn, Circuit::GND, SourceWave::dc(bias.vn));
        ckt.vsource("VP", vp, Circuit::GND, SourceWave::dc(bias.vp));
        let sleep = if style.is_power_gated() {
            let s = ckt.node("sleep");
            ckt.vsource("VSLP", s, Circuit::GND, SourceWave::dc(vdd_v));
            Some(s)
        } else {
            None
        };
        (Some(vn), Some(vp), sleep)
    } else {
        (None, None, None)
    };

    // One rail (pair) per net.
    let wire_cap = 0.8e-15;
    let mut nets: Vec<NetNodes> = Vec::with_capacity(nl.net_count());
    for i in 0..nl.net_count() {
        let name = nl.net_name(NetId::from_index(i)).to_owned();
        let p = ckt.node(&format!("w_{name}_p"));
        let n = if differential {
            Some(ckt.node(&format!("w_{name}_n")))
        } else {
            None
        };
        // Fat-wire load on both rails.
        ckt.capacitor(&format!("CW{i}p"), p, Circuit::GND, wire_cap);
        if let Some(nn) = n {
            ckt.capacitor(&format!("CW{i}n"), nn, Circuit::GND, wire_cap);
        }
        nets.push(NetNodes { p, n });
    }

    // Instantiate gates.
    for (gi, g) in nl.gates().iter().enumerate() {
        match g.kind {
            GateKind::Inv => {
                // CMOS legalisation inverter: two transistors inline.
                let a = nets[g.inputs[0].net.index()].p;
                let q = nets[g.outputs[0].index()].p;
                let np = MosParams::nmos_lvt_90().at_corner(params.corner);
                let pp = MosParams::pmos_lvt_90().at_corner(params.corner);
                ckt.mosfet_with_caps(
                    &format!("g{gi}_invn"),
                    q,
                    a,
                    Circuit::GND,
                    Circuit::GND,
                    Mosfet::nmos(np, 0.4e-6, params.l),
                    &params.tech,
                );
                ckt.mosfet_with_caps(
                    &format!("g{gi}_invp"),
                    q,
                    a,
                    vdd,
                    vdd,
                    Mosfet::pmos(pp, 0.8e-6, params.l),
                    &params.tech,
                );
            }
            GateKind::Lib(kind) => {
                let cell = build_cell(kind, style, params);
                let mut conns: Vec<(NodeId, NodeId)> = vec![(cell.port("vdd"), vdd)];
                if let (Some(vn), Some(vp)) = (vn, vp) {
                    if cell.ports.contains_key("vn") {
                        conns.push((cell.port("vn"), vn));
                        conns.push((cell.port("vp"), vp));
                    }
                }
                if let Some(s) = sleep {
                    if cell.ports.contains_key("sleep") {
                        conns.push((cell.port("sleep"), s));
                    }
                }
                // Inputs: inversion = rail swap on differential, must not
                // appear on CMOS (legalised earlier).
                for (pin, conn) in kind.input_names().iter().zip(&g.inputs) {
                    let rail = nets[conn.net.index()];
                    if differential {
                        let (sig_p, sig_n) = if conn.inverted {
                            (rail.n.expect("diff"), rail.p)
                        } else {
                            (rail.p, rail.n.expect("diff"))
                        };
                        conns.push((cell.port(&format!("{pin}_p")), sig_p));
                        conns.push((cell.port(&format!("{pin}_n")), sig_n));
                    } else {
                        assert!(
                            !conn.inverted,
                            "CMOS netlists are legalised before elaboration"
                        );
                        conns.push((cell.port(pin), rail.p));
                    }
                }
                for (pin, out) in kind.output_names().iter().zip(&g.outputs) {
                    let rail = nets[out.index()];
                    if differential {
                        conns.push((cell.port(&format!("{pin}_p")), rail.p));
                        conns.push((cell.port(&format!("{pin}_n")), rail.n.expect("diff")));
                    } else {
                        conns.push((cell.port(pin), rail.p));
                    }
                }
                ckt.instantiate(&format!("g{gi}"), &cell.circuit, &conns);
            }
        }
    }

    let inputs = nl
        .inputs()
        .iter()
        .map(|(name, id)| {
            let r = nets[id.index()];
            (name.clone(), (r.p, r.n))
        })
        .collect();
    let outputs = nl
        .outputs()
        .iter()
        .map(|(name, conn)| {
            let r = nets[conn.net.index()];
            let pair = if differential && conn.inverted {
                (r.n.expect("diff"), Some(r.p))
            } else {
                (r.p, r.n)
            };
            (name.clone(), pair)
        })
        .collect();

    Elaborated {
        circuit: ckt,
        vdd_src,
        inputs,
        outputs,
        style,
        wire_cap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcml_netlist::{map_network, BoolNetwork, TechmapOptions};
    use mcml_spice::TranOptions;

    fn xor_of_two() -> BoolNetwork {
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let q = bn.xor(a, b);
        // An OR as well, to exercise free inversions.
        let o = bn.or(a, b);
        bn.set_output("q", q);
        bn.set_output("o", o);
        bn
    }

    fn drive_and_check(style: LogicStyle, a: bool, b: bool) {
        let params = CellParams::default();
        let nl = map_network(&xor_of_two(), style, &TechmapOptions::default());
        let el = elaborate(&nl, &params);
        let mut ckt = el.circuit.clone();
        let (v_lo, v_hi) = match style {
            LogicStyle::Cmos => (0.0, params.tech.vdd),
            _ => (params.v_low(), params.tech.vdd),
        };
        for (name, val) in [("a", a), ("b", b)] {
            let (p, n) = el.inputs[name];
            let (hp, hn) = if val { (v_hi, v_lo) } else { (v_lo, v_hi) };
            ckt.vsource(&format!("VI{name}"), p, Circuit::GND, SourceWave::dc(hp));
            if let Some(nn) = n {
                ckt.vsource(&format!("VI{name}n"), nn, Circuit::GND, SourceWave::dc(hn));
            }
        }
        let op = ckt.dc_op().expect("elaborated circuit converges");
        for (out, expect) in [("q", a ^ b), ("o", a || b)] {
            let (p, n) = el.outputs[out];
            let v = match n {
                Some(nn) => op.voltage(p) - op.voltage(nn),
                None => op.voltage(p) - 0.5 * params.tech.vdd,
            };
            assert_eq!(v > 0.0, expect, "{style} {out} at a={a} b={b}: {v}");
            assert!(v.abs() > 0.1, "{style} {out}: swing {v}");
        }
    }

    #[test]
    fn pg_mcml_elaboration_functional() {
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            drive_and_check(LogicStyle::PgMcml, a, b);
        }
    }

    #[test]
    fn cmos_elaboration_functional() {
        for (a, b) in [(false, false), (true, true), (true, false)] {
            drive_and_check(LogicStyle::Cmos, a, b);
        }
    }

    #[test]
    fn transient_supply_current_flat_for_mcml() {
        // Drive a toggling input and compare supply-current spread.
        let params = CellParams::default();
        let nl = map_network(&xor_of_two(), LogicStyle::Mcml, &TechmapOptions::default());
        let el = elaborate(&nl, &params);
        let mut ckt = el.circuit.clone();
        let (p, n) = el.inputs["a"];
        let v_lo = params.v_low();
        let v_hi = params.tech.vdd;
        ckt.vsource(
            "VIa",
            p,
            Circuit::GND,
            SourceWave::Pwl(vec![(0.0, v_lo), (1e-9, v_lo), (1.02e-9, v_hi)]),
        );
        ckt.vsource(
            "VIan",
            n.unwrap(),
            Circuit::GND,
            SourceWave::Pwl(vec![(0.0, v_hi), (1e-9, v_hi), (1.02e-9, v_lo)]),
        );
        let (bp, bn) = el.inputs["b"];
        ckt.vsource("VIb", bp, Circuit::GND, SourceWave::dc(v_lo));
        ckt.vsource("VIbn", bn.unwrap(), Circuit::GND, SourceWave::dc(v_hi));
        let res = ckt.transient(&TranOptions::new(3e-9, 10e-12)).unwrap();
        let i = res.supply_current(el.vdd_src).unwrap();
        // Settled-window statistics: the MCML current barely moves even
        // though the outputs switch.
        let i_before = i.mean_between(0.6e-9, 0.95e-9);
        let i_after = i.mean_between(2.0e-9, 2.9e-9);
        assert!(i_before > 10e-6, "bias current flows: {i_before}");
        assert!(
            (i_after / i_before - 1.0).abs() < 0.15,
            "flat supply current: {i_before} -> {i_after}"
        );
    }

    #[test]
    fn sequential_netlist_captures_on_clock_edge() {
        use mcml_cells::CellKind;
        use mcml_netlist::{Conn, GateKind, Netlist};
        let params = CellParams::default();
        let mut nl = Netlist::new("ff", LogicStyle::PgMcml);
        let d = nl.add_input("d");
        let clk = nl.add_input("clk");
        let q = nl.add_net("q");
        nl.add_gate(
            "ff",
            GateKind::Lib(CellKind::Dff),
            vec![Conn::plain(d), Conn::plain(clk)],
            vec![q],
        );
        nl.set_output("q", Conn::plain(q));
        let el = elaborate(&nl, &params);
        let mut ckt = el.circuit.clone();
        let (v_lo, v_hi) = (params.v_low(), params.tech.vdd);
        // d = 1 constant; clk pulses at 1 ns.
        let (dp, dn) = el.inputs["d"];
        ckt.vsource("VD", dp, Circuit::GND, SourceWave::dc(v_hi));
        ckt.vsource("VDn", dn.unwrap(), Circuit::GND, SourceWave::dc(v_lo));
        let (cp, cn) = el.inputs["clk"];
        let edge = |a, b| SourceWave::Pwl(vec![(0.0, a), (1.0e-9, a), (1.05e-9, b)]);
        ckt.vsource("VC", cp, Circuit::GND, edge(v_lo, v_hi));
        ckt.vsource("VCn", cn.unwrap(), Circuit::GND, edge(v_hi, v_lo));
        let res = ckt.transient(&TranOptions::new(3.0e-9, 10e-12)).unwrap();
        let (qp, qn) = el.outputs["q"];
        let vq = res.voltage(qp).add(&res.voltage(qn.unwrap()).scaled(-1.0));
        assert!(
            vq.last_value() > 0.15,
            "q captured d=1 after the edge: {}",
            vq.last_value()
        );
    }
}
