//! The design-flow façade: map, characterise (cached), simulate.

use mcml_cells::{CellKind, CellParams, LogicStyle};
use mcml_char::{characterize_cell, CellTiming, TimingLibrary};
use mcml_exec::Parallelism;
use mcml_lint::{LintEngine, LintReport};
use mcml_netlist::{
    build_sleep_tree, map_network, sleep_tree::SleepTreeOptions, BoolNetwork, GateKind, Netlist,
    SleepPlan, SleepTree, TechmapOptions,
};
use mcml_sim::power::SleepWave;
use mcml_sim::{circuit_current, CurrentModel, EventSim, SimTrace, Stimulus};
use mcml_spice::Waveform;

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, mcml_spice::SpiceError>;

/// End-to-end flow driver with a lazily filled characterisation cache.
///
/// Characterising a cell runs several SPICE transients, so the flow
/// characterises each `(cell, style)` pair at most once and reuses the
/// result for mapping reports, event-simulation delays and power
/// templates.
pub struct DesignFlow {
    /// Electrical parameters for every generated cell.
    pub params: CellParams,
    /// Power-template model parameters.
    pub model: CurrentModel,
    /// Technology-mapper options.
    pub techmap: TechmapOptions,
    /// Worker-pool size for characterisation and trace acquisition.
    /// Defaults to the `MCML_THREADS` environment setting (all cores when
    /// unset); every result is bit-identical whatever the value.
    pub parallelism: Parallelism,
    /// Static-analysis engine gating elaboration (reconfigure its
    /// `config` to tune thresholds or waive rules).
    pub lint: LintEngine,
    lib: TimingLibrary,
}

impl DesignFlow {
    /// A flow at the given cell parameters.
    #[must_use]
    pub fn new(params: CellParams) -> Self {
        Self {
            params,
            model: CurrentModel::default(),
            techmap: TechmapOptions::default(),
            parallelism: Parallelism::from_env(),
            lint: LintEngine::with_default_rules(),
            lib: TimingLibrary::new(),
        }
    }

    /// The same flow restricted to the given worker-pool size.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Insert an externally characterised timing into the flow's library.
    pub(crate) fn lib_insert(&mut self, t: CellTiming) {
        self.lib.insert(t);
    }

    /// Characterised timing of one cell (cached).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from characterisation.
    pub fn timing(&mut self, kind: CellKind, style: LogicStyle) -> Result<CellTiming> {
        if let Some(t) = self.lib.get(kind, style) {
            return Ok(t.clone());
        }
        let t = characterize_cell(kind, style, &self.params)?;
        self.lib.insert(t.clone());
        Ok(t)
    }

    /// Ensure every cell kind used by `nl` (plus the CMOS buffer, needed
    /// for inverter timing and sleep trees) is characterised; returns the
    /// library.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn library_for(&mut self, nl: &Netlist) -> Result<&TimingLibrary> {
        let mut kinds: Vec<CellKind> = nl
            .gates()
            .iter()
            .filter_map(|g| match g.kind {
                GateKind::Lib(k) => Some(k),
                GateKind::Inv => None,
            })
            .collect();
        kinds.sort_by_key(|k| k.table_name());
        kinds.dedup();
        let mut jobs: Vec<(CellKind, LogicStyle)> =
            kinds.into_iter().map(|k| (k, nl.style)).collect();
        jobs.push((CellKind::Buffer, LogicStyle::Cmos));
        jobs.retain(|&(k, s)| self.lib.get(k, s).is_none());
        // Independent cells fan out across the worker pool (each lands in
        // the process-wide characterization cache); inserts happen back on
        // this thread in job order, so the library contents are identical
        // to the serial loop's.
        let params = &self.params;
        let timings = mcml_exec::parallel_map_items(self.parallelism, &jobs, |&(k, s)| {
            characterize_cell(k, s, params)
        });
        for t in timings {
            self.lib.insert(t?);
        }
        Ok(&self.lib)
    }

    /// Access the characterisation cache.
    #[must_use]
    pub fn library(&self) -> &TimingLibrary {
        &self.lib
    }

    /// Map a boolean network onto the library in the given style.
    #[must_use]
    pub fn map(&self, bn: &BoolNetwork, style: LogicStyle) -> Netlist {
        map_network(bn, style, &self.techmap)
    }

    /// Lint a netlist with the flow's engine (pass the sleep plan when
    /// one exists to enable the sleep-domain rules). Whatever cells the
    /// flow has characterised so far feed the dataflow leakage score;
    /// uncharacterised cells fall back to the area proxy.
    #[must_use]
    pub fn lint_netlist(&self, nl: &Netlist, plan: Option<&SleepPlan>) -> LintReport {
        self.lint.lint_netlist_with_lib(nl, plan, &self.lib)
    }

    /// Elaborate a netlist to transistors behind the lint gate: a
    /// netlist with deny-severity diagnostics never reaches SPICE.
    ///
    /// # Errors
    ///
    /// [`mcml_spice::SpiceError::InvalidCircuit`] listing the deny
    /// diagnostics when the netlist fails lint.
    pub fn elaborate(&self, nl: &Netlist) -> Result<crate::elaborate::Elaborated> {
        crate::elaborate::checked_elaborate(nl, &self.params, &self.lint)
    }

    /// Event-simulate a netlist (characterising its cells on demand).
    ///
    /// # Errors
    ///
    /// Propagates characterisation errors.
    pub fn simulate(&mut self, nl: &Netlist, stimulus: &Stimulus, t_stop: f64) -> Result<SimTrace> {
        self.library_for(nl)?;
        Ok(EventSim::new(nl, &self.lib).run(stimulus, t_stop))
    }

    /// Supply-current waveform for a simulated trace.
    ///
    /// # Errors
    ///
    /// Propagates characterisation errors.
    pub fn current(
        &mut self,
        nl: &Netlist,
        trace: &SimTrace,
        sleep: Option<&SleepWave>,
    ) -> Result<Waveform> {
        self.library_for(nl)?;
        let _span = mcml_obs::span(mcml_obs::Stage::PowerModel);
        Ok(circuit_current(nl, trace, &self.lib, sleep, &self.model))
    }

    /// Synthesise the sleep distribution tree for a PG-MCML netlist.
    ///
    /// # Errors
    ///
    /// Propagates characterisation errors (the tree uses the CMOS buffer
    /// timing).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-power-gated netlist.
    pub fn sleep_tree(&mut self, nl: &Netlist) -> Result<SleepTree> {
        assert!(
            nl.style.is_power_gated(),
            "sleep trees only exist for PG-MCML netlists"
        );
        self.timing(CellKind::Buffer, LogicStyle::Cmos)?;
        let _span = mcml_obs::span(mcml_obs::Stage::SleepTree);
        Ok(build_sleep_tree(
            nl.gate_count().max(1),
            &self.lib,
            &SleepTreeOptions::default(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_cached() {
        let mut flow = DesignFlow::new(CellParams::default());
        let t1 = flow.timing(CellKind::Buffer, LogicStyle::PgMcml).unwrap();
        let t2 = flow.timing(CellKind::Buffer, LogicStyle::PgMcml).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(flow.library().len(), 1);
    }

    #[test]
    fn map_and_simulate_small_network() {
        let mut flow = DesignFlow::new(CellParams::default());
        let mut bn = BoolNetwork::new();
        let a = bn.input("a");
        let b = bn.input("b");
        let q = bn.xor(a, b);
        bn.set_output("q", q);
        let nl = flow.map(&bn, LogicStyle::PgMcml);
        let mut st = Stimulus::new();
        st.at(0.0, "a", false)
            .at(0.0, "b", false)
            .at(1e-9, "a", true);
        let trace = flow.simulate(&nl, &st, 3e-9).unwrap();
        assert!(!trace.transitions.is_empty());
        let i = flow.current(&nl, &trace, None).unwrap();
        assert!(i.mean() > 0.0, "PG-MCML netlist draws bias current");
        let tree = flow.sleep_tree(&nl).unwrap();
        assert!(tree.buffer_count() >= 1);
    }
}
