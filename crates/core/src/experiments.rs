//! One driver per table and figure of the paper's evaluation.
//!
//! Each function regenerates the corresponding result from scratch
//! (generate → characterise → simulate → measure); the `mcml-bench`
//! binaries print them in the paper's format and `EXPERIMENTS.md` records
//! the comparison against the published numbers.

use mcml_aes::{ReducedAes, SBOX};
use mcml_cells::{
    cell_area_um2, mcml_to_cmos_ratio, CellKind, CellParams, DriveStrength, LogicStyle,
};
use mcml_char::{bias_sweep, BiasSweepPoint};
use mcml_dpa::{
    cpa_attack_par, distinguishability_margin, key_rank, CpaAccumulator, CpaResult, HammingWeight,
    TraceSet,
};
use mcml_exec::Parallelism;
use mcml_netlist::{area_report, critical_path_ps, Netlist};
use mcml_or1k::aes_prog::{run_aes_benchmark, AesBenchParams};
use mcml_sim::power::SleepWave;
use mcml_sim::{circuit_current, EventSim, Stimulus};
use mcml_spice::{Circuit, SourceWave, TranOptions, Waveform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::elaborate::checked_elaborate;
use crate::flow::{DesignFlow, Result};

// ---------------------------------------------------------------- Table 1

/// One row of Table 1: MCML vs PG-MCML cell area.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Library cell name (`BUFX1`, …).
    pub cell: String,
    /// Conventional MCML area (µm²).
    pub mcml_um2: f64,
    /// PG-MCML area (µm²).
    pub pg_um2: f64,
    /// Relative overhead of the sleep transistor.
    pub overhead: f64,
}

/// Regenerate Table 1 (area of the four showcase cells with and without
/// the sleep transistor).
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    [
        CellKind::Buffer,
        CellKind::Mux4,
        CellKind::And4,
        CellKind::DLatch,
    ]
    .iter()
    .map(|&k| {
        let mcml = cell_area_um2(k, LogicStyle::Mcml, DriveStrength::X1);
        let pg = cell_area_um2(k, LogicStyle::PgMcml, DriveStrength::X1);
        Table1Row {
            cell: k.lib_name(DriveStrength::X1),
            mcml_um2: mcml,
            pg_um2: pg,
            overhead: pg / mcml - 1.0,
        }
    })
    .collect()
}

// ---------------------------------------------------------------- Table 2

/// One row of Table 2: the characterised PG-MCML library.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Cell name as the paper prints it.
    pub cell: String,
    /// PG-MCML area (µm²).
    pub area_um2: f64,
    /// Measured propagation delay (ps, FO1).
    pub delay_ps: f64,
    /// PG-MCML / CMOS area ratio (None for cells without a CMOS
    /// equivalent in the paper's table).
    pub cmos_ratio: Option<f64>,
}

/// Regenerate Table 2: characterise all 16 PG-MCML cells.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn table2(flow: &mut DesignFlow) -> Result<Vec<Table2Row>> {
    // Warm the characterisation cache with all 16 independent cells in
    // one fan-out; the row loop below then reads memoised results. The
    // rows (and the observability totals) are identical to the serial
    // loop's — `parallel_map_items` merges in submission order and the
    // cache is single-flight.
    let params = &flow.params;
    let timings = mcml_exec::parallel_map_items(flow.parallelism, &CellKind::ALL, |&kind| {
        mcml_char::characterize_cell(kind, LogicStyle::PgMcml, params)
    });
    for t in timings {
        flow.lib_insert(t?);
    }
    let mut rows = Vec::new();
    for kind in CellKind::ALL {
        let t = flow.timing(kind, LogicStyle::PgMcml)?;
        let ratio = match kind {
            CellKind::Diff2Single | CellKind::Maj32 | CellKind::Edff => None,
            _ => Some(mcml_to_cmos_ratio(kind)),
        };
        rows.push(Table2Row {
            cell: kind.table_name().to_owned(),
            area_um2: t.area_um2,
            delay_ps: t.delay_fo1_ps,
            cmos_ratio: ratio,
        });
    }
    Ok(rows)
}

// ------------------------------------------------------------------ Fig 3

/// Regenerate Fig. 3: buffer delay and power/area–delay products vs tail
/// current.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig3(params: &CellParams, currents: &[f64]) -> Result<Vec<BiasSweepPoint>> {
    bias_sweep(params, currents)
}

// ------------------------------------------------------------------ Fig 5

/// Fig. 5 data: supply-current waveforms of the S-box ISE.
#[derive(Debug, Clone)]
pub struct Fig5Data {
    /// Sample times (s).
    pub time: Vec<f64>,
    /// Conventional-MCML current (A) — flat.
    pub i_mcml: Vec<f64>,
    /// PG-MCML current (A) — gated.
    pub i_pg: Vec<f64>,
    /// Sleep signal (1 = awake) at the same samples.
    pub sleep: Vec<f64>,
    /// Measured wake-up latency: sleep rise to 90 % of the awake plateau
    /// (s).
    pub wake_latency: f64,
}

/// Regenerate Fig. 5: one ISE activation inside a 20 ns window at
/// 400 MHz, simulated in conventional MCML and in PG-MCML.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig5(flow: &mut DesignFlow) -> Result<Fig5Data> {
    let period = 2.5e-9; // 400 MHz
    let t_stop = 20e-9;
    let ise_opts = mcml_aes::sbox_ise::SboxIseOptions::default();

    // Stimulus: free-running clock; operand word applied shortly before
    // the active edge at 14.5 ns (the paper's marked 14.421 ns activity).
    let word: u32 = 0xA5_3C_96_5A;
    let mut st = Stimulus::new();
    st.clock("clk", period / 2.0, period, 8);
    for b in 0..32 {
        st.at(0.0, &format!("x{b}"), false);
        if (word >> b) & 1 == 1 {
            st.at(13.9e-9, &format!("x{b}"), true);
        }
    }

    let awake = SleepWave::awake_windows(&[(13.4e-9, 16.6e-9)]);

    let nl_mcml = mcml_aes::build_sbox_ise(LogicStyle::Mcml, &ise_opts);
    let tr_mcml = flow.simulate(&nl_mcml, &st, t_stop)?;
    let i_mcml = flow.current(&nl_mcml, &tr_mcml, None)?;

    let nl_pg = mcml_aes::build_sbox_ise(LogicStyle::PgMcml, &ise_opts);
    let tr_pg = flow.simulate(&nl_pg, &st, t_stop)?;
    let i_pg = flow.current(&nl_pg, &tr_pg, Some(&awake))?;

    let n = 400;
    let grid: Vec<f64> = (0..n).map(|i| t_stop * i as f64 / n as f64).collect();
    let plateau = i_pg.mean_between(15.0e-9, 16.4e-9);
    let wake_latency = i_pg
        .first_crossing_after(0.9 * plateau, true, 13.4e-9)
        .map_or(f64::NAN, |t| t - 13.4e-9);

    Ok(Fig5Data {
        i_mcml: grid.iter().map(|&t| i_mcml.sample(t)).collect(),
        i_pg: grid.iter().map(|&t| i_pg.sample(t)).collect(),
        sleep: grid
            .iter()
            .map(|&t| if awake.value_at(t) { 1.0 } else { 0.0 })
            .collect(),
        time: grid,
        wake_latency,
    })
}

// ---------------------------------------------------------------- Table 3

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Logic style.
    pub style: LogicStyle,
    /// Cell count of the placed ISE macro (incl. sleep-tree buffers for
    /// PG-MCML).
    pub cells: usize,
    /// Placed area (µm²).
    pub area_um2: f64,
    /// Critical-path delay (ns).
    pub delay_ns: f64,
    /// Average power over the whole software run (W).
    pub avg_power_w: f64,
    /// ISE duty cycle of the software run.
    pub ise_duty: f64,
}

/// Regenerate Table 3: run the AES software on the OR1K model, then
/// price the S-box ISE in each style.
///
/// The average power decomposes as
/// `P_idle + n_ops · E_op / T_total`, with the idle power and the
/// per-activation energy both measured on event-simulated windows of the
/// actual netlist (clock running; PG-MCML asleep while idle).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn table3(
    flow: &mut DesignFlow,
    bench: &AesBenchParams,
    clock_hz: f64,
) -> Result<Vec<Table3Row>> {
    let run = run_aes_benchmark(bench);
    let t_total = run.trace.cycles as f64 / clock_hz;
    let n_ops = run.trace.ise_events.len();
    let duty = run.trace.ise_duty();
    let period = 1.0 / clock_hz;
    let vdd = flow.params.tech.vdd;

    let ise_opts = mcml_aes::sbox_ise::SboxIseOptions::default();
    let mut rows = Vec::new();
    for style in LogicStyle::ALL {
        let nl = mcml_aes::build_sbox_ise(style, &ise_opts);
        flow.library_for(&nl)?;
        let report = area_report(&nl);
        let (mut cells, mut area) = (report.cells, report.total_area_um2);
        if style.is_power_gated() {
            let tree = flow.sleep_tree(&nl)?;
            cells += tree.buffer_count();
            area += tree.area_um2();
        }
        let delay_ns = critical_path_ps(&nl, flow.library()) / 1000.0;

        // --- idle window: clock running, inputs constant ------------
        let window = 6.0 * period;
        let mut st_idle = Stimulus::new();
        st_idle.clock("clk", period / 2.0, period, 6);
        for b in 0..32 {
            st_idle.at(0.0, &format!("x{b}"), false);
        }
        let tr_idle = flow.simulate(&nl, &st_idle, window)?;
        let asleep = SleepWave::awake_windows(&[]);
        let sleep_idle = if style.is_power_gated() {
            Some(&asleep)
        } else {
            None
        };
        let i_idle = flow.current(&nl, &tr_idle, sleep_idle)?;
        // Skip the first cycle (X-resolution churn). The typed accessor
        // turns a degenerate current waveform into an error instead of a
        // silent zero idle power.
        let p_idle = vdd * i_idle.try_mean_between(2.0 * period, window)?;

        // --- per-activation energy, averaged over real operands -----
        // Each activation window is an independent event simulation, so
        // the windows fan across the worker pool; energies fold in event
        // order, identical to the serial loop.
        let samples: Vec<(u32, u32)> = run
            .trace
            .ise_events
            .iter()
            .take(8)
            .map(|e| (e.input, e.output))
            .collect();
        let jobs: Vec<(u32, u32)> = samples
            .iter()
            .enumerate()
            .map(|(i, ev)| {
                let prev = if i == 0 { 0u32 } else { samples[i - 1].0 };
                (prev, ev.0)
            })
            .collect();
        let lib = flow.library();
        let model = &flow.model;
        let energies: Vec<f64> =
            mcml_exec::parallel_map_items(flow.parallelism, &jobs, |&(prev, input)| {
                let mut st = Stimulus::new();
                st.clock("clk", period / 2.0, period, 6);
                for b in 0..32 {
                    st.at(0.0, &format!("x{b}"), (prev >> b) & 1 == 1);
                }
                let t_op = 3.0 * period;
                for b in 0..32 {
                    let nv = (input >> b) & 1 == 1;
                    if nv != ((prev >> b) & 1 == 1) {
                        st.at(t_op, &format!("x{b}"), nv);
                    }
                }
                let tr = EventSim::new(&nl, lib).run(&st, window);
                let wake = SleepWave::awake_windows(&[(t_op - 1.0e-9, t_op + 1.5 * period)]);
                let sleep = if style.is_power_gated() {
                    Some(&wake)
                } else {
                    None
                };
                let i_op = circuit_current(&nl, &tr, lib, sleep, model);
                let e_window = vdd * i_op.integral_between(2.0 * period, window);
                let e_idle = p_idle * (window - 2.0 * period);
                (e_window - e_idle).max(0.0)
            });
        let e_op_sum: f64 = energies.iter().sum();
        let e_op = if samples.is_empty() {
            0.0
        } else {
            e_op_sum / samples.len() as f64
        };

        let avg_power = p_idle + n_ops as f64 * e_op / t_total;
        rows.push(Table3Row {
            style,
            cells,
            area_um2: area,
            delay_ns,
            avg_power_w: avg_power,
            ise_duty: duty,
        });
    }
    Ok(rows)
}

// ------------------------------------------------------------------ Fig 6

/// Verdict of a CPA attack on one implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Attacked style.
    pub style: LogicStyle,
    /// Rank of the correct key (0 = attack succeeded).
    pub rank: usize,
    /// Correct-key peak divided by best wrong-key peak (>1 ⇒
    /// distinguishable).
    pub margin: f64,
    /// Correct-key peak correlation.
    pub peak_correct: f64,
    /// Best wrong-key peak correlation.
    pub best_wrong: f64,
    /// Traces used.
    pub traces: usize,
}

fn verdict(style: LogicStyle, key: usize, r: &CpaResult, traces: usize) -> Fig6Row {
    let rank = key_rank(&r.peak, key);
    let margin = distinguishability_margin(&r.peak, key);
    let best_wrong = r
        .peak
        .iter()
        .enumerate()
        .filter(|&(g, _)| g != key)
        .map(|(_, &p)| p)
        .fold(0.0f64, f64::max);
    Fig6Row {
        style,
        rank,
        margin,
        peak_correct: r.peak[key],
        best_wrong,
        traces,
    }
}

/// Gaussian noise via Box–Muller from the uniform RNG.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Independent per-trace noise stream: a `SplitMix64` finalizer over
/// `(seed, index)` seeds each trace's own `StdRng`, so trace `i` draws the
/// same noise whether acquisitions run serially or fanned across threads.
fn trace_rng(seed: u64, index: u64) -> StdRng {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index.wrapping_mul(0xd1b5_4a32_d192_ed03));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Fig. 6, current-template tier: full 8-bit reduced AES attacked with
/// CPA over all 256 plaintexts at a fixed key, per style.
///
/// `noise_rel` is the measurement-noise sigma relative to the mean
/// supply current (real acquisitions are never noiseless; without it a
/// deterministic simulator would make *any* nonzero residual leak
/// perfectly correlatable).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_template(
    flow: &mut DesignFlow,
    key: u8,
    noise_rel: f64,
    seed: u64,
    styles: &[LogicStyle],
) -> Result<Vec<(Fig6Row, CpaResult)>> {
    let mut out = Vec::new();
    for &style in styles {
        let ts = acquire_template_traces(flow, style, key, noise_rel, seed)?;
        let model = HammingWeight::new(|x| SBOX[x as usize], 8);
        let r = cpa_attack_par(&ts, &model, flow.parallelism);
        out.push((verdict(style, key as usize, &r, ts.n_traces()), r));
    }
    Ok(out)
}

/// Acquire the tier-2 trace set for one style: the registered design —
/// every simulated pair starts from reset, applies `(p, k)`, and captures
/// `S(p ⊕ k)` on the clock edge — the paper's "instantaneous current of
/// all possible plaintext–key pairs" acquisition, over all 256
/// plaintexts, with `noise_rel` relative measurement noise.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn acquire_template_traces(
    flow: &mut DesignFlow,
    style: LogicStyle,
    key: u8,
    noise_rel: f64,
    seed: u64,
) -> Result<TraceSet> {
    let nl = ReducedAes::new(8).build_registered_netlist(style);
    flow.library_for(&nl)?;
    let _span = mcml_obs::span(mcml_obs::Stage::TraceAcquisition);
    let lib = flow.library();
    let model = &flow.model;
    let t_edge = 2.2e-9;
    let n_samples = 60;
    let inputs: Vec<u8> = (0..=255u8).collect();
    // Per-plaintext acquisitions are independent (the library is fully
    // characterised above, and each trace derives its own noise stream),
    // so they fan across the worker pool; `collect_par` pushes rows in
    // plaintext order, byte-identical to the serial loop.
    Ok(TraceSet::collect_par(
        n_samples,
        &inputs,
        flow.parallelism,
        |i, p| {
            let mut rng = trace_rng(seed, i as u64);
            let mut st = Stimulus::new();
            st.at(0.0, "clk", false);
            st.at(t_edge, "clk", true);
            for b in 0..8 {
                st.at(0.0, &format!("k{b}"), (key >> b) & 1 == 1);
                st.at(0.0, &format!("p{b}"), (p >> b) & 1 == 1);
            }
            let trace = EventSim::new(&nl, lib).run(&st, 3.6e-9);
            let iw = circuit_current(&nl, &trace, lib, None, model);
            let mean = iw.mean().abs().max(1e-12);
            let w = iw.resample(t_edge - 0.1e-9, t_edge + 1.0e-9, n_samples);
            w.values()
                .iter()
                .map(|&v| v + gauss(&mut rng) * noise_rel * mean)
                .collect()
        },
    ))
}

/// Measurements-to-disclosure for one style: the smallest trace count at
/// which CPA stably ranks the correct key first (`None` when the attack
/// never stabilises — the expected verdict for the MCML styles).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_mtd(
    flow: &mut DesignFlow,
    style: LogicStyle,
    key: u8,
    noise_rel: f64,
    seed: u64,
    ladder: &[usize],
) -> Result<Option<usize>> {
    let ts = acquire_template_traces(flow, style, key, noise_rel, seed)?;
    let model = HammingWeight::new(|x| SBOX[x as usize], 8);
    Ok(mcml_dpa::measurements_to_disclosure(
        &ts,
        &model,
        usize::from(key),
        ladder,
    ))
}

/// Fig. 6, transistor tier: 4-bit reduced AES simulated in full SPICE
/// for every plaintext at a fixed 4-bit key. This is the genuinely
/// transistor-level leg of the security claim; the paper's 1 µA / 1 ps
/// acquisition translates to the simulator's native resolution.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_transistor(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    plaintexts: &[u8],
) -> Result<(Fig6Row, CpaResult)> {
    fig6_transistor_par(params, key, style, plaintexts, Parallelism::from_env())
}

/// [`fig6_transistor`] with an explicit thread-count knob: each plaintext's
/// full SPICE transient is an independent work item; traces assemble in
/// plaintext order, so the result is identical for any thread count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_transistor_par(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    plaintexts: &[u8],
    par: Parallelism,
) -> Result<(Fig6Row, CpaResult)> {
    let reduced = ReducedAes::new(4);
    // The registered design, like the paper's synthesised block: the
    // plaintext/key pair settles combinationally, then the output
    // register captures S(p ⊕ k) on the clock edge — the moment whose
    // supply charge carries the Hamming-weight leak (in CMOS).
    let nl: Netlist = reduced.build_registered_netlist(style);
    let el = checked_elaborate(&nl, params, &mcml_lint::LintEngine::with_default_rules())?;
    let (v_lo, v_hi) = match style {
        LogicStyle::Cmos => (0.0, params.tech.vdd),
        _ => (params.v_low(), params.tech.vdd),
    };
    // Every plaintext gets its own clone of the elaborated circuit and a
    // full transistor-level transient — the expensive, perfectly
    // independent work items of this tier.
    let _span = mcml_obs::span(mcml_obs::Stage::SpiceTier);
    let tran_opts = fig6_tran_options();
    let rows = mcml_exec::parallel_map_items(par, plaintexts, |&p| {
        fig6_plaintext_trace(&el, v_lo, v_hi, key, p, &tran_opts)
    });
    let mut ts = TraceSet::new(FIG6_N_SAMPLES);
    for (&p, row) in plaintexts.iter().zip(rows) {
        ts.push(p, &row?);
    }
    let model = HammingWeight::new(|x| reduced.sbox(x), 4);
    let r = cpa_attack_par(&ts, &model, par);
    Ok((verdict(style, usize::from(key), &r, ts.n_traces()), r))
}

/// Acquisition window and sampling of the fig. 6 transistor tier.
const FIG6_T_EDGE: f64 = 2.0e-9;
const FIG6_T_STOP: f64 = 3.6e-9;
const FIG6_N_SAMPLES: usize = 60;

/// Adaptive-stepping knobs of the fig. 6 transient (see
/// [`fig6_plaintext_trace`]): tight enough that the golden supply-trace
/// samples stay within their 1e-4 relative pin, loose enough that the
/// quiet pre-edge window collapses into a handful of steps.
const FIG6_RELTOL: f64 = 1e-6;
const FIG6_H_MAX: f64 = 100e-12;
/// LTE absolute floor (V). Must sit clearly above the Newton `vtol`
/// (1 µV): at the default 1 µV floor the divided differences see pure
/// solver noise in the electrically static windows, the error ratio
/// hovers near 1, and the controller never opens the step up.
const FIG6_ABSTOL: f64 = 5e-6;
/// Quiescent-MOS bypass tolerance (V) for the fig. 6 transient. Most of
/// the reduced-AES testbench is electrically idle at any given step (one
/// byte toggles per clock edge), so the bypass removes the bulk of the
/// device-model calls. 10 µV is an order of magnitude above the Newton
/// `vtol` (so converged quiescent nodes actually qualify) while the
/// linear extrapolation keeps the waveform perturbation second order in
/// the tolerance — orders of magnitude below the golden trace's 1e-4
/// relative pin.
const FIG6_BYPASS_VTOL: f64 = 10e-6;

/// The transient options the fig. 6 transistor tier runs with: the
/// 10 ps recording grid of the golden trace plus *grid-aligned*
/// LTE-controlled adaptive stepping. The aligned flavour leaps
/// multi-cell steps through the electrically quiet windows but falls
/// back to bitwise fixed-step behaviour across the clock edge, which is
/// what keeps the golden supply-trace samples inside their 1e-4 pin —
/// the free-stepping flavour discretises the stiff edge differently and
/// drifts by the fixed reference's own local truncation error there.
/// The quiescent-MOS bypass is enabled on top (SPICE3's `bypass`): idle
/// devices reuse their cached linearization instead of re-running the
/// model, with `MCML_SPICE_BYPASS=off` as the hard-off escape hatch.
#[must_use]
pub fn fig6_tran_options() -> TranOptions {
    let mut opts = TranOptions::new(FIG6_T_STOP, 10e-12)
        .adaptive_grid_aligned(FIG6_RELTOL, FIG6_H_MAX)
        .with_bypass(FIG6_BYPASS_VTOL);
    if let Some(lte) = opts.lte.as_mut() {
        lte.abstol = FIG6_ABSTOL;
    }
    opts
}

/// The driven fig. 6 lane circuit for one plaintext: constant
/// plaintext/key rails plus the single clock edge, ready for a transient
/// run. Every plaintext produces the **same topology** — element order,
/// nodes and resistor values are identical, only DC source levels differ
/// — which is exactly the sharing contract of
/// [`mcml_spice::ensemble_transient`], so a block of these circuits can
/// march lockstep over one stamp plan.
fn fig6_lane_circuit(
    el: &crate::elaborate::Elaborated,
    v_lo: f64,
    v_hi: f64,
    key: u8,
    p: u8,
) -> Circuit {
    let mut ckt: Circuit = el.circuit.clone();
    let drive_const = |ckt: &mut Circuit, name: &str, v: bool| {
        let (np, nn) = el.inputs[name];
        let (lp, ln) = if v { (v_hi, v_lo) } else { (v_lo, v_hi) };
        ckt.vsource(&format!("V{name}"), np, Circuit::GND, SourceWave::dc(lp));
        if let Some(nn) = nn {
            ckt.vsource(&format!("V{name}n"), nn, Circuit::GND, SourceWave::dc(ln));
        }
    };
    for b in 0..4u8 {
        drive_const(&mut ckt, &format!("k{b}"), (key >> b) & 1 == 1);
        drive_const(&mut ckt, &format!("p{b}"), (p >> b) & 1 == 1);
    }
    // Clock: one rising edge after the combinational logic settles.
    let (cp, cn) = el.inputs["clk"];
    let edge = |a: f64, b: f64| {
        SourceWave::Pwl(vec![(0.0, a), (FIG6_T_EDGE, a), (FIG6_T_EDGE + 50e-12, b)])
    };
    ckt.vsource("VCLK", cp, Circuit::GND, edge(v_lo, v_hi));
    if let Some(cn) = cn {
        ckt.vsource("VCLKn", cn, Circuit::GND, edge(v_hi, v_lo));
    }
    ckt
}

/// Resample one lane's supply current over the fig. 6 capture window.
fn fig6_extract_supply(
    res: &mcml_spice::TranResult,
    el: &crate::elaborate::Elaborated,
) -> Result<Vec<f64>> {
    let i: Waveform =
        res.supply_current(el.vdd_src)
            .ok_or(mcml_spice::SpiceError::EmptyWaveform {
                op: "supply current",
                len: 0,
            })?;
    let w = i.try_resample(FIG6_T_EDGE - 0.1e-9, FIG6_T_STOP - 0.1e-9, FIG6_N_SAMPLES)?;
    Ok(w.values().to_vec())
}

/// One plaintext's supply-current trace of the fig. 6 transistor tier:
/// drive the registered reduced-AES design with `(key, p)`, fire the
/// clock edge, run the full transient, and resample the Vdd current over
/// the capture window.
fn fig6_plaintext_trace(
    el: &crate::elaborate::Elaborated,
    v_lo: f64,
    v_hi: f64,
    key: u8,
    p: u8,
    tran_opts: &TranOptions,
) -> Result<Vec<f64>> {
    let ckt = fig6_lane_circuit(el, v_lo, v_hi, key, p);
    let res = ckt.transient(tran_opts)?;
    fig6_extract_supply(&res, el)
}

/// The raw supply-current trace of a single fig. 6 plaintext — the
/// golden-waveform regression hook: solver changes must keep these
/// samples inside the committed tolerances.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_supply_trace(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    plaintext: u8,
) -> Result<Vec<f64>> {
    let nl: Netlist = ReducedAes::new(4).build_registered_netlist(style);
    let el = checked_elaborate(&nl, params, &mcml_lint::LintEngine::with_default_rules())?;
    let (v_lo, v_hi) = match style {
        LogicStyle::Cmos => (0.0, params.tech.vdd),
        _ => (params.v_low(), params.tech.vdd),
    };
    fig6_plaintext_trace(&el, v_lo, v_hi, key, plaintext, &fig6_tran_options())
}

/// [`fig6_supply_trace`] with an explicit stepping policy — the hook the
/// adaptive-vs-fixed equivalence tests and the perf harness use to
/// compare the two paths on the real fig. 6 circuit.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_supply_trace_with(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    plaintext: u8,
    tran_opts: &TranOptions,
) -> Result<Vec<f64>> {
    let nl: Netlist = ReducedAes::new(4).build_registered_netlist(style);
    let el = checked_elaborate(&nl, params, &mcml_lint::LintEngine::with_default_rules())?;
    let (v_lo, v_hi) = match style {
        LogicStyle::Cmos => (0.0, params.tech.vdd),
        _ => (params.v_low(), params.tech.vdd),
    };
    fig6_plaintext_trace(&el, v_lo, v_hi, key, plaintext, tran_opts)
}

/// Quiescent-MOS bypass tolerance (V) of the `aes_tran` partition tier —
/// same rationale as [`FIG6_BYPASS_VTOL`].
const AES_TRAN_BYPASS_VTOL: f64 = 10e-6;

/// The transient options of the `aes_tran` multi-cell partition tier:
/// the fig. 6 acquisition window on a plain 10 ps **fixed** grid (the
/// partitioned scheduler is fixed-grid only — grid-aligned LTE stepping
/// would silently fall back to the monolithic path) plus the
/// quiescent-MOS bypass. `partition` toggles the block scheduler; off
/// gives the monolithic baseline the perf gate compares against.
#[must_use]
pub fn aes_tran_options(partition: bool) -> TranOptions {
    let opts = TranOptions::new(FIG6_T_STOP, 10e-12).with_bypass(AES_TRAN_BYPASS_VTOL);
    if partition {
        opts.with_partitioning()
    } else {
        opts
    }
}

/// Cell parameters of the `aes_tran` partition tier: the defaults with
/// the gate-overlap parasitics off. The drain–gate coupling capacitors
/// bridge every stage bidirectionally, which collapses the whole design
/// into a single solve block; without them the MOS gate is input-only
/// and the reduced-AES netlist decomposes into one block per logic
/// stage.
#[must_use]
pub fn aes_tran_params() -> CellParams {
    CellParams {
        with_parasitics: false,
        ..CellParams::default()
    }
}

/// One plaintext's supply-current trace of the `aes_tran` partition
/// tier: the **combinational** reduced-AES S-box driven by a plaintext
/// edge at the fig. 6 clock instant, resampled over the same capture
/// window.
///
/// Combinational rather than registered on purpose: with the tier's
/// parasitics off the circuit carries no capacitance, so a latch's hold
/// state would be pinned only by Newton seeding from the previous step
/// — a reordered (partitioned) solve can then legitimately resolve a
/// bistable node onto the other branch. The S-box DAG has a unique
/// solution at every step, which makes monolithic-vs-partitioned parity
/// a well-posed contract.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn aes_tran_trace(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    plaintext: u8,
    tran_opts: &TranOptions,
) -> Result<Vec<f64>> {
    Ok(aes_tran_tier(params, key, style, &[plaintext], tran_opts)?.remove(0))
}

/// The whole `aes_tran` benchmark tier: one elaboration of the
/// combinational reduced-AES S-box, then one [`aes_tran_trace`]-shaped
/// transient per plaintext. Elaboration (netlist mapping + lint) is
/// hoisted out of the per-plaintext loop so the tier's wall clock
/// measures solver work, not front-end work repeated per trace.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn aes_tran_tier(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    plaintexts: &[u8],
    tran_opts: &TranOptions,
) -> Result<Vec<Vec<f64>>> {
    let nl: Netlist = ReducedAes::new(4).build_netlist(style);
    let el = checked_elaborate(&nl, params, &mcml_lint::LintEngine::with_default_rules())?;
    let (v_lo, v_hi) = match style {
        LogicStyle::Cmos => (0.0, params.tech.vdd),
        _ => (params.v_low(), params.tech.vdd),
    };
    let edge = |a: f64, b: f64| {
        SourceWave::Pwl(vec![(0.0, a), (FIG6_T_EDGE, a), (FIG6_T_EDGE + 50e-12, b)])
    };
    plaintexts
        .iter()
        .map(|&plaintext| {
            let mut ckt: Circuit = el.circuit.clone();
            let mut drive = |name: &str, bit: bool, switches: bool| {
                let (np, nn) = el.inputs[name];
                let (lp, ln) = if bit { (v_hi, v_lo) } else { (v_lo, v_hi) };
                let (wp, wn) = if switches && bit {
                    // This bit rises at the edge; its complement falls.
                    (edge(v_lo, v_hi), edge(v_hi, v_lo))
                } else {
                    (SourceWave::dc(lp), SourceWave::dc(ln))
                };
                ckt.vsource(&format!("V{name}"), np, Circuit::GND, wp);
                if let Some(nn) = nn {
                    ckt.vsource(&format!("V{name}n"), nn, Circuit::GND, wn);
                }
            };
            for b in 0..4u8 {
                drive(&format!("k{b}"), (key >> b) & 1 == 1, false);
                // Plaintext bits launch from all-zeros at the edge, so
                // the data-dependent switching activity lands inside the
                // capture window exactly like the registered fig. 6
                // tier's clock edge.
                drive(&format!("p{b}"), (plaintext >> b) & 1 == 1, true);
            }
            let res = ckt.transient(tran_opts)?;
            fig6_extract_supply(&res, &el)
        })
        .collect()
}

/// [`fig6_transistor_par`]'s batched sibling: plaintexts are chunked into
/// `lanes`-wide blocks, each block runs as **one ensemble transient**
/// over a shared stamp plan and symbolic LU
/// ([`mcml_spice::ensemble_transient`]), blocks fan across the worker
/// pool, and completed lanes stream — in plaintext order — into the
/// online CPA accumulator. The full trace matrix is never materialised:
/// peak memory is one block of lane states plus the
/// `O(guesses × samples)` accumulator, regardless of how many plaintexts
/// the campaign sweeps.
///
/// Verdict contract: the streamed accumulator folds traces in the same
/// plaintext order as [`fig6_transistor_par`] pushes them, so reruns with
/// the same arguments are bit-identical, and verdicts (key rank, margin)
/// match the trace-per-task path — the ensemble lanes and the scalar
/// transients agree to solver precision, far inside the attack's
/// distinguishability margins (the regression tests pin both).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_transistor_ensemble(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    plaintexts: &[u8],
    lanes: usize,
    par: Parallelism,
) -> Result<(Fig6Row, CpaResult)> {
    let reduced = ReducedAes::new(4);
    let nl: Netlist = reduced.build_registered_netlist(style);
    let el = checked_elaborate(&nl, params, &mcml_lint::LintEngine::with_default_rules())?;
    let (v_lo, v_hi) = match style {
        LogicStyle::Cmos => (0.0, params.tech.vdd),
        _ => (params.v_low(), params.tech.vdd),
    };
    let _span = mcml_obs::span(mcml_obs::Stage::SpiceTier);
    let tran_opts = fig6_tran_options()
        .ensemble(lanes.max(1))
        .with_jacobian_reuse();
    let blocks: Vec<&[u8]> = plaintexts.chunks(tran_opts.ensemble_lanes).collect();
    let el_ref = &el;
    let opts_ref = &tran_opts;
    let acc = CpaAccumulator::new(HammingWeight::new(|x| reduced.sbox(x), 4), FIG6_N_SAMPLES);
    let (acc, first_err) = mcml_exec::parallel_fold_ordered(
        par,
        blocks.len(),
        (acc, None),
        |b| -> Result<Vec<Vec<f64>>> {
            let block = blocks[b];
            let ckts: Vec<Circuit> = block
                .iter()
                .map(|&p| fig6_lane_circuit(el_ref, v_lo, v_hi, key, p))
                .collect();
            let results = mcml_spice::ensemble_transient(&ckts, opts_ref)?;
            results
                .iter()
                .map(|r| fig6_extract_supply(r, el_ref))
                .collect()
        },
        |(acc, first_err), b, rows| match rows {
            Ok(rows) => {
                for (&p, row) in blocks[b].iter().zip(&rows) {
                    mcml_obs::incr(mcml_obs::Counter::TracesAcquired);
                    acc.push(p, row);
                }
            }
            Err(e) => {
                if first_err.is_none() {
                    *first_err = Some(e);
                }
            }
        },
    );
    if let Some(e) = first_err {
        return Err(e);
    }
    let r = acc.finish();
    Ok((verdict(style, usize::from(key), &r, plaintexts.len()), r))
}

/// The 16 distinct base supply-current waveforms of the 4-bit fig. 6
/// testbench (one per plaintext nibble at the fixed key) — the complete
/// deterministic content of the transistor tier, acquired either lane by
/// lane (`lanes <= 1`, the scalar reference) or as ensemble blocks.
///
/// A 4-bit design has only 16 distinct stimuli and the simulator is
/// deterministic, so *any* N-trace campaign factorises into these 16
/// waveforms plus per-trace measurement noise; see [`cpa_campaign`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig6_base_waveforms(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    lanes: usize,
    par: Parallelism,
) -> Result<Vec<Vec<f64>>> {
    let nl: Netlist = ReducedAes::new(4).build_registered_netlist(style);
    let el = checked_elaborate(&nl, params, &mcml_lint::LintEngine::with_default_rules())?;
    let (v_lo, v_hi) = match style {
        LogicStyle::Cmos => (0.0, params.tech.vdd),
        _ => (params.v_low(), params.tech.vdd),
    };
    let _span = mcml_obs::span(mcml_obs::Stage::SpiceTier);
    let plaintexts: Vec<u8> = (0..16u8).collect();
    if lanes <= 1 {
        let tran_opts = fig6_tran_options();
        let rows = mcml_exec::parallel_map_items(par, &plaintexts, |&p| {
            fig6_plaintext_trace(&el, v_lo, v_hi, key, p, &tran_opts)
        });
        return rows.into_iter().collect();
    }
    let tran_opts = fig6_tran_options().ensemble(lanes).with_jacobian_reuse();
    let blocks: Vec<&[u8]> = plaintexts.chunks(tran_opts.ensemble_lanes).collect();
    let el_ref = &el;
    let block_rows =
        mcml_exec::parallel_map_items(par, &blocks, |block| -> Result<Vec<Vec<f64>>> {
            let ckts: Vec<Circuit> = block
                .iter()
                .map(|&p| fig6_lane_circuit(el_ref, v_lo, v_hi, key, p))
                .collect();
            let results = mcml_spice::ensemble_transient(&ckts, &tran_opts)?;
            results
                .iter()
                .map(|r| fig6_extract_supply(r, el_ref))
                .collect()
        });
    let mut rows = Vec::with_capacity(16);
    for block in block_rows {
        rows.extend(block?);
    }
    Ok(rows)
}

/// Outcome of a streaming CPA campaign ([`cpa_campaign`]).
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Attack verdict (key rank, margin, peaks).
    pub verdict: Fig6Row,
    /// Full correlation curves.
    pub result: CpaResult,
}

/// A noisy N-trace CPA campaign against the fig. 6 transistor tier,
/// streaming every trace into the online accumulator — memory stays
/// `O(lanes × state + guesses × samples)` whether N is 10³ or 10⁵.
///
/// The 16 distinct base waveforms are simulated once (as ensemble blocks
/// when `lanes > 1`, the scalar path when `lanes <= 1`); each of the N
/// acquisitions then draws a uniform plaintext nibble and additive
/// Gaussian measurement noise (`noise_rel` × the base waveform's mean
/// |current|) from its own `(seed, index)`-derived stream, exactly the
/// noise model of the template tier. Trace `i`'s plaintext and noise
/// depend only on `(seed, i)`, and the accumulator folds in index order,
/// so two runs with the same arguments are **bit-identical**, and runs
/// that differ only in `lanes` reach identical verdicts (the base
/// waveforms agree to solver precision).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics when `n_traces < 2` (nothing to correlate).
#[allow(clippy::too_many_arguments)] // campaign knobs mirror the CLI flags one-to-one
pub fn cpa_campaign(
    params: &CellParams,
    key: u8,
    style: LogicStyle,
    n_traces: usize,
    noise_rel: f64,
    seed: u64,
    lanes: usize,
    par: Parallelism,
) -> Result<CampaignOutcome> {
    assert!(n_traces >= 2, "campaign needs at least two traces");
    let reduced = ReducedAes::new(4);
    let bases = fig6_base_waveforms(params, key, style, lanes, par)?;
    let means: Vec<f64> = bases
        .iter()
        .map(|b| (b.iter().map(|v| v.abs()).sum::<f64>() / b.len() as f64).max(1e-12))
        .collect();

    let acq_span = mcml_obs::span(mcml_obs::Stage::TraceAcquisition);
    let mut acc = CpaAccumulator::new(HammingWeight::new(|x| reduced.sbox(x), 4), FIG6_N_SAMPLES);
    let mut buf = vec![0.0f64; FIG6_N_SAMPLES];
    for i in 0..n_traces {
        let mut rng = trace_rng(seed, i as u64);
        let p = rng.gen::<u8>() & 0x0f;
        let base = &bases[usize::from(p)];
        for (dst, &v) in buf.iter_mut().zip(base) {
            *dst = v + gauss(&mut rng) * noise_rel * means[usize::from(p)];
        }
        mcml_obs::incr(mcml_obs::Counter::TracesAcquired);
        acc.push(p, &buf);
    }
    drop(acq_span);
    let r = acc.finish();
    Ok(CampaignOutcome {
        verdict: verdict(style, usize::from(key), &r, n_traces),
        result: r,
    })
}

/// TVLA extension (beyond the paper): fixed-vs-random Welch t-test on the
/// registered reduced AES in one style — a model-free leakage assessment
/// complementing the CPA verdicts.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn tvla_assessment(
    flow: &mut DesignFlow,
    style: LogicStyle,
    key: u8,
    n_per_population: usize,
    noise_rel: f64,
    seed: u64,
) -> Result<mcml_dpa::TvlaResult> {
    let nl = ReducedAes::new(8).build_registered_netlist(style);
    flow.library_for(&nl)?;
    let lib = flow.library();
    let model = &flow.model;
    let t_edge = 2.2e-9;
    let n_samples = 60;
    // Worst-case fixed class: the plaintext whose S-box output Hamming
    // weight is furthest from the random-class mean (4), maximising the
    // detectable first-order contrast.
    let fixed_p = (0..=255u8)
        .max_by_key(|&p| {
            let hw = SBOX[usize::from(p ^ key)].count_ones() as i32;
            (hw - 4).abs()
        })
        .expect("non-empty scan");
    // Each acquisition derives its own RNG from (seed, index): the random
    // class's plaintext and every trace's noise depend only on the index,
    // so the populations are identical however the work is scheduled.
    let acq_span = mcml_obs::span(mcml_obs::Stage::TraceAcquisition);
    let rows: Vec<(u8, Vec<f64>)> =
        mcml_exec::parallel_map(flow.parallelism, 2 * n_per_population, |i| {
            let mut rng = trace_rng(seed, i as u64);
            let is_fixed = i % 2 == 0;
            let p = if is_fixed { fixed_p } else { rng.gen::<u8>() };
            let mut st = Stimulus::new();
            st.at(0.0, "clk", false);
            st.at(t_edge, "clk", true);
            for b in 0..8 {
                st.at(0.0, &format!("k{b}"), (key >> b) & 1 == 1);
                st.at(0.0, &format!("p{b}"), (p >> b) & 1 == 1);
            }
            let trace = EventSim::new(&nl, lib).run(&st, 3.6e-9);
            let i_wave = circuit_current(&nl, &trace, lib, None, model);
            let mean = i_wave.mean().abs().max(1e-12);
            let w = i_wave.resample(t_edge - 0.1e-9, t_edge + 1.0e-9, n_samples);
            let noisy: Vec<f64> = w
                .values()
                .iter()
                .map(|&v| v + gauss(&mut rng) * noise_rel * mean)
                .collect();
            (p, noisy)
        });
    let mut fixed = TraceSet::new(n_samples);
    let mut random = TraceSet::new(n_samples);
    for (i, (p, noisy)) in rows.iter().enumerate() {
        if i % 2 == 0 {
            fixed.push(*p, noisy);
        } else {
            random.push(*p, noisy);
        }
    }
    drop(acq_span);
    Ok(mcml_dpa::welch_t_test_par(
        &fixed,
        &random,
        flow.parallelism,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_overhead_band() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.overhead > 0.04 && r.overhead < 0.08,
                "{}: {}",
                r.cell,
                r.overhead
            );
            assert!(r.pg_um2 > r.mcml_um2);
        }
        assert_eq!(rows[0].cell, "BUFX1");
    }

    /// The batched acquisition path is a drop-in replacement for the
    /// trace-per-task tier: same plaintexts, same key, same attack —
    /// the verdict (key rank) must match and the correlation peaks must
    /// agree to solver precision. CMOS is the style with a *real* leak,
    /// so the correlations measure signal that dwarfs the µA-level
    /// acquisition drift and the comparison is tight; on PG-MCML a
    /// 6-trace Pearson correlates solver residue and any per-guess
    /// comparison would be noise against noise. Six plaintexts in
    /// 3-wide lanes keeps the ensemble on the interesting path (two
    /// multi-lane blocks) while staying cheap enough for the tier-1
    /// suite.
    #[test]
    fn fig6_ensemble_verdict_matches_trace_per_task() {
        let params = CellParams::default();
        let plaintexts: Vec<u8> = (0..6).collect();
        let (serial_row, serial_r) = fig6_transistor_par(
            &params,
            0xb,
            LogicStyle::Cmos,
            &plaintexts,
            Parallelism::Serial,
        )
        .unwrap();
        let (ens_row, ens_r) = fig6_transistor_ensemble(
            &params,
            0xb,
            LogicStyle::Cmos,
            &plaintexts,
            3,
            Parallelism::Serial,
        )
        .unwrap();
        assert_eq!(ens_row.rank, serial_row.rank, "verdicts must agree");
        assert_eq!(ens_row.traces, serial_row.traces);
        for (g, (e, s)) in ens_r.peak.iter().zip(&serial_r.peak).enumerate() {
            assert!(
                (e - s).abs() <= 1e-3 + 1e-3 * s.abs(),
                "guess {g}: ensemble peak {e} vs serial {s}"
            );
        }
    }

    /// The streaming campaign is deterministic: identical arguments give
    /// bit-identical correlations, and the lane count is a pure
    /// performance knob — a scalar-acquired and a 16-lane-acquired
    /// campaign over the same seed reach the same verdict.
    #[test]
    fn cpa_campaign_deterministic_and_lane_invariant() {
        let params = CellParams::default();
        let run = |lanes| {
            cpa_campaign(
                &params,
                0xb,
                LogicStyle::PgMcml,
                1000,
                0.05,
                7,
                lanes,
                Parallelism::Serial,
            )
            .unwrap()
        };
        let scalar = run(1);
        let batched = run(16);
        let batched_again = run(16);
        // Same arguments → bit-identical, down to every correlation.
        assert_eq!(batched.verdict, batched_again.verdict);
        assert_eq!(batched.result.peak, batched_again.result.peak);
        assert_eq!(batched.result.corr, batched_again.result.corr);
        // Lane count changes only the acquisition schedule.
        assert_eq!(batched.verdict.rank, scalar.verdict.rank);
        assert_eq!(batched.verdict.traces, scalar.verdict.traces);
        assert!(
            (batched.verdict.margin - scalar.verdict.margin).abs()
                <= 1e-2 * scalar.verdict.margin.abs().max(1.0),
            "margins diverge: {} vs {}",
            batched.verdict.margin,
            scalar.verdict.margin
        );
        // And the paper's claim holds at campaign scale: PG-MCML stays
        // indistinguishable.
        let v = &batched.verdict;
        assert!(
            v.rank > 0 || v.margin < 1.05,
            "PG-MCML must resist the campaign: {v:?}"
        );
    }

    #[test]
    fn fig6_template_cmos_breaks_mcml_resists() {
        let mut flow = DesignFlow::new(CellParams::default());
        let key = 0x5a;
        let rows = fig6_template(
            &mut flow,
            key,
            0.01,
            7,
            &[LogicStyle::Cmos, LogicStyle::PgMcml],
        )
        .unwrap();
        let cmos = &rows[0].0;
        let pg = &rows[1].0;
        assert_eq!(cmos.style, LogicStyle::Cmos);
        assert_eq!(cmos.rank, 0, "CPA must break CMOS: {cmos:?}");
        assert!(cmos.margin > 1.1, "CMOS margin {:?}", cmos.margin);
        assert!(
            pg.rank > 0 || pg.margin < 1.05,
            "PG-MCML must not be distinguishable: {pg:?}"
        );
    }
}
