//! Property test: characterization is panic-free on arbitrary — including
//! deliberately pathological — cell parameters.
//!
//! The optimizer feeds machine-generated sizings straight into
//! `characterize_cell` and `bias_sweep_par`; a degenerate candidate must
//! come back as a typed `Err`, never a panic. Each generated parameter
//! independently draws from a mix of plausible values and poison values
//! (zero, negative, NaN, infinity, absurd magnitudes).

use proptest::prelude::*;

use mcml_cells::{CellKind, CellParams, LogicStyle};
use mcml_char::{bias_sweep_par, characterize_cell_uncached, Testbench};
use mcml_exec::Parallelism;

/// A strictly positive, sane-magnitude value or one of the poison cases.
fn hostile(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
    prop_oneof![
        (lo..hi).boxed(),
        Just(0.0).boxed(),
        Just(-1.0e-6).boxed(),
        Just(f64::NAN).boxed(),
        Just(f64::INFINITY).boxed(),
        Just(-f64::INFINITY).boxed(),
        Just(1.0e3).boxed(),
        Just(f64::MIN_POSITIVE).boxed(),
    ]
}

fn hostile_params() -> impl Strategy<Value = CellParams> {
    (
        hostile(1.0e-6, 4.0e-4), // iss
        hostile(0.05, 0.9),      // vswing
        hostile(1.0e-7, 8.0e-6), // w_pair
        hostile(1.0e-7, 8.0e-6), // w_tail
        hostile(1.0e-7, 8.0e-6), // w_load
        hostile(6.0e-8, 5.0e-7), // l
    )
        .prop_map(|(iss, vswing, w_pair, w_tail, w_load, l)| CellParams {
            iss,
            vswing,
            w_pair,
            w_tail,
            w_sleep: w_tail,
            w_load,
            l,
            ..CellParams::new()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Testbench::run` and the full characterization return `Ok` or a
    /// typed `Err` for every generated sizing — no panics, no NaN smuggled
    /// into an `Ok`.
    #[test]
    fn characterization_never_panics(params in hostile_params()) {
        let tb = Testbench::new(CellKind::Buffer, LogicStyle::PgMcml, &params);
        let _ = tb.run(2.0e-9, 1.0e-12);
        if let Ok(t) = characterize_cell_uncached(CellKind::Buffer, LogicStyle::PgMcml, &params) {
            prop_assert!(t.delay_fo4_ps.is_finite(), "Ok result with non-finite delay");
        }
    }

    /// The bias sweep rejects non-finite / non-positive currents with a
    /// typed error before any simulation, and survives hostile base
    /// parameters at valid currents.
    #[test]
    fn bias_sweep_never_panics(params in hostile_params(), bad in hostile(1.0e-6, 4.0e-4)) {
        let _ = bias_sweep_par(&params, &[50e-6, bad], Parallelism::Serial);
    }
}
