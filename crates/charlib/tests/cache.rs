//! Characterization-cache behaviour: hit accounting, corner sensitivity,
//! and parallel/serial equivalence of the library builder.
//!
//! The cache and its counters are process-global, so everything runs in a
//! single `#[test]` to keep the accounting race-free.

use mcml_cells::{CellKind, CellParams, Corner, LogicStyle};
use mcml_char::{build_library_par, cache, characterize_cell};
use mcml_exec::Parallelism;

#[test]
fn cache_hits_misses_and_parallel_equivalence() {
    // --- same key twice: exactly one SPICE characterization ---
    cache::clear();
    let params = CellParams::default();
    let first = characterize_cell(CellKind::Xor2, LogicStyle::PgMcml, &params).unwrap();
    let after_first = cache::stats();
    assert_eq!(after_first.misses, 1, "cold call runs the measurements");
    assert_eq!(after_first.hits, 0);

    let second = characterize_cell(CellKind::Xor2, LogicStyle::PgMcml, &params).unwrap();
    let after_second = cache::stats();
    assert_eq!(after_second.misses, 1, "repeat key must not re-simulate");
    assert_eq!(after_second.hits, 1, "repeat key served from cache");
    assert_eq!(first, second, "cached result identical to computed one");

    // --- different corner inside otherwise-identical params: a miss ---
    let ss = CellParams {
        corner: Corner::Ss,
        ..params.clone()
    };
    let slow = characterize_cell(CellKind::Xor2, LogicStyle::PgMcml, &ss).unwrap();
    let after_corner = cache::stats();
    assert_eq!(after_corner.misses, 2, "corner is part of the key");
    assert_ne!(first, slow, "SS corner characterises differently");

    // --- a bit-level bias change is a different key too ---
    let tweaked = params.with_iss(50e-6 * (1.0 + f64::EPSILON));
    let _ = characterize_cell(CellKind::Xor2, LogicStyle::PgMcml, &tweaked).unwrap();
    assert_eq!(cache::stats().misses, 3, "float keys compare bit-exactly");

    // --- parallel library build == serial library build, exactly ---
    cache::clear();
    let styles = [LogicStyle::PgMcml, LogicStyle::Cmos];
    let serial = build_library_par(&params, &styles, Parallelism::Serial).unwrap();
    cache::clear();
    let parallel = build_library_par(&params, &styles, Parallelism::Threads(4)).unwrap();
    assert_eq!(serial, parallel, "thread count must not change the library");

    // The parallel build populated the cache: rebuilding is all hits.
    let warm_before = cache::stats();
    let rebuilt = build_library_par(&params, &styles, Parallelism::Threads(4)).unwrap();
    let warm_after = cache::stats();
    assert_eq!(rebuilt, parallel);
    assert_eq!(
        warm_after.misses, warm_before.misses,
        "warm rebuild runs zero SPICE transients"
    );
    assert!(warm_after.hits >= warm_before.hits + serial.len() as u64);
}
