//! Delay, power, leakage and wake-up measurements.

use mcml_cells::{CellKind, CellParams, LogicStyle};
use mcml_spice::SpiceError;

use crate::harness::{sensitizing_inputs, LogicWave, Testbench};
use crate::Result;

/// A measured propagation delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayMeasurement {
    /// Output-rising propagation delay (s).
    pub rise: f64,
    /// Output-falling propagation delay (s).
    pub fall: f64,
}

impl DelayMeasurement {
    /// Average of rise and fall delays (s).
    #[must_use]
    pub fn avg(&self) -> f64 {
        0.5 * (self.rise + self.fall)
    }

    /// Average in picoseconds.
    #[must_use]
    pub fn avg_ps(&self) -> f64 {
        self.avg() * 1e12
    }
}

/// Measure propagation delay of a cell at the given fan-out.
///
/// Combinational cells: the first sensitisable input is pulsed and the
/// 50 %-to-50 % (differential zero-crossing) delay extracted for both
/// edges. Sequential cells: clock-to-Q via a two-edge capture script.
///
/// # Errors
///
/// Propagates simulator errors; reports [`SpiceError::InvalidCircuit`] if
/// no crossing could be extracted.
pub fn measure_delay(
    kind: CellKind,
    style: LogicStyle,
    params: &CellParams,
    fanout: usize,
) -> Result<DelayMeasurement> {
    if kind.is_sequential() {
        measure_clk_to_q(kind, style, params, fanout)
    } else {
        measure_comb_delay(kind, style, params, fanout)
    }
}

fn missing(what: &str) -> SpiceError {
    SpiceError::InvalidCircuit(format!("measurement failed: {what}"))
}

fn measure_comb_delay(
    kind: CellKind,
    style: LogicStyle,
    params: &CellParams,
    fanout: usize,
) -> Result<DelayMeasurement> {
    // Pick the first input that can be sensitised.
    let (active, statics) = (0..kind.input_count())
        .find_map(|i| sensitizing_inputs(kind, i).map(|s| (i, s)))
        .ok_or_else(|| missing("no sensitisable input"))?;
    // Non-inverting sensitisation guaranteed preferred; detect polarity.
    let mut probe = statics.clone();
    probe[active] = true;
    let inverting = !kind.eval_comb(&probe).expect("combinational")[0];

    let t_rise = 1.0e-9;
    let t_fall = 2.5e-9;
    let mut tb = Testbench::new(kind, style, params);
    for (i, &v) in statics.iter().enumerate() {
        tb.set_input(i, v);
    }
    tb.set_input_wave(active, LogicWave::pulse(t_rise, t_fall));
    tb.set_fanout(fanout);
    let (built, res) = tb.run(4.0e-9, 4.0e-12)?;

    let inp = built.signal(&res, kind.input_names()[active]);
    let out = built.signal(&res, kind.output_names()[0]);
    let lvl_in = built.switch_level_for(kind.input_names()[active]);
    let lvl_out = built.switch_level_for(kind.output_names()[0]);

    let t_in_rise = inp
        .first_crossing_after(lvl_in, true, t_rise - 0.2e-9)
        .ok_or_else(|| missing("input rise crossing"))?;
    let t_in_fall = inp
        .first_crossing_after(lvl_in, false, t_fall - 0.2e-9)
        .ok_or_else(|| missing("input fall crossing"))?;
    let (out_dir_first, out_dir_second) = if inverting {
        (false, true)
    } else {
        (true, false)
    };
    let t_out_1 = out
        .first_crossing_after(lvl_out, out_dir_first, t_in_rise)
        .ok_or_else(|| missing("output first crossing"))?;
    let t_out_2 = out
        .first_crossing_after(lvl_out, out_dir_second, t_in_fall)
        .ok_or_else(|| missing("output second crossing"))?;

    // `rise` = delay of the output-rising transition.
    let (rise, fall) = if inverting {
        (t_out_2 - t_in_fall, t_out_1 - t_in_rise)
    } else {
        (t_out_1 - t_in_rise, t_out_2 - t_in_fall)
    };
    Ok(DelayMeasurement { rise, fall })
}

fn measure_clk_to_q(
    kind: CellKind,
    style: LogicStyle,
    params: &CellParams,
    fanout: usize,
) -> Result<DelayMeasurement> {
    // Clock script: edge 1 captures 0, edge 2 captures 1 (rise
    // measurement), edge 3 captures 0 again (fall measurement).
    let clk = LogicWave::script(
        false,
        vec![
            (1.0e-9, true),
            (1.8e-9, false),
            (2.6e-9, true),
            (3.4e-9, false),
            (4.2e-9, true),
            (5.0e-9, false),
        ],
    );
    let d = LogicWave::script(false, vec![(2.1e-9, true), (3.7e-9, false)]);

    let names = kind.input_names();
    let clk_idx = names
        .iter()
        .position(|&n| n == "clk")
        .ok_or_else(|| missing("no clk input"))?;
    let d_idx = names
        .iter()
        .position(|&n| n == "d")
        .ok_or_else(|| missing("no d input"))?;

    let mut tb = Testbench::new(kind, style, params);
    tb.set_input_wave(clk_idx, clk);
    tb.set_input_wave(d_idx, d);
    // Reset inactive, enable active where present.
    if let Some(r) = names.iter().position(|&n| n == "rst") {
        tb.set_input(r, false);
    }
    if let Some(e) = names.iter().position(|&n| n == "en") {
        tb.set_input(e, true);
    }
    tb.set_fanout(fanout);
    let (built, res) = tb.run(5.5e-9, 4.0e-12)?;

    let clk_sig = built.signal(&res, "clk");
    let q = built.signal(&res, "q");
    let lvl = built.switch_level_for("clk");
    let lvl_q = built.switch_level_for("q");

    let clk_edge2 = clk_sig
        .first_crossing_after(lvl, true, 2.4e-9)
        .ok_or_else(|| missing("clk edge 2"))?;
    let q_rise = q
        .first_crossing_after(lvl_q, true, clk_edge2)
        .ok_or_else(|| missing("q rise"))?;
    let clk_edge3 = clk_sig
        .first_crossing_after(lvl, true, 4.0e-9)
        .ok_or_else(|| missing("clk edge 3"))?;
    let q_fall = q
        .first_crossing_after(lvl_q, false, clk_edge3)
        .ok_or_else(|| missing("q fall"))?;

    Ok(DelayMeasurement {
        rise: q_rise - clk_edge2,
        fall: q_fall - clk_edge3,
    })
}

/// Static (idle) supply power with the given constant inputs, awake (W).
///
/// Sequential cells are *settled through a clock edge first*: their DC
/// operating point sits at the metastable midpoint of the storage loop
/// (a huge, fictitious shoot-through current in CMOS), so the idle power
/// is read from the tail of a short transient instead.
///
/// # Errors
///
/// Propagates simulator convergence failures.
pub fn measure_static_power(
    kind: CellKind,
    style: LogicStyle,
    params: &CellParams,
    inputs: &[bool],
) -> Result<f64> {
    let mut tb = Testbench::new(kind, style, params);
    for (i, &v) in inputs.iter().enumerate() {
        tb.set_input(i, v);
    }
    if kind.is_sequential() {
        let clk_idx = kind
            .input_names()
            .iter()
            .position(|&n| n == "clk")
            .ok_or_else(|| missing("sequential cell has no clk pin"))?;
        tb.set_input_wave(
            clk_idx,
            LogicWave::script(false, vec![(0.5e-9, true), (1.5e-9, false)]),
        );
        let (built, res) = tb.run(4.0e-9, 5.0e-12)?;
        let i = built
            .supply_current(&res)
            .try_mean_between(3.0e-9, 4.0e-9)?;
        return Ok(i * params.tech.vdd);
    }
    let built = tb.try_build()?;
    let op = built.ckt.dc_op()?;
    let i = op
        .supply_current(built.vdd_src)
        .ok_or_else(|| missing("no vdd supply current"))?;
    Ok(i * params.tech.vdd)
}

/// Sleep-mode leakage power of a power-gated cell (W). Only meaningful
/// for `LogicStyle::PgMcml` (other styles have no sleep pin — the
/// function then returns the same value as static power).
///
/// # Errors
///
/// Propagates DC convergence failures.
pub fn measure_sleep_leakage(
    kind: CellKind,
    style: LogicStyle,
    params: &CellParams,
) -> Result<f64> {
    let mut tb = Testbench::new(kind, style, params);
    tb.set_sleep(LogicWave::constant(false));
    let built = tb.try_build()?;
    let op = built.ckt.dc_op()?;
    let i = op
        .supply_current(built.vdd_src)
        .ok_or_else(|| missing("no vdd supply current"))?;
    Ok(i * params.tech.vdd)
}

/// CMOS dynamic energy per output toggle (J): supply charge of one
/// switching event times Vdd, with the leakage baseline subtracted.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_dynamic_energy(
    kind: CellKind,
    style: LogicStyle,
    params: &CellParams,
    fanout: usize,
) -> Result<f64> {
    let (active, statics) = (0..kind.input_count())
        .find_map(|i| sensitizing_inputs(kind, i).map(|s| (i, s)))
        .ok_or_else(|| missing("no sensitisable input"))?;
    let t_rise = 1.0e-9;
    let t_fall = 2.5e-9;
    let mut tb = Testbench::new(kind, style, params);
    for (i, &v) in statics.iter().enumerate() {
        tb.set_input(i, v);
    }
    tb.set_input_wave(active, LogicWave::pulse(t_rise, t_fall));
    tb.set_fanout(fanout);
    let (built, res) = tb.run(4.0e-9, 4.0e-12)?;
    let i = built.supply_current(&res);
    // Baseline: average current in the quiet pre-edge window.
    let baseline = i.try_mean_between(0.2e-9, 0.8e-9)?;
    let window =
        i.try_integral_between(t_rise - 0.1e-9, t_fall - 0.1e-9)? - baseline * (t_fall - t_rise);
    Ok((window * params.tech.vdd).abs())
}

/// Wake-up time of a power-gated cell (s): sleep asserted at t=0, the
/// sleep pin rises at `t_wake`, and we measure until the output
/// differential reaches 90 % of its final value.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_wakeup(kind: CellKind, params: &CellParams) -> Result<f64> {
    let t_wake = 1.0e-9;
    let mut tb = Testbench::new(kind, LogicStyle::PgMcml, params);
    // Drive logical 1 so the awake output is well-defined.
    for i in 0..kind.input_count() {
        tb.set_input(i, true);
    }
    tb.set_sleep(LogicWave::script(false, vec![(t_wake, true)]));
    let (built, res) = tb.run(4.0e-9, 4.0e-12)?;
    let out = built.signal(&res, kind.output_names()[0]);
    let v_final = out.last_value();
    let target = 0.9 * v_final;
    let t = out
        .first_crossing_after(target, v_final > 0.0, t_wake)
        .ok_or_else(|| missing("output never settled after wake"))?;
    Ok(t - t_wake)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pg_buffer_delay_in_expected_band() {
        let params = CellParams::default();
        let d = measure_delay(CellKind::Buffer, LogicStyle::PgMcml, &params, 1).unwrap();
        let ps = d.avg_ps();
        assert!(ps > 3.0 && ps < 200.0, "buffer FO1 delay {ps} ps");
    }

    #[test]
    fn fanout_increases_delay() {
        let params = CellParams::default();
        let d1 = measure_delay(CellKind::Buffer, LogicStyle::PgMcml, &params, 1)
            .unwrap()
            .avg();
        let d4 = measure_delay(CellKind::Buffer, LogicStyle::PgMcml, &params, 4)
            .unwrap()
            .avg();
        assert!(d4 > d1, "FO4 {d4} vs FO1 {d1}");
    }

    #[test]
    fn cmos_buffer_delay_measurable() {
        let params = CellParams::default();
        let d = measure_delay(CellKind::Buffer, LogicStyle::Cmos, &params, 1).unwrap();
        assert!(d.avg_ps() > 1.0 && d.avg_ps() < 300.0, "{} ps", d.avg_ps());
    }

    #[test]
    fn xor2_delay_exceeds_buffer() {
        let params = CellParams::default();
        let db = measure_delay(CellKind::Buffer, LogicStyle::PgMcml, &params, 1)
            .unwrap()
            .avg();
        let dx = measure_delay(CellKind::Xor2, LogicStyle::PgMcml, &params, 1)
            .unwrap()
            .avg();
        assert!(dx > db, "XOR2 {dx} vs buffer {db}");
    }

    #[test]
    fn dff_clk_to_q() {
        let params = CellParams::default();
        let d = measure_delay(CellKind::Dff, LogicStyle::PgMcml, &params, 1).unwrap();
        assert!(
            d.avg_ps() > 5.0 && d.avg_ps() < 400.0,
            "DFF clk-to-q {} ps",
            d.avg_ps()
        );
    }

    #[test]
    fn mcml_static_power_near_vdd_times_iss() {
        let params = CellParams::default();
        let p = measure_static_power(CellKind::Buffer, LogicStyle::Mcml, &params, &[true]).unwrap();
        let expect = params.tech.vdd * params.iss;
        assert!(
            p > 0.5 * expect && p < 2.0 * expect,
            "static {p} vs Vdd*Iss {expect}"
        );
    }

    #[test]
    fn pg_sleep_leakage_orders_below_static() {
        let params = CellParams::default();
        let awake =
            measure_static_power(CellKind::Buffer, LogicStyle::PgMcml, &params, &[true]).unwrap();
        let asleep = measure_sleep_leakage(CellKind::Buffer, LogicStyle::PgMcml, &params).unwrap();
        assert!(
            asleep < awake / 100.0,
            "sleep leakage {asleep} vs awake {awake}"
        );
    }

    #[test]
    fn cmos_static_power_is_leakage_only() {
        let params = CellParams::default();
        let p = measure_static_power(CellKind::Buffer, LogicStyle::Cmos, &params, &[true]).unwrap();
        let mcml =
            measure_static_power(CellKind::Buffer, LogicStyle::Mcml, &params, &[true]).unwrap();
        assert!(p < mcml / 50.0, "CMOS static {p} vs MCML {mcml}");
    }

    #[test]
    fn wakeup_time_sub_nanosecond() {
        let params = CellParams::default();
        let t = measure_wakeup(CellKind::Buffer, &params).unwrap();
        assert!(
            t > 1.0e-12 && t < 1.5e-9,
            "buffer wake-up {t} s should be a fraction of a cycle"
        );
    }

    #[test]
    fn cmos_dynamic_energy_positive() {
        let params = CellParams::default();
        let e = measure_dynamic_energy(CellKind::Buffer, LogicStyle::Cmos, &params, 1).unwrap();
        assert!(e > 1e-18 && e < 1e-12, "toggle energy {e} J");
    }
}

/// Measure the setup time of a flip-flop (s): the smallest D-to-clock
/// lead time at which the flop still captures the new data, found by
/// binary search over the data-edge position.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if called on a combinational cell.
pub fn measure_setup_time(kind: CellKind, style: LogicStyle, params: &CellParams) -> Result<f64> {
    assert!(kind.is_sequential(), "setup time is a flop property");
    let names = kind.input_names();
    let clk_idx = names.iter().position(|&n| n == "clk").expect("clk pin");
    let d_idx = names.iter().position(|&n| n == "d").expect("d pin");
    let t_edge = 2.0e-9;

    // Capture check: does the flop latch a 1 when d rises `lead` before
    // the clock edge?
    let captures = |lead: f64| -> Result<bool> {
        let mut tb = Testbench::new(kind, style, params);
        tb.set_input_wave(
            clk_idx,
            LogicWave::script(false, vec![(0.5e-9, true), (1.2e-9, false), (t_edge, true)]),
        );
        tb.set_input_wave(d_idx, LogicWave::script(false, vec![(t_edge - lead, true)]));
        if let Some(r) = names.iter().position(|&n| n == "rst") {
            tb.set_input(r, false);
        }
        if let Some(e) = names.iter().position(|&n| n == "en") {
            tb.set_input(e, true);
        }
        let (built, res) = tb.run(3.5e-9, 4.0e-12)?;
        let q = built.signal(&res, "q");
        let lvl = built.switch_level_for("q");
        Ok(q.last_value() > lvl)
    };

    // Bracket: generous lead must capture; negative lead (d after clk)
    // must not.
    let mut pass = 0.8e-9;
    let mut fail = -0.2e-9;
    if !captures(pass)? {
        return Err(SpiceError::InvalidCircuit(
            "flop never captures — setup search has no bracket".to_owned(),
        ));
    }
    if captures(fail)? {
        // Captures even when d changes after the edge: effectively a
        // transparent path; report zero setup.
        return Ok(0.0);
    }
    for _ in 0..10 {
        let mid = 0.5 * (pass + fail);
        if captures(mid)? {
            pass = mid;
        } else {
            fail = mid;
        }
    }
    Ok(0.5 * (pass + fail))
}

#[cfg(test)]
mod setup_tests {
    use super::*;

    #[test]
    fn dff_setup_time_is_positive_and_small() {
        let params = CellParams::default();
        for style in [LogicStyle::PgMcml, LogicStyle::Cmos] {
            let ts = measure_setup_time(CellKind::Dff, style, &params).unwrap();
            assert!(
                ts > -50e-12 && ts < 400e-12,
                "{style}: setup {ts} s should be tens of ps"
            );
        }
    }

    #[test]
    #[should_panic(expected = "setup time is a flop property")]
    fn setup_rejects_combinational() {
        let _ = measure_setup_time(CellKind::And2, LogicStyle::PgMcml, &CellParams::default());
    }
}

/// Measure the hold time of a flip-flop (s): the longest interval after
/// the clock edge for which a data change still corrupts the captured
/// value, found by binary search (negative values mean data may change
/// before the edge without harm — a hold margin).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if called on a combinational cell.
pub fn measure_hold_time(kind: CellKind, style: LogicStyle, params: &CellParams) -> Result<f64> {
    assert!(kind.is_sequential(), "hold time is a flop property");
    let names = kind.input_names();
    let clk_idx = names.iter().position(|&n| n == "clk").expect("clk pin");
    let d_idx = names.iter().position(|&n| n == "d").expect("d pin");
    let t_edge = 2.0e-9;

    // The flop should capture the 1 present at the edge; d then falls
    // `lag` after the edge. If the capture survives, the lag is ≥ hold.
    let survives = |lag: f64| -> Result<bool> {
        let mut tb = Testbench::new(kind, style, params);
        tb.set_input_wave(
            clk_idx,
            LogicWave::script(false, vec![(0.5e-9, true), (1.2e-9, false), (t_edge, true)]),
        );
        tb.set_input_wave(
            d_idx,
            LogicWave::script(false, vec![(t_edge - 0.8e-9, true), (t_edge + lag, false)]),
        );
        if let Some(r) = names.iter().position(|&n| n == "rst") {
            tb.set_input(r, false);
        }
        if let Some(e) = names.iter().position(|&n| n == "en") {
            tb.set_input(e, true);
        }
        let (built, res) = tb.run(3.5e-9, 4.0e-12)?;
        let q = built.signal(&res, "q");
        Ok(q.last_value() > built.switch_level_for("q"))
    };

    let mut ok = 0.6e-9;
    let mut bad = -0.3e-9;
    if !survives(ok)? {
        return Err(SpiceError::InvalidCircuit(
            "flop loses data even with generous hold — no bracket".to_owned(),
        ));
    }
    if survives(bad)? {
        // Captures even when d falls before the edge: the master latched
        // early; hold is effectively very negative. Report the bracket.
        return Ok(bad);
    }
    for _ in 0..10 {
        let mid = 0.5 * (ok + bad);
        if survives(mid)? {
            ok = mid;
        } else {
            bad = mid;
        }
    }
    Ok(0.5 * (ok + bad))
}

#[cfg(test)]
mod hold_tests {
    use super::*;

    #[test]
    fn dff_hold_time_is_bounded() {
        let params = CellParams::default();
        let th = measure_hold_time(CellKind::Dff, LogicStyle::PgMcml, &params).unwrap();
        assert!(
            th > -400e-12 && th < 400e-12,
            "hold {th} s should be within a few hundred ps of the edge"
        );
    }

    #[test]
    fn setup_plus_hold_window_is_positive() {
        // The capture window (setup + hold) must have positive width —
        // data cannot be allowed to change arbitrarily close on both
        // sides of the edge.
        let params = CellParams::default();
        let ts = measure_setup_time(CellKind::Dff, LogicStyle::PgMcml, &params).unwrap();
        let th = measure_hold_time(CellKind::Dff, LogicStyle::PgMcml, &params).unwrap();
        assert!(ts + th > -100e-12, "window {ts} + {th}");
    }
}
