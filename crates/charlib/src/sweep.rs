//! The Fig. 3 bias-current design-space sweep.
//!
//! Fig. 3 (a): buffer delay vs tail current for FO1 and FO4 loads — delay
//! falls with `Iss` but saturates above ≈250 µA. Fig. 3 (b): power–delay
//! and area–delay products vs `Iss` — the area–delay product has its
//! minimum near 50 µA, which the library adopts as its design point.

use mcml_cells::{cell_area_um2, CellKind, CellParams, DriveStrength, LogicStyle};
use mcml_exec::Parallelism;
use serde::{Deserialize, Serialize};

use crate::measure::measure_delay;
use crate::Result;

/// One point of the bias sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasSweepPoint {
    /// Tail current (A).
    pub iss: f64,
    /// Buffer FO1 delay (ps).
    pub delay_fo1_ps: f64,
    /// Buffer FO4 delay (ps).
    pub delay_fo4_ps: f64,
    /// Static power `Vdd · Iss` (W).
    pub power_w: f64,
    /// Power–delay product at FO4 (J).
    pub pdp_j: f64,
    /// Area–delay product at FO4 (µm²·ps).
    pub adp_um2_ps: f64,
}

/// Estimated buffer area as a function of tail current (µm²). Only the
/// current-carrying diffusion columns (tail, sleep, pairs — about a
/// quarter of the buffer layout) scale with `Iss`; the loads, wells,
/// routing channels and rails are fixed. Anchored to the published
/// layout at the 50 µA design point.
#[must_use]
pub fn area_vs_iss_um2(iss: f64) -> f64 {
    let base = cell_area_um2(CellKind::Buffer, LogicStyle::PgMcml, DriveStrength::X1);
    base * (0.75 + 0.25 * iss / 50e-6)
}

/// Run the Fig. 3 sweep at the given tail currents.
///
/// # Errors
///
/// Propagates simulator errors from the delay measurements.
pub fn bias_sweep(params: &CellParams, currents: &[f64]) -> Result<Vec<BiasSweepPoint>> {
    bias_sweep_par(params, currents, Parallelism::from_env())
}

/// [`bias_sweep`] with an explicit thread-count knob. Each bias point is an
/// independent pair of delay transients; points are computed across the
/// worker pool and returned in the input current order, identical to the
/// serial loop.
///
/// # Errors
///
/// Propagates simulator errors from the delay measurements; a sweep
/// current that is not finite and positive is rejected as
/// [`mcml_spice::SpiceError::InvalidParameter`] before any simulation
/// runs (the optimizer feeds machine-generated currents through here).
pub fn bias_sweep_par(
    params: &CellParams,
    currents: &[f64],
    par: Parallelism,
) -> Result<Vec<BiasSweepPoint>> {
    let _span = mcml_obs::span(mcml_obs::Stage::BiasSweep);
    if let Some(bad) = currents.iter().find(|i| !(i.is_finite() && **i > 0.0)) {
        return Err(mcml_spice::SpiceError::InvalidParameter {
            element: "bias sweep".to_owned(),
            reason: format!("sweep current must be finite and positive, got {bad:e}"),
        });
    }
    mcml_obs::add(mcml_obs::Counter::SweepPoints, currents.len() as u64);
    mcml_exec::parallel_map_items(par, currents, |&iss| {
        let p = params.with_iss(iss);
        let d1 = measure_delay(CellKind::Buffer, LogicStyle::PgMcml, &p, 1)?;
        let d4 = measure_delay(CellKind::Buffer, LogicStyle::PgMcml, &p, 4)?;
        let power = p.tech.vdd * iss;
        let delay4 = d4.avg();
        Ok(BiasSweepPoint {
            iss,
            delay_fo1_ps: d1.avg_ps(),
            delay_fo4_ps: d4.avg_ps(),
            power_w: power,
            pdp_j: power * delay4,
            adp_um2_ps: area_vs_iss_um2(iss) * d4.avg_ps(),
        })
    })
    .into_iter()
    .collect()
}

/// Default sweep currents (A) covering the paper's 10–400 µA range.
#[must_use]
pub fn default_sweep_currents() -> Vec<f64> {
    [10.0, 20.0, 35.0, 50.0, 75.0, 100.0, 150.0, 250.0, 400.0]
        .iter()
        .map(|u| u * 1e-6)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_decreases_with_iss_and_saturates() {
        let params = CellParams::default();
        let pts = bias_sweep(&params, &[10e-6, 50e-6, 250e-6, 400e-6]).unwrap();
        // Monotone decreasing FO4 delay.
        for w in pts.windows(2) {
            assert!(
                w[1].delay_fo4_ps < w[0].delay_fo4_ps * 1.02,
                "delay should not grow with Iss: {} -> {}",
                w[0].delay_fo4_ps,
                w[1].delay_fo4_ps
            );
        }
        // Saturation: the 250→400 µA gain is a small fraction of the
        // 10→50 µA gain.
        let early = pts[0].delay_fo4_ps - pts[1].delay_fo4_ps;
        let late = pts[2].delay_fo4_ps - pts[3].delay_fo4_ps;
        assert!(
            late < 0.35 * early,
            "speed-up saturates: early {early} ps vs late {late} ps"
        );
    }

    #[test]
    fn fo4_slower_than_fo1_everywhere() {
        let params = CellParams::default();
        let pts = bias_sweep(&params, &[20e-6, 100e-6]).unwrap();
        for p in &pts {
            assert!(p.delay_fo4_ps > p.delay_fo1_ps);
        }
    }

    #[test]
    fn adp_has_interior_minimum_near_50ua() {
        let params = CellParams::default();
        let currents = [10e-6, 25e-6, 50e-6, 100e-6, 250e-6];
        let pts = bias_sweep(&params, &currents).unwrap();
        let min_idx = pts
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.adp_um2_ps.partial_cmp(&b.1.adp_um2_ps).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx != 0 && min_idx != pts.len() - 1,
            "ADP minimum must be interior, got index {min_idx}: {:?}",
            pts.iter().map(|p| p.adp_um2_ps).collect::<Vec<_>>()
        );
        let i_opt = pts[min_idx].iss;
        assert!(
            (2e-5..=1.2e-4).contains(&i_opt),
            "optimum {i_opt} should be near 50 µA"
        );
    }

    #[test]
    fn area_model_monotone() {
        assert!(area_vs_iss_um2(100e-6) > area_vs_iss_um2(50e-6));
        let a50 = area_vs_iss_um2(50e-6);
        let table = cell_area_um2(CellKind::Buffer, LogicStyle::PgMcml, DriveStrength::X1);
        assert!((a50 - table).abs() < 1e-9, "anchored at the 50 µA layout");
    }
}

/// Characterise the buffer across global process corners in the given
/// style: returns `(corner, FO4 delay ps, static power W)` rows.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn corner_sweep(
    params: &CellParams,
    style: LogicStyle,
) -> Result<Vec<(mcml_cells::Corner, f64, f64)>> {
    corner_sweep_par(params, style, Parallelism::from_env())
}

/// [`corner_sweep`] with an explicit thread-count knob. Corners are
/// independent bias solves + transients; rows come back in `Corner::ALL`
/// order regardless of scheduling.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn corner_sweep_par(
    params: &CellParams,
    style: LogicStyle,
    par: Parallelism,
) -> Result<Vec<(mcml_cells::Corner, f64, f64)>> {
    use mcml_cells::Corner;
    let _span = mcml_obs::span(mcml_obs::Stage::CornerSweep);
    let corners: Vec<Corner> = Corner::ALL.into_iter().collect();
    mcml_obs::add(mcml_obs::Counter::SweepPoints, corners.len() as u64);
    mcml_exec::parallel_map_items(par, &corners, |&corner| {
        let p = CellParams {
            corner,
            ..params.clone()
        };
        let d = measure_delay(CellKind::Buffer, style, &p, 4)?;
        let s = crate::measure::measure_static_power(CellKind::Buffer, style, &p, &[true])?;
        Ok((corner, d.avg_ps(), s))
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod corner_tests {
    use super::*;
    use mcml_cells::Corner;

    #[test]
    fn cmos_corners_order_ff_fastest_ss_slowest() {
        let rows = corner_sweep(&CellParams::default(), LogicStyle::Cmos).unwrap();
        let get = |c: Corner| rows.iter().find(|r| r.0 == c).unwrap().1;
        let (ff, tt, ss) = (get(Corner::Ff), get(Corner::Tt), get(Corner::Ss));
        assert!(ff < tt && tt < ss, "CMOS: FF {ff} < TT {tt} < SS {ss}");
    }

    #[test]
    fn mcml_delay_is_corner_compensated() {
        // The differential style's known robustness (Tanabe et al.,
        // cited by the paper): re-solving Vn/Vp per corner pins the tail
        // current, so delay barely moves across corners while the CMOS
        // baseline swings much further.
        let pg = corner_sweep(&CellParams::default(), LogicStyle::PgMcml).unwrap();
        let spread = |rows: &[(Corner, f64, f64)]| {
            let d: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let max = d.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = d.iter().cloned().fold(f64::INFINITY, f64::min);
            (max - min) / ((max + min) / 2.0)
        };
        let pg_spread = spread(&pg);
        assert!(pg_spread < 0.15, "PG-MCML corner spread {pg_spread}");
        let cmos = corner_sweep(&CellParams::default(), LogicStyle::Cmos).unwrap();
        assert!(
            spread(&cmos) > pg_spread,
            "CMOS spreads wider: {} vs {}",
            spread(&cmos),
            pg_spread
        );
        // Bias compensation also pins the static power near Vdd·Iss.
        for (c, _, p) in &pg {
            assert!(
                (*p - 60e-6).abs() < 15e-6,
                "{c}: static power {p} stays near Vdd·Iss"
            );
        }
    }
}
