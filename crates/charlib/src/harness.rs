//! Transistor-level characterisation testbench.
//!
//! Wraps a generated cell with everything a measurement needs: supply,
//! solved bias rails, complementary input drivers at MCML or CMOS levels,
//! a sleep driver, and fan-out loads built from real buffer cells of the
//! same style (so FO4 means what it means on silicon).

use mcml_cells::{bias::try_solve_bias, build_cell, BiasPoint, CellKind, CellParams, LogicStyle};
use mcml_spice::{
    Circuit, ElementId, NodeId, SourceWave, SpiceError, TranOptions, TranResult, Waveform,
};

use crate::Result;

/// Edge time used for all digital drivers (s).
pub const DRIVER_EDGE: f64 = 20e-12;

/// A logic-level waveform: an initial value plus timed transitions. The
/// harness renders it at the correct electrical levels for each style
/// (and renders the complement for differential inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct LogicWave {
    initial: bool,
    transitions: Vec<(f64, bool)>,
}

impl LogicWave {
    /// Constant level.
    #[must_use]
    pub fn constant(value: bool) -> Self {
        Self {
            initial: value,
            transitions: Vec::new(),
        }
    }

    /// A single 0→1→0 pulse.
    ///
    /// # Panics
    ///
    /// Panics unless `rise < fall`.
    #[must_use]
    pub fn pulse(rise: f64, fall: f64) -> Self {
        assert!(rise < fall, "pulse must rise before it falls");
        Self {
            initial: false,
            transitions: vec![(rise, true), (fall, false)],
        }
    }

    /// An explicit transition script; times must be increasing.
    ///
    /// # Panics
    ///
    /// Panics if times are not strictly increasing.
    #[must_use]
    pub fn script(initial: bool, transitions: Vec<(f64, bool)>) -> Self {
        assert!(
            transitions.windows(2).all(|w| w[0].0 < w[1].0),
            "transition times must increase"
        );
        Self {
            initial,
            transitions,
        }
    }

    /// A clock starting low, with the first rising edge at `first_rise`
    /// and the given period, for `cycles` cycles.
    #[must_use]
    pub fn clock(first_rise: f64, period: f64, cycles: usize) -> Self {
        let mut transitions = Vec::with_capacity(cycles * 2);
        for c in 0..cycles {
            let t = first_rise + period * c as f64;
            transitions.push((t, true));
            transitions.push((t + period / 2.0, false));
        }
        Self {
            initial: false,
            transitions,
        }
    }

    /// Logical value at time `t`.
    #[must_use]
    pub fn value_at(&self, t: f64) -> bool {
        let mut v = self.initial;
        for &(tt, nv) in &self.transitions {
            if tt <= t {
                v = nv;
            } else {
                break;
            }
        }
        v
    }

    /// Render as a voltage source waveform between `v_lo` and `v_hi`;
    /// `invert` renders the complement.
    #[must_use]
    pub fn to_source(&self, v_lo: f64, v_hi: f64, invert: bool) -> SourceWave {
        let level = |b: bool| {
            if b != invert {
                v_hi
            } else {
                v_lo
            }
        };
        if self.transitions.is_empty() {
            return SourceWave::dc(level(self.initial));
        }
        let mut points = vec![(0.0, level(self.initial))];
        let mut prev = self.initial;
        for &(t, v) in &self.transitions {
            if v == prev {
                continue;
            }
            points.push((t, level(prev)));
            points.push((t + DRIVER_EDGE, level(v)));
            prev = v;
        }
        SourceWave::Pwl(points)
    }
}

/// Testbench configuration for one cell.
#[derive(Debug, Clone)]
pub struct Testbench {
    /// Cell under test.
    pub kind: CellKind,
    /// Logic style under test.
    pub style: LogicStyle,
    /// Electrical parameters (shared with the generated cell).
    pub params: CellParams,
    /// Per-input drive waveforms (indexed like
    /// [`CellKind::input_names`]).
    pub inputs: Vec<LogicWave>,
    /// Sleep-pin waveform (PG styles only; `true` = awake).
    pub sleep: LogicWave,
    /// Number of same-style buffer cells loading the first output.
    pub fanout: usize,
    /// Fixed interconnect capacitance on each output rail (F), modelling
    /// the routing every placed cell drives. Unlike the gate loads this
    /// does **not** scale with the cell's bias current — it is what makes
    /// low-Iss cells slow in Fig. 3 (a).
    pub wire_cap: f64,
}

/// Default output wiring load: ≈8 µm of minimum-pitch route per rail.
pub const DEFAULT_WIRE_CAP: f64 = 1.6e-15;

/// A constructed testbench ready for analysis.
pub struct BuiltTestbench {
    /// Complete circuit (cell + drivers + loads).
    pub ckt: Circuit,
    /// The embedded cell (for port lookup — its nodes are remapped, use
    /// [`BuiltTestbench::port`]).
    cell_ports: std::collections::HashMap<String, NodeId>,
    /// Supply source handle, for current probing.
    pub vdd_src: ElementId,
    /// Solved bias point (MCML styles).
    pub bias: Option<BiasPoint>,
    style: LogicStyle,
    v_lo: f64,
    v_hi: f64,
}

impl Testbench {
    /// A testbench with all inputs constant-low, sleep ON, no fan-out.
    #[must_use]
    pub fn new(kind: CellKind, style: LogicStyle, params: &CellParams) -> Self {
        let n = kind.input_count();
        Self {
            kind,
            style,
            params: params.clone(),
            inputs: vec![LogicWave::constant(false); n],
            sleep: LogicWave::constant(true),
            fanout: 0,
            wire_cap: DEFAULT_WIRE_CAP,
        }
    }

    /// Set a constant input value.
    pub fn set_input(&mut self, idx: usize, value: bool) -> &mut Self {
        self.inputs[idx] = LogicWave::constant(value);
        self
    }

    /// Set an input waveform.
    pub fn set_input_wave(&mut self, idx: usize, wave: LogicWave) -> &mut Self {
        self.inputs[idx] = wave;
        self
    }

    /// Set the sleep waveform.
    pub fn set_sleep(&mut self, wave: LogicWave) -> &mut Self {
        self.sleep = wave;
        self
    }

    /// Set the fan-out load (buffer cells of the same style).
    pub fn set_fanout(&mut self, n: usize) -> &mut Self {
        self.fanout = n;
        self
    }

    /// Logic levels `(v_lo, v_hi)` for this style's inputs.
    #[must_use]
    pub fn levels(&self) -> (f64, f64) {
        match self.style {
            LogicStyle::Cmos => (0.0, self.params.tech.vdd),
            _ => (self.params.v_low(), self.params.tech.vdd),
        }
    }

    /// Construct the simulation circuit.
    ///
    /// # Panics
    ///
    /// Panics on parameters that cannot be built or biased; use
    /// [`Testbench::try_build`] for machine-generated candidates.
    #[must_use]
    pub fn build(&self) -> BuiltTestbench {
        match self.try_build() {
            Ok(tb) => tb,
            Err(e) => panic!("testbench build failed: {e}"),
        }
    }

    /// Fallible [`Testbench::build`]: degenerate parameters (non-positive
    /// geometry, swing outside the supply, a tail current the sized
    /// devices cannot deliver) surface as
    /// [`SpiceError::InvalidParameter`] instead of a panic, so one
    /// infeasible candidate cannot kill a whole population evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] when validation or the
    /// bias solve rejects the parameters.
    pub fn try_build(&self) -> Result<BuiltTestbench> {
        self.params
            .validate()
            .map_err(|reason| SpiceError::InvalidParameter {
                element: format!("{}/{}", self.kind, self.style),
                reason,
            })?;
        let cell = build_cell(self.kind, self.style, &self.params);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vdd_v = self.params.tech.vdd;
        let vdd_src = ckt.vsource("VDD", vdd, Circuit::GND, SourceWave::dc(vdd_v));

        // Map the cell in, sharing the supply node.
        let mut connections = vec![(cell.port("vdd"), vdd)];
        let bias = if self.style.is_differential() {
            let b = try_solve_bias(&self.params).map_err(|e| SpiceError::InvalidParameter {
                element: format!("{}/{}", self.kind, self.style),
                reason: e.to_string(),
            })?;
            let vn = ckt.node("vn");
            let vp = ckt.node("vp");
            ckt.vsource("VN", vn, Circuit::GND, SourceWave::dc(b.vn));
            ckt.vsource("VP", vp, Circuit::GND, SourceWave::dc(b.vp));
            connections.push((cell.port("vn"), vn));
            connections.push((cell.port("vp"), vp));
            Some(b)
        } else {
            None
        };
        // Sleep pins (true = awake -> sleep node high).
        if cell.ports.contains_key("sleep") {
            let s = ckt.node("sleep");
            ckt.vsource(
                "VSLP",
                s,
                Circuit::GND,
                self.sleep.to_source(0.0, vdd_v, false),
            );
            connections.push((cell.port("sleep"), s));
        }
        if cell.ports.contains_key("sleep_b") {
            let sb = ckt.node("sleep_b");
            ckt.vsource(
                "VSLPB",
                sb,
                Circuit::GND,
                self.sleep.to_source(0.0, vdd_v, true),
            );
            connections.push((cell.port("sleep_b"), sb));
        }

        let node_map = ckt.instantiate("dut", &cell.circuit, &connections);
        let mapped = |n: NodeId| node_map[n.index()];
        let cell_ports: std::collections::HashMap<String, NodeId> = cell
            .ports
            .iter()
            .map(|(k, &v)| (k.clone(), mapped(v)))
            .collect();

        // Input drivers.
        let (v_lo, v_hi) = self.levels();
        for (i, name) in self.kind.input_names().iter().enumerate() {
            let wave = &self.inputs[i];
            if self.style.is_differential() {
                ckt.vsource(
                    &format!("VI_{name}_p"),
                    cell_ports[&format!("{name}_p")],
                    Circuit::GND,
                    wave.to_source(v_lo, v_hi, false),
                );
                ckt.vsource(
                    &format!("VI_{name}_n"),
                    cell_ports[&format!("{name}_n")],
                    Circuit::GND,
                    wave.to_source(v_lo, v_hi, true),
                );
            } else {
                ckt.vsource(
                    &format!("VI_{name}"),
                    cell_ports[*name],
                    Circuit::GND,
                    wave.to_source(0.0, vdd_v, false),
                );
            }
        }

        // Fan-out loads: real buffers of the same style. A single-ended
        // output on a differential cell (the Diff2Single converter) is by
        // construction headed for the CMOS host logic, so it gets CMOS
        // buffer loads.
        let out0 = self.kind.output_names()[0];
        let out_is_diff =
            self.style.is_differential() && cell_ports.contains_key(&format!("{out0}_p"));
        for f in 0..self.fanout {
            let load_style = if out_is_diff {
                self.style
            } else {
                LogicStyle::Cmos
            };
            let load = build_cell(CellKind::Buffer, load_style, &self.params);
            let mut conns = vec![(load.port("vdd"), ckt.node("vdd"))];
            if out_is_diff {
                conns.push((load.port("vn"), ckt.node("vn")));
                conns.push((load.port("vp"), ckt.node("vp")));
                conns.push((load.port("a_p"), cell_ports[&format!("{out0}_p")]));
                conns.push((load.port("a_n"), cell_ports[&format!("{out0}_n")]));
                if load.ports.contains_key("sleep") {
                    conns.push((load.port("sleep"), ckt.node("sleep")));
                }
                if load.ports.contains_key("sleep_b") {
                    conns.push((load.port("sleep_b"), ckt.node("sleep_b")));
                }
            } else {
                conns.push((load.port("a"), cell_ports[out0]));
            }
            ckt.instantiate(&format!("load{f}"), &load.circuit, &conns);
        }

        // Fixed interconnect load on every output rail.
        if self.wire_cap > 0.0 {
            for name in self.kind.output_names() {
                if self.style.is_differential() && cell_ports.contains_key(&format!("{name}_p")) {
                    for rail in ["p", "n"] {
                        ckt.capacitor(
                            &format!("CW_{name}_{rail}"),
                            cell_ports[&format!("{name}_{rail}")],
                            Circuit::GND,
                            self.wire_cap,
                        );
                    }
                } else {
                    ckt.capacitor(
                        &format!("CW_{name}"),
                        cell_ports[*name],
                        Circuit::GND,
                        self.wire_cap,
                    );
                }
            }
        }

        Ok(BuiltTestbench {
            ckt,
            cell_ports,
            vdd_src,
            bias,
            style: self.style,
            v_lo,
            v_hi,
        })
    }

    /// Build and run a transient analysis.
    ///
    /// # Errors
    ///
    /// Propagates simulator convergence errors and
    /// [`SpiceError::InvalidParameter`] from [`Testbench::try_build`].
    pub fn run(&self, t_stop: f64, dt: f64) -> Result<(BuiltTestbench, TranResult)> {
        let tb = self.try_build()?;
        let res = tb.ckt.transient(&TranOptions::new(t_stop, dt))?;
        Ok((tb, res))
    }
}

impl BuiltTestbench {
    /// Node of a cell port (post-instantiation).
    ///
    /// # Panics
    ///
    /// Panics for unknown ports.
    #[must_use]
    pub fn port(&self, name: &str) -> NodeId {
        *self
            .cell_ports
            .get(name)
            .unwrap_or_else(|| panic!("no cell port `{name}`"))
    }

    /// Logical signal waveform of a named cell pin: differential voltage
    /// `v_p − v_n` for MCML styles, node voltage for CMOS.
    #[must_use]
    pub fn signal(&self, res: &TranResult, name: &str) -> Waveform {
        if self.style.is_differential() && self.cell_ports.contains_key(&format!("{name}_p")) {
            let p = res.voltage(self.port(&format!("{name}_p")));
            let n = res.voltage(self.port(&format!("{name}_n")));
            p.add(&n.scaled(-1.0))
        } else {
            res.voltage(self.port(name))
        }
    }

    /// Threshold at which a logical signal is considered switching:
    /// 0 V for differential pairs, mid-rail for CMOS.
    #[must_use]
    pub fn switch_level(&self) -> f64 {
        if self.style.is_differential() {
            0.0
        } else {
            0.5 * (self.v_lo + self.v_hi)
        }
    }

    /// Switch threshold of a specific named pin: the differential zero
    /// when the pin is a rail pair, mid-rail for single-ended pins (e.g.
    /// the `Diff2Single` converter's full-swing output).
    #[must_use]
    pub fn switch_level_for(&self, name: &str) -> f64 {
        if self.style.is_differential() && self.cell_ports.contains_key(&format!("{name}_p")) {
            0.0
        } else if self.style.is_differential() {
            // Full-swing single-ended pin on a differential cell.
            0.5 * self.v_hi
        } else {
            0.5 * (self.v_lo + self.v_hi)
        }
    }

    /// Supply-current waveform (A, positive into the circuit).
    ///
    /// # Panics
    ///
    /// Panics if the supply element is missing (impossible for built
    /// testbenches).
    #[must_use]
    pub fn supply_current(&self, res: &TranResult) -> Waveform {
        res.supply_current(self.vdd_src).expect("vdd is a source")
    }
}

/// Find constant values for the non-active inputs such that toggling
/// input `active` toggles output 0, preferring the non-inverting
/// sensitisation. Returns `None` if the input cannot be sensitised.
#[must_use]
pub fn sensitizing_inputs(kind: CellKind, active: usize) -> Option<Vec<bool>> {
    let n = kind.input_count();
    let mut fallback = None;
    for pattern in 0..(1u32 << n) {
        let mut inputs: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
        inputs[active] = false;
        let f0 = kind.eval_comb(&inputs)?[0];
        inputs[active] = true;
        let f1 = kind.eval_comb(&inputs)?[0];
        if f0 != f1 {
            if f1 {
                return Some(inputs);
            }
            fallback.get_or_insert(inputs);
        }
    }
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_wave_rendering() {
        let w = LogicWave::pulse(1e-9, 2e-9);
        let s = w.to_source(0.8, 1.2, false);
        assert_eq!(s.value(0.0), 0.8);
        assert_eq!(s.value(1.5e-9), 1.2);
        assert_eq!(s.value(3e-9), 0.8);
        let sc = w.to_source(0.8, 1.2, true);
        assert_eq!(sc.value(1.5e-9), 0.8, "complement");
        assert!(w.value_at(1.5e-9));
        assert!(!w.value_at(0.5e-9));
    }

    #[test]
    fn clock_wave_cycles() {
        let c = LogicWave::clock(1e-9, 2e-9, 2);
        assert!(!c.value_at(0.5e-9));
        assert!(c.value_at(1.5e-9));
        assert!(!c.value_at(2.5e-9));
        assert!(c.value_at(3.5e-9));
    }

    #[test]
    fn sensitization_and2() {
        // Toggling input 0 of AND2 needs b = 1.
        let s = sensitizing_inputs(CellKind::And2, 0).unwrap();
        assert!(s[1]);
        let s = sensitizing_inputs(CellKind::Mux2, 0).unwrap();
        assert!(!s[2], "select must choose d0");
    }

    #[test]
    fn sensitization_prefers_noninverting() {
        // XOR2 with b = 0 keeps q = a.
        let s = sensitizing_inputs(CellKind::Xor2, 0).unwrap();
        assert!(!s[1]);
    }

    #[test]
    fn sequential_has_no_sensitization() {
        assert!(sensitizing_inputs(CellKind::Dff, 0).is_none());
    }

    #[test]
    fn build_cmos_buffer_tb() {
        let params = CellParams::default();
        let tb = Testbench::new(CellKind::Buffer, LogicStyle::Cmos, &params);
        let built = tb.build();
        let op = built.ckt.dc_op().expect("tb converges");
        // Input low -> output low (non-inverting buffer).
        assert!(op.voltage(built.port("q")) < 0.1);
    }

    #[test]
    fn build_pg_buffer_tb_with_fanout() {
        let params = CellParams::default();
        let mut tb = Testbench::new(CellKind::Buffer, LogicStyle::PgMcml, &params);
        tb.set_input(0, true).set_fanout(4);
        let built = tb.build();
        assert!(built.bias.is_some());
        let op = built.ckt.dc_op().expect("tb converges");
        let q = op.voltage(built.port("q_p")) - op.voltage(built.port("q_n"));
        assert!(q > 0.2, "fanout-loaded buffer still swings: {q}");
    }

    #[test]
    #[should_panic(expected = "pulse must rise before it falls")]
    fn bad_pulse_panics() {
        let _ = LogicWave::pulse(2e-9, 1e-9);
    }
}
