//! Liberty (`.lib`) text export of a characterised library.
//!
//! A shipped standard-cell library is consumed by synthesis tools as a
//! Liberty file; this writer emits the characterised timing/power data in
//! that format (the subset commercial flows need for the paper's use
//! case: cell area, pin capacitances, propagation delays, leakage, and
//! the PG-MCML sleep pin marked as a switch input).

use std::fmt::Write as _;

use mcml_cells::{CellKind, LogicStyle};

use crate::library::TimingLibrary;

/// Render a characterised library as Liberty text for one style.
///
/// Cells missing from the library are skipped; an empty result contains
/// just the library header.
#[must_use]
pub fn to_liberty(lib: &TimingLibrary, style: LogicStyle, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ({name}) {{");
    let _ = writeln!(out, "  technology (cmos);");
    let _ = writeln!(out, "  delay_model : table_lookup;");
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  voltage_unit : \"1V\";");
    let _ = writeln!(out, "  current_unit : \"1uA\";");
    let _ = writeln!(out, "  leakage_power_unit : \"1nW\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  nom_voltage : 1.2;");
    let _ = writeln!(out, "  comment : \"PG-MCML reproduction — {style}\";");

    for kind in CellKind::ALL {
        let Some(t) = lib.get(kind, style) else {
            continue;
        };
        let cell_name = kind.lib_name(t.drive);
        let _ = writeln!(out, "  cell ({cell_name}) {{");
        let _ = writeln!(out, "    area : {:.4};", t.area_um2);
        let _ = writeln!(
            out,
            "    cell_leakage_power : {:.6};",
            t.leakage_sleep_w * 1e9
        );
        if style.is_power_gated() {
            let _ = writeln!(out, "    switch_cell_type : fine_grain;");
            let _ = writeln!(out, "    pin (sleep) {{");
            let _ = writeln!(out, "      direction : input;");
            let _ = writeln!(out, "      switch_pin : true;");
            let _ = writeln!(out, "    }}");
        }
        for pin in kind.input_names() {
            let _ = writeln!(out, "    pin ({pin}) {{");
            let _ = writeln!(out, "      direction : input;");
            let _ = writeln!(out, "      capacitance : {:.4};", t.input_cap_ff);
            if kind.is_sequential() && *pin == "clk" {
                let _ = writeln!(out, "      clock : true;");
            }
            let _ = writeln!(out, "    }}");
        }
        for pin in kind.output_names() {
            let _ = writeln!(out, "    pin ({pin}) {{");
            let _ = writeln!(out, "      direction : output;");
            let related = if kind.is_sequential() {
                "clk"
            } else {
                kind.input_names()[0]
            };
            let _ = writeln!(out, "      timing () {{");
            let _ = writeln!(out, "        related_pin : \"{related}\";");
            if kind.is_sequential() {
                let _ = writeln!(out, "        timing_type : rising_edge;");
            }
            let _ = writeln!(
                out,
                "        cell_rise (scalar) {{ values (\"{:.2}\"); }}",
                t.delay_fo1_ps
            );
            let _ = writeln!(
                out,
                "        cell_fall (scalar) {{ values (\"{:.2}\"); }}",
                t.delay_fo1_ps
            );
            let _ = writeln!(out, "      }}");
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::CellTiming;
    use mcml_cells::DriveStrength;

    fn sample_lib() -> TimingLibrary {
        let mut lib = TimingLibrary::new();
        for kind in [CellKind::Buffer, CellKind::Xor2, CellKind::Dff] {
            lib.insert(CellTiming {
                kind,
                style: LogicStyle::PgMcml,
                drive: DriveStrength::X1,
                area_um2: 8.9,
                delay_fo1_ps: 44.3,
                delay_fo4_ps: 80.0,
                input_cap_ff: 1.25,
                static_power_w: 60e-6,
                leakage_sleep_w: 1.3e-9,
                toggle_energy_j: 0.0,
            });
        }
        lib
    }

    #[test]
    fn liberty_structure_is_complete() {
        let text = to_liberty(&sample_lib(), LogicStyle::PgMcml, "pg_mcml_090");
        assert!(text.starts_with("library (pg_mcml_090) {"));
        assert!(text.contains("cell (BUFX1) {"));
        assert!(text.contains("cell (XOR2X1) {"));
        assert!(text.contains("cell (DFFX1) {"));
        assert!(text.contains("switch_pin : true;"), "sleep pin exported");
        assert!(text.contains("clock : true;"), "clk pin marked");
        assert!(text.contains("cell_rise (scalar) { values (\"44.30\"); }"));
        assert!(text.contains("cell_leakage_power : 1.300000;"));
        // Braces balance.
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn missing_cells_are_skipped() {
        let lib = TimingLibrary::new();
        let text = to_liberty(&lib, LogicStyle::Mcml, "empty");
        assert!(!text.contains("cell ("));
        assert!(text.contains("library (empty) {"));
    }
}
