//! # mcml-char — SPICE-driven standard-cell characterisation
//!
//! The role Synopsys' library characterisation flow plays for the paper:
//! every cell of every style is placed in a transistor-level testbench
//! (supplies, solved `Vn`/`Vp` biases, complementary input drivers,
//! fan-out loads built from real buffer cells) and measured:
//!
//! * **propagation delay** at FO1…FO4 (50 % single-ended / differential
//!   zero-crossing), combinational and clock-to-Q;
//! * **static power** awake and **leakage** asleep (the PG-MCML headline
//!   numbers), plus CMOS dynamic energy per output toggle;
//! * **wake-up time** of power-gated cells (the ≈1 ns sleep-signal
//!   insertion budget of §6);
//! * the **Fig. 3 bias sweep**: buffer delay and power/area–delay products
//!   as a function of the tail current, reproducing the 50 µA optimum.
//!
//! Results are collected into a serialisable [`TimingLibrary`] — the
//! crate's equivalent of a `.lib` — consumed by the technology mapper and
//! the gate-level power simulator.
//!
//! # Example
//!
//! ```no_run
//! use mcml_cells::{CellKind, CellParams, LogicStyle};
//! use mcml_char::characterize_cell;
//!
//! let t = characterize_cell(CellKind::Buffer, LogicStyle::PgMcml,
//!                           &CellParams::default()).unwrap();
//! assert!(t.delay_fo1_ps > 1.0 && t.delay_fo1_ps < 500.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod harness;
pub mod liberty;
pub mod library;
pub mod measure;
pub mod sweep;

pub use cache::CacheStats;
pub use harness::Testbench;
pub use liberty::to_liberty;
pub use library::{
    build_library, build_library_par, characterize_cell, characterize_cell_uncached, CellTiming,
    TimingLibrary,
};
pub use measure::{measure_delay, measure_static_power, measure_wakeup, DelayMeasurement};
pub use sweep::{
    bias_sweep, bias_sweep_par, corner_sweep, corner_sweep_par, default_sweep_currents,
    BiasSweepPoint,
};

/// Crate-level result alias (errors bubble up from the simulator).
pub type Result<T> = std::result::Result<T, mcml_spice::SpiceError>;
