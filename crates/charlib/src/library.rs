//! The characterised timing library (a `.lib` equivalent).

use mcml_cells::{build_cell, cell_area_um2, CellKind, CellParams, DriveStrength, LogicStyle};
use mcml_exec::Parallelism;
use mcml_spice::Element;
use serde::{Deserialize, Serialize};

use crate::cache::{get_or_characterize, CharKey};

use crate::measure::{
    measure_delay, measure_dynamic_energy, measure_sleep_leakage, measure_static_power,
};
use crate::Result;

/// Characterised data for one cell in one style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Which cell.
    pub kind: CellKind,
    /// Which style.
    pub style: LogicStyle,
    /// Drive strength.
    pub drive: DriveStrength,
    /// Layout area (µm²).
    pub area_um2: f64,
    /// Propagation delay at fan-out 1 (ps).
    pub delay_fo1_ps: f64,
    /// Propagation delay at fan-out 4 (ps).
    pub delay_fo4_ps: f64,
    /// Average input pin capacitance (fF).
    pub input_cap_ff: f64,
    /// Static supply power, awake and idle (W).
    pub static_power_w: f64,
    /// Sleep-mode leakage power (W); equals `static_power_w` for styles
    /// without a sleep pin.
    pub leakage_sleep_w: f64,
    /// Dynamic energy per output toggle (J); dominated by the load for
    /// CMOS, near zero marginal for MCML (constant-current operation).
    pub toggle_energy_j: f64,
}

impl CellTiming {
    /// Delay interpolated linearly in fan-out (ps).
    #[must_use]
    pub fn delay_ps(&self, fanout: f64) -> f64 {
        let slope = (self.delay_fo4_ps - self.delay_fo1_ps) / 3.0;
        (self.delay_fo1_ps + slope * (fanout - 1.0)).max(0.0)
    }
}

/// A characterised library over cells × styles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingLibrary {
    entries: Vec<CellTiming>,
}

impl TimingLibrary {
    /// Empty library.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) an entry.
    pub fn insert(&mut self, t: CellTiming) {
        self.entries
            .retain(|e| !(e.kind == t.kind && e.style == t.style && e.drive == t.drive));
        self.entries.push(t);
    }

    /// Look up a cell (X1 drive).
    #[must_use]
    pub fn get(&self, kind: CellKind, style: LogicStyle) -> Option<&CellTiming> {
        self.entries
            .iter()
            .find(|e| e.kind == kind && e.style == style && e.drive == DriveStrength::X1)
    }

    /// All entries.
    #[must_use]
    pub fn entries(&self) -> &[CellTiming] {
        &self.entries
    }

    /// Number of characterised entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Estimated input capacitance of a cell (average over input pins, F):
/// the sum of capacitor elements hanging off each input node, which with
/// parasitics enabled are exactly the device gate capacitances.
#[must_use]
pub fn input_capacitance(kind: CellKind, style: LogicStyle, params: &CellParams) -> f64 {
    let cell = build_cell(kind, style, params);
    let mut total = 0.0;
    let mut pins = 0usize;
    for name in kind.input_names() {
        let nodes: Vec<_> = if style.is_differential() {
            vec![
                cell.port(&format!("{name}_p")),
                cell.port(&format!("{name}_n")),
            ]
        } else {
            vec![cell.port(name)]
        };
        for node in nodes {
            pins += 1;
            for (_, _, e) in cell.circuit.elements() {
                if let Element::Capacitor { a, b, farads } = e {
                    if *a == node || *b == node {
                        total += farads;
                    }
                }
            }
        }
    }
    if pins == 0 {
        0.0
    } else {
        total / pins as f64
    }
}

/// Characterise one cell in one style (X1 drive, FO1 and FO4).
///
/// Results are memoised in the process-wide [`crate::cache`]: repeated
/// calls with a bit-identical `(kind, style, params)` triple — including
/// the corner carried inside `params` — return the cached [`CellTiming`]
/// without re-running any SPICE transient.
///
/// # Errors
///
/// Propagates simulator errors from any of the measurements.
pub fn characterize_cell(
    kind: CellKind,
    style: LogicStyle,
    params: &CellParams,
) -> Result<CellTiming> {
    get_or_characterize(CharKey::new(kind, style, params), || {
        characterize_cell_uncached(kind, style, params)
    })
}

/// Characterise one cell, bypassing (and not populating) the cache.
///
/// # Errors
///
/// Propagates simulator errors from any of the measurements.
pub fn characterize_cell_uncached(
    kind: CellKind,
    style: LogicStyle,
    params: &CellParams,
) -> Result<CellTiming> {
    let _span = mcml_obs::span(mcml_obs::Stage::Characterize);
    mcml_obs::incr(mcml_obs::Counter::CellsCharacterized);
    let d1 = measure_delay(kind, style, params, 1)?;
    let d4 = measure_delay(kind, style, params, 4)?;
    let idle_inputs = vec![true; kind.input_count()];
    let static_power = measure_static_power(kind, style, params, &idle_inputs)?;
    let leakage = if style.is_power_gated() {
        measure_sleep_leakage(kind, style, params)?
    } else {
        static_power
    };
    let toggle_energy = if kind.is_sequential() {
        // Approximate with the buffer's toggle energy scaled by area; the
        // event-driven power model only needs an order of magnitude for
        // sequential CMOS cells.
        match style {
            LogicStyle::Cmos => {
                measure_dynamic_energy(CellKind::Buffer, style, params, 1)?
                    * (cell_area_um2(kind, style, DriveStrength::X1)
                        / cell_area_um2(CellKind::Buffer, style, DriveStrength::X1))
            }
            _ => 0.0,
        }
    } else {
        match style {
            LogicStyle::Cmos => measure_dynamic_energy(kind, style, params, 1)?,
            // MCML cells draw Iss regardless of switching; the marginal
            // switching energy is the load swing charge, tiny by
            // comparison and data-independent.
            _ => 0.0,
        }
    };
    Ok(CellTiming {
        kind,
        style,
        drive: params.drive,
        area_um2: cell_area_um2(kind, style, params.drive),
        delay_fo1_ps: d1.avg_ps(),
        delay_fo4_ps: d4.avg_ps(),
        input_cap_ff: input_capacitance(kind, style, params) * 1e15,
        static_power_w: static_power,
        leakage_sleep_w: leakage,
        toggle_energy_j: toggle_energy,
    })
}

/// Characterise the full library: every cell in every requested style.
///
/// Uses the thread count from `MCML_THREADS` (all cores when unset); see
/// [`build_library_par`] for an explicit knob.
///
/// # Errors
///
/// Propagates the first measurement failure (in deterministic
/// style-major, cell-minor order, matching the serial loop).
pub fn build_library(params: &CellParams, styles: &[LogicStyle]) -> Result<TimingLibrary> {
    build_library_par(params, styles, Parallelism::from_env())
}

/// Characterise the full library, fanning independent cells across threads.
///
/// Each `(style, cell)` pair is an independent set of SPICE runs, so they
/// are distributed over the worker pool; results are merged back in the
/// serial loop's style-major order, so the resulting [`TimingLibrary`] is
/// identical to [`build_library`]'s regardless of thread count.
///
/// # Errors
///
/// Propagates the first measurement failure.
pub fn build_library_par(
    params: &CellParams,
    styles: &[LogicStyle],
    par: Parallelism,
) -> Result<TimingLibrary> {
    let jobs: Vec<(LogicStyle, CellKind)> = styles
        .iter()
        .flat_map(|&style| CellKind::ALL.into_iter().map(move |kind| (style, kind)))
        .collect();
    let results = mcml_exec::parallel_map_items(par, &jobs, |&(style, kind)| {
        characterize_cell(kind, style, params)
    });
    let mut lib = TimingLibrary::new();
    for timing in results {
        lib.insert(timing?);
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterize_buffer_all_styles() {
        let params = CellParams::default();
        for style in LogicStyle::ALL {
            let t = characterize_cell(CellKind::Buffer, style, &params).unwrap();
            assert!(t.delay_fo1_ps > 0.0, "{style}: delay positive");
            assert!(t.delay_fo4_ps > t.delay_fo1_ps, "{style}: FO4 slower");
            assert!(t.area_um2 > 0.0);
            assert!(t.input_cap_ff > 0.01, "{style}: cap {}", t.input_cap_ff);
        }
    }

    #[test]
    fn pg_mcml_static_vs_leakage_headline() {
        // The paper's whole point: awake PG-MCML burns Vdd·Iss like MCML,
        // asleep it leaks orders of magnitude less.
        let params = CellParams::default();
        let t = characterize_cell(CellKind::Xor2, LogicStyle::PgMcml, &params).unwrap();
        assert!(t.static_power_w > 1e-5, "awake ≈ Vdd·Iss");
        assert!(
            t.leakage_sleep_w < t.static_power_w / 1e3,
            "asleep {} vs awake {}",
            t.leakage_sleep_w,
            t.static_power_w
        );
    }

    #[test]
    fn library_insert_and_lookup() {
        let params = CellParams::default();
        let t = characterize_cell(CellKind::Buffer, LogicStyle::Mcml, &params).unwrap();
        let mut lib = TimingLibrary::new();
        lib.insert(t.clone());
        lib.insert(t); // replace, not duplicate
        assert_eq!(lib.len(), 1);
        assert!(lib.get(CellKind::Buffer, LogicStyle::Mcml).is_some());
        assert!(lib.get(CellKind::Xor2, LogicStyle::Mcml).is_none());
    }

    #[test]
    fn delay_interpolation() {
        let t = CellTiming {
            kind: CellKind::Buffer,
            style: LogicStyle::PgMcml,
            drive: DriveStrength::X1,
            area_um2: 7.4,
            delay_fo1_ps: 20.0,
            delay_fo4_ps: 50.0,
            input_cap_ff: 1.0,
            static_power_w: 6e-5,
            leakage_sleep_w: 1e-9,
            toggle_energy_j: 0.0,
        };
        assert!((t.delay_ps(1.0) - 20.0).abs() < 1e-9);
        assert!((t.delay_ps(4.0) - 50.0).abs() < 1e-9);
        assert!((t.delay_ps(2.5) - 35.0).abs() < 1e-9);
    }

    #[test]
    fn input_cap_scales_with_drive() {
        let params = CellParams::default();
        let c1 = input_capacitance(CellKind::Buffer, LogicStyle::PgMcml, &params);
        let c4 = input_capacitance(
            CellKind::Buffer,
            LogicStyle::PgMcml,
            &params.with_drive(DriveStrength::X4),
        );
        assert!(c4 > 2.0 * c1, "X4 input cap {c4} vs X1 {c1}");
    }
}
