//! Process-wide characterization cache.
//!
//! Every table and figure in the paper re-characterises the same handful of
//! cells: `table2` wants all three styles, `fig6` re-runs the PG-MCML cells
//! per plaintext batch, and the corner/bias sweeps revisit the buffer dozens
//! of times. A full [`characterize_cell`](crate::characterize_cell) call is
//! several SPICE transients, so repeated keys dominate wall-clock.
//!
//! The cache is a [`parking_lot::Mutex`]-guarded map keyed by the *exact*
//! bit patterns of every field that influences a measurement:
//! `(CellKind, LogicStyle, CellParams, Corner)` — with every `f64` stored
//! via [`f64::to_bits`], so there is no lossy float hashing and no
//! collision between, say, 49.999 µA and 50 µA bias points.
//!
//! Hit/miss counters are exposed for tests and for the speedup reports in
//! the `table2`/`table3`/`fig6` binaries; [`clear`] resets both the map and
//! the counters so serial-vs-parallel timing comparisons start cold.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use mcml_cells::{CellKind, CellParams, LogicStyle};
use parking_lot::Mutex;

use crate::library::CellTiming;

/// Exact-bit cache key for one characterization run.
///
/// Floats are stored as `to_bits()` patterns: two keys are equal iff every
/// parameter is bit-identical, which is precisely the condition under which
/// the deterministic simulator returns the same `CellTiming`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CharKey {
    kind: CellKind,
    style: LogicStyle,
    corner: mcml_cells::Corner,
    drive: mcml_cells::DriveStrength,
    sleep_topology: mcml_cells::SleepTopology,
    with_parasitics: bool,
    tech_name: String,
    cell_height_tracks: u32,
    /// Bit patterns of every `f64` field of `CellParams` and `Technology`,
    /// in declaration order.
    float_bits: [u64; 19],
}

impl CharKey {
    /// Build the key for `(kind, style, params)`; the corner rides inside
    /// `params`.
    #[must_use]
    pub fn new(kind: CellKind, style: LogicStyle, params: &CellParams) -> Self {
        let t = &params.tech;
        let float_bits = [
            params.iss.to_bits(),
            params.vswing.to_bits(),
            params.w_pair.to_bits(),
            params.w_tail.to_bits(),
            params.w_sleep.to_bits(),
            params.w_load.to_bits(),
            params.l.to_bits(),
            params.l_tail.to_bits(),
            t.vdd.to_bits(),
            t.l_min.to_bits(),
            t.w_min.to_bits(),
            t.cox.to_bits(),
            t.c_overlap.to_bits(),
            t.cj.to_bits(),
            t.cjsw.to_bits(),
            t.ld_diff.to_bits(),
            t.c_wire.to_bits(),
            t.r_wire.to_bits(),
            t.m1_pitch.to_bits(),
        ];
        CharKey {
            kind,
            style,
            corner: params.corner,
            drive: params.drive,
            sleep_topology: params.sleep_topology,
            with_parasitics: params.with_parasitics,
            tech_name: t.name.clone(),
            cell_height_tracks: t.cell_height_tracks,
            float_bits,
        }
    }
}

static CACHE: Mutex<Option<HashMap<CharKey, CellTiming>>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Look up a cached characterization, or compute and insert it.
///
/// The compute closure runs *outside* the lock, so concurrent workers
/// characterising different cells never serialise on the mutex; two
/// workers racing on the same key may both compute, but the simulator is
/// deterministic so either result is identical and the duplicate is simply
/// dropped.
///
/// # Errors
///
/// Propagates the compute closure's error; errors are not cached.
pub fn get_or_characterize<E>(
    key: CharKey,
    compute: impl FnOnce() -> Result<CellTiming, E>,
) -> Result<CellTiming, E> {
    if let Some(hit) = CACHE.lock().as_ref().and_then(|m| m.get(&key).cloned()) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(hit);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let timing = compute()?;
    CACHE
        .lock()
        .get_or_insert_with(HashMap::new)
        .entry(key)
        .or_insert_with(|| timing.clone());
    Ok(timing)
}

/// Cache hit/miss counters since the last [`clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the SPICE measurements.
    pub misses: u64,
    /// Distinct keys currently resident.
    pub entries: usize,
}

/// Snapshot the cache counters.
#[must_use]
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: CACHE.lock().as_ref().map_or(0, HashMap::len),
    }
}

/// Drop every cached entry and zero the counters.
///
/// The benchmark binaries call this between their serial and parallel runs
/// so both start from a cold cache and the reported speedup is honest.
pub fn clear() {
    *CACHE.lock() = None;
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}
