//! Process-wide characterization cache with single-flight computes.
//!
//! Every table and figure in the paper re-characterises the same handful of
//! cells: `table2` wants all three styles, `fig6` re-runs the PG-MCML cells
//! per plaintext batch, and the corner/bias sweeps revisit the buffer dozens
//! of times. A full [`characterize_cell`](crate::characterize_cell) call is
//! several SPICE transients, so repeated keys dominate wall-clock.
//!
//! The cache is a mutex-guarded map keyed by the *exact* bit patterns of
//! every field that influences a measurement:
//! `(CellKind, LogicStyle, CellParams, Corner)` — with every `f64` stored
//! via [`f64::to_bits`], so there is no lossy float hashing and no
//! collision between, say, 49.999 µA and 50 µA bias points.
//!
//! Computes are **single-flight**: the first worker to miss a key installs
//! an in-flight marker and characterises outside the lock; workers racing
//! on the same key block on a condvar and are served the finished result.
//! That makes the cache's accounting deterministic under any
//! `MCML_THREADS` — misses equal the number of *distinct* keys computed
//! and hits equal `lookups − misses`, exactly as in a serial run — which
//! the `mcml-obs` report-equality tests rely on (a racing duplicate
//! compute would also inflate the `spice.*` counters).
//!
//! Hit/miss counters are exposed for tests and for the speedup reports in
//! the `table2`/`table3`/`fig6` binaries; [`clear`] resets both the map and
//! the counters so serial-vs-parallel timing comparisons start cold.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use mcml_cells::{CellKind, CellParams, LogicStyle};
use mcml_obs::Counter;

use crate::library::CellTiming;

/// Exact-bit cache key for one characterization run.
///
/// Floats are stored as `to_bits()` patterns: two keys are equal iff every
/// parameter is bit-identical, which is precisely the condition under which
/// the deterministic simulator returns the same `CellTiming`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CharKey {
    kind: CellKind,
    style: LogicStyle,
    corner: mcml_cells::Corner,
    drive: mcml_cells::DriveStrength,
    sleep_topology: mcml_cells::SleepTopology,
    with_parasitics: bool,
    tech_name: String,
    cell_height_tracks: u32,
    /// Bit patterns of every `f64` field of `CellParams` and `Technology`,
    /// in declaration order.
    float_bits: [u64; 19],
}

impl CharKey {
    /// Build the key for `(kind, style, params)`; the corner rides inside
    /// `params`.
    #[must_use]
    pub fn new(kind: CellKind, style: LogicStyle, params: &CellParams) -> Self {
        let t = &params.tech;
        let float_bits = [
            params.iss.to_bits(),
            params.vswing.to_bits(),
            params.w_pair.to_bits(),
            params.w_tail.to_bits(),
            params.w_sleep.to_bits(),
            params.w_load.to_bits(),
            params.l.to_bits(),
            params.l_tail.to_bits(),
            t.vdd.to_bits(),
            t.l_min.to_bits(),
            t.w_min.to_bits(),
            t.cox.to_bits(),
            t.c_overlap.to_bits(),
            t.cj.to_bits(),
            t.cjsw.to_bits(),
            t.ld_diff.to_bits(),
            t.c_wire.to_bits(),
            t.r_wire.to_bits(),
            t.m1_pitch.to_bits(),
        ];
        CharKey {
            kind,
            style,
            corner: params.corner,
            drive: params.drive,
            sleep_topology: params.sleep_topology,
            with_parasitics: params.with_parasitics,
            tech_name: t.name.clone(),
            cell_height_tracks: t.cell_height_tracks,
            float_bits,
        }
    }
}

/// One cache entry: either a finished timing or a marker that some worker
/// is computing it right now.
#[derive(Debug, Clone)]
enum Slot {
    InFlight,
    Ready(CellTiming),
}

type CacheMap = Option<HashMap<CharKey, Slot>>;

static CACHE: Mutex<CacheMap> = Mutex::new(None);
static READY: Condvar = Condvar::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn lock() -> MutexGuard<'static, CacheMap> {
    CACHE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Look up a cached characterization, or compute and insert it.
///
/// Single-flight: the first worker to miss a key computes *outside* the
/// lock while holding an in-flight marker; racers on the same key block
/// until the result is ready and count as hits (exactly what a serial run
/// would have recorded). If the owning compute fails, its marker is
/// removed, one blocked waiter retakes ownership and retries, and the
/// error propagates to the worker that observed it; errors are not cached.
///
/// # Errors
///
/// Propagates the compute closure's error.
pub fn get_or_characterize<E>(
    key: CharKey,
    compute: impl FnOnce() -> Result<CellTiming, E>,
) -> Result<CellTiming, E> {
    mcml_obs::incr(Counter::CacheLookups);
    let mut guard = lock();
    loop {
        match guard.get_or_insert_with(HashMap::new).get(&key) {
            Some(Slot::Ready(timing)) => {
                let timing = timing.clone();
                HITS.fetch_add(1, Ordering::Relaxed);
                mcml_obs::incr(Counter::CacheHits);
                return Ok(timing);
            }
            Some(Slot::InFlight) => {
                guard = READY.wait(guard).unwrap_or_else(PoisonError::into_inner);
            }
            None => break,
        }
    }
    // This worker owns the compute for `key`.
    guard
        .get_or_insert_with(HashMap::new)
        .insert(key.clone(), Slot::InFlight);
    drop(guard);

    MISSES.fetch_add(1, Ordering::Relaxed);
    mcml_obs::incr(Counter::CacheMisses);
    let result = compute();

    let mut guard = lock();
    let map = guard.get_or_insert_with(HashMap::new);
    match &result {
        Ok(timing) => {
            map.insert(key, Slot::Ready(timing.clone()));
        }
        Err(_) => {
            // Unblock waiters; the first to wake retakes ownership.
            map.remove(&key);
        }
    }
    drop(guard);
    READY.notify_all();
    result
}

/// Cache hit/miss counters since the last [`clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (including waits on an in-flight
    /// compute of the same key).
    pub hits: u64,
    /// Lookups that ran the SPICE measurements.
    pub misses: u64,
    /// Distinct keys currently resident with a finished result.
    pub entries: usize,
}

/// Snapshot the cache counters.
#[must_use]
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries: lock().as_ref().map_or(0, |m| {
            m.values().filter(|s| matches!(s, Slot::Ready(_))).count()
        }),
    }
}

/// Drop every cached entry and zero the counters.
///
/// The benchmark binaries call this between their serial and parallel runs
/// so both start from a cold cache and the reported speedup is honest.
/// Must not be called while characterizations are in flight.
pub fn clear() {
    *lock() = None;
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}
