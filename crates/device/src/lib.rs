//! # mcml-device — 90 nm MOSFET and technology models
//!
//! Device-physics substrate for the PG-MCML reproduction. The paper designs
//! its standard cells on a proprietary 90 nm CMOS process with low-Vt and
//! high-Vt device flavours; this crate provides an open, self-contained
//! replacement: a charge-sheet (EKV-style) MOSFET model that is smooth and
//! continuously differentiable across the subthreshold, triode and
//! saturation regions, plus parameter presets for the four device flavours
//! (`NMOS`/`PMOS` × `LVT`/`HVT`) at nominal and corner conditions.
//!
//! The model covers every first-order effect the paper's experiments rely
//! on:
//!
//! * a saturation-region NMOS used as the MCML **tail current source**,
//! * PMOS devices biased in the triode region as **active loads**,
//! * Vt-dependent **subthreshold leakage** (the quantity fine-grain power
//!   gating attacks),
//! * the **body effect** (needed to evaluate the discarded power-gating
//!   topology (c), which relies on body biasing),
//! * channel-length modulation and simple temperature scaling.
//!
//! # Example
//!
//! ```
//! use mcml_device::{Mosfet, MosParams, Technology};
//!
//! let tech = Technology::cmos90();
//! // A 2 µm / 0.1 µm high-Vt NMOS as used for MCML tail current sources.
//! let m = Mosfet::nmos(MosParams::nmos_hvt_90(), 2.0e-6, 0.1e-6);
//! // Bias it like a current source: Vg = 0.55 V, Vd = 0.6 V, Vs = Vb = 0.
//! let op = m.eval(0.55, 0.6, 0.0, 0.0);
//! assert!(op.id > 0.0, "tail device must conduct");
//! assert!(op.gm > 0.0 && op.gds > 0.0);
//! assert!(tech.vdd > 1.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod model;
pub mod params;
pub mod tech;

pub use model::{MosEval, Mosfet, MosfetGeometry};
pub use params::{Corner, MosParams, MosPolarity, VtFlavor};
pub use tech::Technology;

/// Boltzmann constant over elementary charge (V/K); `k·T/q` at `T` kelvin is
/// `K_OVER_Q * t_kelvin`.
pub const K_OVER_Q: f64 = 8.617_333_262e-5;

/// Thermal voltage `kT/q` in volts at the given temperature in kelvin.
///
/// ```
/// let ut = mcml_device::thermal_voltage(300.0);
/// assert!((ut - 0.025852).abs() < 1e-5);
/// ```
#[must_use]
pub fn thermal_voltage(t_kelvin: f64) -> f64 {
    K_OVER_Q * t_kelvin
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_room_temperature() {
        assert!((thermal_voltage(300.15) - 0.025865).abs() < 5e-5);
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        assert!((thermal_voltage(600.0) / thermal_voltage(300.0) - 2.0).abs() < 1e-12);
    }
}
