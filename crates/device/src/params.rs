//! MOSFET model parameter sets and process corners.
//!
//! The paper mixes device flavours deliberately: *"high-Vt devices can
//! reduce the leakage current during sleep mode without affecting the cell
//! delay, thus we selected them for the NMOS Boolean network, the current
//! source and the sleep transistor. We used low-Vt devices for the PMOS
//! load."* The four presets here reproduce that design space.

use serde::{Deserialize, Serialize};

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosPolarity {
    /// n-channel device.
    Nmos,
    /// p-channel device.
    Pmos,
}

impl MosPolarity {
    /// `+1.0` for NMOS, `-1.0` for PMOS; the sign used to fold a PMOS into
    /// the NMOS-referenced model equations.
    #[must_use]
    pub fn sign(self) -> f64 {
        match self {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        }
    }
}

impl std::fmt::Display for MosPolarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MosPolarity::Nmos => write!(f, "nmos"),
            MosPolarity::Pmos => write!(f, "pmos"),
        }
    }
}

/// Threshold-voltage flavour of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VtFlavor {
    /// Low threshold voltage: fast, leaky. Used for the PMOS loads.
    Low,
    /// High threshold voltage: slower, low leakage. Used for the NMOS
    /// network, current source and sleep transistor.
    High,
}

impl std::fmt::Display for VtFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VtFlavor::Low => write!(f, "lvt"),
            VtFlavor::High => write!(f, "hvt"),
        }
    }
}

/// Process corner for global device variation.
///
/// The first letter refers to the NMOS, the second to the PMOS
/// (e.g. `Fs` = fast NMOS, slow PMOS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Corner {
    /// Typical/typical — the nominal corner.
    #[default]
    Tt,
    /// Fast/fast.
    Ff,
    /// Slow/slow.
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

impl Corner {
    /// All five corners, useful for sweep loops.
    pub const ALL: [Corner; 5] = [Corner::Tt, Corner::Ff, Corner::Ss, Corner::Fs, Corner::Sf];

    /// (Vt shift in volts, mobility multiplier) applied to a device of the
    /// given polarity at this corner. Fast devices have lower |Vt| and
    /// higher mobility.
    #[must_use]
    pub fn shift(self, polarity: MosPolarity) -> (f64, f64) {
        const DVT: f64 = 0.035; // 1-sigma-ish global Vt shift
        const DMU: f64 = 0.08;
        let fast = (-DVT, 1.0 + DMU);
        let slow = (DVT, 1.0 - DMU);
        let nom = (0.0, 1.0);
        match (self, polarity) {
            (Corner::Tt, _) => nom,
            (Corner::Ff, _) => fast,
            (Corner::Ss, _) => slow,
            (Corner::Fs, MosPolarity::Nmos) | (Corner::Sf, MosPolarity::Pmos) => fast,
            (Corner::Fs, MosPolarity::Pmos) | (Corner::Sf, MosPolarity::Nmos) => slow,
        }
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Corner::Tt => "TT",
            Corner::Ff => "FF",
            Corner::Ss => "SS",
            Corner::Fs => "FS",
            Corner::Sf => "SF",
        };
        write!(f, "{s}")
    }
}

/// Complete parameter set for the EKV-style MOSFET model in
/// [`crate::model`].
///
/// All parameters are NMOS-referenced positive quantities; polarity handles
/// the sign flips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MosParams {
    /// Device polarity.
    pub polarity: MosPolarity,
    /// Threshold flavour (metadata; `vt0` already reflects it).
    pub flavor: VtFlavor,
    /// Zero-bias threshold voltage magnitude (V).
    pub vt0: f64,
    /// Low-field mobility × oxide capacitance, `µ·Cox` (A/V²).
    pub mu_cox: f64,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1).
    pub n_slope: f64,
    /// Channel-length-modulation coefficient λ (1/V).
    pub lambda: f64,
    /// Body-effect coefficient γ (√V).
    pub gamma: f64,
    /// Surface potential `2φ_F` (V) for the body-effect expression.
    pub phi: f64,
    /// Velocity-saturation critical field × length voltage `Ecrit·L`
    /// reference (V) at `l = l_ref`; scales linearly with drawn length.
    pub vsat_v: f64,
    /// Reference length (m) at which `vsat_v` is quoted.
    pub l_ref: f64,
    /// Gate-oxide capacitance per area (F/m²), duplicated from the
    /// technology for self-contained device evaluation.
    pub cox: f64,
    /// Junction temperature (K).
    pub temp: f64,
}

impl MosParams {
    /// 90 nm low-Vt NMOS.
    #[must_use]
    pub fn nmos_lvt_90() -> Self {
        Self {
            polarity: MosPolarity::Nmos,
            flavor: VtFlavor::Low,
            vt0: 0.22,
            mu_cox: 420e-6,
            n_slope: 1.45,
            lambda: 0.25,
            gamma: 0.30,
            phi: 0.80,
            vsat_v: 0.9,
            l_ref: 0.10e-6,
            cox: 15.7e-3,
            temp: 300.15,
        }
    }

    /// 90 nm high-Vt NMOS — the flavour used for the MCML logic network,
    /// tail current source and sleep transistor.
    #[must_use]
    pub fn nmos_hvt_90() -> Self {
        Self {
            vt0: 0.35,
            mu_cox: 380e-6,
            n_slope: 1.40,
            flavor: VtFlavor::High,
            ..Self::nmos_lvt_90()
        }
    }

    /// 90 nm low-Vt PMOS — the flavour used for the MCML active loads.
    #[must_use]
    pub fn pmos_lvt_90() -> Self {
        Self {
            polarity: MosPolarity::Pmos,
            flavor: VtFlavor::Low,
            vt0: 0.24,
            mu_cox: 110e-6,
            n_slope: 1.50,
            lambda: 0.30,
            gamma: 0.35,
            phi: 0.80,
            vsat_v: 1.6,
            l_ref: 0.10e-6,
            cox: 15.7e-3,
            temp: 300.15,
        }
    }

    /// 90 nm high-Vt PMOS.
    #[must_use]
    pub fn pmos_hvt_90() -> Self {
        Self {
            vt0: 0.38,
            mu_cox: 95e-6,
            flavor: VtFlavor::High,
            ..Self::pmos_lvt_90()
        }
    }

    /// Look up a preset by polarity and flavour.
    #[must_use]
    pub fn preset(polarity: MosPolarity, flavor: VtFlavor) -> Self {
        match (polarity, flavor) {
            (MosPolarity::Nmos, VtFlavor::Low) => Self::nmos_lvt_90(),
            (MosPolarity::Nmos, VtFlavor::High) => Self::nmos_hvt_90(),
            (MosPolarity::Pmos, VtFlavor::Low) => Self::pmos_lvt_90(),
            (MosPolarity::Pmos, VtFlavor::High) => Self::pmos_hvt_90(),
        }
    }

    /// Return a copy of these parameters shifted to the given process
    /// corner (Vt shift and mobility scaling).
    #[must_use]
    pub fn at_corner(&self, corner: Corner) -> Self {
        let (dvt, kmu) = corner.shift(self.polarity);
        Self {
            vt0: self.vt0 + dvt,
            mu_cox: self.mu_cox * kmu,
            ..self.clone()
        }
    }

    /// Return a copy of these parameters retargeted to temperature
    /// `t_kelvin`: mobility degrades as `(T/T0)^-1.5`, |Vt| drops by
    /// ≈ 1 mV/K.
    #[must_use]
    pub fn at_temperature(&self, t_kelvin: f64) -> Self {
        assert!(t_kelvin > 0.0, "temperature must be positive");
        let t0 = self.temp;
        Self {
            mu_cox: self.mu_cox * (t_kelvin / t0).powf(-1.5),
            vt0: (self.vt0 - 1.0e-3 * (t_kelvin - t0)).max(0.0),
            temp: t_kelvin,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hvt_has_higher_threshold_than_lvt() {
        assert!(MosParams::nmos_hvt_90().vt0 > MosParams::nmos_lvt_90().vt0);
        assert!(MosParams::pmos_hvt_90().vt0 > MosParams::pmos_lvt_90().vt0);
    }

    #[test]
    fn pmos_mobility_lower_than_nmos() {
        assert!(MosParams::pmos_lvt_90().mu_cox < MosParams::nmos_lvt_90().mu_cox);
    }

    #[test]
    fn preset_lookup_matches_constructors() {
        assert_eq!(
            MosParams::preset(MosPolarity::Nmos, VtFlavor::High),
            MosParams::nmos_hvt_90()
        );
        assert_eq!(
            MosParams::preset(MosPolarity::Pmos, VtFlavor::Low),
            MosParams::pmos_lvt_90()
        );
    }

    #[test]
    fn fast_corner_lowers_vt_and_raises_mobility() {
        let nom = MosParams::nmos_hvt_90();
        let ff = nom.at_corner(Corner::Ff);
        assert!(ff.vt0 < nom.vt0);
        assert!(ff.mu_cox > nom.mu_cox);
    }

    #[test]
    fn skew_corners_are_asymmetric() {
        let n = MosParams::nmos_lvt_90().at_corner(Corner::Fs);
        let p = MosParams::pmos_lvt_90().at_corner(Corner::Fs);
        assert!(n.vt0 < MosParams::nmos_lvt_90().vt0, "NMOS fast at FS");
        assert!(p.vt0 > MosParams::pmos_lvt_90().vt0, "PMOS slow at FS");
    }

    #[test]
    fn tt_corner_is_identity() {
        let nom = MosParams::nmos_hvt_90();
        assert_eq!(nom.at_corner(Corner::Tt), nom);
    }

    #[test]
    fn hot_device_is_slower_and_leakier_threshold() {
        let nom = MosParams::nmos_hvt_90();
        let hot = nom.at_temperature(400.0);
        assert!(hot.mu_cox < nom.mu_cox, "mobility degrades with T");
        assert!(hot.vt0 < nom.vt0, "Vt drops with T");
        assert_eq!(hot.temp, 400.0);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn negative_temperature_rejected() {
        let _ = MosParams::nmos_hvt_90().at_temperature(-1.0);
    }

    #[test]
    fn corner_display_and_all() {
        assert_eq!(Corner::ALL.len(), 5);
        assert_eq!(Corner::Tt.to_string(), "TT");
        assert_eq!(Corner::Fs.to_string(), "FS");
    }

    #[test]
    fn polarity_sign() {
        assert_eq!(MosPolarity::Nmos.sign(), 1.0);
        assert_eq!(MosPolarity::Pmos.sign(), -1.0);
    }
}
