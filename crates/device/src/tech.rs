//! Technology-level constants for the 90 nm process the PG-MCML library
//! targets.
//!
//! The paper uses a commercial 90 nm CMOS process; the numbers here are
//! representative public values for that node (supply, oxide capacitance,
//! metal pitch, standard-cell track height). They anchor the layout-area
//! model in `mcml-cells` and default biasing in `mcml-char`.

use serde::{Deserialize, Serialize};

/// A CMOS process technology description.
///
/// All lengths are in metres, capacitances in farads per square metre or
/// farads per metre as noted, voltages in volts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Human-readable node name, e.g. `"cmos90"`.
    pub name: String,
    /// Nominal supply voltage (V). 1.2 V for the 90 nm node.
    pub vdd: f64,
    /// Minimum drawn channel length (m).
    pub l_min: f64,
    /// Minimum drawn transistor width (m).
    pub w_min: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per width (F/m).
    pub c_overlap: f64,
    /// Source/drain junction capacitance per area (F/m²).
    pub cj: f64,
    /// Source/drain junction sidewall capacitance per perimeter (F/m).
    pub cjsw: f64,
    /// Default source/drain diffusion extension (m) used to estimate
    /// junction areas when layout detail is unavailable.
    pub ld_diff: f64,
    /// Routing wire capacitance per length (F/m), used by the fat-wire
    /// wire-load model.
    pub c_wire: f64,
    /// Routing wire resistance per length (Ω/m).
    pub r_wire: f64,
    /// Metal-1 routing pitch (m); the standard-cell placement grid.
    pub m1_pitch: f64,
    /// Standard-cell row height in routing tracks (the Badel et al.
    /// differential-cell methodology uses a fixed-height row template).
    pub cell_height_tracks: u32,
    /// Nominal junction temperature (K).
    pub temp: f64,
}

impl Technology {
    /// The 90 nm CMOS process used throughout the reproduction.
    ///
    /// ```
    /// let t = mcml_device::Technology::cmos90();
    /// assert_eq!(t.vdd, 1.2);
    /// assert!((t.cell_height_um() - 2.8).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn cmos90() -> Self {
        Self {
            name: "cmos90".to_owned(),
            vdd: 1.2,
            l_min: 0.10e-6,
            w_min: 0.12e-6,
            // tox ≈ 2.2 nm -> Cox = eps_ox / tox ≈ 15.7 fF/µm².
            cox: 15.7e-3,
            c_overlap: 0.25e-9,
            cj: 1.0e-3,
            cjsw: 0.15e-9,
            ld_diff: 0.24e-6,
            c_wire: 0.20e-9,
            r_wire: 0.50e6,
            m1_pitch: 0.28e-6,
            cell_height_tracks: 10,
            temp: 300.15,
        }
    }

    /// Standard-cell row height in micrometres
    /// (`cell_height_tracks × m1_pitch`).
    #[must_use]
    pub fn cell_height_um(&self) -> f64 {
        f64::from(self.cell_height_tracks) * self.m1_pitch * 1e6
    }

    /// Thermal voltage `kT/q` (V) at this technology's nominal temperature.
    #[must_use]
    pub fn ut(&self) -> f64 {
        crate::thermal_voltage(self.temp)
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::cmos90()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos90_sanity() {
        let t = Technology::cmos90();
        assert_eq!(t.name, "cmos90");
        assert!(t.l_min < t.w_min * 2.0);
        assert!(t.cox > 10e-3 && t.cox < 25e-3, "Cox plausible for 90 nm");
        assert!(t.ut() > 0.025 && t.ut() < 0.027);
    }

    #[test]
    fn default_is_cmos90() {
        assert_eq!(Technology::default(), Technology::cmos90());
    }

    #[test]
    fn clone_preserves_equality() {
        let t = Technology::cmos90();
        let u = t.clone();
        assert_eq!(t, u);
    }
}
