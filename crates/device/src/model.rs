//! Smooth single-piece MOSFET model (EKV-style) with analytic derivatives.
//!
//! Circuit-level Newton–Raphson needs a drain-current expression that is
//! continuous **and** continuously differentiable over the whole bias plane;
//! the classical piecewise square-law (cutoff / triode / saturation) is
//! neither at its region boundaries. This module instead uses the EKV
//! interpolation
//!
//! ```text
//! Id = Ispec · (F(vp − vs) − F(vp − vd)) · (1 + λ|vds|) · f_vsat
//! F(v) = ln²(1 + exp(v / 2·UT)),   vp = (vgb − VT) / n
//! Ispec = 2 n µCox (W/L) UT²
//! ```
//!
//! which reduces to the square law in strong inversion, to an exponential
//! in weak inversion (subthreshold leakage — the effect power gating
//! exploits), and to a resistive characteristic in the triode region (the
//! MCML active loads), with no seams anywhere. The body effect enters
//! through `VT(vsb)` and a first-order velocity-saturation factor models
//! the short-channel current limit.
//!
//! All equations are NMOS-referenced; PMOS devices are folded in by
//! mirroring every terminal voltage around the bulk.

use serde::{Deserialize, Serialize};

use crate::params::{MosParams, MosPolarity};
use crate::tech::Technology;

/// Drawn geometry of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetGeometry {
    /// Drawn channel width (m).
    pub w: f64,
    /// Drawn channel length (m).
    pub l: f64,
}

impl MosfetGeometry {
    /// Create a geometry, validating that both dimensions are positive.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not strictly positive and finite.
    #[must_use]
    pub fn new(w: f64, l: f64) -> Self {
        assert!(w.is_finite() && w > 0.0, "width must be positive, got {w}");
        assert!(l.is_finite() && l > 0.0, "length must be positive, got {l}");
        Self { w, l }
    }

    /// Aspect ratio `W/L`.
    #[must_use]
    pub fn aspect(&self) -> f64 {
        self.w / self.l
    }
}

/// Operating region classification (diagnostic only; the model itself is
/// single-piece).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosRegion {
    /// Weak inversion: |Vgs| below threshold; only leakage flows.
    Subthreshold,
    /// Strong inversion, |Vds| below the saturation voltage.
    Triode,
    /// Strong inversion, |Vds| above the saturation voltage.
    Saturation,
}

/// Result of evaluating a MOSFET at one bias point.
///
/// `id` is the current flowing **into the drain terminal** (and out of the
/// source); for a conducting PMOS it is therefore negative. The four
/// conductances are the partial derivatives of `id` with respect to the
/// actual terminal voltages, as needed to stamp the device's Newton
/// companion model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosEval {
    /// Drain terminal current (A), positive into the drain.
    pub id: f64,
    /// ∂Id/∂Vg (S).
    pub gm: f64,
    /// ∂Id/∂Vd (S).
    pub gds: f64,
    /// ∂Id/∂Vs (S).
    pub gms: f64,
    /// ∂Id/∂Vb (S).
    pub gmb: f64,
    /// Diagnostic operating region.
    pub region: MosRegion,
    /// Effective threshold voltage magnitude (V) including body effect.
    pub vt_eff: f64,
}

/// A MOSFET instance: parameter set plus drawn geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    /// Model parameters (includes polarity and flavour).
    pub params: MosParams,
    /// Drawn geometry.
    pub geom: MosfetGeometry,
}

/// Numerically safe `ln(1 + exp(x))`.
fn softplus(x: f64) -> f64 {
    if x > 35.0 {
        x
    } else if x < -35.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Numerically safe logistic `exp(x) / (1 + exp(x))`.
fn sigmoid(x: f64) -> f64 {
    if x > 35.0 {
        1.0
    } else if x < -35.0 {
        x.exp()
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Mosfet {
    /// Create a MOSFET from explicit parameters and geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`MosfetGeometry::new`]).
    #[must_use]
    pub fn new(params: MosParams, w: f64, l: f64) -> Self {
        Self {
            params,
            geom: MosfetGeometry::new(w, l),
        }
    }

    /// Convenience constructor for an NMOS.
    ///
    /// # Panics
    ///
    /// Panics if `params` is not an NMOS parameter set or geometry is
    /// invalid.
    #[must_use]
    pub fn nmos(params: MosParams, w: f64, l: f64) -> Self {
        assert_eq!(params.polarity, MosPolarity::Nmos, "expected NMOS params");
        Self::new(params, w, l)
    }

    /// Convenience constructor for a PMOS.
    ///
    /// # Panics
    ///
    /// Panics if `params` is not a PMOS parameter set or geometry is
    /// invalid.
    #[must_use]
    pub fn pmos(params: MosParams, w: f64, l: f64) -> Self {
        assert_eq!(params.polarity, MosPolarity::Pmos, "expected PMOS params");
        Self::new(params, w, l)
    }

    /// Thermal voltage at the device temperature.
    #[must_use]
    pub fn ut(&self) -> f64 {
        crate::thermal_voltage(self.params.temp)
    }

    /// Specific current `Ispec = 2 n µCox (W/L) UT²` (A).
    #[must_use]
    pub fn i_spec(&self) -> f64 {
        let p = &self.params;
        let ut = self.ut();
        2.0 * p.n_slope * p.mu_cox * self.geom.aspect() * ut * ut
    }

    /// Evaluate the device at the given terminal node voltages (V).
    ///
    /// Returns the drain current and its partial derivatives with respect
    /// to each terminal voltage (see [`MosEval`]).
    #[must_use]
    pub fn eval(&self, vg: f64, vd: f64, vs: f64, vb: f64) -> MosEval {
        let p = &self.params;
        let s = p.polarity.sign();
        // Bulk-referenced, polarity-folded voltages: for PMOS these mirror
        // the actual biases so the NMOS equations apply unchanged.
        let vgb = s * (vg - vb);
        let vdb = s * (vd - vb);
        let vsb = s * (vs - vb);

        let ut = self.ut();
        let two_ut = 2.0 * ut;

        // Canonical symmetric EKV: the pinch-off voltage is purely
        // bulk-referenced, so drain and source are exactly interchangeable.
        // The body effect enters through the slope factor: because `vp`
        // couples to the gate with weight 1/n while the channel ends couple
        // with weight 1, the model yields gmb = (n − 1)·gm, the textbook
        // relation. (`gamma` is kept for explicit Vt-shift analysis, see
        // [`Mosfet::vt_shift`].)
        let n = p.n_slope;
        let vp = (vgb - p.vt0) / n;
        let dvp_dvgb = 1.0 / n;

        // Forward and reverse normalised currents.
        let xf = (vp - vsb) / two_ut;
        let xr = (vp - vdb) / two_ut;
        let lf = softplus(xf);
        let lr = softplus(xr);
        let sf = sigmoid(xf);
        let sr = sigmoid(xr);
        let i_f = lf * lf;
        let i_r = lr * lr;

        // d i_f / d(vp - vsb) etc.
        let dif = lf * sf / ut;
        let dir_ = lr * sr / ut;

        let ispec = self.i_spec();
        let core = i_f - i_r;

        // Channel-length modulation, symmetric in Vds.
        let vds = vdb - vsb;
        let g_clm = 1.0 + p.lambda * vds.abs();
        let dclm_dvds = p.lambda * if vds >= 0.0 { 1.0 } else { -1.0 };

        // First-order velocity saturation: degrade the current by the
        // normalised inversion level of the *more inverted* channel end
        // (smooth max keeps drain/source symmetry) against Ecrit·L.
        let vsat_vl = p.vsat_v * (self.geom.l / p.l_ref);
        let a = two_ut * n / vsat_vl;
        let delta = 1e-3_f64;
        let diff = lf - lr;
        let root = (diff * diff + delta * delta).sqrt();
        let lmax = 0.5 * (lf + lr + root);
        let dlmax_dlf = 0.5 * (1.0 + diff / root);
        let dlmax_dlr = 0.5 * (1.0 - diff / root);
        let fvs = 1.0 / (1.0 + a * lmax);
        let dfvs_dlmax = -a * fvs * fvs;

        // d lf / d(argument) and the chain to terminal voltages.
        let dlf = sf / two_ut;
        let dlr = sr / two_ut;
        let dlf_dvgb = dlf * dvp_dvgb;
        let dlf_dvsb = -dlf;
        let dlr_dvgb = dlr * dvp_dvgb;
        let dlr_dvdb = -dlr;

        let id_n = ispec * core * g_clm * fvs;

        // Partials of the NMOS-referenced current w.r.t. the folded
        // voltages. core = i_f(vp − vsb) − i_r(vp − vdb).
        let dcore_dvgb = (dif - dir_) * dvp_dvgb;
        let dcore_dvdb = dir_;
        let dcore_dvsb = -dif;

        let dlmax_dvgb = dlmax_dlf * dlf_dvgb + dlmax_dlr * dlr_dvgb;
        let dlmax_dvdb = dlmax_dlr * dlr_dvdb;
        let dlmax_dvsb = dlmax_dlf * dlf_dvsb;

        let did_dvgb = ispec * g_clm * (dcore_dvgb * fvs + core * dfvs_dlmax * dlmax_dvgb);
        let did_dvdb = ispec
            * (dcore_dvdb * g_clm * fvs
                + core * dclm_dvds * fvs
                + core * g_clm * dfvs_dlmax * dlmax_dvdb);
        let did_dvsb = ispec
            * (dcore_dvsb * g_clm * fvs - core * dclm_dvds * fvs
                + core * g_clm * dfvs_dlmax * dlmax_dvsb);

        // Fold back to actual terminal voltages. I_actual = s · id_n and
        // each folded voltage differentiates with factor s, so the
        // conductances keep their NMOS-referenced values.
        let id = s * id_n;
        let gm = did_dvgb;
        let gds = did_dvdb;
        let gms = did_dvsb;
        // Shifting all four terminals together leaves the current
        // unchanged, pinning the bulk transconductance.
        let gmb = -(gm + gds + gms);

        // Diagnostic region from the normalised inversion levels.
        let region = if xf < 0.0 {
            MosRegion::Subthreshold
        } else if xr > 0.0 {
            MosRegion::Triode
        } else {
            MosRegion::Saturation
        };

        MosEval {
            id,
            gm,
            gds,
            gms,
            gmb,
            region,
            vt_eff: p.vt0 + self.vt_shift(vsb),
        }
    }

    /// Classical body-effect threshold shift `γ(√(φ + Vsb) − √φ)` (V) for a
    /// source-to-bulk voltage `vsb` (folded, NMOS-referenced).
    ///
    /// The dynamic model in [`Mosfet::eval`] carries the body effect through
    /// the slope factor; this explicit expression is provided for bias-range
    /// analysis, e.g. computing the well voltage required by the paper's
    /// discarded power-gating topology (c).
    #[must_use]
    pub fn vt_shift(&self, vsb: f64) -> f64 {
        let p = &self.params;
        let eps = 0.05_f64;
        let x = p.phi + vsb;
        let xe = 0.5 * (x + (x * x + 4.0 * eps * eps).sqrt());
        p.gamma * (xe.sqrt() - p.phi.sqrt())
    }

    /// Gate-to-source capacitance estimate (F): half the channel charge
    /// plus overlap.
    #[must_use]
    pub fn cgs(&self, tech: &Technology) -> f64 {
        0.5 * self.geom.w * self.geom.l * self.params.cox + self.geom.w * tech.c_overlap
    }

    /// Gate-to-drain capacitance estimate (F).
    #[must_use]
    pub fn cgd(&self, tech: &Technology) -> f64 {
        self.cgs(tech)
    }

    /// Drain-to-bulk junction capacitance estimate (F), from the default
    /// diffusion extension.
    #[must_use]
    pub fn cdb(&self, tech: &Technology) -> f64 {
        let area = self.geom.w * tech.ld_diff;
        let perim = 2.0 * tech.ld_diff + self.geom.w;
        area * tech.cj + perim * tech.cjsw
    }

    /// Source-to-bulk junction capacitance estimate (F).
    #[must_use]
    pub fn sb_cap(&self, tech: &Technology) -> f64 {
        self.cdb(tech)
    }

    /// Total gate capacitance estimate (F), the load a driving stage sees.
    #[must_use]
    pub fn gate_cap(&self, tech: &Technology) -> f64 {
        self.geom.w * self.geom.l * self.params.cox + 2.0 * self.geom.w * tech.c_overlap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MosParams;

    fn nmos() -> Mosfet {
        Mosfet::nmos(MosParams::nmos_hvt_90(), 1.0e-6, 0.1e-6)
    }

    fn pmos() -> Mosfet {
        Mosfet::pmos(MosParams::pmos_lvt_90(), 1.0e-6, 0.1e-6)
    }

    /// Finite-difference check of all four conductances at one bias point.
    fn check_derivs(m: &Mosfet, vg: f64, vd: f64, vs: f64, vb: f64) {
        let h = 1e-7;
        let e = m.eval(vg, vd, vs, vb);
        let num_gm = (m.eval(vg + h, vd, vs, vb).id - m.eval(vg - h, vd, vs, vb).id) / (2.0 * h);
        let num_gds = (m.eval(vg, vd + h, vs, vb).id - m.eval(vg, vd - h, vs, vb).id) / (2.0 * h);
        let num_gms = (m.eval(vg, vd, vs + h, vb).id - m.eval(vg, vd, vs - h, vb).id) / (2.0 * h);
        let num_gmb = (m.eval(vg, vd, vs, vb + h).id - m.eval(vg, vd, vs, vb - h).id) / (2.0 * h);
        let scale = e.gm.abs().max(e.gds.abs()).max(e.gms.abs()).max(1e-9);
        let tol = 1e-3 * scale + 1e-10;
        assert!(
            (e.gm - num_gm).abs() < tol,
            "gm analytic {} vs numeric {} at ({vg},{vd},{vs},{vb})",
            e.gm,
            num_gm
        );
        assert!(
            (e.gds - num_gds).abs() < tol,
            "gds analytic {} vs numeric {} at ({vg},{vd},{vs},{vb})",
            e.gds,
            num_gds
        );
        assert!(
            (e.gms - num_gms).abs() < tol,
            "gms analytic {} vs numeric {} at ({vg},{vd},{vs},{vb})",
            e.gms,
            num_gms
        );
        assert!(
            (e.gmb - num_gmb).abs() < tol,
            "gmb analytic {} vs numeric {} at ({vg},{vd},{vs},{vb})",
            e.gmb,
            num_gmb
        );
    }

    #[test]
    fn derivatives_match_finite_difference_nmos() {
        let m = nmos();
        for &(vg, vd, vs) in &[
            (0.6, 1.2, 0.0),
            (0.9, 0.1, 0.0),
            (0.3, 0.6, 0.0),
            (0.0, 1.2, 0.0),
            (0.8, 0.8, 0.2),
            (1.2, 0.05, 0.0),
        ] {
            check_derivs(&m, vg, vd, vs, 0.0);
        }
    }

    #[test]
    fn derivatives_match_finite_difference_pmos() {
        let m = pmos();
        for &(vg, vd, vs) in &[
            (0.6, 0.0, 1.2),
            (0.2, 1.0, 1.2),
            (0.9, 0.5, 1.2),
            (1.2, 0.0, 1.2),
            (0.0, 1.1, 1.2),
        ] {
            check_derivs(&m, vg, vd, vs, 1.2);
        }
    }

    #[test]
    fn derivatives_with_body_bias() {
        let m = nmos();
        check_derivs(&m, 0.7, 1.0, 0.2, 0.0); // reverse body bias
        check_derivs(&m, 0.7, 1.0, 0.0, 0.3); // forward body bias
    }

    #[test]
    fn saturation_current_roughly_square_law() {
        let m = nmos();
        let vt = m.params.vt0;
        let i1 = m.eval(vt + 0.2, 1.2, 0.0, 0.0).id;
        let i2 = m.eval(vt + 0.4, 1.2, 0.0, 0.0).id;
        let ratio = i2 / i1;
        // Square law predicts 4×; velocity saturation and n pull it down.
        assert!(
            ratio > 2.2 && ratio < 4.5,
            "overdrive doubling ratio {ratio}"
        );
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        let m = nmos();
        let i1 = m.eval(0.10, 1.2, 0.0, 0.0).id;
        let i2 = m.eval(0.20, 1.2, 0.0, 0.0).id;
        let decades = (i2 / i1).log10();
        // 100 mV at n≈1.4, UT≈25.9 mV -> 100 / (1.4·59.6) ≈ 1.2 decades.
        assert!(
            decades > 0.8 && decades < 1.6,
            "subthreshold decades per 100 mV: {decades}"
        );
    }

    #[test]
    fn triode_region_is_resistive() {
        let m = nmos();
        let i1 = m.eval(1.2, 0.02, 0.0, 0.0).id;
        let i2 = m.eval(1.2, 0.04, 0.0, 0.0).id;
        let lin = i2 / i1;
        assert!(
            (lin - 2.0).abs() < 0.15,
            "small-Vds current should be linear, got ratio {lin}"
        );
        assert_eq!(m.eval(1.2, 0.02, 0.0, 0.0).region, MosRegion::Triode);
    }

    #[test]
    fn model_is_drain_source_symmetric() {
        let m = nmos();
        let fwd = m.eval(0.8, 0.9, 0.1, 0.0).id;
        let rev = m.eval(0.8, 0.1, 0.9, 0.0).id;
        assert!(
            (fwd + rev).abs() < 1e-3 * fwd.abs().max(rev.abs()),
            "fwd {fwd} rev {rev}"
        );
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let m = nmos();
        assert!(m.eval(1.0, 0.4, 0.4, 0.0).id.abs() < 1e-15);
    }

    #[test]
    fn reverse_body_bias_reduces_current() {
        let m = nmos();
        let nominal = m.eval(0.6, 1.2, 0.0, 0.0).id;
        let rbb = m.eval(0.6, 1.2, 0.0, -0.4).id;
        assert!(rbb < nominal, "RBB raises Vt and must reduce Id");
    }

    #[test]
    fn forward_body_bias_increases_current() {
        let m = nmos();
        let nominal = m.eval(0.5, 1.2, 0.0, 0.0).id;
        let fbb = m.eval(0.5, 1.2, 0.0, 0.3).id;
        assert!(fbb > nominal, "FBB lowers Vt and must increase Id");
    }

    #[test]
    fn pmos_conducts_negative_drain_current() {
        let m = pmos();
        // Source at Vdd, gate low: strongly on, current flows source->drain
        // i.e. *out of* the drain terminal.
        let e = m.eval(0.0, 0.0, 1.2, 1.2);
        assert!(e.id < -1e-6, "on PMOS drain current {}", e.id);
        assert!(e.gm != 0.0);
    }

    #[test]
    fn hvt_leaks_orders_of_magnitude_less_than_lvt() {
        let lvt = Mosfet::nmos(MosParams::nmos_lvt_90(), 1.0e-6, 0.1e-6);
        let hvt = Mosfet::nmos(MosParams::nmos_hvt_90(), 1.0e-6, 0.1e-6);
        let leak_l = lvt.eval(0.0, 1.2, 0.0, 0.0).id;
        let leak_h = hvt.eval(0.0, 1.2, 0.0, 0.0).id;
        assert!(leak_l > 0.0 && leak_h > 0.0);
        assert!(
            leak_l / leak_h > 5.0,
            "LVT/HVT leakage ratio {}",
            leak_l / leak_h
        );
    }

    #[test]
    fn negative_vgs_cuts_leakage_further() {
        // The paper's sleep topology (d) gives the sleep transistor a
        // negative VGS during power-down, "decreasing the leakage current".
        let m = nmos();
        let at_zero = m.eval(0.0, 1.2, 0.0, 0.0).id;
        let at_neg = m.eval(-0.15, 1.2, 0.0, 0.0).id;
        assert!(
            at_neg < at_zero / 5.0,
            "negative VGS leakage {at_neg} vs zero-VGS {at_zero}"
        );
    }

    #[test]
    fn current_scales_with_width() {
        let narrow = Mosfet::nmos(MosParams::nmos_hvt_90(), 1.0e-6, 0.1e-6);
        let wide = Mosfet::nmos(MosParams::nmos_hvt_90(), 4.0e-6, 0.1e-6);
        let i_n = narrow.eval(0.7, 1.2, 0.0, 0.0).id;
        let i_w = wide.eval(0.7, 1.2, 0.0, 0.0).id;
        assert!(((i_w / i_n) - 4.0).abs() < 0.05, "ratio {}", i_w / i_n);
    }

    #[test]
    fn velocity_saturation_limits_long_vs_short() {
        let p = MosParams::nmos_hvt_90();
        let short = Mosfet::nmos(p.clone(), 1.0e-6, 0.1e-6);
        let long = Mosfet::nmos(p, 4.0e-6, 0.4e-6); // same W/L
        let i_s = short.eval(1.2, 1.2, 0.0, 0.0).id;
        let i_l = long.eval(1.2, 1.2, 0.0, 0.0).id;
        assert!(
            i_l > i_s,
            "same W/L but longer channel suffers less velocity saturation: {i_l} vs {i_s}"
        );
    }

    #[test]
    fn region_classification() {
        let m = nmos();
        assert_eq!(m.eval(0.1, 1.2, 0.0, 0.0).region, MosRegion::Subthreshold);
        assert_eq!(m.eval(1.2, 1.2, 0.0, 0.0).region, MosRegion::Saturation);
        assert_eq!(m.eval(1.2, 0.1, 0.0, 0.0).region, MosRegion::Triode);
    }

    #[test]
    fn capacitances_positive_and_width_scaled() {
        let t = Technology::cmos90();
        let m1 = Mosfet::nmos(MosParams::nmos_hvt_90(), 1.0e-6, 0.1e-6);
        let m2 = Mosfet::nmos(MosParams::nmos_hvt_90(), 2.0e-6, 0.1e-6);
        for c in [m1.cgs(&t), m1.cgd(&t), m1.cdb(&t), m1.sb_cap(&t)] {
            assert!(c > 0.0);
        }
        assert!(m2.gate_cap(&t) > 1.5 * m1.gate_cap(&t));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_rejected() {
        let _ = MosfetGeometry::new(0.0, 0.1e-6);
    }

    #[test]
    #[should_panic(expected = "expected NMOS params")]
    fn nmos_constructor_rejects_pmos_params() {
        let _ = Mosfet::nmos(MosParams::pmos_lvt_90(), 1e-6, 1e-7);
    }

    #[test]
    fn softplus_extremes() {
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) > 0.0);
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(sigmoid(100.0), 1.0);
        assert!(sigmoid(-100.0) < 1e-20);
    }
}
