//! Run-report capture, deterministic JSON serialisation, and the
//! human-readable stage summary.
//!
//! The JSON is hand-rolled on purpose: the report must be byte-identical
//! for identical counter totals (fixed key order, integers only, fixed
//! indentation), and the crate takes no dependencies. The schema is
//! documented field-by-field in `docs/OBSERVABILITY.md`.

use crate::counters::{self, Counter};
use crate::span::{self, Stage};
use std::fmt::Write as _;

/// Schema identifier written into every report.
pub const SCHEMA: &str = "mcml-obs/1";

/// Busy time and call count of one [`Stage`], as captured in a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Number of completed spans of the stage.
    pub calls: u64,
    /// Accumulated busy nanoseconds across all spans (sums across
    /// concurrent workers, so it can exceed the run's wall-clock).
    pub busy_ns: u64,
}

/// A point-in-time snapshot of every counter and stage timer.
///
/// Captured by [`RunReport::capture`] (usually via [`crate::finish`]).
/// The `counters` section is deterministic under any `MCML_THREADS`; the
/// `stages` and `elapsed_ns` sections are wall-clock and are excluded
/// from determinism comparisons — use [`RunReport::deterministic_totals`]
/// for equality tests.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the run (e.g. the bench binary: `"table2"`).
    pub run: String,
    /// Worker-thread count the run executed with.
    pub threads: usize,
    /// Wall-clock nanoseconds since the last [`crate::reset`].
    pub elapsed_ns: u64,
    /// Every counter's aggregate total, in [`Counter::ALL`] order.
    pub counters: [u64; Counter::COUNT],
    /// Every stage's snapshot, in [`Stage::ALL`] order.
    pub stages: [StageSnapshot; Stage::COUNT],
}

impl RunReport {
    /// Snapshot the current totals into a report.
    #[must_use]
    pub fn capture(run: &str, threads: usize) -> Self {
        let mut counter_totals = [0u64; Counter::COUNT];
        for (slot, c) in counter_totals.iter_mut().zip(Counter::ALL) {
            *slot = counters::total(c);
        }
        let mut stage_snaps = [StageSnapshot {
            calls: 0,
            busy_ns: 0,
        }; Stage::COUNT];
        for (slot, s) in stage_snaps.iter_mut().zip(Stage::ALL) {
            let (busy_ns, calls) = span::stage_totals(s);
            *slot = StageSnapshot { calls, busy_ns };
        }
        RunReport {
            run: run.to_owned(),
            threads,
            elapsed_ns: crate::elapsed_ns(),
            counters: counter_totals,
            stages: stage_snaps,
        }
    }

    /// Total of one counter in this snapshot.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Snapshot of one stage in this report.
    #[must_use]
    pub fn stage(&self, s: Stage) -> StageSnapshot {
        self.stages[s as usize]
    }

    /// The `(name, total)` pairs that must be identical for identical
    /// workloads regardless of `MCML_THREADS` — i.e. everything except
    /// wall-clock. Sorted by counter name, like the JSON.
    #[must_use]
    pub fn deterministic_totals(&self) -> Vec<(&'static str, u64)> {
        let mut rows: Vec<(&'static str, u64)> = Counter::ALL
            .iter()
            .map(|&c| (c.name(), self.counter(c)))
            .collect();
        rows.sort_unstable_by_key(|&(name, _)| name);
        rows
    }

    /// Serialise to the deterministic `mcml-obs/1` JSON document.
    ///
    /// Counter keys are sorted by name and **all** counters are present
    /// even when zero, so the key set is a schema constant; stage keys
    /// follow [`Stage::ALL`] order, restricted to stages that ran.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"run\": \"{}\",", escape(&self.run));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"elapsed_ns\": {},", self.elapsed_ns);
        out.push_str("  \"counters\": {\n");
        let rows = self.deterministic_totals();
        for (i, (name, total)) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {total}{comma}");
        }
        out.push_str("  },\n");
        out.push_str("  \"stages\": {\n");
        let ran: Vec<Stage> = Stage::ALL
            .iter()
            .copied()
            .filter(|&s| self.stage(s).calls > 0)
            .collect();
        for (i, s) in ran.iter().enumerate() {
            let snap = self.stage(*s);
            let comma = if i + 1 < ran.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    \"{}\": {{ \"calls\": {}, \"busy_ns\": {} }}{comma}",
                s.name(),
                snap.calls,
                snap.busy_ns
            );
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }

    /// Write the JSON document to `path`.
    ///
    /// # Errors
    /// Propagates the underlying [`std::fs::write`] failure (permission,
    /// missing parent directory, full disk, …).
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The human-readable stage-by-stage table printed at [`crate::finish`].
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(
            out,
            "[mcml-obs] run {:<18} threads={} wall {}",
            self.run,
            self.threads,
            fmt_ns(self.elapsed_ns)
        );
        let _ = writeln!(
            out,
            "[mcml-obs] {:<18} {:>8} {:>12}",
            "stage", "calls", "busy"
        );
        for s in Stage::ALL {
            let snap = self.stage(s);
            if snap.calls == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "[mcml-obs] {:<18} {:>8} {:>12}",
                s.name(),
                snap.calls,
                fmt_ns(snap.busy_ns)
            );
        }
        let busy = self.stage(Stage::WorkerBusy).busy_ns;
        if busy > 0 && self.elapsed_ns > 0 && self.threads > 0 {
            #[allow(clippy::cast_precision_loss)] // display only
            let util = busy as f64 / (self.elapsed_ns as f64 * self.threads as f64);
            let _ = writeln!(
                out,
                "[mcml-obs] worker utilisation {:.0}% of {} thread(s)",
                (util * 100.0).min(100.0),
                self.threads
            );
        }
        let _ = write!(out, "[mcml-obs] counters:");
        let mut any = false;
        for (name, total) in self.deterministic_totals() {
            if total == 0 {
                continue;
            }
            any = true;
            let _ = write!(out, " {name}={total}");
        }
        if !any {
            let _ = write!(out, " (all zero)");
        }
        out.push('\n');
        out
    }
}

/// Capture a report for `run` over `threads` workers and write it to
/// `path` in one step.
///
/// # Errors
/// Propagates the underlying [`std::fs::write`] failure.
pub fn write_json(run: &str, threads: usize, path: &str) -> std::io::Result<RunReport> {
    let report = RunReport::capture(run, threads);
    report.write_to(path)?;
    Ok(report)
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render nanoseconds with an adaptive unit for the summary table.
fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)] // display only
    let ns_f = ns as f64;
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns_f / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns_f / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns_f / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let report = RunReport {
            run: "unit".into(),
            threads: 2,
            elapsed_ns: 1234,
            counters: [0; Counter::COUNT],
            stages: [StageSnapshot {
                calls: 0,
                busy_ns: 0,
            }; Stage::COUNT],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"mcml-obs/1\",\n"));
        assert!(json.contains("\"run\": \"unit\""));
        assert!(json.contains("\"threads\": 2"));
        // All counters present even when zero.
        for c in Counter::ALL {
            assert!(
                json.contains(&format!("\"{}\": 0", c.name())),
                "{}",
                c.name()
            );
        }
        // Idle stages omitted.
        assert!(json.contains("\"stages\": {\n  }"));
    }

    #[test]
    fn json_counters_sorted() {
        let report = RunReport {
            run: "unit".into(),
            threads: 1,
            elapsed_ns: 0,
            counters: [0; Counter::COUNT],
            stages: [StageSnapshot {
                calls: 0,
                busy_ns: 0,
            }; Stage::COUNT],
        };
        let names: Vec<&str> = report.deterministic_totals().iter().map(|r| r.0).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
