//! Wall-clock span timers for pipeline stages.
//!
//! A [`span`] returns an RAII guard that, on drop, adds the elapsed
//! nanoseconds to the stage's accumulator and bumps its call count.
//! Spans nest freely — each guard measures its own interval, so a
//! nested stage's time is also inside its parent's total, the same
//! convention as flat profiler output. Accumulators are plain atomics:
//! concurrent spans of the same stage sum their intervals, which is why
//! the summary reports *busy* time (can exceed wall-clock under
//! parallelism) next to the run's wall-clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Pipeline stages with a dedicated wall-clock accumulator.
///
/// Stage timings are machine-dependent by nature; they live in the
/// `stages` section of the report, which determinism tests ignore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Standard-cell characterisation (`mcml-char`).
    Characterize,
    /// Tail-bias sweep (`mcml-char`).
    BiasSweep,
    /// Process-corner sweep (`mcml-char`).
    CornerSweep,
    /// Event-driven gate-level simulation (`mcml-sim`).
    EventSim,
    /// Toggle-count → current-waveform power model (`mcml-sim`).
    PowerModel,
    /// Sleep-tree sizing (`mcml-core`).
    SleepTree,
    /// Power-trace acquisition (`mcml-dpa` via `mcml-core`).
    TraceAcquisition,
    /// Transistor-level SPICE tier of fig. 6 (`mcml-core`).
    SpiceTier,
    /// One transient analysis, DC operating point to final step
    /// (`mcml-spice`).
    Transient,
    /// One ensemble transient — N input vectors marched lockstep over a
    /// shared stamp plan and symbolic LU (`mcml-spice`).
    EnsembleTran,
    /// Connected-component partition of a transient's MNA system:
    /// pinned-rail fixpoint, union-find over the coupling graph, block
    /// sub-circuit construction and per-block engine setup
    /// (`mcml-spice`).
    Partition,
    /// Correlation power analysis (`mcml-dpa`).
    Cpa,
    /// Welch t-test leakage assessment (`mcml-dpa`).
    Tvla,
    /// Parallel batch dispatch, queue-to-done (`mcml-exec`).
    ParallelMap,
    /// Time workers spent executing items (`mcml-exec`); summed across
    /// workers, so this exceeds wall-clock on multi-thread runs — the
    /// summary derives per-worker utilisation from it.
    WorkerBusy,
    /// Static rule checking of netlists and circuits (`mcml-lint`).
    Lint,
    /// Dataflow fixpoint analyses — secret taint, activity bounds and
    /// the static leakage score — over a netlist (`mcml-lint`); nested
    /// inside the `lint` span when driven by the rule engine.
    Dataflow,
    /// MNA Jacobian/residual assembly inside the Newton loop
    /// (`mcml-spice`).
    MnaAssemble,
    /// Linear-system factorisation — dense LU, sparse symbolic+numeric,
    /// or sparse numeric-only refactorisation (`mcml-spice`).
    LuFactor,
    /// Triangular solves against the computed factors (`mcml-spice`).
    LuSolve,
    /// One derivative-free optimization run, first sample to returned
    /// optimum (`mcml-opt`).
    Opt,
}

impl Stage {
    /// Every stage, in declaration order.
    pub const ALL: [Stage; 21] = [
        Stage::Characterize,
        Stage::BiasSweep,
        Stage::CornerSweep,
        Stage::EventSim,
        Stage::PowerModel,
        Stage::SleepTree,
        Stage::TraceAcquisition,
        Stage::SpiceTier,
        Stage::Transient,
        Stage::EnsembleTran,
        Stage::Partition,
        Stage::Cpa,
        Stage::Tvla,
        Stage::ParallelMap,
        Stage::WorkerBusy,
        Stage::Lint,
        Stage::Dataflow,
        Stage::MnaAssemble,
        Stage::LuFactor,
        Stage::LuSolve,
        Stage::Opt,
    ];

    /// Number of stages (size of the accumulator arrays).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report key.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Characterize => "characterize",
            Stage::BiasSweep => "bias_sweep",
            Stage::CornerSweep => "corner_sweep",
            Stage::EventSim => "event_sim",
            Stage::PowerModel => "power_model",
            Stage::SleepTree => "sleep_tree",
            Stage::TraceAcquisition => "trace_acquisition",
            Stage::SpiceTier => "spice_tier",
            Stage::Transient => "transient",
            Stage::EnsembleTran => "ensemble_tran",
            Stage::Partition => "partition",
            Stage::Cpa => "cpa",
            Stage::Tvla => "tvla",
            Stage::ParallelMap => "parallel_map",
            Stage::WorkerBusy => "worker_busy",
            Stage::Lint => "lint",
            Stage::Dataflow => "dataflow",
            Stage::MnaAssemble => "mna_assemble",
            Stage::LuFactor => "lu_factor",
            Stage::LuSolve => "lu_solve",
            Stage::Opt => "opt",
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)] // static-array-of-atomics init
const ZERO: AtomicU64 = AtomicU64::new(0);
static STAGE_NANOS: [AtomicU64; Stage::COUNT] = [ZERO; Stage::COUNT];
static STAGE_CALLS: [AtomicU64; Stage::COUNT] = [ZERO; Stage::COUNT];

/// RAII timer: accumulates into its [`Stage`] when dropped.
///
/// Obtained from [`span`]. When observability is off the guard holds no
/// start time and drop does nothing — not even a clock read.
#[must_use = "a span guard times until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    stage: Stage,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            STAGE_NANOS[self.stage as usize].fetch_add(ns, Ordering::Relaxed);
            STAGE_CALLS[self.stage as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Start timing `stage`; the returned guard accumulates on drop.
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    let start = if crate::enabled() {
        Some(Instant::now())
    } else {
        None
    };
    SpanGuard { stage, start }
}

/// Time a closure as one span of `stage` and return its result.
#[inline]
pub fn time<T>(stage: Stage, f: impl FnOnce() -> T) -> T {
    let _guard = span(stage);
    f()
}

/// Accumulated (busy) nanoseconds and call count for a stage.
#[must_use]
pub fn stage_totals(stage: Stage) -> (u64, u64) {
    (
        STAGE_NANOS[stage as usize].load(Ordering::Relaxed),
        STAGE_CALLS[stage as usize].load(Ordering::Relaxed),
    )
}

pub(crate) fn reset_all() {
    for i in 0..Stage::COUNT {
        STAGE_NANOS[i].store(0, Ordering::Relaxed);
        STAGE_CALLS[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_unique() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate stage name");
    }
}
