//! Deduplicated process-level warnings.
//!
//! Configuration knobs (`MCML_SPICE_BYPASS`, `MCML_SPICE_PARTITION`, …)
//! are parsed once per process; a typo in one would otherwise be silently
//! treated as a default. [`warn_once`] gives those parse sites a single
//! place to complain: the first call for a topic prints one line to
//! stderr and records it, repeats are no-ops, and tests can inspect what
//! fired via [`warnings`].
//!
//! Warnings are diagnostics, not measurements: they fire even when the
//! observability [`Mode`](crate::Mode) is `Off`, and [`reset`](crate::reset)
//! does not clear them (the knob sites that use them only parse once per
//! process anyway).

use std::sync::Mutex;

static WARNINGS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

/// Record and print a warning once per `topic`.
///
/// The first call for a given topic writes `warning: <message>` to stderr
/// and returns `true`; later calls with the same topic (whatever their
/// message) are silent and return `false`.
pub fn warn_once(topic: &str, message: &str) -> bool {
    let mut log = WARNINGS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if log.iter().any(|(t, _)| t == topic) {
        return false;
    }
    eprintln!("warning: {message}");
    log.push((topic.to_owned(), message.to_owned()));
    true
}

/// Snapshot of every `(topic, message)` recorded so far, in firing order.
#[must_use]
pub fn warnings() -> Vec<(String, String)> {
    WARNINGS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warn_once_dedups_by_topic() {
        assert!(warn_once("test-topic", "first"));
        assert!(!warn_once("test-topic", "second"));
        let all = warnings();
        let mine: Vec<_> = all.iter().filter(|(t, _)| t == "test-topic").collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].1, "first");
    }

    #[test]
    fn distinct_topics_both_fire() {
        assert!(warn_once("test-topic-a", "a"));
        assert!(warn_once("test-topic-b", "b"));
    }
}
