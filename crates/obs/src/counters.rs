//! The counter registry and its sharded atomic storage.
//!
//! Counters are a closed set (an enum, not string interning) so the hot
//! path never hashes a name or allocates: an increment is a thread-local
//! shard lookup plus one `fetch_add(Relaxed)`. Shards exist only to keep
//! concurrent workers off each other's cache lines; totals are the sum
//! over shards and are therefore independent of how work was scheduled.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Every named counter in the workspace.
///
/// The `name()` strings (`<crate-area>.<what>`) are the keys of the
/// `counters` object in `report.json`; units and emitting crates are
/// documented per counter in `docs/OBSERVABILITY.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// DC operating points solved (`mcml-spice`).
    DcSolves,
    /// Transient analyses run (`mcml-spice`).
    Transients,
    /// Accepted transient time steps (`mcml-spice`).
    TranSteps,
    /// Transient step subdivisions after a Newton failure (`mcml-spice`).
    TranRetries,
    /// Adaptive transient steps rejected by the LTE controller
    /// (`mcml-spice`).
    LteRejects,
    /// Steps accepted by the adaptive LTE controller — a subset of
    /// `TranSteps` taken on the variable grid (`mcml-spice`).
    AdaptiveSteps,
    /// Adaptive step-size growths in quiet regions (`mcml-spice`).
    HGrowths,
    /// Newton–Raphson iterations (`mcml-spice`).
    NrIterations,
    /// MOSFET model evaluations actually executed (`mcml-spice`).
    MosEvals,
    /// MOSFET evaluations skipped by the quiescent-device bypass: the
    /// cached linearization was reused because no terminal voltage moved
    /// more than the bypass tolerance since it was recorded
    /// (`mcml-spice`).
    MosBypassed,
    /// Ensemble transient lanes launched — each lane is one input vector
    /// marched lockstep over the shared stamp plan (`mcml-spice`).
    EnsembleLanes,
    /// Per-lane LU refactorisations actually performed inside an
    /// ensemble transient; the gap to `MatrixSolves` is the lanes that
    /// reused factors because their Jacobian values were provably
    /// unchanged (`mcml-spice`).
    LaneRefactors,
    /// Linear-system factor/solve calls (`mcml-spice`).
    MatrixSolves,
    /// Sparse solves that reused an existing symbolic factorisation
    /// (elimination order + fill pattern) instead of re-analysing
    /// (`mcml-spice`).
    SymbolicReuse,
    /// Numeric-only sparse refactorisations attempted on a fixed pivot
    /// order; includes the rare attempts that fell back to a fresh
    /// symbolic factorisation on a degraded pivot (`mcml-spice`).
    NumericRefactor,
    /// Constant linear matrix stamps served from the pre-accumulated
    /// `StampPlan` base instead of being re-evaluated per Newton
    /// iteration (`mcml-spice`).
    LinearStampsSkipped,
    /// Solve blocks produced by the connected-component partition of a
    /// transient's MNA system, summed over partitioned transients; a
    /// monolithic run contributes nothing (`mcml-spice`).
    PartitionBlocks,
    /// Per-block Newton solves actually executed by the partitioned
    /// scheduler on committed sub-steps (`mcml-spice`).
    BlockSolves,
    /// Per-block solves skipped because neither the block's own state
    /// nor any upstream interface voltage moved beyond the skip
    /// tolerance; `block_solves + block_skips == blocks x committed
    /// sub-steps` per partitioned run (`mcml-spice`).
    BlockSkips,
    /// Characterisation-cache lookups (`mcml-char`).
    CacheLookups,
    /// Characterisation-cache lookups served from memory (`mcml-char`).
    CacheHits,
    /// Characterisation-cache lookups that ran the measurements (`mcml-char`).
    CacheMisses,
    /// Full cell characterisations executed (`mcml-char`).
    CellsCharacterized,
    /// Bias/corner sweep points measured (`mcml-char`).
    SweepPoints,
    /// `parallel_map`/`chunked_sum` batches dispatched (`mcml-exec`).
    ParallelBatches,
    /// Work items executed by the runner, serial or parallel (`mcml-exec`).
    TasksRun,
    /// Event-driven simulation runs (`mcml-sim`).
    EventSimRuns,
    /// Net transitions recorded by the event simulator (`mcml-sim`).
    NetTransitions,
    /// Power traces acquired into trace sets (`mcml-dpa`).
    TracesAcquired,
    /// Fixed-size trace chunks folded by the Pearson accumulation (`mcml-dpa`).
    PearsonChunks,
    /// Fixed-size trace chunks folded by the Welch t-test (`mcml-dpa`).
    WelchChunks,
    /// Zero-variance correlation cells short-circuited to 0 (`mcml-dpa`).
    ZeroVarianceSkipped,
    /// Lint rules evaluated against a target (`mcml-lint`).
    LintRulesRun,
    /// Lint diagnostics emitted at warn or deny severity (`mcml-lint`).
    LintDiagnostics,
    /// Lint diagnostics suppressed by a configured waiver (`mcml-lint`).
    LintWaived,
    /// Dataflow fixpoint solves over a netlist — one per analysed
    /// target, covering taint, activity and score together (`mcml-lint`).
    DataflowRuns,
    /// Gate transfer-function applications inside the dataflow worklist
    /// solver, summed over all analyses (`mcml-lint`).
    DataflowGateEvals,
    /// Nets the secret-taint analysis marked tainted (`mcml-lint`).
    DataflowTaintedNets,
    /// Optimizer generations advanced — one per population the solver
    /// sampled, evaluated and folded into its state (`mcml-opt`).
    OptGenerations,
    /// Objective evaluations requested by an optimizer, feasible or not;
    /// cache hits still count — the solver asked (`mcml-opt`).
    OptEvals,
    /// Candidate sizings rejected by the feasibility oracle (parameter
    /// validation, bias solvability, lint, Iss budget) and charged the
    /// penalty cost instead of a measurement (`mcml-opt`).
    OptInfeasible,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 41] = [
        Counter::DcSolves,
        Counter::Transients,
        Counter::TranSteps,
        Counter::TranRetries,
        Counter::LteRejects,
        Counter::AdaptiveSteps,
        Counter::HGrowths,
        Counter::NrIterations,
        Counter::MosEvals,
        Counter::MosBypassed,
        Counter::EnsembleLanes,
        Counter::LaneRefactors,
        Counter::MatrixSolves,
        Counter::SymbolicReuse,
        Counter::NumericRefactor,
        Counter::LinearStampsSkipped,
        Counter::PartitionBlocks,
        Counter::BlockSolves,
        Counter::BlockSkips,
        Counter::CacheLookups,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CellsCharacterized,
        Counter::SweepPoints,
        Counter::ParallelBatches,
        Counter::TasksRun,
        Counter::EventSimRuns,
        Counter::NetTransitions,
        Counter::TracesAcquired,
        Counter::PearsonChunks,
        Counter::WelchChunks,
        Counter::ZeroVarianceSkipped,
        Counter::LintRulesRun,
        Counter::LintDiagnostics,
        Counter::LintWaived,
        Counter::DataflowRuns,
        Counter::DataflowGateEvals,
        Counter::DataflowTaintedNets,
        Counter::OptGenerations,
        Counter::OptEvals,
        Counter::OptInfeasible,
    ];

    /// Number of counters (size of the storage rows).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report key, `<area>.<what>`.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Counter::DcSolves => "spice.dc_solves",
            Counter::Transients => "spice.transients",
            Counter::TranSteps => "spice.tran_steps",
            Counter::TranRetries => "spice.tran_retries",
            Counter::LteRejects => "spice.lte_rejects",
            Counter::AdaptiveSteps => "spice.adaptive_steps",
            Counter::HGrowths => "spice.h_growths",
            Counter::NrIterations => "spice.nr_iterations",
            Counter::MosEvals => "spice.mos_evals",
            Counter::MosBypassed => "spice.mos_bypassed",
            Counter::EnsembleLanes => "spice.ensemble_lanes",
            Counter::LaneRefactors => "spice.lane_refactors",
            Counter::MatrixSolves => "spice.matrix_solves",
            Counter::SymbolicReuse => "spice.symbolic_reuse",
            Counter::NumericRefactor => "spice.numeric_refactor",
            Counter::LinearStampsSkipped => "spice.linear_stamps_skipped",
            Counter::PartitionBlocks => "spice.partition_blocks",
            Counter::BlockSolves => "spice.block_solves",
            Counter::BlockSkips => "spice.block_skips",
            Counter::CacheLookups => "charlib.cache_lookups",
            Counter::CacheHits => "charlib.cache_hits",
            Counter::CacheMisses => "charlib.cache_misses",
            Counter::CellsCharacterized => "charlib.cells_characterized",
            Counter::SweepPoints => "charlib.sweep_points",
            Counter::ParallelBatches => "exec.parallel_batches",
            Counter::TasksRun => "exec.tasks_run",
            Counter::EventSimRuns => "sim.event_runs",
            Counter::NetTransitions => "sim.net_transitions",
            Counter::TracesAcquired => "dpa.traces_acquired",
            Counter::PearsonChunks => "dpa.pearson_chunks",
            Counter::WelchChunks => "dpa.welch_chunks",
            Counter::ZeroVarianceSkipped => "dpa.zero_variance_skipped",
            Counter::LintRulesRun => "lint.rules_run",
            Counter::LintDiagnostics => "lint.diagnostics",
            Counter::LintWaived => "lint.waived",
            Counter::DataflowRuns => "lint.dataflow_runs",
            Counter::DataflowGateEvals => "lint.dataflow_gate_evals",
            Counter::DataflowTaintedNets => "lint.dataflow_tainted_nets",
            Counter::OptGenerations => "opt.generations",
            Counter::OptEvals => "opt.evals",
            Counter::OptInfeasible => "opt.infeasible",
        }
    }

    /// Unit of the counted quantity.
    #[must_use]
    pub const fn unit(self) -> &'static str {
        match self {
            Counter::DcSolves => "operating points",
            Counter::Transients => "analyses",
            Counter::TranSteps => "accepted steps",
            Counter::TranRetries => "subdivisions",
            Counter::LteRejects => "rejected steps",
            Counter::AdaptiveSteps => "accepted steps",
            Counter::HGrowths => "step growths",
            Counter::NrIterations => "iterations",
            Counter::MosEvals => "model evaluations",
            Counter::MosBypassed => "skipped evaluations",
            Counter::EnsembleLanes => "lanes",
            Counter::LaneRefactors => "refactorisations",
            Counter::MatrixSolves => "factor+solve calls",
            Counter::SymbolicReuse => "reused factorisations",
            Counter::NumericRefactor => "refactorisations",
            Counter::LinearStampsSkipped => "stamps",
            Counter::PartitionBlocks => "blocks",
            Counter::BlockSolves => "block solves",
            Counter::BlockSkips => "skipped solves",
            Counter::CacheLookups | Counter::CacheHits | Counter::CacheMisses => "lookups",
            Counter::CellsCharacterized => "cells",
            Counter::SweepPoints => "points",
            Counter::ParallelBatches => "batches",
            Counter::TasksRun => "work items",
            Counter::EventSimRuns => "runs",
            Counter::NetTransitions => "transitions",
            Counter::TracesAcquired => "traces",
            Counter::PearsonChunks | Counter::WelchChunks => "chunks",
            Counter::ZeroVarianceSkipped => "matrix cells",
            Counter::LintRulesRun => "rule evaluations",
            Counter::LintDiagnostics => "diagnostics",
            Counter::LintWaived => "diagnostics",
            Counter::DataflowRuns => "solves",
            Counter::DataflowGateEvals => "transfer applications",
            Counter::DataflowTaintedNets => "nets",
            Counter::OptGenerations => "generations",
            Counter::OptEvals => "evaluations",
            Counter::OptInfeasible => "candidates",
        }
    }

    /// Crate that emits the counter.
    #[must_use]
    pub const fn crate_name(self) -> &'static str {
        match self {
            Counter::DcSolves
            | Counter::Transients
            | Counter::TranSteps
            | Counter::TranRetries
            | Counter::LteRejects
            | Counter::AdaptiveSteps
            | Counter::HGrowths
            | Counter::NrIterations
            | Counter::MosEvals
            | Counter::MosBypassed
            | Counter::EnsembleLanes
            | Counter::LaneRefactors
            | Counter::MatrixSolves
            | Counter::SymbolicReuse
            | Counter::NumericRefactor
            | Counter::LinearStampsSkipped
            | Counter::PartitionBlocks
            | Counter::BlockSolves
            | Counter::BlockSkips => "mcml-spice",
            Counter::CacheLookups
            | Counter::CacheHits
            | Counter::CacheMisses
            | Counter::CellsCharacterized
            | Counter::SweepPoints => "mcml-char",
            Counter::ParallelBatches | Counter::TasksRun => "mcml-exec",
            Counter::EventSimRuns | Counter::NetTransitions => "mcml-sim",
            Counter::TracesAcquired
            | Counter::PearsonChunks
            | Counter::WelchChunks
            | Counter::ZeroVarianceSkipped => "mcml-dpa",
            Counter::LintRulesRun
            | Counter::LintDiagnostics
            | Counter::LintWaived
            | Counter::DataflowRuns
            | Counter::DataflowGateEvals
            | Counter::DataflowTaintedNets => "mcml-lint",
            Counter::OptGenerations | Counter::OptEvals | Counter::OptInfeasible => "mcml-opt",
        }
    }
}

/// Shard count; power of two so the shard pick is a mask. 16 shards of
/// `Counter::COUNT`×8 B keep concurrent workers on distinct cache-line
/// groups without bloating the aggregate read.
const SHARDS: usize = 16;

#[allow(clippy::declare_interior_mutable_const)] // the canonical static-array-of-atomics init
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ROW: [AtomicU64; Counter::COUNT] = [ZERO; Counter::COUNT];
static BANK: [[AtomicU64; Counter::COUNT]; SHARDS] = [ROW; SHARDS];

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread is pinned round-robin to one shard for its lifetime.
    static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

/// Add `n` to a counter: one relaxed `fetch_add` on this thread's shard.
///
/// A no-op (no atomics touched, no allocation) when the mode is
/// [`Off`](crate::Mode::Off).
#[inline]
pub fn add(c: Counter, n: u64) {
    if !crate::enabled() {
        return;
    }
    MY_SHARD.with(|&s| {
        BANK[s][c as usize].fetch_add(n, Ordering::Relaxed);
    });
}

/// Increment a counter by one. See [`add`].
#[inline]
pub fn incr(c: Counter) {
    add(c, 1);
}

/// Aggregate total of a counter: the sum over shards.
///
/// Deterministic for deterministic workloads: the total depends only on
/// the multiset of `add` calls, never on which thread made them.
#[must_use]
pub fn total(c: Counter) -> u64 {
    BANK.iter()
        .map(|row| row[c as usize].load(Ordering::Relaxed))
        .sum()
}

pub(crate) fn reset_all() {
    for row in &BANK {
        for cell in row {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_schema_stable() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate counter name");
        for c in Counter::ALL {
            assert!(c.name().contains('.'), "{} missing area prefix", c.name());
            assert!(!c.unit().is_empty());
            assert!(c.crate_name().starts_with("mcml-"));
        }
    }
}
