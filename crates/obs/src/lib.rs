//! # mcml-obs — observability for the SPICE → characterisation → CPA pipeline
//!
//! PR 1 made the evaluation pipeline parallel but left it a black box:
//! nobody could see how many Newton–Raphson iterations a transient burned,
//! whether the characterisation cache actually hit, or where wall-clock
//! goes between `mcml-spice`, `mcml-char` and `mcml-dpa`. This crate is the
//! measurement layer the rest of the workspace reports through — the
//! moral equivalent of the auditable per-stage artefacts in Tiri &
//! Verbauwhede's secure design flow:
//!
//! * [`Counter`] — a fixed registry of named counters behind **sharded
//!   relaxed atomics**: the hot Newton–Raphson loop pays exactly one
//!   `fetch_add(Relaxed)` on its shard, with no allocation and no locking;
//! * [`Stage`] / [`span`] — wall-clock span timers for pipeline stages
//!   (nest freely; each guard accumulates independently on drop);
//! * [`RunReport`] — a snapshot of every counter and stage timer,
//!   serialised to **deterministic JSON** (fixed key order, no floats);
//! * the `MCML_OBS` environment knob — `off` (true no-op: counting and
//!   timing are skipped entirely), `summary` (stage-by-stage table on
//!   stdout at the end of a run; the default), or `json:<path>`
//!   (summary **plus** a schema-documented `report.json`).
//!
//! Counter totals are **deterministic under any `MCML_THREADS`**: every
//! crate increments by the amount of work actually done, work items are
//! identical in serial and parallel runs, and aggregation is a plain sum
//! over shards. Wall-clock stage timings are naturally machine-dependent
//! and are kept in a separate section that determinism tests ignore. The
//! full counter schema is documented in `docs/OBSERVABILITY.md`.
//!
//! # Example
//!
//! ```
//! use mcml_obs::{Counter, RunReport, Stage};
//!
//! mcml_obs::set_mode(mcml_obs::Mode::Summary);
//! mcml_obs::reset();
//! {
//!     let _outer = mcml_obs::span(Stage::Characterize);
//!     mcml_obs::add(Counter::NrIterations, 42);
//!     mcml_obs::incr(Counter::CellsCharacterized);
//! }
//! let report = RunReport::capture("example", 1);
//! assert_eq!(report.counter(Counter::NrIterations), 42);
//! assert_eq!(report.counter(Counter::CellsCharacterized), 1);
//! assert!(report.to_json().contains("\"spice.nr_iterations\": 42"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod report;
mod span;
mod warn;

pub use counters::{add, incr, total, Counter};
pub use report::{write_json, RunReport, StageSnapshot};
pub use span::{span, time, SpanGuard, Stage};
pub use warn::{warn_once, warnings};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What the observability layer does with what it measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// Measure nothing: counters and spans become true no-ops (no
    /// atomics touched, no clock read, no allocation).
    Off,
    /// Count and time; print a stage-by-stage summary at [`finish`].
    Summary,
    /// Like [`Mode::Summary`], and additionally write the deterministic
    /// JSON [`RunReport`] to the given path at [`finish`].
    Json(String),
}

// 0 = unresolved (read MCML_OBS on first use), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);
static MODE: Mutex<Option<Mode>> = Mutex::new(None);
static STARTED: Mutex<Option<Instant>> = Mutex::new(None);

/// Fast-path check used by every counter and span entry point.
#[inline]
pub(crate) fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let mode = match std::env::var("MCML_OBS") {
        Ok(v) => parse_mode(&v),
        Err(_) => Mode::Summary,
    };
    let on = mode != Mode::Off;
    set_mode(mode);
    on
}

fn parse_mode(v: &str) -> Mode {
    let v = v.trim();
    if v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("none") {
        Mode::Off
    } else if let Some(path) = v.strip_prefix("json:") {
        Mode::Json(path.to_owned())
    } else if v.eq_ignore_ascii_case("json") {
        Mode::Json("report.json".to_owned())
    } else {
        // `summary`, empty, or anything unrecognised: measure and print.
        Mode::Summary
    }
}

/// The active mode (resolving `MCML_OBS` on first use).
#[must_use]
pub fn mode() -> Mode {
    enabled();
    MODE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
        .unwrap_or(Mode::Summary)
}

/// Override the mode programmatically (tests, embedding tools).
///
/// Takes precedence over `MCML_OBS` from the moment it is called.
pub fn set_mode(m: Mode) {
    let on = m != Mode::Off;
    *MODE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(m);
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Zero every counter and stage timer and restart the run clock.
///
/// The benchmark binaries call this between their serial baseline and the
/// reported run so the emitted report covers exactly one pipeline pass.
pub fn reset() {
    counters::reset_all();
    span::reset_all();
    *STARTED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Instant::now());
}

/// Nanoseconds since the last [`reset`] (0 if never reset).
#[must_use]
pub(crate) fn elapsed_ns() -> u64 {
    STARTED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .map_or(0, |t0| {
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
}

/// End-of-run hook for the pipeline binaries.
///
/// Captures a [`RunReport`] named `run` over `threads` workers and, per
/// the active [`Mode`]: prints the stage-by-stage summary (`summary` and
/// `json:`), writes the deterministic JSON report (`json:<path>` only),
/// and returns the report. Returns `None` when observability is off.
pub fn finish(run: &str, threads: usize) -> Option<RunReport> {
    let m = mode();
    if m == Mode::Off {
        return None;
    }
    let report = RunReport::capture(run, threads);
    println!("\n{}", report.summary());
    if let Mode::Json(path) = &m {
        match report.write_to(path) {
            Ok(()) => println!("report written to {path}"),
            Err(e) => eprintln!("mcml-obs: could not write {path}: {e}"),
        }
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode("off"), Mode::Off);
        assert_eq!(parse_mode("0"), Mode::Off);
        assert_eq!(parse_mode("NONE"), Mode::Off);
        assert_eq!(parse_mode("summary"), Mode::Summary);
        assert_eq!(parse_mode("anything"), Mode::Summary);
        assert_eq!(parse_mode("json"), Mode::Json("report.json".into()));
        assert_eq!(
            parse_mode("json:/tmp/r.json"),
            Mode::Json("/tmp/r.json".into())
        );
    }
}
