//! `MCML_OBS=off` must be a true no-op: the counter and span hot paths
//! may not allocate. A counting global allocator wraps `System`; the
//! test exercises the hot paths with the counter frozen and asserts the
//! allocation count never moves. Lives in its own test binary so the
//! global allocator doesn't slow the rest of the suite.

use mcml_obs::{Counter, Mode, Stage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; only adds a relaxed count.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

// Mode and counters are process-global; the two tests must not interleave.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn off_hot_path_does_not_allocate() {
    let _g = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Resolve the mode (may allocate: env read, mutex init) *before*
    // freezing the counter — first use is the cold path by design.
    mcml_obs::set_mode(Mode::Off);
    mcml_obs::reset();
    mcml_obs::add(Counter::NrIterations, 1);
    drop(mcml_obs::span(Stage::Cpa));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100_000 {
        mcml_obs::incr(Counter::NrIterations);
        mcml_obs::add(Counter::MatrixSolves, 4);
        let guard = mcml_obs::span(Stage::Characterize);
        drop(guard);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(before, after, "MCML_OBS=off hot path allocated");
    assert_eq!(mcml_obs::total(Counter::NrIterations), 0);
}

#[test]
fn on_hot_path_does_not_allocate_either() {
    let _g = LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // The "one relaxed fetch_add" claim: even when counting, the hot
    // path allocates nothing (spans read the clock but don't box).
    mcml_obs::set_mode(Mode::Summary);
    mcml_obs::add(Counter::NrIterations, 1);
    drop(mcml_obs::span(Stage::Cpa));

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..100_000 {
        mcml_obs::incr(Counter::NrIterations);
        let guard = mcml_obs::span(Stage::Characterize);
        drop(guard);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(before, after, "counting hot path allocated");
}
