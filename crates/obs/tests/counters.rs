//! Aggregation and span semantics of the observability layer.
//!
//! Counters are process-global, and Rust runs tests in one binary on
//! parallel threads, so every test that touches them serialises on
//! [`LOCK`]. Tests in *other* binaries are separate processes and need
//! no coordination.

use mcml_obs::{Counter, Mode, RunReport, Stage};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn aggregation_under_contention() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;

    let _g = locked();
    mcml_obs::set_mode(Mode::Summary);
    mcml_obs::reset();

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    mcml_obs::incr(Counter::NrIterations);
                    mcml_obs::add(Counter::MatrixSolves, 3);
                }
            });
        }
    });

    assert_eq!(mcml_obs::total(Counter::NrIterations), THREADS * PER_THREAD);
    assert_eq!(
        mcml_obs::total(Counter::MatrixSolves),
        THREADS * PER_THREAD * 3
    );
    // Untouched counters stay zero.
    assert_eq!(mcml_obs::total(Counter::TracesAcquired), 0);
}

#[test]
fn span_nesting_accumulates_both_levels() {
    let _g = locked();
    mcml_obs::set_mode(Mode::Summary);
    mcml_obs::reset();

    {
        let _outer = mcml_obs::span(Stage::Characterize);
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _inner = mcml_obs::span(Stage::BiasSweep);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // A second, sibling span of the same inner stage.
        mcml_obs::time(Stage::BiasSweep, || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
    }

    let report = RunReport::capture("nesting", 1);
    let outer = report.stage(Stage::Characterize);
    let inner = report.stage(Stage::BiasSweep);
    assert_eq!(outer.calls, 1);
    assert_eq!(inner.calls, 2);
    assert!(inner.busy_ns > 0);
    // Inner time is contained in (and thus no larger than) outer time.
    assert!(outer.busy_ns >= inner.busy_ns);
}

#[test]
fn reset_zeroes_everything() {
    let _g = locked();
    mcml_obs::set_mode(Mode::Summary);
    mcml_obs::reset();
    mcml_obs::add(Counter::TranSteps, 7);
    mcml_obs::time(Stage::Cpa, || {});
    mcml_obs::reset();

    let report = RunReport::capture("reset", 1);
    for c in Counter::ALL {
        assert_eq!(report.counter(c), 0, "{} survived reset", c.name());
    }
    for s in Stage::ALL {
        assert_eq!(report.stage(s).calls, 0, "{} survived reset", s.name());
    }
}

#[test]
fn report_roundtrip_and_finish() {
    let _g = locked();
    let path = std::env::temp_dir().join("mcml_obs_test_report.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    mcml_obs::set_mode(Mode::Json(path_str.to_owned()));
    mcml_obs::reset();
    mcml_obs::add(Counter::CellsCharacterized, 11);
    mcml_obs::incr(Counter::CacheLookups);

    let report = mcml_obs::finish("roundtrip", 4).expect("mode is on");
    assert_eq!(report.counter(Counter::CellsCharacterized), 11);
    let on_disk = std::fs::read_to_string(&path).expect("report written");
    assert_eq!(on_disk, report.to_json());
    assert!(on_disk.contains("\"charlib.cells_characterized\": 11"));
    assert!(on_disk.contains("\"schema\": \"mcml-obs/1\""));
    let _ = std::fs::remove_file(&path);

    // Identical counters => identical deterministic totals, whatever the
    // thread count says.
    let replay = RunReport::capture("roundtrip", 1);
    assert_eq!(report.deterministic_totals(), replay.deterministic_totals());

    mcml_obs::set_mode(Mode::Summary);
}

#[test]
fn off_mode_counts_nothing() {
    let _g = locked();
    mcml_obs::set_mode(Mode::Summary);
    mcml_obs::reset();
    mcml_obs::set_mode(Mode::Off);
    mcml_obs::add(Counter::NrIterations, 99);
    let guard = mcml_obs::span(Stage::Cpa);
    drop(guard);
    assert!(mcml_obs::finish("off", 1).is_none());

    mcml_obs::set_mode(Mode::Summary);
    assert_eq!(mcml_obs::total(Counter::NrIterations), 0);
    let report = RunReport::capture("off", 1);
    assert_eq!(report.stage(Stage::Cpa).calls, 0);
}
