//! Instruction set and binary encoding.
//!
//! Encodings follow the OR1K style (6-bit major opcode in bits 31..26,
//! register fields rD = 25..21, rA = 20..16, rB = 15..11) with a reduced
//! instruction inventory. `l.cust1` is the paper's S-box ISE; `l.halt`
//! is a simulator-only stop instruction.

use serde::{Deserialize, Serialize};

/// Register index 0–31 (r0 reads as zero and ignores writes, by
/// convention enforced in the CPU).
pub type Reg = u8;

/// ALU register-register operations (major opcode 0x38).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Multiplication (low 32 bits).
    Mul,
    /// Logical shift left by rB & 31.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
}

impl AluOp {
    fn code(self) -> u32 {
        match self {
            AluOp::Add => 0x0,
            AluOp::Sub => 0x2,
            AluOp::And => 0x3,
            AluOp::Or => 0x4,
            AluOp::Xor => 0x5,
            AluOp::Mul => 0x6,
            AluOp::Sll => 0x8,
            AluOp::Srl => 0x9,
            AluOp::Sra => 0xa,
        }
    }

    fn from_code(c: u32) -> Option<Self> {
        Some(match c {
            0x0 => AluOp::Add,
            0x2 => AluOp::Sub,
            0x3 => AluOp::And,
            0x4 => AluOp::Or,
            0x5 => AluOp::Xor,
            0x6 => AluOp::Mul,
            0x8 => AluOp::Sll,
            0x9 => AluOp::Srl,
            0xa => AluOp::Sra,
            _ => return None,
        })
    }

    /// Assembler mnemonic suffix (`l.add`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Mul => "mul",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
        }
    }
}

/// Set-flag comparison operations (major opcode 0x39, subcode in rD).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater-than.
    Gtu,
    /// Unsigned greater-or-equal.
    Geu,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned less-or-equal.
    Leu,
}

impl CmpOp {
    fn code(self) -> u32 {
        match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Gtu => 2,
            CmpOp::Geu => 3,
            CmpOp::Ltu => 4,
            CmpOp::Leu => 5,
        }
    }

    fn from_code(c: u32) -> Option<Self> {
        Some(match c {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Gtu,
            3 => CmpOp::Geu,
            4 => CmpOp::Ltu,
            5 => CmpOp::Leu,
            _ => return None,
        })
    }

    /// Assembler mnemonic suffix (`l.sfeq`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "sfeq",
            CmpOp::Ne => "sfne",
            CmpOp::Gtu => "sfgtu",
            CmpOp::Geu => "sfgeu",
            CmpOp::Ltu => "sfltu",
            CmpOp::Leu => "sfleu",
        }
    }
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `l.j off` — jump, PC-relative in instruction words (signed 26-bit).
    J(i32),
    /// `l.jal off` — jump and link (r9 = return address).
    Jal(i32),
    /// `l.jr rB` — jump to register.
    Jr(Reg),
    /// `l.bf off` — branch if flag set.
    Bf(i32),
    /// `l.bnf off` — branch if flag clear.
    Bnf(i32),
    /// `l.nop`.
    Nop,
    /// `l.movhi rD, imm` — rD = imm << 16.
    Movhi(Reg, u16),
    /// `l.lwz rD, off(rA)` — load word (big-endian).
    Lwz(Reg, Reg, i16),
    /// `l.lbz rD, off(rA)` — load byte, zero-extended.
    Lbz(Reg, Reg, i16),
    /// `l.sw off(rA), rB` — store word.
    Sw(Reg, Reg, i16),
    /// `l.sb off(rA), rB` — store byte.
    Sb(Reg, Reg, i16),
    /// `l.addi rD, rA, simm`.
    Addi(Reg, Reg, i16),
    /// `l.andi rD, rA, uimm`.
    Andi(Reg, Reg, u16),
    /// `l.ori rD, rA, uimm`.
    Ori(Reg, Reg, u16),
    /// `l.xori rD, rA, simm` (sign-extended per OR1K).
    Xori(Reg, Reg, i16),
    /// `l.slli/srli/srai rD, rA, shamt`.
    ShiftI(AluOp, Reg, Reg, u8),
    /// Register-register ALU op: `l.<op> rD, rA, rB`.
    Alu(AluOp, Reg, Reg, Reg),
    /// Set-flag compare: `l.sf<op> rA, rB`.
    Sf(CmpOp, Reg, Reg),
    /// `l.cust1 rD, rA` — the S-box ISE: rD = SBOX applied bytewise to
    /// rA.
    Cust1(Reg, Reg),
    /// `l.halt` — stop simulation (simulator extension).
    Halt,
}

const fn f_rd(w: u32) -> u8 {
    ((w >> 21) & 0x1f) as u8
}
const fn f_ra(w: u32) -> u8 {
    ((w >> 16) & 0x1f) as u8
}
const fn f_rb(w: u32) -> u8 {
    ((w >> 11) & 0x1f) as u8
}
const fn f_imm16(w: u32) -> u16 {
    (w & 0xffff) as u16
}

fn sext26(w: u32) -> i32 {
    ((w << 6) as i32) >> 6
}

impl Instr {
    /// Encode to a 32-bit word.
    #[must_use]
    pub fn encode(self) -> u32 {
        let r = |x: Reg| u32::from(x & 0x1f);
        match self {
            #[allow(clippy::identity_op)] // opcode 0x00 << 26, kept for the encoding table's shape
            Instr::J(off) => (0x00 << 26) | ((off as u32) & 0x03ff_ffff),
            Instr::Jal(off) => (0x01 << 26) | ((off as u32) & 0x03ff_ffff),
            Instr::Bnf(off) => (0x03 << 26) | ((off as u32) & 0x03ff_ffff),
            Instr::Bf(off) => (0x04 << 26) | ((off as u32) & 0x03ff_ffff),
            Instr::Nop => 0x05 << 26,
            Instr::Movhi(rd, imm) => (0x06 << 26) | (r(rd) << 21) | u32::from(imm),
            Instr::Jr(rb) => (0x11 << 26) | (r(rb) << 11),
            Instr::Lwz(rd, ra, off) => {
                (0x21 << 26) | (r(rd) << 21) | (r(ra) << 16) | u32::from(off as u16)
            }
            Instr::Lbz(rd, ra, off) => {
                (0x23 << 26) | (r(rd) << 21) | (r(ra) << 16) | u32::from(off as u16)
            }
            Instr::Addi(rd, ra, imm) => {
                (0x27 << 26) | (r(rd) << 21) | (r(ra) << 16) | u32::from(imm as u16)
            }
            Instr::Andi(rd, ra, imm) => {
                (0x29 << 26) | (r(rd) << 21) | (r(ra) << 16) | u32::from(imm)
            }
            Instr::Ori(rd, ra, imm) => {
                (0x2a << 26) | (r(rd) << 21) | (r(ra) << 16) | u32::from(imm)
            }
            Instr::Xori(rd, ra, imm) => {
                (0x2b << 26) | (r(rd) << 21) | (r(ra) << 16) | u32::from(imm as u16)
            }
            Instr::ShiftI(op, rd, ra, sh) => {
                let sub = match op {
                    AluOp::Sll => 0u32,
                    AluOp::Srl => 1,
                    AluOp::Sra => 2,
                    _ => panic!("ShiftI only encodes shifts"),
                };
                (0x2e << 26) | (r(rd) << 21) | (r(ra) << 16) | (sub << 6) | u32::from(sh & 0x1f)
            }
            Instr::Sw(ra, rb, off) => {
                // Split immediate like OR1K: hi in rD field, lo in imm.
                let o = off as u16;
                (0x35 << 26)
                    | ((u32::from(o) >> 11) << 21)
                    | (r(ra) << 16)
                    | (r(rb) << 11)
                    | (u32::from(o) & 0x7ff)
            }
            Instr::Sb(ra, rb, off) => {
                let o = off as u16;
                (0x36 << 26)
                    | ((u32::from(o) >> 11) << 21)
                    | (r(ra) << 16)
                    | (r(rb) << 11)
                    | (u32::from(o) & 0x7ff)
            }
            Instr::Alu(op, rd, ra, rb) => {
                (0x38 << 26) | (r(rd) << 21) | (r(ra) << 16) | (r(rb) << 11) | op.code()
            }
            Instr::Sf(op, ra, rb) => {
                (0x39 << 26) | (op.code() << 21) | (r(ra) << 16) | (r(rb) << 11)
            }
            Instr::Cust1(rd, ra) => (0x3c << 26) | (r(rd) << 21) | (r(ra) << 16),
            Instr::Halt => 0x3f << 26,
        }
    }

    /// Decode a 32-bit word.
    #[must_use]
    pub fn decode(w: u32) -> Option<Instr> {
        let op = w >> 26;
        Some(match op {
            0x00 => Instr::J(sext26(w)),
            0x01 => Instr::Jal(sext26(w)),
            0x03 => Instr::Bnf(sext26(w)),
            0x04 => Instr::Bf(sext26(w)),
            0x05 => Instr::Nop,
            0x06 => Instr::Movhi(f_rd(w), f_imm16(w)),
            0x11 => Instr::Jr(f_rb(w)),
            0x21 => Instr::Lwz(f_rd(w), f_ra(w), f_imm16(w) as i16),
            0x23 => Instr::Lbz(f_rd(w), f_ra(w), f_imm16(w) as i16),
            0x27 => Instr::Addi(f_rd(w), f_ra(w), f_imm16(w) as i16),
            0x29 => Instr::Andi(f_rd(w), f_ra(w), f_imm16(w)),
            0x2a => Instr::Ori(f_rd(w), f_ra(w), f_imm16(w)),
            0x2b => Instr::Xori(f_rd(w), f_ra(w), f_imm16(w) as i16),
            0x2e => {
                let sub = (w >> 6) & 0x3;
                let op = match sub {
                    0 => AluOp::Sll,
                    1 => AluOp::Srl,
                    2 => AluOp::Sra,
                    _ => return None,
                };
                Instr::ShiftI(op, f_rd(w), f_ra(w), (w & 0x1f) as u8)
            }
            0x35 | 0x36 => {
                let off = (((w >> 21) & 0x1f) << 11 | (w & 0x7ff)) as u16 as i16;
                if op == 0x35 {
                    Instr::Sw(f_ra(w), f_rb(w), off)
                } else {
                    Instr::Sb(f_ra(w), f_rb(w), off)
                }
            }
            0x38 => Instr::Alu(AluOp::from_code(w & 0xf)?, f_rd(w), f_ra(w), f_rb(w)),
            0x39 => Instr::Sf(CmpOp::from_code((w >> 21) & 0x1f)?, f_ra(w), f_rb(w)),
            0x3c => Instr::Cust1(f_rd(w), f_ra(w)),
            0x3f => Instr::Halt,
            _ => return None,
        })
    }

    /// Base pipeline cost in cycles (taken branches add a flush penalty
    /// in the CPU model).
    #[must_use]
    pub fn base_cycles(self) -> u64 {
        match self {
            Instr::Lwz(..) | Instr::Lbz(..) => 2,
            Instr::Alu(AluOp::Mul, ..) => 3,
            _ => 1,
        }
    }
}

impl std::fmt::Display for Instr {
    /// Disassemble to assembler-compatible text (branch targets appear as
    /// relative word offsets, which [`crate::asm`] does not re-ingest —
    /// use labels when authoring; this form is for logs and round-trip
    /// tests of operand fields).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instr::J(off) => write!(f, "l.j {off}"),
            Instr::Jal(off) => write!(f, "l.jal {off}"),
            Instr::Jr(rb) => write!(f, "l.jr r{rb}"),
            Instr::Bf(off) => write!(f, "l.bf {off}"),
            Instr::Bnf(off) => write!(f, "l.bnf {off}"),
            Instr::Nop => write!(f, "l.nop"),
            Instr::Movhi(rd, imm) => write!(f, "l.movhi r{rd}, {imm}"),
            Instr::Lwz(rd, ra, off) => write!(f, "l.lwz r{rd}, {off}(r{ra})"),
            Instr::Lbz(rd, ra, off) => write!(f, "l.lbz r{rd}, {off}(r{ra})"),
            Instr::Sw(ra, rb, off) => write!(f, "l.sw {off}(r{ra}), r{rb}"),
            Instr::Sb(ra, rb, off) => write!(f, "l.sb {off}(r{ra}), r{rb}"),
            Instr::Addi(rd, ra, imm) => write!(f, "l.addi r{rd}, r{ra}, {imm}"),
            Instr::Andi(rd, ra, imm) => write!(f, "l.andi r{rd}, r{ra}, {imm}"),
            Instr::Ori(rd, ra, imm) => write!(f, "l.ori r{rd}, r{ra}, {imm}"),
            Instr::Xori(rd, ra, imm) => write!(f, "l.xori r{rd}, r{ra}, {imm}"),
            Instr::ShiftI(op, rd, ra, sh) => {
                let mn = match op {
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    _ => "srai",
                };
                write!(f, "l.{mn} r{rd}, r{ra}, {sh}")
            }
            Instr::Alu(op, rd, ra, rb) => {
                write!(f, "l.{} r{rd}, r{ra}, r{rb}", op.mnemonic())
            }
            Instr::Sf(op, ra, rb) => write!(f, "l.{} r{ra}, r{rb}", op.mnemonic()),
            Instr::Cust1(rd, ra) => write!(f, "l.cust1 r{rd}, r{ra}"),
            Instr::Halt => write!(f, "l.halt"),
        }
    }
}

/// Disassemble a program image (sequence of big-endian words) into text,
/// one instruction per line; undecodable words appear as `.word`.
#[must_use]
pub fn disassemble(image: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for chunk in image.chunks(4) {
        if chunk.len() < 4 {
            break;
        }
        let w = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        match Instr::decode(w) {
            Some(i) => {
                let _ = writeln!(out, "    {i}");
            }
            None => {
                let _ = writeln!(out, "    .word 0x{w:08x}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_samples() -> Vec<Instr> {
        vec![
            Instr::J(-5),
            Instr::Jal(1000),
            Instr::Jr(9),
            Instr::Bf(12),
            Instr::Bnf(-1),
            Instr::Nop,
            Instr::Movhi(3, 0xdead),
            Instr::Lwz(4, 5, -8),
            Instr::Lbz(6, 7, 127),
            Instr::Sw(2, 3, -4),
            Instr::Sb(2, 3, 2047),
            Instr::Addi(1, 2, -300),
            Instr::Andi(1, 2, 0xff),
            Instr::Ori(1, 2, 0xffff),
            Instr::Xori(1, 2, -1),
            Instr::ShiftI(AluOp::Sll, 3, 4, 24),
            Instr::ShiftI(AluOp::Srl, 3, 4, 8),
            Instr::ShiftI(AluOp::Sra, 3, 4, 31),
            Instr::Alu(AluOp::Add, 1, 2, 3),
            Instr::Alu(AluOp::Xor, 31, 30, 29),
            Instr::Alu(AluOp::Mul, 5, 6, 7),
            Instr::Sf(CmpOp::Eq, 1, 2),
            Instr::Sf(CmpOp::Ltu, 3, 4),
            Instr::Cust1(10, 11),
            Instr::Halt,
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for i in all_samples() {
            let w = i.encode();
            assert_eq!(Instr::decode(w), Some(i), "round-trip of {i:?} ({w:#010x})");
        }
    }

    #[test]
    fn negative_offsets_sign_extend() {
        let w = Instr::J(-1).encode();
        assert_eq!(Instr::decode(w), Some(Instr::J(-1)));
        let w = Instr::Sw(1, 2, -2048).encode();
        assert_eq!(Instr::decode(w), Some(Instr::Sw(1, 2, -2048)));
    }

    #[test]
    fn unknown_opcode_decodes_none() {
        assert_eq!(Instr::decode(0x3e << 26), None);
    }

    #[test]
    fn cycle_model() {
        assert_eq!(Instr::Nop.base_cycles(), 1);
        assert_eq!(Instr::Lwz(1, 2, 0).base_cycles(), 2);
        assert_eq!(Instr::Alu(AluOp::Mul, 1, 2, 3).base_cycles(), 3);
        assert_eq!(Instr::Cust1(1, 2).base_cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "ShiftI only encodes shifts")]
    fn shifti_rejects_non_shift() {
        let _ = Instr::ShiftI(AluOp::Add, 1, 2, 3).encode();
    }
}
