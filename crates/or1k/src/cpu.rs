//! The instruction-set simulator with a pipeline cycle model and ISE
//! activity trace.

use serde::{Deserialize, Serialize};

use crate::asm::Program;
use crate::isa::{AluOp, CmpOp, Instr};

/// One activation of the S-box ISE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IseEvent {
    /// Cycle at which `l.cust1` executed.
    pub cycle: u64,
    /// Operand word (the four S-box inputs).
    pub input: u32,
    /// Result word (the four S-box outputs).
    pub output: u32,
}

/// Execution statistics and ISE activity.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Total cycles consumed.
    pub cycles: u64,
    /// Retired instruction count.
    pub instructions: u64,
    /// Every S-box ISE activation in order.
    pub ise_events: Vec<IseEvent>,
}

impl ExecutionTrace {
    /// Fraction of cycles in which the ISE was active — the quantity the
    /// paper reports as 0.01 % for its full benchmark.
    #[must_use]
    pub fn ise_duty(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ise_events.len() as f64 / self.cycles as f64
        }
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// `l.halt` retired.
    Halted,
    /// The cycle budget was exhausted first.
    CycleLimit,
}

/// The processor: 32 GPRs, flag, PC and flat big-endian RAM.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers (r0 hardwired to zero).
    pub regs: [u32; 32],
    /// Program counter (byte address).
    pub pc: u32,
    /// Compare flag.
    pub flag: bool,
    mem: Vec<u8>,
    /// Branch-taken flush penalty (cycles), modelling the OR1200-style
    /// pipeline refill.
    pub branch_penalty: u64,
}

impl Cpu {
    /// Create a CPU with `mem_size` bytes of RAM and load the program at
    /// address 0.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit.
    #[must_use]
    pub fn new(program: &Program, mem_size: usize) -> Self {
        assert!(program.image.len() <= mem_size, "program larger than RAM");
        let mut mem = vec![0u8; mem_size];
        mem[..program.image.len()].copy_from_slice(&program.image);
        Self {
            regs: [0; 32],
            pc: 0,
            flag: false,
            mem,
            branch_penalty: 2,
        }
    }

    /// Read a 32-bit big-endian word.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range addresses (there is no MMU).
    #[must_use]
    pub fn load_word(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_be_bytes(self.mem[a..a + 4].try_into().expect("aligned load"))
    }

    /// Write a 32-bit big-endian word.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range addresses.
    pub fn store_word(&mut self, addr: u32, value: u32) {
        let a = addr as usize;
        self.mem[a..a + 4].copy_from_slice(&value.to_be_bytes());
    }

    /// Read a byte.
    #[must_use]
    pub fn load_byte(&self, addr: u32) -> u8 {
        self.mem[addr as usize]
    }

    /// Write a byte.
    pub fn store_byte(&mut self, addr: u32, value: u8) {
        self.mem[addr as usize] = value;
    }

    fn reg(&self, r: u8) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    fn set_reg(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Run until `l.halt` or the cycle budget is exhausted, recording ISE
    /// activity.
    ///
    /// # Panics
    ///
    /// Panics on undecodable instructions or out-of-range memory access —
    /// program bugs, not runtime conditions.
    pub fn run(&mut self, max_cycles: u64, trace: &mut ExecutionTrace) -> Stop {
        while trace.cycles < max_cycles {
            let word = self.load_word(self.pc);
            let instr = Instr::decode(word).unwrap_or_else(|| {
                panic!("undecodable instruction {word:#010x} at {:#x}", self.pc)
            });
            let mut next_pc = self.pc.wrapping_add(4);
            let mut cycles = instr.base_cycles();
            match instr {
                Instr::Nop => {}
                Instr::Halt => {
                    trace.cycles += 1;
                    trace.instructions += 1;
                    return Stop::Halted;
                }
                Instr::J(off) => {
                    next_pc = self.pc.wrapping_add((off * 4) as u32);
                    cycles += self.branch_penalty;
                }
                Instr::Jal(off) => {
                    self.set_reg(9, self.pc.wrapping_add(4));
                    next_pc = self.pc.wrapping_add((off * 4) as u32);
                    cycles += self.branch_penalty;
                }
                Instr::Jr(rb) => {
                    next_pc = self.reg(rb);
                    cycles += self.branch_penalty;
                }
                Instr::Bf(off) => {
                    if self.flag {
                        next_pc = self.pc.wrapping_add((off * 4) as u32);
                        cycles += self.branch_penalty;
                    }
                }
                Instr::Bnf(off) => {
                    if !self.flag {
                        next_pc = self.pc.wrapping_add((off * 4) as u32);
                        cycles += self.branch_penalty;
                    }
                }
                Instr::Movhi(rd, imm) => self.set_reg(rd, u32::from(imm) << 16),
                Instr::Lwz(rd, ra, off) => {
                    let addr = self.reg(ra).wrapping_add(off as u32);
                    let v = self.load_word(addr);
                    self.set_reg(rd, v);
                }
                Instr::Lbz(rd, ra, off) => {
                    let addr = self.reg(ra).wrapping_add(off as u32);
                    let v = u32::from(self.load_byte(addr));
                    self.set_reg(rd, v);
                }
                Instr::Sw(ra, rb, off) => {
                    let addr = self.reg(ra).wrapping_add(off as u32);
                    self.store_word(addr, self.reg(rb));
                }
                Instr::Sb(ra, rb, off) => {
                    let addr = self.reg(ra).wrapping_add(off as u32);
                    self.store_byte(addr, self.reg(rb) as u8);
                }
                Instr::Addi(rd, ra, imm) => {
                    self.set_reg(rd, self.reg(ra).wrapping_add(imm as u32));
                }
                Instr::Andi(rd, ra, imm) => self.set_reg(rd, self.reg(ra) & u32::from(imm)),
                Instr::Ori(rd, ra, imm) => self.set_reg(rd, self.reg(ra) | u32::from(imm)),
                Instr::Xori(rd, ra, imm) => self.set_reg(rd, self.reg(ra) ^ (imm as u32)),
                Instr::ShiftI(op, rd, ra, sh) => {
                    let a = self.reg(ra);
                    let v = match op {
                        AluOp::Sll => a << sh,
                        AluOp::Srl => a >> sh,
                        _ => ((a as i32) >> sh) as u32,
                    };
                    self.set_reg(rd, v);
                }
                Instr::Alu(op, rd, ra, rb) => {
                    let (a, b) = (self.reg(ra), self.reg(rb));
                    let v = match op {
                        AluOp::Add => a.wrapping_add(b),
                        AluOp::Sub => a.wrapping_sub(b),
                        AluOp::And => a & b,
                        AluOp::Or => a | b,
                        AluOp::Xor => a ^ b,
                        AluOp::Mul => a.wrapping_mul(b),
                        AluOp::Sll => a << (b & 31),
                        AluOp::Srl => a >> (b & 31),
                        AluOp::Sra => ((a as i32) >> (b & 31)) as u32,
                    };
                    self.set_reg(rd, v);
                }
                Instr::Sf(op, ra, rb) => {
                    let (a, b) = (self.reg(ra), self.reg(rb));
                    self.flag = match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        CmpOp::Gtu => a > b,
                        CmpOp::Geu => a >= b,
                        CmpOp::Ltu => a < b,
                        CmpOp::Leu => a <= b,
                    };
                }
                Instr::Cust1(rd, ra) => {
                    let input = self.reg(ra);
                    let output = mcml_aes::sbox_ise::sbox_word(input);
                    self.set_reg(rd, output);
                    trace.ise_events.push(IseEvent {
                        cycle: trace.cycles,
                        input,
                        output,
                    });
                }
            }
            trace.cycles += cycles;
            trace.instructions += 1;
            self.pc = next_pc;
        }
        Stop::CycleLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_src(src: &str, max: u64) -> (Cpu, ExecutionTrace, Stop) {
        let p = assemble(src).unwrap();
        let mut cpu = Cpu::new(&p, 64 * 1024);
        let mut trace = ExecutionTrace::default();
        let stop = cpu.run(max, &mut trace);
        (cpu, trace, stop)
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10 into r3.
        let src = "\
    l.addi r3, r0, 0
    l.addi r4, r0, 10
loop:
    l.add  r3, r3, r4
    l.addi r4, r4, -1
    l.sfeq r4, r0
    l.bnf  loop
    l.halt
";
        let (cpu, trace, stop) = run_src(src, 10_000);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(cpu.regs[3], 55);
        assert!(trace.instructions > 40);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (cpu, _, _) = run_src("l.addi r0, r0, 5\nl.add r3, r0, r0\nl.halt\n", 100);
        assert_eq!(cpu.regs[3], 0);
    }

    #[test]
    fn memory_round_trip() {
        let src = "\
    l.movhi r2, 0
    l.ori  r2, r2, 0x100
    l.movhi r3, 0xdead
    l.ori  r3, r3, 0xbeef
    l.sw   0(r2), r3
    l.lwz  r4, 0(r2)
    l.lbz  r5, 0(r2)
    l.lbz  r6, 3(r2)
    l.halt
";
        let (cpu, _, _) = run_src(src, 100);
        assert_eq!(cpu.regs[4], 0xdead_beef);
        assert_eq!(cpu.regs[5], 0xde, "big-endian byte 0");
        assert_eq!(cpu.regs[6], 0xef);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let src = "\
    l.jal sub
    l.addi r3, r3, 100
    l.halt
sub:
    l.addi r3, r0, 1
    l.jr r9
";
        let (cpu, _, stop) = run_src(src, 1000);
        assert_eq!(stop, Stop::Halted);
        assert_eq!(cpu.regs[3], 101);
    }

    #[test]
    fn cust1_records_ise_event() {
        let src = "\
    l.movhi r5, 0x0011
    l.ori  r5, r5, 0x2233
    l.cust1 r6, r5
    l.halt
";
        let (cpu, trace, _) = run_src(src, 100);
        assert_eq!(trace.ise_events.len(), 1);
        let ev = trace.ise_events[0];
        assert_eq!(ev.input, 0x0011_2233);
        assert_eq!(ev.output, cpu.regs[6]);
        assert_eq!(ev.output, mcml_aes::sbox_ise::sbox_word(0x0011_2233));
        assert!(trace.ise_duty() > 0.0 && trace.ise_duty() < 1.0);
    }

    #[test]
    fn branch_penalty_counted() {
        // Taken branch costs more than fall-through.
        let taken = run_src("l.sfeq r0, r0\nl.bf t\nl.nop\nt: l.halt\n", 100)
            .1
            .cycles;
        let nottaken = run_src("l.sfne r0, r0\nl.bf t\nl.nop\nt: l.halt\n", 100)
            .1
            .cycles;
        assert!(taken > nottaken, "taken {taken} vs fall-through {nottaken}");
    }

    #[test]
    fn cycle_limit_stops() {
        let (_, trace, stop) = run_src("x: l.j x\n", 50);
        assert_eq!(stop, Stop::CycleLimit);
        assert!(trace.cycles >= 50);
    }
}
