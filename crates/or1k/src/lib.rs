//! # mcml-or1k — an OpenRISC-1000-subset processor model with the S-box
//! ISE
//!
//! The host-processor substrate of the paper's Table 3 experiment: an
//! instruction-set simulator for a practical subset of the OR1K
//! architecture, augmented with the custom `l.cust1` instruction that
//! drives the four-S-box functional unit. Includes:
//!
//! * [`isa`] — instruction set, binary encoding and decoding;
//! * [`asm`] — a two-pass assembler (labels, branches, `.word` data,
//!   `hi()`/`lo()` relocations);
//! * [`cpu`] — the ISS with a simple pipeline cycle model and an
//!   execution trace recording every ISE activation (cycle + operand +
//!   result), which downstream power simulation turns into sleep windows
//!   and S-box activity;
//! * [`aes_prog`] — a generated OR1K assembly implementation of AES-128
//!   using the ISE for `SubBytes`, validated against the software
//!   [`mcml_aes::Aes128`].
//!
//! Simplifications vs real OR1K (documented per DESIGN.md): no branch
//! delay slots, no exceptions/MMU, flat RAM. Neither affects the measured
//! quantity — the ISE duty cycle and per-activation operands.
//!
//! Assemble and run a small program (sum 1..=10 into `r3`):
//!
//! ```
//! use mcml_or1k::{assemble, Cpu, ExecutionTrace};
//!
//! let program = assemble(
//!     "    l.addi r3, r0, 0\n\
//!          l.addi r4, r0, 10\n\
//!     loop:\n\
//!          l.add  r3, r3, r4\n\
//!          l.addi r4, r4, -1\n\
//!          l.sfeq r4, r0\n\
//!          l.bnf  loop\n\
//!          l.halt\n",
//! )
//! .expect("assembles");
//! let mut cpu = Cpu::new(&program, 64 * 1024);
//! let mut trace = ExecutionTrace::default();
//! cpu.run(10_000, &mut trace);
//! assert_eq!(cpu.regs[3], 55);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aes_prog;
pub mod asm;
pub mod cpu;
pub mod isa;

pub use asm::assemble;
pub use cpu::{Cpu, ExecutionTrace, IseEvent};
pub use isa::Instr;
