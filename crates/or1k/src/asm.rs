//! A two-pass assembler for the OR1K subset.
//!
//! Supported syntax (one statement per line, `#` or `;` comments):
//!
//! ```text
//! loop:                      # label
//!     l.addi  r3, r0, 42
//!     l.movhi r4, hi(table)  # relocations against labels
//!     l.ori   r4, r4, lo(table)
//!     l.lwz   r5, 0(r4)
//!     l.sw    4(r4), r5
//!     l.sfeq  r3, r5
//!     l.bf    loop
//!     l.cust1 r6, r5         # the S-box ISE
//!     l.halt
//! table:
//!     .word 0xdeadbeef, 42
//!     .space 16              # zero-filled bytes
//! ```

use std::collections::HashMap;

use crate::isa::{AluOp, CmpOp, Instr};

/// Assembler error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembled program: flat image loaded at address 0 plus the symbol
/// table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Big-endian byte image.
    pub image: Vec<u8>,
    /// Label → byte address.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Address of a label.
    ///
    /// # Panics
    ///
    /// Panics for unknown labels.
    #[must_use]
    pub fn symbol(&self, name: &str) -> u32 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("unknown symbol `{name}`"))
    }
}

enum Stmt {
    Instr(String, Vec<String>),
    Word(Vec<String>),
    Space(#[allow(dead_code)] u32),
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn strip_comment(s: &str) -> &str {
    match s.find(['#', ';']) {
        Some(i) => &s[..i],
        None => s,
    }
}

/// Assemble a source text into a program image.
///
/// # Errors
///
/// Returns an [`AsmError`] pointing at the offending line.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pass 1: statement list + symbol table.
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut stmts: Vec<(usize, u32, Stmt)> = Vec::new();
    let mut addr: u32 = 0;
    for (li, raw) in src.lines().enumerate() {
        let line_no = li + 1;
        let mut rest = strip_comment(raw).trim();
        // Labels (possibly several on one line).
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            if symbols.insert(label.to_owned(), addr).is_some() {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(args) = rest.strip_prefix(".word") {
            let items: Vec<String> = args
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if items.is_empty() {
                return Err(err(line_no, ".word needs at least one value"));
            }
            addr += 4 * items.len() as u32;
            stmts.push((line_no, addr - 4 * items.len() as u32, Stmt::Word(items)));
        } else if let Some(args) = rest.strip_prefix(".space") {
            let n: u32 = args
                .trim()
                .parse()
                .map_err(|_| err(line_no, "invalid .space size"))?;
            stmts.push((line_no, addr, Stmt::Space(n)));
            addr += n;
        } else {
            let (mn, args) = match rest.find(char::is_whitespace) {
                Some(i) => (&rest[..i], rest[i..].trim()),
                None => (rest, ""),
            };
            let args: Vec<String> = if args.is_empty() {
                Vec::new()
            } else {
                args.split(',').map(|s| s.trim().to_owned()).collect()
            };
            stmts.push((line_no, addr, Stmt::Instr(mn.to_owned(), args)));
            addr += 4;
        }
    }
    let total = addr as usize;

    // Pass 2: encode.
    let mut image = vec![0u8; total];
    for (line_no, at, stmt) in stmts {
        match stmt {
            Stmt::Space(_) => {}
            Stmt::Word(items) => {
                for (i, item) in items.iter().enumerate() {
                    let v = eval_value(item, &symbols).map_err(|m| err(line_no, m))?;
                    image[at as usize + 4 * i..at as usize + 4 * i + 4]
                        .copy_from_slice(&v.to_be_bytes());
                }
            }
            Stmt::Instr(mn, args) => {
                let instr = parse_instr(&mn, &args, at, &symbols).map_err(|m| err(line_no, m))?;
                image[at as usize..at as usize + 4].copy_from_slice(&instr.encode().to_be_bytes());
            }
        }
    }
    Ok(Program { image, symbols })
}

fn eval_value(s: &str, symbols: &HashMap<String, u32>) -> Result<u32, String> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix("hi(").and_then(|x| x.strip_suffix(')')) {
        return Ok(eval_value(inner, symbols)? >> 16);
    }
    if let Some(inner) = s.strip_prefix("lo(").and_then(|x| x.strip_suffix(')')) {
        return Ok(eval_value(inner, symbols)? & 0xffff);
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).map_err(|_| format!("bad hex literal `{s}`"));
    }
    if let Some(neg) = s.strip_prefix('-') {
        let v: u32 = neg.parse().map_err(|_| format!("bad literal `{s}`"))?;
        return Ok((v as i64).wrapping_neg() as u32);
    }
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return s.parse().map_err(|_| format!("bad literal `{s}`"));
    }
    symbols
        .get(s)
        .copied()
        .ok_or_else(|| format!("unknown symbol `{s}`"))
}

fn parse_reg(s: &str) -> Result<u8, String> {
    let s = s.trim();
    let n = s
        .strip_prefix('r')
        .ok_or_else(|| format!("expected register, got `{s}`"))?;
    let v: u8 = n.parse().map_err(|_| format!("bad register `{s}`"))?;
    if v > 31 {
        return Err(format!("register out of range `{s}`"));
    }
    Ok(v)
}

fn parse_imm16s(s: &str, symbols: &HashMap<String, u32>) -> Result<i16, String> {
    let v = eval_value(s, symbols)?;
    let vi = v as i32;
    if vi > 0xffff || (vi as i64) < -(1 << 15) {
        // Allow 0..0xffff and negative range after wrap.
    }
    Ok(v as u16 as i16)
}

fn parse_mem(arg: &str, symbols: &HashMap<String, u32>) -> Result<(i16, u8), String> {
    // off(rA)
    let open = arg
        .find('(')
        .ok_or_else(|| format!("expected off(rA), got `{arg}`"))?;
    let close = arg
        .rfind(')')
        .ok_or_else(|| format!("missing ) in `{arg}`"))?;
    let off_str = arg[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        parse_imm16s(off_str, symbols)?
    };
    let reg = parse_reg(&arg[open + 1..close])?;
    Ok((off, reg))
}

fn branch_off(target: &str, at: u32, symbols: &HashMap<String, u32>) -> Result<i32, String> {
    let dest = eval_value(target, symbols)?;
    let diff = (i64::from(dest) - i64::from(at)) / 4;
    if !(-(1 << 25)..=(1 << 25) - 1).contains(&diff) {
        return Err(format!("branch target `{target}` out of range"));
    }
    Ok(diff as i32)
}

#[allow(clippy::too_many_lines)]
fn parse_instr(
    mn: &str,
    args: &[String],
    at: u32,
    symbols: &HashMap<String, u32>,
) -> Result<Instr, String> {
    let need = |n: usize| -> Result<(), String> {
        if args.len() == n {
            Ok(())
        } else {
            Err(format!("`{mn}` expects {n} operands, got {}", args.len()))
        }
    };
    let mn = mn
        .strip_prefix("l.")
        .ok_or_else(|| format!("unknown mnemonic `{mn}` (expected l.*)"))?;
    Ok(match mn {
        "nop" => Instr::Nop,
        "halt" => Instr::Halt,
        "j" => {
            need(1)?;
            Instr::J(branch_off(&args[0], at, symbols)?)
        }
        "jal" => {
            need(1)?;
            Instr::Jal(branch_off(&args[0], at, symbols)?)
        }
        "jr" => {
            need(1)?;
            Instr::Jr(parse_reg(&args[0])?)
        }
        "bf" => {
            need(1)?;
            Instr::Bf(branch_off(&args[0], at, symbols)?)
        }
        "bnf" => {
            need(1)?;
            Instr::Bnf(branch_off(&args[0], at, symbols)?)
        }
        "movhi" => {
            need(2)?;
            Instr::Movhi(parse_reg(&args[0])?, eval_value(&args[1], symbols)? as u16)
        }
        "lwz" => {
            need(2)?;
            let (off, ra) = parse_mem(&args[1], symbols)?;
            Instr::Lwz(parse_reg(&args[0])?, ra, off)
        }
        "lbz" => {
            need(2)?;
            let (off, ra) = parse_mem(&args[1], symbols)?;
            Instr::Lbz(parse_reg(&args[0])?, ra, off)
        }
        "sw" => {
            need(2)?;
            let (off, ra) = parse_mem(&args[0], symbols)?;
            Instr::Sw(ra, parse_reg(&args[1])?, off)
        }
        "sb" => {
            need(2)?;
            let (off, ra) = parse_mem(&args[0], symbols)?;
            Instr::Sb(ra, parse_reg(&args[1])?, off)
        }
        "addi" => {
            need(3)?;
            Instr::Addi(
                parse_reg(&args[0])?,
                parse_reg(&args[1])?,
                parse_imm16s(&args[2], symbols)?,
            )
        }
        "andi" => {
            need(3)?;
            Instr::Andi(
                parse_reg(&args[0])?,
                parse_reg(&args[1])?,
                eval_value(&args[2], symbols)? as u16,
            )
        }
        "ori" => {
            need(3)?;
            Instr::Ori(
                parse_reg(&args[0])?,
                parse_reg(&args[1])?,
                eval_value(&args[2], symbols)? as u16,
            )
        }
        "xori" => {
            need(3)?;
            Instr::Xori(
                parse_reg(&args[0])?,
                parse_reg(&args[1])?,
                parse_imm16s(&args[2], symbols)?,
            )
        }
        "slli" => {
            need(3)?;
            Instr::ShiftI(
                AluOp::Sll,
                parse_reg(&args[0])?,
                parse_reg(&args[1])?,
                eval_value(&args[2], symbols)? as u8,
            )
        }
        "srli" => {
            need(3)?;
            Instr::ShiftI(
                AluOp::Srl,
                parse_reg(&args[0])?,
                parse_reg(&args[1])?,
                eval_value(&args[2], symbols)? as u8,
            )
        }
        "srai" => {
            need(3)?;
            Instr::ShiftI(
                AluOp::Sra,
                parse_reg(&args[0])?,
                parse_reg(&args[1])?,
                eval_value(&args[2], symbols)? as u8,
            )
        }
        "add" | "sub" | "and" | "or" | "xor" | "mul" | "sll" | "srl" | "sra" => {
            need(3)?;
            let op = match mn {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                "xor" => AluOp::Xor,
                "mul" => AluOp::Mul,
                "sll" => AluOp::Sll,
                "srl" => AluOp::Srl,
                _ => AluOp::Sra,
            };
            Instr::Alu(
                op,
                parse_reg(&args[0])?,
                parse_reg(&args[1])?,
                parse_reg(&args[2])?,
            )
        }
        "sfeq" | "sfne" | "sfgtu" | "sfgeu" | "sfltu" | "sfleu" => {
            need(2)?;
            let op = match mn {
                "sfeq" => CmpOp::Eq,
                "sfne" => CmpOp::Ne,
                "sfgtu" => CmpOp::Gtu,
                "sfgeu" => CmpOp::Geu,
                "sfltu" => CmpOp::Ltu,
                _ => CmpOp::Leu,
            };
            Instr::Sf(op, parse_reg(&args[0])?, parse_reg(&args[1])?)
        }
        "cust1" => {
            need(2)?;
            Instr::Cust1(parse_reg(&args[0])?, parse_reg(&args[1])?)
        }
        other => return Err(format!("unknown mnemonic `l.{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_assembles() {
        let p = assemble(
            "start:\n    l.addi r3, r0, 5\n    l.addi r3, r3, -1\n    l.sfeq r3, r0\n    l.bnf start\n    l.halt\n",
        )
        .unwrap();
        assert_eq!(p.image.len(), 5 * 4);
        assert_eq!(p.symbol("start"), 0);
        let w0 = u32::from_be_bytes(p.image[0..4].try_into().unwrap());
        assert_eq!(Instr::decode(w0), Some(Instr::Addi(3, 0, 5)));
    }

    #[test]
    fn backward_branch_offset() {
        let p = assemble("a: l.nop\n l.j a\n").unwrap();
        let w = u32::from_be_bytes(p.image[4..8].try_into().unwrap());
        assert_eq!(Instr::decode(w), Some(Instr::J(-1)));
    }

    #[test]
    fn forward_branch_and_labels() {
        let p = assemble("l.bf done\nl.nop\ndone: l.halt\n").unwrap();
        let w = u32::from_be_bytes(p.image[0..4].try_into().unwrap());
        assert_eq!(Instr::decode(w), Some(Instr::Bf(2)));
    }

    #[test]
    fn word_data_and_relocations() {
        let src = "\
l.movhi r4, hi(table)
l.ori r4, r4, lo(table)
l.halt
table: .word 0xdeadbeef, 42
";
        let p = assemble(src).unwrap();
        let t = p.symbol("table") as usize;
        assert_eq!(t, 12);
        assert_eq!(&p.image[t..t + 4], &0xdead_beefu32.to_be_bytes());
        assert_eq!(&p.image[t + 4..t + 8], &42u32.to_be_bytes());
        let w0 = u32::from_be_bytes(p.image[0..4].try_into().unwrap());
        assert_eq!(Instr::decode(w0), Some(Instr::Movhi(4, 0)));
        let w1 = u32::from_be_bytes(p.image[4..8].try_into().unwrap());
        assert_eq!(Instr::decode(w1), Some(Instr::Ori(4, 4, 12)));
    }

    #[test]
    fn space_reserves_zeroed_bytes() {
        let p = assemble("l.halt\nbuf: .space 8\nafter: .word 1\n").unwrap();
        assert_eq!(p.symbol("buf"), 4);
        assert_eq!(p.symbol("after"), 12);
        assert_eq!(&p.image[4..12], &[0u8; 8]);
    }

    #[test]
    fn memory_operands() {
        let p = assemble("l.lwz r5, 8(r2)\nl.sw -4(r3), r5\n").unwrap();
        let w0 = u32::from_be_bytes(p.image[0..4].try_into().unwrap());
        assert_eq!(Instr::decode(w0), Some(Instr::Lwz(5, 2, 8)));
        let w1 = u32::from_be_bytes(p.image[4..8].try_into().unwrap());
        assert_eq!(Instr::decode(w1), Some(Instr::Sw(3, 5, -4)));
    }

    #[test]
    fn comments_ignored() {
        let p = assemble("# header\nl.nop ; trailing\n").unwrap();
        assert_eq!(p.image.len(), 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("l.nop\nl.bogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = assemble("l.addi r99, r0, 1\n").unwrap_err();
        assert!(e.message.contains("register"));
        let e = assemble("l.j nowhere\n").unwrap_err();
        assert!(e.message.contains("unknown symbol"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: l.nop\na: l.nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }
}
