//! Generated OR1K assembly for AES-128 using the S-box ISE.
//!
//! This is the paper's benchmark program: AES-128 executed repeatedly
//! with (software-)random plaintexts, `SubBytes` done by the `l.cust1`
//! custom instruction (four S-boxes in one cycle), everything else —
//! `ShiftRows` gathering, word-sliced `MixColumns`, `AddRoundKey`, the
//! plaintext PRNG and the block loop — in plain software, which is what
//! dilutes the ISE activity to a small fraction of total cycles.
//!
//! Round keys are precomputed (the key schedule runs once per key in the
//! paper's benchmark too) and embedded as `.word` data.

use mcml_aes::Aes128;

use crate::asm::{assemble, Program};
use crate::cpu::{Cpu, ExecutionTrace, Stop};

/// Parameters of the generated benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AesBenchParams {
    /// AES key.
    pub key: [u8; 16],
    /// Number of blocks to encrypt (each with a fresh PRNG plaintext).
    pub blocks: u16,
    /// PRNG seed (must be non-zero).
    pub seed: u32,
    /// Idle-loop iterations between blocks, modelling the non-crypto
    /// work of the surrounding application (each iteration is a few
    /// cycles). 0 disables the idle loop.
    pub idle_loops: u32,
}

impl Default for AesBenchParams {
    fn default() -> Self {
        Self {
            key: [0u8; 16],
            blocks: 4,
            seed: 0x1234_5678,
            idle_loops: 0,
        }
    }
}

/// `ShiftRows` byte-gather offsets for column `c`: source state indices of
/// the four rows after the row rotations.
fn shiftrow_offsets(c: usize) -> [usize; 4] {
    [
        4 * c,
        1 + 4 * ((c + 1) % 4),
        2 + 4 * ((c + 2) % 4),
        3 + 4 * ((c + 3) % 4),
    ]
}

/// The xorshift32 PRNG the program uses for plaintexts (one step per
/// 32-bit word).
#[must_use]
pub fn xorshift32(mut x: u32) -> u32 {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    x
}

/// The plaintext the program generates for block `b` (0-based).
#[must_use]
pub fn plaintext_for_block(seed: u32, b: usize) -> [u8; 16] {
    let mut x = seed;
    // Skip the words of earlier blocks.
    for _ in 0..4 * b {
        x = xorshift32(x);
    }
    let mut out = [0u8; 16];
    for w in 0..4 {
        x = xorshift32(x);
        out[4 * w..4 * w + 4].copy_from_slice(&x.to_be_bytes());
    }
    out
}

/// Emit the `MixColumns` + `AddRoundKey` word recipe for the column held in
/// `col` (e.g. `"r10"`), with the round-key word at `off(r3)`.
fn emit_mix_ark(asm: &mut String, col: &str, rk_off: usize) {
    use std::fmt::Write as _;
    let w = col;
    let _ = write!(
        asm,
        "    # MixColumns({w}) + AddRoundKey
    l.slli r20, {w}, 8
    l.srli r21, {w}, 24
    l.or   r20, r20, r21      # rotl8(w)
    l.xor  r22, {w}, r20
    l.slli r21, {w}, 16
    l.srli r5,  {w}, 16
    l.or   r21, r21, r5       # rotl16(w)
    l.xor  r22, r22, r21
    l.slli r5, {w}, 24
    l.srli r6, {w}, 8
    l.or   r5, r5, r6         # rotl24(w)
    l.xor  r22, r22, r5       # T = w^r8^r16^r24 (bytewise t)
    l.xor  r21, {w}, r20      # U = w ^ rotl8(w)
    l.and  r5, r21, r14
    l.slli r5, r5, 1
    l.and  r6, r21, r15
    l.srli r6, r6, 7
    l.slli r7, r6, 4
    l.xor  r7, r7, r6
    l.slli r8, r6, 3
    l.xor  r7, r7, r8
    l.slli r8, r6, 1
    l.xor  r7, r7, r8         # carry bytes * 0x1b
    l.xor  r5, r5, r7         # xtime(U)
    l.xor  {w}, {w}, r22
    l.xor  {w}, {w}, r5       # B = w ^ T ^ xtime(U)
    l.lwz  r20, {rk_off}(r3)
    l.xor  {w}, {w}, r20
"
    );
}

/// Emit the SubBytes+ShiftRows gather of column `c` into `col` followed
/// by the ISE call.
fn emit_gather_sub(asm: &mut String, c: usize, col: &str) {
    use std::fmt::Write as _;
    let off = shiftrow_offsets(c);
    let _ = write!(
        asm,
        "    l.lbz  r5, {o0}(r2)
    l.slli {col}, r5, 24
    l.lbz  r5, {o1}(r2)
    l.slli r5, r5, 16
    l.or   {col}, {col}, r5
    l.lbz  r5, {o2}(r2)
    l.slli r5, r5, 8
    l.or   {col}, {col}, r5
    l.lbz  r5, {o3}(r2)
    l.or   {col}, {col}, r5
    l.cust1 {col}, {col}      # SubBytes via the S-box ISE
",
        o0 = off[0],
        o1 = off[1],
        o2 = off[2],
        o3 = off[3],
    );
}

/// Generate the benchmark's assembly source.
#[must_use]
pub fn generate_aes_asm(params: &AesBenchParams) -> String {
    use std::fmt::Write as _;
    let aes = Aes128::new(&params.key);
    let mut asm = String::new();
    let _ = writeln!(asm, "# AES-128 with S-box ISE — generated benchmark");
    let _ = writeln!(asm, "    l.movhi r2, hi(state)");
    let _ = writeln!(asm, "    l.ori   r2, r2, lo(state)");
    let _ = writeln!(asm, "    l.movhi r14, 0x7f7f");
    let _ = writeln!(asm, "    l.ori   r14, r14, 0x7f7f");
    let _ = writeln!(asm, "    l.movhi r15, 0x8080");
    let _ = writeln!(asm, "    l.ori   r15, r15, 0x8080");
    let _ = writeln!(asm, "    l.movhi r16, {}", params.seed >> 16);
    let _ = writeln!(asm, "    l.ori   r16, r16, {}", params.seed & 0xffff);
    let _ = writeln!(asm, "    l.addi  r18, r0, {}", params.blocks);
    let _ = writeln!(asm, "    l.movhi r19, hi(out)");
    let _ = writeln!(asm, "    l.ori   r19, r19, lo(out)");
    let _ = writeln!(asm, "blocks_loop:");
    // Plaintext from xorshift32, one word at a time.
    for wi in 0..4 {
        let _ = write!(
            asm,
            "    l.slli r20, r16, 13
    l.xor  r16, r16, r20
    l.srli r20, r16, 17
    l.xor  r16, r16, r20
    l.slli r20, r16, 5
    l.xor  r16, r16, r20
    l.sw   {off}(r2), r16
",
            off = 4 * wi
        );
    }
    // Round-key pointer and initial AddRoundKey.
    let _ = writeln!(asm, "    l.movhi r3, hi(rks)");
    let _ = writeln!(asm, "    l.ori   r3, r3, lo(rks)");
    for c in 0..4 {
        let _ = write!(
            asm,
            "    l.lwz  r5, {o}(r2)
    l.lwz  r6, {o}(r3)
    l.xor  r5, r5, r6
    l.sw   {o}(r2), r5
",
            o = 4 * c
        );
    }
    let _ = writeln!(asm, "    l.addi r3, r3, 16");
    let _ = writeln!(asm, "    l.addi r4, r0, 9");
    let _ = writeln!(asm, "round_loop:");
    for (c, col) in ["r10", "r11", "r12", "r13"].iter().enumerate() {
        emit_gather_sub(&mut asm, c, col);
    }
    for (c, col) in ["r10", "r11", "r12", "r13"].iter().enumerate() {
        emit_mix_ark(&mut asm, col, 4 * c);
    }
    for (c, col) in ["r10", "r11", "r12", "r13"].iter().enumerate() {
        let _ = writeln!(asm, "    l.sw   {}(r2), {col}", 4 * c);
    }
    let _ = writeln!(asm, "    l.addi r3, r3, 16");
    let _ = writeln!(asm, "    l.addi r4, r4, -1");
    let _ = writeln!(asm, "    l.sfeq r4, r0");
    let _ = writeln!(asm, "    l.bnf  round_loop");
    // Final round: SubBytes+ShiftRows and AddRoundKey, no MixColumns.
    for (c, col) in ["r10", "r11", "r12", "r13"].iter().enumerate() {
        emit_gather_sub(&mut asm, c, col);
    }
    for (c, col) in ["r10", "r11", "r12", "r13"].iter().enumerate() {
        let _ = write!(
            asm,
            "    l.lwz  r20, {o}(r3)
    l.xor  {col}, {col}, r20
    l.sw   {o}(r2), {col}
",
            o = 4 * c
        );
    }
    // Copy ciphertext to the output buffer.
    for c in 0..4 {
        let _ = writeln!(asm, "    l.lwz  r5, {}(r2)", 4 * c);
        let _ = writeln!(asm, "    l.sw   {}(r19), r5", 4 * c);
    }
    let _ = writeln!(asm, "    l.addi r19, r19, 16");
    // Idle loop modelling the surrounding application.
    if params.idle_loops > 0 {
        let _ = writeln!(asm, "    l.movhi r17, {}", params.idle_loops >> 16);
        let _ = writeln!(asm, "    l.ori   r17, r17, {}", params.idle_loops & 0xffff);
        let _ = writeln!(asm, "idle_loop:");
        let _ = writeln!(asm, "    l.addi r17, r17, -1");
        let _ = writeln!(asm, "    l.sfeq r17, r0");
        let _ = writeln!(asm, "    l.bnf  idle_loop");
    }
    let _ = writeln!(asm, "    l.addi r18, r18, -1");
    let _ = writeln!(asm, "    l.sfeq r18, r0");
    let _ = writeln!(asm, "    l.bnf  blocks_loop");
    let _ = writeln!(asm, "    l.halt");
    // Data.
    let _ = writeln!(asm, "state: .space 16");
    let _ = writeln!(asm, "rks:");
    for rk in aes.round_keys() {
        let words: Vec<String> = rk
            .chunks(4)
            .map(|c| {
                format!(
                    "0x{:08x}",
                    u32::from_be_bytes(c.try_into().expect("4 bytes"))
                )
            })
            .collect();
        let _ = writeln!(asm, "    .word {}", words.join(", "));
    }
    let _ = writeln!(asm, "out: .space {}", 16 * usize::from(params.blocks));
    asm
}

/// Result of running the benchmark.
#[derive(Debug, Clone)]
pub struct AesBenchRun {
    /// Execution trace (cycles + ISE activity).
    pub trace: ExecutionTrace,
    /// Ciphertexts produced, one per block.
    pub ciphertexts: Vec<[u8; 16]>,
    /// The assembled program (for inspection).
    pub program: Program,
}

/// Assemble and run the benchmark, returning the trace and ciphertexts.
///
/// # Panics
///
/// Panics if the generated program fails to assemble or does not halt
/// within the cycle budget — both are generator bugs.
#[must_use]
pub fn run_aes_benchmark(params: &AesBenchParams) -> AesBenchRun {
    let asm = generate_aes_asm(params);
    let program = assemble(&asm).unwrap_or_else(|e| panic!("generated asm invalid: {e}"));
    let mut cpu = Cpu::new(&program, 256 * 1024);
    let mut trace = ExecutionTrace::default();
    let budget = 10_000u64
        .saturating_add(u64::from(params.blocks) * (6_000 + 6 * u64::from(params.idle_loops)));
    let stop = cpu.run(budget, &mut trace);
    assert_eq!(
        stop,
        Stop::Halted,
        "benchmark did not halt in {budget} cycles"
    );
    let out = program.symbol("out");
    let ciphertexts = (0..params.blocks)
        .map(|b| {
            let mut block = [0u8; 16];
            for (i, byte) in block.iter_mut().enumerate() {
                *byte = cpu.load_byte(out + 16 * u32::from(b) + i as u32);
            }
            block
        })
        .collect();
    AesBenchRun {
        trace,
        ciphertexts,
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ciphertexts_match_software_aes() {
        let params = AesBenchParams {
            key: [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                0x4f, 0x3c,
            ],
            blocks: 3,
            seed: 0xdead_beef,
            idle_loops: 0,
        };
        let run = run_aes_benchmark(&params);
        let aes = Aes128::new(&params.key);
        for b in 0..3usize {
            let plain = plaintext_for_block(params.seed, b);
            assert_eq!(
                run.ciphertexts[b],
                aes.encrypt_block(&plain),
                "block {b} (plain {plain:02x?})"
            );
        }
    }

    #[test]
    fn ise_called_40_times_per_block() {
        // 4 columns × 10 rounds.
        let params = AesBenchParams {
            blocks: 2,
            ..AesBenchParams::default()
        };
        let run = run_aes_benchmark(&params);
        assert_eq!(run.trace.ise_events.len(), 80);
    }

    #[test]
    fn ise_operands_recorded_faithfully() {
        let params = AesBenchParams::default();
        let run = run_aes_benchmark(&params);
        for ev in &run.trace.ise_events {
            assert_eq!(ev.output, mcml_aes::sbox_ise::sbox_word(ev.input));
        }
    }

    #[test]
    fn idle_loops_dilute_ise_duty() {
        let busy = run_aes_benchmark(&AesBenchParams {
            idle_loops: 0,
            ..AesBenchParams::default()
        });
        let idle = run_aes_benchmark(&AesBenchParams {
            idle_loops: 5000,
            ..AesBenchParams::default()
        });
        assert!(
            busy.trace.ise_duty() > 0.01,
            "busy duty {}",
            busy.trace.ise_duty()
        );
        assert!(
            idle.trace.ise_duty() < busy.trace.ise_duty() / 10.0,
            "idle duty {} vs busy {}",
            idle.trace.ise_duty(),
            busy.trace.ise_duty()
        );
    }

    #[test]
    fn prng_model_matches_program() {
        // plaintext_for_block must predict exactly what the asm produces;
        // covered indirectly by ciphertexts_match_software_aes, but also
        // check the word chaining here.
        let p0 = plaintext_for_block(1, 0);
        let p1 = plaintext_for_block(1, 1);
        assert_ne!(p0, p1);
        let mut x = 1u32;
        for w in 0..4 {
            x = xorshift32(x);
            assert_eq!(&p0[4 * w..4 * w + 4], &x.to_be_bytes());
        }
    }

    #[test]
    fn generated_asm_is_well_formed() {
        let asm = generate_aes_asm(&AesBenchParams::default());
        assert!(asm.contains("l.cust1"));
        assert!(asm.contains("rks:"));
        let p = assemble(&asm).unwrap();
        assert!(p.image.len() > 400);
    }
}
