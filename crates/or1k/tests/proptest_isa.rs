//! Property-based tests of the ISA encoding and the assembler.

use proptest::prelude::*;

use mcml_or1k::asm::assemble;
use mcml_or1k::cpu::{Cpu, ExecutionTrace, Stop};
use mcml_or1k::isa::{AluOp, CmpOp, Instr};

fn reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Mul),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
    ];
    let shift = prop_oneof![Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra)];
    let cmp = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Gtu),
        Just(CmpOp::Geu),
        Just(CmpOp::Ltu),
        Just(CmpOp::Leu),
    ];
    prop_oneof![
        ((-(1i32 << 25))..((1 << 25) - 1)).prop_map(Instr::J),
        ((-(1i32 << 25))..((1 << 25) - 1)).prop_map(Instr::Jal),
        reg().prop_map(Instr::Jr),
        ((-(1i32 << 25))..((1 << 25) - 1)).prop_map(Instr::Bf),
        ((-(1i32 << 25))..((1 << 25) - 1)).prop_map(Instr::Bnf),
        Just(Instr::Nop),
        (reg(), any::<u16>()).prop_map(|(r, i)| Instr::Movhi(r, i)),
        (reg(), reg(), any::<i16>()).prop_map(|(d, a, o)| Instr::Lwz(d, a, o)),
        (reg(), reg(), any::<i16>()).prop_map(|(d, a, o)| Instr::Lbz(d, a, o)),
        (reg(), reg(), any::<i16>()).prop_map(|(a, b, o)| Instr::Sw(a, b, o)),
        (reg(), reg(), any::<i16>()).prop_map(|(a, b, o)| Instr::Sb(a, b, o)),
        (reg(), reg(), any::<i16>()).prop_map(|(d, a, i)| Instr::Addi(d, a, i)),
        (reg(), reg(), any::<u16>()).prop_map(|(d, a, i)| Instr::Andi(d, a, i)),
        (reg(), reg(), any::<u16>()).prop_map(|(d, a, i)| Instr::Ori(d, a, i)),
        (reg(), reg(), any::<i16>()).prop_map(|(d, a, i)| Instr::Xori(d, a, i)),
        (shift, reg(), reg(), 0u8..32).prop_map(|(op, d, a, s)| Instr::ShiftI(op, d, a, s)),
        (alu, reg(), reg(), reg()).prop_map(|(op, d, a, b)| Instr::Alu(op, d, a, b)),
        (cmp, reg(), reg()).prop_map(|(op, a, b)| Instr::Sf(op, a, b)),
        (reg(), reg()).prop_map(|(d, a)| Instr::Cust1(d, a)),
        Just(Instr::Halt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every instruction round-trips through its 32-bit encoding.
    #[test]
    fn encode_decode_round_trip(i in instr_strategy()) {
        let w = i.encode();
        prop_assert_eq!(Instr::decode(w), Some(i));
    }

    /// ALU semantics: the CPU computes the expected value for random
    /// register-register operations.
    #[test]
    fn alu_semantics(a in any::<u32>(), b in any::<u32>(), op_pick in 0usize..6) {
        let (mnemonic, expect): (&str, fn(u32, u32) -> u32) = [
            ("add", (|x, y| x.wrapping_add(y)) as fn(u32, u32) -> u32),
            ("sub", |x, y| x.wrapping_sub(y)),
            ("and", |x, y| x & y),
            ("or", |x, y| x | y),
            ("xor", |x, y| x ^ y),
            ("mul", |x, y| x.wrapping_mul(y)),
        ][op_pick];
        let src = format!(
            "l.movhi r3, {ah}\nl.ori r3, r3, {al}\nl.movhi r4, {bh}\nl.ori r4, r4, {bl}\nl.{mnemonic} r5, r3, r4\nl.halt\n",
            ah = a >> 16, al = a & 0xffff, bh = b >> 16, bl = b & 0xffff,
        );
        let p = assemble(&src).unwrap();
        let mut cpu = Cpu::new(&p, 4096);
        let mut t = ExecutionTrace::default();
        prop_assert_eq!(cpu.run(1000, &mut t), Stop::Halted);
        prop_assert_eq!(cpu.regs[5], expect(a, b));
    }

    /// Word stores read back, and bytes follow big-endian layout.
    #[test]
    fn memory_semantics(v in any::<u32>(), off in 0u32..64) {
        let addr = 0x200 + off * 4;
        let src = format!(
            "l.movhi r2, {h}\nl.ori r2, r2, {l}\nl.movhi r3, {vh}\nl.ori r3, r3, {vl}\nl.sw 0(r2), r3\nl.lwz r4, 0(r2)\nl.lbz r5, 0(r2)\nl.halt\n",
            h = addr >> 16, l = addr & 0xffff, vh = v >> 16, vl = v & 0xffff,
        );
        let p = assemble(&src).unwrap();
        let mut cpu = Cpu::new(&p, 8192);
        let mut t = ExecutionTrace::default();
        prop_assert_eq!(cpu.run(1000, &mut t), Stop::Halted);
        prop_assert_eq!(cpu.regs[4], v);
        prop_assert_eq!(cpu.regs[5], v >> 24, "big-endian first byte");
    }

    /// The ISE instruction always records an event whose output matches
    /// the reference model.
    #[test]
    fn cust1_semantics(x in any::<u32>()) {
        let src = format!(
            "l.movhi r3, {h}\nl.ori r3, r3, {l}\nl.cust1 r4, r3\nl.halt\n",
            h = x >> 16, l = x & 0xffff,
        );
        let p = assemble(&src).unwrap();
        let mut cpu = Cpu::new(&p, 4096);
        let mut t = ExecutionTrace::default();
        cpu.run(100, &mut t);
        prop_assert_eq!(t.ise_events.len(), 1);
        prop_assert_eq!(t.ise_events[0].input, x);
        prop_assert_eq!(cpu.regs[4], mcml_aes::sbox_ise::sbox_word(x));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Non-branch instructions survive disassemble → assemble → decode.
    #[test]
    fn disassemble_assemble_round_trip(i in instr_strategy()) {
        // Branch/jump targets disassemble as raw offsets, which the
        // assembler treats as absolute symbols; skip them here (their
        // encode/decode round-trip is covered separately).
        prop_assume!(!matches!(
            i,
            Instr::J(_) | Instr::Jal(_) | Instr::Bf(_) | Instr::Bnf(_)
        ));
        let text = format!("{i}\n");
        let p = assemble(&text).unwrap();
        let w = u32::from_be_bytes(p.image[0..4].try_into().unwrap());
        prop_assert_eq!(Instr::decode(w), Some(i), "text was `{}`", text.trim());
    }
}

#[test]
fn disassemble_formats_programs() {
    use mcml_or1k::isa::disassemble;
    let p = assemble("l.addi r3, r0, 42\nl.cust1 r4, r3\nl.halt\n").unwrap();
    let text = disassemble(&p.image);
    assert!(text.contains("l.addi r3, r0, 42"));
    assert!(text.contains("l.cust1 r4, r3"));
    assert!(text.contains("l.halt"));
}
