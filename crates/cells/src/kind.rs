//! The 16 cells of the PG-MCML library (paper Table 2) and their logic
//! semantics.

use serde::{Deserialize, Serialize};

/// Drive strength variants provided by the library (the paper's Fig. 4
/// shows X1 and X4 buffer layouts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DriveStrength {
    /// Unit drive.
    #[default]
    X1,
    /// Quadruple drive: 4× tail current and 4× device widths.
    X4,
}

impl DriveStrength {
    /// Width/current multiplier.
    #[must_use]
    pub fn multiplier(self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X4 => 4.0,
        }
    }

    /// Suffix used in library cell names (`X1`, `X4`).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            DriveStrength::X1 => "X1",
            DriveStrength::X4 => "X4",
        }
    }
}

/// A cell of the library.
///
/// Input ordering conventions (used by [`CellKind::eval_comb`] and every
/// generator):
///
/// * gates: `a, b, c, d` in declaration order;
/// * muxes: data inputs first (`d0…`), then selects (`s0` is the LSB);
/// * latch/flops: `d`, then `clk`, then `rst`/`en` where applicable;
/// * full adder: `a, b, ci`, outputs `s, co`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Differential buffer / inverter (inversion is free by swapping
    /// rails).
    Buffer,
    /// Differential-to-single-ended converter (interfaces an MCML macro to
    /// the CMOS host circuit).
    Diff2Single,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 4-input AND.
    And4,
    /// 2-to-1 multiplexer.
    Mux2,
    /// 4-to-1 multiplexer.
    Mux4,
    /// 3-input majority gate.
    Maj32,
    /// 2-input XOR.
    Xor2,
    /// 3-input XOR.
    Xor3,
    /// 4-input XOR.
    Xor4,
    /// Transparent-high D latch.
    DLatch,
    /// Rising-edge D flip-flop.
    Dff,
    /// Rising-edge D flip-flop with synchronous reset.
    Dffr,
    /// Rising-edge D flip-flop with enable.
    Edff,
    /// Full adder.
    FullAdder,
}

impl CellKind {
    /// All 16 cells, in the paper's Table 2 order.
    pub const ALL: [CellKind; 16] = [
        CellKind::Buffer,
        CellKind::Diff2Single,
        CellKind::And2,
        CellKind::And3,
        CellKind::And4,
        CellKind::Mux2,
        CellKind::Mux4,
        CellKind::Maj32,
        CellKind::Xor2,
        CellKind::Xor3,
        CellKind::Xor4,
        CellKind::DLatch,
        CellKind::Dff,
        CellKind::Dffr,
        CellKind::Edff,
        CellKind::FullAdder,
    ];

    /// Human-readable name as printed in the paper's Table 2.
    #[must_use]
    pub fn table_name(self) -> &'static str {
        match self {
            CellKind::Buffer => "Buffer",
            CellKind::Diff2Single => "Diff2Single",
            CellKind::And2 => "AND2",
            CellKind::And3 => "AND3",
            CellKind::And4 => "AND4",
            CellKind::Mux2 => "MUX2",
            CellKind::Mux4 => "MUX4",
            CellKind::Maj32 => "MAJ32",
            CellKind::Xor2 => "XOR2",
            CellKind::Xor3 => "XOR3",
            CellKind::Xor4 => "XOR4",
            CellKind::DLatch => "D-Latch",
            CellKind::Dff => "DFF",
            CellKind::Dffr => "DFFR",
            CellKind::Edff => "EDFF",
            CellKind::FullAdder => "FA",
        }
    }

    /// Library cell name with drive suffix, as in the paper's Table 1
    /// (`BUFX1`, `MUX4X1`, `AND4X1`, `DLX1`, …).
    #[must_use]
    pub fn lib_name(self, drive: DriveStrength) -> String {
        let stem = match self {
            CellKind::Buffer => "BUF",
            CellKind::Diff2Single => "D2S",
            CellKind::And2 => "AND2",
            CellKind::And3 => "AND3",
            CellKind::And4 => "AND4",
            CellKind::Mux2 => "MUX2",
            CellKind::Mux4 => "MUX4",
            CellKind::Maj32 => "MAJ32",
            CellKind::Xor2 => "XOR2",
            CellKind::Xor3 => "XOR3",
            CellKind::Xor4 => "XOR4",
            CellKind::DLatch => "DL",
            CellKind::Dff => "DFF",
            CellKind::Dffr => "DFFR",
            CellKind::Edff => "EDFF",
            CellKind::FullAdder => "FA",
        };
        format!("{stem}{}", drive.suffix())
    }

    /// Input port names, in evaluation order.
    #[must_use]
    pub fn input_names(self) -> &'static [&'static str] {
        match self {
            CellKind::Buffer | CellKind::Diff2Single => &["a"],
            CellKind::And2 | CellKind::Xor2 => &["a", "b"],
            CellKind::And3 | CellKind::Xor3 | CellKind::Maj32 => &["a", "b", "c"],
            CellKind::And4 | CellKind::Xor4 => &["a", "b", "c", "d"],
            CellKind::Mux2 => &["d0", "d1", "s"],
            CellKind::Mux4 => &["d0", "d1", "d2", "d3", "s0", "s1"],
            CellKind::DLatch | CellKind::Dff => &["d", "clk"],
            CellKind::Dffr => &["d", "clk", "rst"],
            CellKind::Edff => &["d", "clk", "en"],
            CellKind::FullAdder => &["a", "b", "ci"],
        }
    }

    /// Output port names.
    #[must_use]
    pub fn output_names(self) -> &'static [&'static str] {
        match self {
            CellKind::FullAdder => &["s", "co"],
            _ => &["q"],
        }
    }

    /// Number of current-mode stages (= tail current sources) in the
    /// MCML / PG-MCML implementation of the cell.
    ///
    /// Each stage draws one `Iss` from the supply whether or not it
    /// switches, so this is the per-cell static-current weight used by
    /// the `iss-budget` lint rule; it is cross-checked against the
    /// transistor-level generator's stage count in the cell tests.
    #[must_use]
    pub fn mcml_stage_count(self) -> usize {
        match self {
            CellKind::Buffer
            | CellKind::Diff2Single
            | CellKind::And2
            | CellKind::Xor2
            | CellKind::Mux2
            | CellKind::DLatch => 1,
            CellKind::And3 | CellKind::Xor3 | CellKind::Dff => 2,
            CellKind::And4
            | CellKind::Xor4
            | CellKind::Mux4
            | CellKind::Maj32
            | CellKind::Dffr
            | CellKind::Edff => 3,
            CellKind::FullAdder => 5,
        }
    }

    /// Whether the cell holds state (latch or flip-flop).
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(
            self,
            CellKind::DLatch | CellKind::Dff | CellKind::Dffr | CellKind::Edff
        )
    }

    /// Number of data inputs (excluding clock for sequential cells).
    #[must_use]
    pub fn input_count(self) -> usize {
        self.input_names().len()
    }

    /// Evaluate a **combinational** cell.
    ///
    /// Returns `None` for sequential cells — their semantics live in the
    /// event-driven simulator, which tracks state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong arity.
    #[must_use]
    pub fn eval_comb(self, inputs: &[bool]) -> Option<Vec<bool>> {
        if self.is_sequential() {
            return None;
        }
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "{}: expected {} inputs, got {}",
            self.table_name(),
            self.input_count(),
            inputs.len()
        );
        let out = match self {
            CellKind::Buffer | CellKind::Diff2Single => vec![inputs[0]],
            CellKind::And2 | CellKind::And3 | CellKind::And4 => {
                vec![inputs.iter().all(|&b| b)]
            }
            CellKind::Xor2 | CellKind::Xor3 | CellKind::Xor4 => {
                vec![inputs.iter().fold(false, |acc, &b| acc ^ b)]
            }
            CellKind::Mux2 => vec![if inputs[2] { inputs[1] } else { inputs[0] }],
            CellKind::Mux4 => {
                let sel = usize::from(inputs[4]) | (usize::from(inputs[5]) << 1);
                vec![inputs[sel]]
            }
            CellKind::Maj32 => {
                let n = inputs.iter().filter(|&&b| b).count();
                vec![n >= 2]
            }
            CellKind::FullAdder => {
                let (a, b, ci) = (inputs[0], inputs[1], inputs[2]);
                vec![a ^ b ^ ci, (a && b) || (ci && (a ^ b))]
            }
            CellKind::DLatch | CellKind::Dff | CellKind::Dffr | CellKind::Edff => unreachable!(),
        };
        Some(out)
    }

    /// Next state of a **sequential** cell given its current state,
    /// evaluated at the active clock condition (rising edge for flops,
    /// transparent phase for the latch).
    ///
    /// Returns `None` for combinational cells.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has the wrong arity.
    #[must_use]
    pub fn next_state(self, state: bool, inputs: &[bool]) -> Option<bool> {
        if !self.is_sequential() {
            return None;
        }
        assert_eq!(inputs.len(), self.input_count(), "sequential input arity");
        Some(match self {
            CellKind::DLatch | CellKind::Dff => inputs[0],
            CellKind::Dffr => inputs[0] && !inputs[2],
            CellKind::Edff => {
                if inputs[2] {
                    inputs[0]
                } else {
                    state
                }
            }
            _ => unreachable!(),
        })
    }
}

impl std::fmt::Display for CellKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cells_as_in_table_2() {
        assert_eq!(CellKind::ALL.len(), 16);
    }

    #[test]
    fn table1_lib_names() {
        assert_eq!(CellKind::Buffer.lib_name(DriveStrength::X1), "BUFX1");
        assert_eq!(CellKind::Mux4.lib_name(DriveStrength::X1), "MUX4X1");
        assert_eq!(CellKind::And4.lib_name(DriveStrength::X1), "AND4X1");
        assert_eq!(CellKind::DLatch.lib_name(DriveStrength::X1), "DLX1");
        assert_eq!(CellKind::Buffer.lib_name(DriveStrength::X4), "BUFX4");
    }

    #[test]
    fn and_gates_truth() {
        assert_eq!(CellKind::And2.eval_comb(&[true, true]), Some(vec![true]));
        assert_eq!(CellKind::And2.eval_comb(&[true, false]), Some(vec![false]));
        assert_eq!(
            CellKind::And4.eval_comb(&[true, true, true, false]),
            Some(vec![false])
        );
    }

    #[test]
    fn xor_gates_truth() {
        assert_eq!(
            CellKind::Xor3.eval_comb(&[true, true, true]),
            Some(vec![true])
        );
        assert_eq!(
            CellKind::Xor4.eval_comb(&[true, false, true, false]),
            Some(vec![false])
        );
    }

    #[test]
    fn mux_selection() {
        // Mux2: q = s ? d1 : d0.
        assert_eq!(
            CellKind::Mux2.eval_comb(&[true, false, false]),
            Some(vec![true])
        );
        assert_eq!(
            CellKind::Mux2.eval_comb(&[true, false, true]),
            Some(vec![false])
        );
        // Mux4: inputs d0..d3, s0 (lsb), s1.
        let mut inputs = [false; 6];
        inputs[2] = true; // d2
        inputs[5] = true; // s1 -> sel = 2
        assert_eq!(CellKind::Mux4.eval_comb(&inputs), Some(vec![true]));
    }

    #[test]
    fn majority_gate() {
        assert_eq!(
            CellKind::Maj32.eval_comb(&[true, true, false]),
            Some(vec![true])
        );
        assert_eq!(
            CellKind::Maj32.eval_comb(&[true, false, false]),
            Some(vec![false])
        );
    }

    #[test]
    fn full_adder_truth_table() {
        for a in [false, true] {
            for b in [false, true] {
                for ci in [false, true] {
                    let out = CellKind::FullAdder.eval_comb(&[a, b, ci]).unwrap();
                    let total = usize::from(a) + usize::from(b) + usize::from(ci);
                    assert_eq!(out[0], total % 2 == 1, "sum at {a},{b},{ci}");
                    assert_eq!(out[1], total >= 2, "carry at {a},{b},{ci}");
                }
            }
        }
    }

    #[test]
    fn sequential_cells_have_no_comb_eval() {
        assert!(CellKind::Dff.eval_comb(&[true, true]).is_none());
        assert!(CellKind::DLatch.eval_comb(&[true, true]).is_none());
    }

    #[test]
    fn next_state_semantics() {
        assert_eq!(CellKind::Dff.next_state(false, &[true, true]), Some(true));
        assert_eq!(
            CellKind::Dffr.next_state(true, &[true, true, true]),
            Some(false),
            "reset dominates"
        );
        assert_eq!(
            CellKind::Edff.next_state(true, &[false, true, false]),
            Some(true),
            "disabled flop holds"
        );
        assert_eq!(CellKind::And2.next_state(false, &[true, true]), None);
    }

    #[test]
    fn drive_multipliers() {
        assert_eq!(DriveStrength::X1.multiplier(), 1.0);
        assert_eq!(DriveStrength::X4.multiplier(), 4.0);
    }
}
