//! Transistor-level generators for MCML and PG-MCML cells.
//!
//! Every cell is a composition of **current-mode stages**. A stage is:
//! two PMOS active loads (gate = `Vp`), a differential NMOS network that
//! physically embeds the BDD of the stage function (max two stacked pairs
//! at 1.2 V), and a tail current source (gate = `Vn`) — plus, for PG-MCML,
//! the power-gating devices of the chosen [`SleepTopology`]. Multi-input
//! cells cascade stages exactly as the paper's Table 2 delays suggest
//! (AND3 = two cascaded AND2 stages, MUX4 = a MUX2 tree, FA = XOR/MAJ
//! stage pairs, flip-flops = two latches).

use mcml_device::{MosParams, Mosfet};
use mcml_spice::{Circuit, NodeId};

use crate::bdd::{Bdd, BddRef};
use crate::cellnet::{CellNetlist, CellStats, DiffSignal};
use crate::kind::CellKind;
use crate::params::CellParams;
use crate::style::{LogicStyle, SleepTopology};

/// Primitive functions realisable as a single ≤2-level stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageFn {
    /// `q = a` (one level).
    Buf,
    /// `q = a ∧ b`.
    And2,
    /// `q = a ∨ b`.
    Or2,
    /// `q = a ⊕ b`.
    Xor2,
    /// `q = s ? d1 : d0`; vars ordered `[s, d0, d1]` with the select at
    /// the bottom of the stack (classical MCML mux).
    Mux2,
}

struct McmlBuilder<'p> {
    ckt: Circuit,
    params: &'p CellParams,
    topology: Option<SleepTopology>,
    kind: CellKind,
    vdd: NodeId,
    vn: NodeId,
    vp: NodeId,
    sleep: Option<NodeId>,
    sleep_b: Option<NodeId>,
    ports: std::collections::HashMap<String, NodeId>,
    stages: usize,
}

impl<'p> McmlBuilder<'p> {
    fn new(kind: CellKind, params: &'p CellParams, topology: Option<SleepTopology>) -> Self {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vn = ckt.node("vn");
        let vp = ckt.node("vp");
        let mut ports = std::collections::HashMap::new();
        ports.insert("vdd".to_owned(), vdd);
        ports.insert("vn".to_owned(), vn);
        ports.insert("vp".to_owned(), vp);
        let (sleep, sleep_b) = match topology {
            Some(SleepTopology::VnPulldown) => {
                let sb = ckt.node("sleep_b");
                ports.insert("sleep_b".to_owned(), sb);
                (None, Some(sb))
            }
            Some(SleepTopology::VnPulldownIsolated) => {
                let s = ckt.node("sleep");
                let sb = ckt.node("sleep_b");
                ports.insert("sleep".to_owned(), s);
                ports.insert("sleep_b".to_owned(), sb);
                (Some(s), Some(sb))
            }
            Some(SleepTopology::BodyBias) | Some(SleepTopology::SeriesSleep) => {
                let s = ckt.node("sleep");
                ports.insert("sleep".to_owned(), s);
                (Some(s), None)
            }
            None => (None, None),
        };
        Self {
            ckt,
            params,
            topology,
            kind,
            vdd,
            vn,
            vp,
            sleep,
            sleep_b,
            ports,
            stages: 0,
        }
    }

    fn nmos_params(&self) -> MosParams {
        MosParams::nmos_hvt_90().at_corner(self.params.corner)
    }

    fn pmos_params(&self) -> MosParams {
        MosParams::pmos_lvt_90().at_corner(self.params.corner)
    }

    fn add_mos(&mut self, name: &str, d: NodeId, g: NodeId, s: NodeId, b: NodeId, dev: Mosfet) {
        if self.params.with_parasitics {
            self.ckt
                .mosfet_with_caps(name, d, g, s, b, dev, &self.params.tech);
        } else {
            self.ckt.mosfet(name, d, g, s, b, dev);
        }
    }

    /// Differential input port pair.
    fn diff_input(&mut self, name: &str) -> DiffSignal {
        let p = self.ckt.node(&format!("{name}_p"));
        let n = self.ckt.node(&format!("{name}_n"));
        self.ports.insert(format!("{name}_p"), p);
        self.ports.insert(format!("{name}_n"), n);
        DiffSignal { p, n }
    }

    /// Differential output port pair (also usable as an internal net).
    fn diff_output(&mut self, name: &str) -> DiffSignal {
        self.diff_input(name)
    }

    /// Fresh internal differential net.
    fn fresh_diff(&mut self, prefix: &str) -> DiffSignal {
        let p = self.ckt.fresh_node(&format!("{prefix}_p"));
        let n = self.ckt.fresh_node(&format!("{prefix}_n"));
        DiffSignal { p, n }
    }

    /// Attach the two PMOS active loads of a stage.
    fn add_loads(&mut self, stage: &str, out: DiffSignal) {
        let m = self.params.drive_mult();
        let dev = Mosfet::pmos(self.pmos_params(), self.params.w_load * m, self.params.l);
        let (vdd, vp) = (self.vdd, self.vp);
        self.add_mos(&format!("{stage}_lp"), out.p, vp, vdd, vdd, dev.clone());
        self.add_mos(&format!("{stage}_ln"), out.n, vp, vdd, vdd, dev);
    }

    /// Attach the tail current source (and the power-gating devices of the
    /// active topology) below `bottom`, the root net of the NMOS network.
    fn add_bias_chain(&mut self, stage: &str, bottom: NodeId) {
        let m = self.params.drive_mult();
        let p = self.params;
        let gnd = Circuit::GND;
        let tail_dev = Mosfet::nmos(self.nmos_params(), p.w_tail * m, p.l_tail);
        match self.topology {
            None => {
                let (vn,) = (self.vn,);
                self.add_mos(&format!("{stage}_tail"), bottom, vn, gnd, gnd, tail_dev);
            }
            Some(SleepTopology::SeriesSleep) => {
                // (d): sleep transistor stacked *above* the current source;
                // its gate goes low in sleep while its source floats up,
                // giving the negative VGS that crushes leakage.
                let mid = self.ckt.fresh_node(&format!("{stage}_pg"));
                let sleep = self.sleep.expect("topology (d) has a sleep pin");
                let sleep_dev = Mosfet::nmos(self.nmos_params(), p.w_sleep * m, p.l);
                self.add_mos(&format!("{stage}_slp"), bottom, sleep, mid, gnd, sleep_dev);
                let vn = self.vn;
                self.add_mos(&format!("{stage}_tail"), mid, vn, gnd, gnd, tail_dev);
            }
            Some(SleepTopology::BodyBias) => {
                // (c): digital ON signal on the gate, analog Vn on the
                // bulk. Because the gate now swings to the full supply, the
                // device must be sized (much narrower) so that it delivers
                // Iss at Vgs = Vdd under a nominal forward body bias — the
                // body voltage then trims the current across corners.
                let sleep = self.sleep.expect("topology (c) has a sleep pin");
                let vn = self.vn;
                let unit = Mosfet::nmos(self.nmos_params(), 1.0e-6, p.l_tail);
                let i_unit = unit.eval(p.tech.vdd, 0.3, 0.0, 0.4).id;
                let w = (p.iss_effective() / i_unit * 1.0e-6).max(p.tech.w_min);
                let dev = Mosfet::nmos(self.nmos_params(), w, p.l_tail);
                self.add_mos(&format!("{stage}_tail"), bottom, sleep, gnd, vn, dev);
            }
            Some(SleepTopology::VnPulldown) => {
                // (a): the local tail-gate node is pulled to ground in
                // sleep; the global Vn feeds it through the distribution
                // resistance.
                let local = self.ckt.fresh_node(&format!("{stage}_vnl"));
                let vn = self.vn;
                self.ckt
                    .resistor(&format!("{stage}_rvn"), vn, local, 20.0e3);
                let sb = self.sleep_b.expect("topology (a) has a sleep_b pin");
                let pd = Mosfet::nmos(self.nmos_params(), 0.3e-6, p.l);
                self.add_mos(&format!("{stage}_pd"), local, sb, gnd, gnd, pd);
                self.add_mos(&format!("{stage}_tail"), bottom, local, gnd, gnd, tail_dev);
            }
            Some(SleepTopology::VnPulldownIsolated) => {
                // (b): like (a) plus a pass device isolating the bias line.
                let local = self.ckt.fresh_node(&format!("{stage}_vnl"));
                let sleep = self.sleep.expect("topology (b) has a sleep pin");
                let sb = self.sleep_b.expect("topology (b) has a sleep_b pin");
                let vn = self.vn;
                let pass = Mosfet::nmos(self.nmos_params(), 0.6e-6, p.l);
                self.add_mos(&format!("{stage}_pass"), vn, sleep, local, gnd, pass);
                let pd = Mosfet::nmos(self.nmos_params(), 0.3e-6, p.l);
                self.add_mos(&format!("{stage}_pd"), local, sb, gnd, gnd, pd);
                self.add_mos(&format!("{stage}_tail"), bottom, local, gnd, gnd, tail_dev);
            }
        }
    }

    /// Emit a full current-mode stage computing `func` of `vars` into
    /// `out`. `vars` are indexed by BDD variable: variable 0 sits at the
    /// bottom of the stack (the BDD root).
    fn stage(&mut self, func: StageFn, vars: &[DiffSignal], out: DiffSignal) {
        let idx = self.stages;
        self.stages += 1;
        let stage = format!("s{idx}");

        let mut bdd = Bdd::new();
        let root = match func {
            StageFn::Buf => bdd.var(0),
            StageFn::And2 => {
                let (a, b) = (bdd.var(0), bdd.var(1));
                bdd.and(a, b)
            }
            StageFn::Or2 => {
                let (a, b) = (bdd.var(0), bdd.var(1));
                bdd.or(a, b)
            }
            StageFn::Xor2 => {
                let (a, b) = (bdd.var(0), bdd.var(1));
                bdd.xor(a, b)
            }
            StageFn::Mux2 => {
                let (s, d0, d1) = (bdd.var(0), bdd.var(1), bdd.var(2));
                bdd.ite(s, d1, d0)
            }
        };
        self.add_loads(&stage, out);

        // Map each BDD node to the circuit net at its source side; the
        // root net is the top of the bias chain.
        let nodes = bdd.reachable(root);
        assert!(!nodes.is_empty(), "constant stage functions unsupported");
        let mut net_of: std::collections::HashMap<BddRef, NodeId> =
            std::collections::HashMap::new();
        let root_net = self.ckt.fresh_node(&format!("{stage}_root"));
        net_of.insert(root, root_net);
        for &r in &nodes {
            if r != root {
                let nn = self.ckt.fresh_node(&format!("{stage}_b{}", r.index()));
                net_of.insert(r, nn);
            }
        }
        // Distinct variable ranks: rank 0 = bottom (root, widest device).
        let mut used_vars: Vec<u8> = nodes.iter().map(|&r| bdd.node(r).var).collect();
        used_vars.sort_unstable();
        used_vars.dedup();
        let n_levels = used_vars.len();

        let target_net = |net_of: &std::collections::HashMap<BddRef, NodeId>, r: BddRef| {
            if r == BddRef::ONE {
                // Current steered here pulls the complement output low.
                out.n
            } else if r == BddRef::ZERO {
                out.p
            } else {
                net_of[&r]
            }
        };

        for &r in &nodes {
            let node = bdd.node(r);
            let rank = used_vars
                .iter()
                .position(|&v| v == node.var)
                .expect("var present");
            // Lower stack levels get wider devices to survive the reduced
            // gate headroom under the stacked pairs above them.
            let width = self.params.w_pair
                * self.params.drive_mult()
                * (1.0 + 0.5 * (n_levels - 1 - rank) as f64);
            let dev = Mosfet::nmos(self.nmos_params(), width, self.params.l);
            let src = net_of[&r];
            let sig = vars[node.var as usize];
            let hi_net = target_net(&net_of, node.hi);
            let lo_net = target_net(&net_of, node.lo);
            let gnd = Circuit::GND;
            self.add_mos(
                &format!("{stage}_m{}h", r.index()),
                hi_net,
                sig.p,
                src,
                gnd,
                dev.clone(),
            );
            self.add_mos(
                &format!("{stage}_m{}l", r.index()),
                lo_net,
                sig.n,
                src,
                gnd,
                dev,
            );
        }
        self.add_bias_chain(&stage, root_net);
    }

    /// Emit a level-sensitive current-mode latch stage: transparent while
    /// `clk` is high, holding (cross-coupled pair) while low.
    fn latch_stage(&mut self, d: DiffSignal, clk: DiffSignal, out: DiffSignal) {
        let idx = self.stages;
        self.stages += 1;
        let stage = format!("s{idx}");
        self.add_loads(&stage, out);

        let gnd = Circuit::GND;
        let w_top = self.params.w_pair * self.params.drive_mult();
        let w_bot = w_top * 1.5;
        let top = |b: &Self| Mosfet::nmos(b.nmos_params(), w_top, b.params.l);
        let bot = |b: &Self| Mosfet::nmos(b.nmos_params(), w_bot, b.params.l);

        let n_track = self.ckt.fresh_node(&format!("{stage}_trk"));
        let n_hold = self.ckt.fresh_node(&format!("{stage}_hld"));
        let root = self.ckt.fresh_node(&format!("{stage}_root"));

        // Track pair: d steers current to the complement output.
        let t = top(self);
        self.add_mos(&format!("{stage}_mtp"), out.n, d.p, n_track, gnd, t);
        let t = top(self);
        self.add_mos(&format!("{stage}_mtn"), out.p, d.n, n_track, gnd, t);
        // Hold pair: cross-coupled regeneration.
        let t = top(self);
        self.add_mos(&format!("{stage}_mhp"), out.n, out.p, n_hold, gnd, t);
        let t = top(self);
        self.add_mos(&format!("{stage}_mhn"), out.p, out.n, n_hold, gnd, t);
        // Clock pair at the bottom steers between track and hold.
        let b = bot(self);
        self.add_mos(&format!("{stage}_mcp"), n_track, clk.p, root, gnd, b);
        let b = bot(self);
        self.add_mos(&format!("{stage}_mcn"), n_hold, clk.n, root, gnd, b);

        self.add_bias_chain(&stage, root);
    }

    /// Differential-to-single-ended converter: current-mirror-loaded pair
    /// plus a CMOS output inverter, restoring a full-swing signal.
    fn d2s(&mut self, a: DiffSignal, q_name: &str) {
        let idx = self.stages;
        self.stages += 1;
        let stage = format!("s{idx}");
        let gnd = Circuit::GND;
        let vdd = self.vdd;
        let w = self.params.w_pair * self.params.drive_mult();

        let d1 = self.ckt.fresh_node(&format!("{stage}_d1"));
        let d2 = self.ckt.fresh_node(&format!("{stage}_d2"));
        let root = self.ckt.fresh_node(&format!("{stage}_root"));

        // Input pair: a = 1 must pull the pre-output d2 *low*, so the
        // a_p-driven device sits on the d2 side.
        let n = Mosfet::nmos(self.nmos_params(), w, self.params.l);
        self.add_mos(&format!("{stage}_mn1"), d1, a.n, root, gnd, n);
        let n = Mosfet::nmos(self.nmos_params(), w, self.params.l);
        self.add_mos(&format!("{stage}_mn2"), d2, a.p, root, gnd, n);
        // PMOS current mirror load.
        let pw = self.params.w_load * 2.0 * self.params.drive_mult();
        let p = Mosfet::pmos(self.pmos_params(), pw, self.params.l);
        self.add_mos(&format!("{stage}_mp1"), d1, d1, vdd, vdd, p);
        let p = Mosfet::pmos(self.pmos_params(), pw, self.params.l);
        self.add_mos(&format!("{stage}_mp2"), d2, d1, vdd, vdd, p);
        self.add_bias_chain(&stage, root);

        // Full-swing CMOS inverter: q = NOT d2, so q follows `a`.
        let q = self.ckt.node(q_name);
        self.ports.insert(q_name.to_owned(), q);
        let ni = Mosfet::nmos(
            MosParams::nmos_lvt_90().at_corner(self.params.corner),
            0.6e-6,
            self.params.l,
        );
        self.add_mos(&format!("{stage}_invn"), q, d2, gnd, gnd, ni);
        let pi = Mosfet::pmos(
            MosParams::pmos_lvt_90().at_corner(self.params.corner),
            1.2e-6,
            self.params.l,
        );
        self.add_mos(&format!("{stage}_invp"), q, d2, vdd, vdd, pi);
    }

    fn finish(mut self) -> CellNetlist {
        let style = match self.topology {
            Some(_) => LogicStyle::PgMcml,
            None => LogicStyle::Mcml,
        };
        let mut net = CellNetlist {
            circuit: std::mem::take(&mut self.ckt),
            ports: std::mem::take(&mut self.ports),
            kind: self.kind,
            style,
            stats: CellStats {
                n_nmos: 0,
                n_pmos: 0,
                stages: self.stages,
            },
        };
        let (n, p) = net.count_devices();
        net.stats.n_nmos = n;
        net.stats.n_pmos = p;
        net
    }
}

/// Build an MCML (`topology = None`) or PG-MCML (`topology = Some(_)`)
/// cell netlist.
///
/// # Panics
///
/// Panics only on internal generator bugs; every [`CellKind`] is
/// supported.
#[must_use]
pub fn build_mcml_cell(
    kind: CellKind,
    params: &CellParams,
    topology: Option<SleepTopology>,
) -> CellNetlist {
    let mut b = McmlBuilder::new(kind, params, topology);
    match kind {
        CellKind::Buffer => {
            let a = b.diff_input("a");
            let q = b.diff_output("q");
            b.stage(StageFn::Buf, &[a], q);
        }
        CellKind::Diff2Single => {
            let a = b.diff_input("a");
            b.d2s(a, "q");
        }
        CellKind::And2 => {
            let a = b.diff_input("a");
            let bb = b.diff_input("b");
            let q = b.diff_output("q");
            b.stage(StageFn::And2, &[a, bb], q);
        }
        CellKind::And3 => {
            let a = b.diff_input("a");
            let bb = b.diff_input("b");
            let c = b.diff_input("c");
            let w = b.fresh_diff("w");
            let q = b.diff_output("q");
            b.stage(StageFn::And2, &[a, bb], w);
            b.stage(StageFn::And2, &[w, c], q);
        }
        CellKind::And4 => {
            let a = b.diff_input("a");
            let bb = b.diff_input("b");
            let c = b.diff_input("c");
            let d = b.diff_input("d");
            let w1 = b.fresh_diff("w1");
            let w2 = b.fresh_diff("w2");
            let q = b.diff_output("q");
            b.stage(StageFn::And2, &[a, bb], w1);
            b.stage(StageFn::And2, &[w1, c], w2);
            b.stage(StageFn::And2, &[w2, d], q);
        }
        CellKind::Xor2 => {
            let a = b.diff_input("a");
            let bb = b.diff_input("b");
            let q = b.diff_output("q");
            b.stage(StageFn::Xor2, &[a, bb], q);
        }
        CellKind::Xor3 => {
            let a = b.diff_input("a");
            let bb = b.diff_input("b");
            let c = b.diff_input("c");
            let w = b.fresh_diff("w");
            let q = b.diff_output("q");
            b.stage(StageFn::Xor2, &[a, bb], w);
            b.stage(StageFn::Xor2, &[w, c], q);
        }
        CellKind::Xor4 => {
            let a = b.diff_input("a");
            let bb = b.diff_input("b");
            let c = b.diff_input("c");
            let d = b.diff_input("d");
            let w1 = b.fresh_diff("w1");
            let w2 = b.fresh_diff("w2");
            let q = b.diff_output("q");
            b.stage(StageFn::Xor2, &[a, bb], w1);
            b.stage(StageFn::Xor2, &[w1, c], w2);
            b.stage(StageFn::Xor2, &[w2, d], q);
        }
        CellKind::Mux2 => {
            let d0 = b.diff_input("d0");
            let d1 = b.diff_input("d1");
            let s = b.diff_input("s");
            let q = b.diff_output("q");
            b.stage(StageFn::Mux2, &[s, d0, d1], q);
        }
        CellKind::Mux4 => {
            let d0 = b.diff_input("d0");
            let d1 = b.diff_input("d1");
            let d2 = b.diff_input("d2");
            let d3 = b.diff_input("d3");
            let s0 = b.diff_input("s0");
            let s1 = b.diff_input("s1");
            let u = b.fresh_diff("u");
            let v = b.fresh_diff("v");
            let q = b.diff_output("q");
            b.stage(StageFn::Mux2, &[s0, d0, d1], u);
            b.stage(StageFn::Mux2, &[s0, d2, d3], v);
            b.stage(StageFn::Mux2, &[s1, u, v], q);
        }
        CellKind::Maj32 => {
            // MAJ(a,b,c) = c ? (a ∨ b) : (a ∧ b).
            let a = b.diff_input("a");
            let bb = b.diff_input("b");
            let c = b.diff_input("c");
            let u = b.fresh_diff("u");
            let v = b.fresh_diff("v");
            let q = b.diff_output("q");
            b.stage(StageFn::And2, &[a, bb], u);
            b.stage(StageFn::Or2, &[a, bb], v);
            b.stage(StageFn::Mux2, &[c, u, v], q);
        }
        CellKind::DLatch => {
            let d = b.diff_input("d");
            let clk = b.diff_input("clk");
            let q = b.diff_output("q");
            b.latch_stage(d, clk, q);
        }
        CellKind::Dff => {
            let d = b.diff_input("d");
            let clk = b.diff_input("clk");
            let m = b.fresh_diff("m");
            let q = b.diff_output("q");
            // Master transparent while clk is low, slave while high:
            // output changes on the rising edge.
            b.latch_stage(d, clk.inverted(), m);
            b.latch_stage(m, clk, q);
        }
        CellKind::Dffr => {
            let d = b.diff_input("d");
            let clk = b.diff_input("clk");
            let rst = b.diff_input("rst");
            let dr = b.fresh_diff("dr");
            let m = b.fresh_diff("m");
            let q = b.diff_output("q");
            // d' = d ∧ ¬rst — the complement of rst is free.
            b.stage(StageFn::And2, &[d, rst.inverted()], dr);
            b.latch_stage(dr, clk.inverted(), m);
            b.latch_stage(m, clk, q);
        }
        CellKind::Edff => {
            let d = b.diff_input("d");
            let clk = b.diff_input("clk");
            let en = b.diff_input("en");
            let q = b.diff_output("q");
            let dm = b.fresh_diff("dm");
            let m = b.fresh_diff("m");
            // dm = en ? d : q (q feedback keeps the held value).
            b.stage(StageFn::Mux2, &[en, q, d], dm);
            b.latch_stage(dm, clk.inverted(), m);
            b.latch_stage(m, clk, q);
        }
        CellKind::FullAdder => {
            let a = b.diff_input("a");
            let bb = b.diff_input("b");
            let ci = b.diff_input("ci");
            let x = b.fresh_diff("x");
            let u = b.fresh_diff("u");
            let v = b.fresh_diff("v");
            let s = b.diff_output("s");
            let co = b.diff_output("co");
            b.stage(StageFn::Xor2, &[a, bb], x);
            b.stage(StageFn::Xor2, &[x, ci], s);
            b.stage(StageFn::And2, &[a, bb], u);
            b.stage(StageFn::Or2, &[a, bb], v);
            b.stage(StageFn::Mux2, &[ci, u, v], co);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bias::solve_bias;
    use mcml_spice::SourceWave;

    /// DC harness: drive every input at MCML levels, solve the operating
    /// point, and return the differential output voltage `q_p − q_n`.
    fn dc_diff_out(
        kind: CellKind,
        topology: Option<SleepTopology>,
        inputs: &[bool],
        out_name: &str,
        sleep_on: bool,
    ) -> f64 {
        let params = CellParams::default();
        let bias = solve_bias(&params);
        let cell = build_mcml_cell(kind, &params, topology);
        let mut ckt = cell.circuit.clone();
        let vdd_v = params.tech.vdd;
        let v_hi = vdd_v;
        let v_lo = params.v_low();

        ckt.vsource("VDD", cell.port("vdd"), Circuit::GND, SourceWave::dc(vdd_v));
        ckt.vsource("VN", cell.port("vn"), Circuit::GND, SourceWave::dc(bias.vn));
        ckt.vsource("VP", cell.port("vp"), Circuit::GND, SourceWave::dc(bias.vp));
        if cell.ports.contains_key("sleep") {
            let v = if sleep_on { vdd_v } else { 0.0 };
            ckt.vsource("VSLP", cell.port("sleep"), Circuit::GND, SourceWave::dc(v));
        }
        if cell.ports.contains_key("sleep_b") {
            let v = if sleep_on { 0.0 } else { vdd_v };
            ckt.vsource(
                "VSLPB",
                cell.port("sleep_b"),
                Circuit::GND,
                SourceWave::dc(v),
            );
        }
        for (i, name) in kind.input_names().iter().enumerate() {
            let (hi, lo) = if inputs[i] {
                (v_hi, v_lo)
            } else {
                (v_lo, v_hi)
            };
            ckt.vsource(
                &format!("VI{name}p"),
                cell.port(&format!("{name}_p")),
                Circuit::GND,
                SourceWave::dc(hi),
            );
            ckt.vsource(
                &format!("VI{name}n"),
                cell.port(&format!("{name}_n")),
                Circuit::GND,
                SourceWave::dc(lo),
            );
        }
        let op = ckt.dc_op().expect("cell DC converges");
        op.voltage(cell.port(&format!("{out_name}_p")))
            - op.voltage(cell.port(&format!("{out_name}_n")))
    }

    fn exhaustive_check(kind: CellKind, topology: Option<SleepTopology>) {
        let n = kind.input_count();
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let expect = kind.eval_comb(&inputs).expect("combinational");
            for (oi, oname) in kind.output_names().iter().enumerate() {
                let vdiff = dc_diff_out(kind, topology, &inputs, oname, true);
                let want = expect[oi];
                assert!(
                    (vdiff > 0.15) == want && vdiff.abs() > 0.15,
                    "{kind} {oname} inputs {inputs:?}: vdiff = {vdiff:.3} V, want {want}"
                );
            }
        }
    }

    #[test]
    fn buffer_truth_mcml() {
        exhaustive_check(CellKind::Buffer, None);
    }

    #[test]
    fn buffer_truth_pg() {
        exhaustive_check(CellKind::Buffer, Some(SleepTopology::SeriesSleep));
    }

    #[test]
    fn and2_truth_pg() {
        exhaustive_check(CellKind::And2, Some(SleepTopology::SeriesSleep));
    }

    #[test]
    fn xor2_truth_pg() {
        exhaustive_check(CellKind::Xor2, Some(SleepTopology::SeriesSleep));
    }

    #[test]
    fn xor3_truth_pg() {
        exhaustive_check(CellKind::Xor3, Some(SleepTopology::SeriesSleep));
    }

    #[test]
    fn and4_truth_pg() {
        exhaustive_check(CellKind::And4, Some(SleepTopology::SeriesSleep));
    }

    #[test]
    fn mux2_truth_pg() {
        exhaustive_check(CellKind::Mux2, Some(SleepTopology::SeriesSleep));
    }

    #[test]
    fn maj32_truth_pg() {
        exhaustive_check(CellKind::Maj32, Some(SleepTopology::SeriesSleep));
    }

    #[test]
    fn full_adder_truth_pg() {
        exhaustive_check(CellKind::FullAdder, Some(SleepTopology::SeriesSleep));
    }

    #[test]
    fn mux4_truth_mcml() {
        exhaustive_check(CellKind::Mux4, None);
    }

    #[test]
    fn sleep_gates_the_output_swing() {
        // Asleep, the tail current is cut: both outputs float to Vdd and
        // the differential swing collapses.
        let awake = dc_diff_out(
            CellKind::Buffer,
            Some(SleepTopology::SeriesSleep),
            &[true],
            "q",
            true,
        );
        let asleep = dc_diff_out(
            CellKind::Buffer,
            Some(SleepTopology::SeriesSleep),
            &[true],
            "q",
            false,
        );
        assert!(awake > 0.3, "awake swing {awake}");
        assert!(asleep.abs() < 0.05, "asleep residual swing {asleep}");
    }

    #[test]
    fn all_topologies_functional_when_awake() {
        for topo in SleepTopology::ALL {
            let v = dc_diff_out(CellKind::Buffer, Some(topo), &[true], "q", true);
            assert!(v > 0.2, "{topo}: awake buffer swing {v}");
        }
    }

    #[test]
    fn stats_and_ports_consistent() {
        let params = CellParams::default();
        for kind in CellKind::ALL {
            let cell = build_mcml_cell(kind, &params, Some(SleepTopology::SeriesSleep));
            let (n, p) = cell.count_devices();
            assert_eq!(cell.stats.n_nmos, n, "{kind} nmos count");
            assert_eq!(cell.stats.n_pmos, p, "{kind} pmos count");
            assert!(cell.stats.stages >= 1, "{kind} has at least one stage");
            assert!(cell.ports.contains_key("vdd"));
            assert!(cell.ports.contains_key("sleep") || cell.ports.contains_key("sleep_b"));
            for i in kind.input_names() {
                assert!(
                    cell.ports.contains_key(&format!("{i}_p")),
                    "{kind} input {i}_p"
                );
            }
        }
    }

    #[test]
    fn stage_count_helper_matches_generator() {
        let params = CellParams::default();
        for kind in CellKind::ALL {
            let cell = build_mcml_cell(kind, &params, None);
            assert_eq!(
                cell.stats.stages,
                kind.mcml_stage_count(),
                "{kind}: generator stages vs CellKind::mcml_stage_count"
            );
        }
    }

    #[test]
    fn pg_adds_one_transistor_per_stage_topology_d() {
        let params = CellParams::default();
        for kind in [CellKind::Buffer, CellKind::And3, CellKind::FullAdder] {
            let plain = build_mcml_cell(kind, &params, None);
            let pg = build_mcml_cell(kind, &params, Some(SleepTopology::SeriesSleep));
            assert_eq!(
                pg.transistor_count(),
                plain.transistor_count() + plain.stats.stages,
                "{kind}"
            );
        }
    }

    #[test]
    fn diff2single_restores_full_swing() {
        let params = CellParams::default();
        let bias = solve_bias(&params);
        let cell = build_mcml_cell(
            CellKind::Diff2Single,
            &params,
            Some(SleepTopology::SeriesSleep),
        );
        let mut ckt = cell.circuit.clone();
        let vdd_v = params.tech.vdd;
        ckt.vsource("VDD", cell.port("vdd"), Circuit::GND, SourceWave::dc(vdd_v));
        ckt.vsource("VN", cell.port("vn"), Circuit::GND, SourceWave::dc(bias.vn));
        ckt.vsource("VP", cell.port("vp"), Circuit::GND, SourceWave::dc(bias.vp));
        ckt.vsource(
            "VSLP",
            cell.port("sleep"),
            Circuit::GND,
            SourceWave::dc(vdd_v),
        );
        for (val, want_high) in [(true, true), (false, false)] {
            let mut c = ckt.clone();
            let (hi, lo) = if val {
                (vdd_v, params.v_low())
            } else {
                (params.v_low(), vdd_v)
            };
            c.vsource("VAp", cell.port("a_p"), Circuit::GND, SourceWave::dc(hi));
            c.vsource("VAn", cell.port("a_n"), Circuit::GND, SourceWave::dc(lo));
            let op = c.dc_op().expect("d2s converges");
            let q = op.voltage(cell.port("q"));
            if want_high {
                assert!(q > 0.9 * vdd_v, "q should be full-swing high, got {q}");
            } else {
                assert!(q < 0.1 * vdd_v, "q should be full-swing low, got {q}");
            }
        }
    }
}
