//! Bias-voltage solver: find `Vn` (tail gate) and `Vp` (load gate) for a
//! target tail current and output swing.
//!
//! In the paper's library the two analog bias lines are global: `Vn`
//! *"determines the tail current"* and `Vp` *"defines the resistivity of
//! the active load"*. This module computes both directly from the device
//! model by bisection, playing the role of the designer's bias-generation
//! step.

use mcml_device::{MosParams, Mosfet};
use serde::{Deserialize, Serialize};

use crate::params::CellParams;

/// Solved bias operating point for a library build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasPoint {
    /// Tail current-source gate voltage (V).
    pub vn: f64,
    /// PMOS active-load gate voltage (V).
    pub vp: f64,
    /// Tail current the biases were solved for (A), drive-scaled.
    pub iss: f64,
    /// Output swing the load was solved for (V).
    pub vswing: f64,
}

/// Why a bias point could not be solved for a set of cell parameters.
///
/// Produced by [`try_solve_bias`]; a candidate sizing whose devices
/// cannot deliver the requested tail current anywhere in the supply
/// range is *infeasible*, not a programming error, so callers that feed
/// machine-generated parameters (the characterisation harness, the
/// sizing optimizer) get a value to reject instead of a panic.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasError {
    /// Which bisection failed (`"tail current"` or `"load current"`).
    pub what: &'static str,
    /// Human-readable bracket description.
    pub detail: String,
}

impl std::fmt::Display for BiasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bias solve failed for {}: {}", self.what, self.detail)
    }
}

impl std::error::Error for BiasError {}

/// Solve `Vn` and `Vp` for the given cell parameters.
///
/// `Vn` is chosen so the (high-Vt) tail device carries `Iss` with ≈0.3 V
/// of drain headroom; `Vp` so the (low-Vt) load carries `Iss` at a
/// source–drain drop of exactly `Vswing` (i.e. an effective load
/// resistance of `Vswing / Iss`).
///
/// # Panics
///
/// Panics if the requested current is outside what the sized devices can
/// deliver anywhere in the supply range. Use [`try_solve_bias`] when the
/// parameters are not known-good (e.g. optimizer candidates).
#[must_use]
pub fn solve_bias(params: &CellParams) -> BiasPoint {
    match try_solve_bias(params) {
        Ok(b) => b,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`solve_bias`]: returns a [`BiasError`] instead of panicking
/// when the sized devices cannot reach the requested operating point.
///
/// # Errors
///
/// Returns [`BiasError`] if either bisection bracket does not contain the
/// target current (including NaN device currents from degenerate
/// geometry).
pub fn try_solve_bias(params: &CellParams) -> Result<BiasPoint, BiasError> {
    let iss = params.iss_effective();
    let m = params.drive_mult();

    // Tail: high-Vt NMOS, Vds fixed at a representative 0.3 V.
    let tail = Mosfet::nmos(
        MosParams::nmos_hvt_90().at_corner(params.corner),
        params.w_tail * m,
        params.l_tail,
    );
    let vn = bisect_increasing(
        |vg| tail.eval(vg, 0.3, 0.0, 0.0).id,
        iss,
        0.0,
        params.tech.vdd,
        "tail current",
    )?;

    // Load: low-Vt PMOS with source at Vdd; current magnitude at
    // Vsd = Vswing must be Iss. Lower gate voltage -> stronger device.
    let vdd = params.tech.vdd;
    let load = Mosfet::pmos(
        MosParams::pmos_lvt_90().at_corner(params.corner),
        params.w_load * m,
        params.l,
    );
    let vp = bisect_decreasing(
        |vg| -load.eval(vg, vdd - params.vswing, vdd, vdd).id,
        iss,
        0.0,
        vdd,
        "load current",
    )?;

    Ok(BiasPoint {
        vn,
        vp,
        iss,
        vswing: params.vswing,
    })
}

/// Bisect `f(x) = target` where `f` is increasing on `[lo, hi]`.
fn bisect_increasing(
    f: impl Fn(f64) -> f64,
    target: f64,
    mut lo: f64,
    mut hi: f64,
    what: &'static str,
) -> Result<f64, BiasError> {
    // NaN endpoints fail these comparisons too, which is exactly the
    // rejection we want for degenerate device geometry.
    if !(f(hi) >= target && f(lo) <= target) {
        return Err(BiasError {
            what,
            detail: format!(
                "target {target:.3e} A outside achievable range [{:.3e}, {:.3e}]",
                f(lo),
                f(hi)
            ),
        });
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Bisect `f(x) = target` where `f` is decreasing on `[lo, hi]`.
fn bisect_decreasing(
    f: impl Fn(f64) -> f64,
    target: f64,
    lo: f64,
    hi: f64,
    what: &'static str,
) -> Result<f64, BiasError> {
    // `y ↦ f(−y)` is increasing on [−hi, −lo].
    Ok(-bisect_increasing(|y| f(-y), target, -hi, -lo, what)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::DriveStrength;

    #[test]
    fn tail_bias_delivers_target_current() {
        let p = CellParams::default();
        let b = solve_bias(&p);
        let tail = Mosfet::nmos(MosParams::nmos_hvt_90(), p.w_tail, p.l_tail);
        let id = tail.eval(b.vn, 0.3, 0.0, 0.0).id;
        assert!(
            (id / p.iss - 1.0).abs() < 1e-3,
            "tail current {id:.3e} vs target {:.3e}",
            p.iss
        );
        assert!(b.vn > 0.3 && b.vn < 1.0, "plausible Vn = {}", b.vn);
    }

    #[test]
    fn load_bias_sets_swing_resistance() {
        let p = CellParams::default();
        let b = solve_bias(&p);
        let load = Mosfet::pmos(MosParams::pmos_lvt_90(), p.w_load, p.l);
        let vdd = p.tech.vdd;
        let i = -load.eval(b.vp, vdd - p.vswing, vdd, vdd).id;
        assert!(
            (i / p.iss - 1.0).abs() < 1e-3,
            "load current {i:.3e} at full swing"
        );
        // The load must be *on*: Vp well below Vdd − |Vtp|.
        assert!(b.vp < vdd - 0.2, "Vp = {}", b.vp);
    }

    #[test]
    fn x4_biases_close_to_x1() {
        // Widths and current both scale 4x, so the bias point barely
        // moves — that is what makes shared bias rails possible.
        let b1 = solve_bias(&CellParams::default());
        let b4 = solve_bias(&CellParams::default().with_drive(DriveStrength::X4));
        assert!((b1.vn - b4.vn).abs() < 0.02, "{} vs {}", b1.vn, b4.vn);
        assert!((b1.vp - b4.vp).abs() < 0.02, "{} vs {}", b1.vp, b4.vp);
        assert_eq!(b4.iss, 4.0 * b1.iss);
    }

    #[test]
    fn try_solve_bias_rejects_unreachable_current() {
        // 1 A through micron-wide devices: no gate voltage inside the
        // supply can deliver it.
        let p = CellParams {
            iss: 1.0,
            ..CellParams::default()
        };
        let e = try_solve_bias(&p).unwrap_err();
        assert_eq!(e.what, "tail current");
        assert!(e.to_string().contains("outside achievable range"));
    }

    #[test]
    fn try_solve_bias_matches_solve_bias_when_feasible() {
        let p = CellParams::default();
        assert_eq!(try_solve_bias(&p).unwrap(), solve_bias(&p));
    }

    #[test]
    fn higher_iss_needs_higher_vn() {
        // At fixed W (no rescale) more current means more overdrive.
        let p50 = CellParams {
            iss: 50e-6,
            ..CellParams::default()
        };
        let p100 = CellParams {
            iss: 100e-6,
            ..p50.clone()
        };
        let b50 = solve_bias(&p50);
        let b100 = solve_bias(&p100);
        assert!(b100.vn > b50.vn);
        assert!(b100.vp < b50.vp, "stronger load for same swing");
    }
}
