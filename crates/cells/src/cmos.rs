//! Static CMOS equivalents of the library cells — the conventional
//! baseline of the paper's Tables 2 and 3 and the insecure reference for
//! the Fig. 6 CPA experiment.
//!
//! Cells are fully complementary (no transmission gates): every gate is a
//! pull-down series/parallel NMOS network between the output and ground
//! and its dual PMOS network to the supply. This keeps the SPICE
//! operating points well-conditioned and makes the data-dependent supply
//! current — the property CPA exploits — entirely structural.

use mcml_device::{MosParams, Mosfet};
use mcml_spice::{Circuit, NodeId};

use crate::cellnet::{CellNetlist, CellStats};
use crate::kind::CellKind;
use crate::params::CellParams;
use crate::style::LogicStyle;

/// A series/parallel switch network over gate nodes.
#[derive(Debug, Clone)]
pub enum SpNet {
    /// Single transistor controlled by the node.
    T(NodeId),
    /// Series composition (all must conduct).
    Series(Vec<SpNet>),
    /// Parallel composition (any may conduct).
    Par(Vec<SpNet>),
}

impl SpNet {
    /// The dual network (series ↔ parallel), used to derive the PMOS
    /// pull-up from the NMOS pull-down.
    #[must_use]
    pub fn dual(&self) -> SpNet {
        match self {
            SpNet::T(n) => SpNet::T(*n),
            SpNet::Series(xs) => SpNet::Par(xs.iter().map(SpNet::dual).collect()),
            SpNet::Par(xs) => SpNet::Series(xs.iter().map(SpNet::dual).collect()),
        }
    }

    /// Number of transistors in the network.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            SpNet::T(_) => 1,
            SpNet::Series(xs) | SpNet::Par(xs) => xs.iter().map(SpNet::size).sum(),
        }
    }
}

struct CmosBuilder<'p> {
    ckt: Circuit,
    params: &'p CellParams,
    vdd: NodeId,
    ports: std::collections::HashMap<String, NodeId>,
    counter: usize,
}

impl<'p> CmosBuilder<'p> {
    fn new(params: &'p CellParams) -> Self {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let mut ports = std::collections::HashMap::new();
        ports.insert("vdd".to_owned(), vdd);
        Self {
            ckt,
            params,
            vdd,
            ports,
            counter: 0,
        }
    }

    fn uid(&mut self) -> usize {
        self.counter += 1;
        self.counter
    }

    fn input(&mut self, name: &str) -> NodeId {
        let n = self.ckt.node(name);
        self.ports.insert(name.to_owned(), n);
        n
    }

    fn output(&mut self, name: &str) -> NodeId {
        self.input(name)
    }

    fn fresh(&mut self, prefix: &str) -> NodeId {
        self.ckt.fresh_node(prefix)
    }

    fn add_nmos(&mut self, d: NodeId, g: NodeId, s: NodeId, w: f64) {
        let name = format!("mn{}", self.uid());
        let dev = Mosfet::nmos(
            MosParams::nmos_lvt_90().at_corner(self.params.corner),
            w,
            self.params.l,
        );
        if self.params.with_parasitics {
            self.ckt
                .mosfet_with_caps(&name, d, g, s, Circuit::GND, dev, &self.params.tech);
        } else {
            self.ckt.mosfet(&name, d, g, s, Circuit::GND, dev);
        }
    }

    fn add_pmos(&mut self, d: NodeId, g: NodeId, s: NodeId, w: f64) {
        let name = format!("mp{}", self.uid());
        let dev = Mosfet::pmos(
            MosParams::pmos_lvt_90().at_corner(self.params.corner),
            w,
            self.params.l,
        );
        let vdd = self.vdd;
        if self.params.with_parasitics {
            self.ckt
                .mosfet_with_caps(&name, d, g, s, vdd, dev, &self.params.tech);
        } else {
            self.ckt.mosfet(&name, d, g, s, vdd, dev);
        }
    }

    fn emit_net_nmos(&mut self, net: &SpNet, top: NodeId, bottom: NodeId, w: f64) {
        match net {
            SpNet::T(g) => self.add_nmos(top, *g, bottom, w),
            SpNet::Series(xs) => {
                // Series stacks are widened to keep drive comparable.
                let ws = w * xs.len() as f64;
                let mut upper = top;
                for (i, x) in xs.iter().enumerate() {
                    let lower = if i + 1 == xs.len() {
                        bottom
                    } else {
                        self.fresh("sn")
                    };
                    self.emit_net_nmos(x, upper, lower, ws);
                    upper = lower;
                }
            }
            SpNet::Par(xs) => {
                for x in xs {
                    self.emit_net_nmos(x, top, bottom, w);
                }
            }
        }
    }

    fn emit_net_pmos(&mut self, net: &SpNet, top: NodeId, bottom: NodeId, w: f64) {
        match net {
            SpNet::T(g) => self.add_pmos(bottom, *g, top, w),
            SpNet::Series(xs) => {
                let ws = w * xs.len() as f64;
                let mut upper = top;
                for (i, x) in xs.iter().enumerate() {
                    let lower = if i + 1 == xs.len() {
                        bottom
                    } else {
                        self.fresh("sp")
                    };
                    self.emit_net_pmos(x, upper, lower, ws);
                    upper = lower;
                }
            }
            SpNet::Par(xs) => {
                for x in xs {
                    self.emit_net_pmos(x, top, bottom, w);
                }
            }
        }
    }

    /// Complementary static gate: `out = NOT f`, where `f` is the
    /// pull-down network expression.
    fn static_gate(&mut self, f: &SpNet, out: NodeId) {
        let m = self.params.drive_mult();
        let wn = 0.4e-6 * m;
        let wp = 0.8e-6 * m;
        self.emit_net_nmos(f, out, Circuit::GND, wn);
        let vdd = self.vdd;
        self.emit_net_pmos(&f.dual(), vdd, out, wp);
    }

    fn inv(&mut self, a: NodeId, q: NodeId) {
        self.static_gate(&SpNet::T(a), q);
    }

    fn inv_new(&mut self, a: NodeId) -> NodeId {
        let q = self.fresh("inv");
        self.inv(a, q);
        q
    }

    fn nand(&mut self, inputs: &[NodeId], q: NodeId) {
        let f = SpNet::Series(inputs.iter().map(|&n| SpNet::T(n)).collect());
        self.static_gate(&f, q);
    }

    fn and_gate(&mut self, inputs: &[NodeId], q: NodeId) {
        let w = self.fresh("nand");
        self.nand(inputs, w);
        self.inv(w, q);
    }

    /// Complementary XOR2 needing both input polarities.
    fn xor(&mut self, a: NodeId, b: NodeId, q: NodeId) {
        let ab = self.inv_new(a);
        let bb = self.inv_new(b);
        // q' = a·b + a'·b' (XNOR pull-down) so q = a ⊕ b.
        let f = SpNet::Par(vec![
            SpNet::Series(vec![SpNet::T(a), SpNet::T(b)]),
            SpNet::Series(vec![SpNet::T(ab), SpNet::T(bb)]),
        ]);
        self.static_gate(&f, q);
    }

    fn xor_new(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let q = self.fresh("xor");
        self.xor(a, b, q);
        q
    }

    /// Static 2:1 mux: `q = s ? d1 : d0` via an AOI plus output inverter.
    fn mux2(&mut self, s: NodeId, d0: NodeId, d1: NodeId, q: NodeId) {
        let sb = self.inv_new(s);
        let y = self.fresh("muxy");
        // y = NOT(s·d1 + s'·d0), q = NOT y.
        let f = SpNet::Par(vec![
            SpNet::Series(vec![SpNet::T(s), SpNet::T(d1)]),
            SpNet::Series(vec![SpNet::T(sb), SpNet::T(d0)]),
        ]);
        self.static_gate(&f, y);
        self.inv(y, q);
    }

    fn mux2_new(&mut self, s: NodeId, d0: NodeId, d1: NodeId) -> NodeId {
        let q = self.fresh("mux");
        self.mux2(s, d0, d1, q);
        q
    }

    /// Majority gate: complex AOI plus inverter.
    fn maj(&mut self, a: NodeId, b: NodeId, c: NodeId, q: NodeId) {
        let y = self.fresh("majy");
        let f = SpNet::Par(vec![
            SpNet::Series(vec![SpNet::T(a), SpNet::T(b)]),
            SpNet::Series(vec![SpNet::T(a), SpNet::T(c)]),
            SpNet::Series(vec![SpNet::T(b), SpNet::T(c)]),
        ]);
        self.static_gate(&f, y);
        self.inv(y, q);
    }

    /// Level-sensitive latch, transparent while `clk` is high.
    fn latch(&mut self, d: NodeId, clk: NodeId, q: NodeId) {
        // q = clk ? d : q — a mux with output feedback.
        self.mux2(clk, q, d, q);
    }

    fn finish(mut self, kind: CellKind) -> CellNetlist {
        let mut net = CellNetlist {
            circuit: std::mem::take(&mut self.ckt),
            ports: std::mem::take(&mut self.ports),
            kind,
            style: LogicStyle::Cmos,
            stats: CellStats::default(),
        };
        let (n, p) = net.count_devices();
        net.stats.n_nmos = n;
        net.stats.n_pmos = p;
        net.stats.stages = 0;
        net
    }
}

/// Build the static CMOS netlist for `kind`.
///
/// # Panics
///
/// Panics only on internal generator bugs; every [`CellKind`] is
/// supported.
#[must_use]
pub fn build_cmos_cell(kind: CellKind, params: &CellParams) -> CellNetlist {
    let mut b = CmosBuilder::new(params);
    match kind {
        CellKind::Buffer | CellKind::Diff2Single => {
            let a = b.input("a");
            let q = b.output("q");
            let w = b.inv_new(a);
            b.inv(w, q);
        }
        CellKind::And2 | CellKind::And3 | CellKind::And4 => {
            let names = kind.input_names();
            let ins: Vec<NodeId> = names.iter().map(|n| b.input(n)).collect();
            let q = b.output("q");
            b.and_gate(&ins, q);
        }
        CellKind::Xor2 => {
            let a = b.input("a");
            let bb = b.input("b");
            let q = b.output("q");
            b.xor(a, bb, q);
        }
        CellKind::Xor3 => {
            let a = b.input("a");
            let bb = b.input("b");
            let c = b.input("c");
            let q = b.output("q");
            let w = b.xor_new(a, bb);
            b.xor(w, c, q);
        }
        CellKind::Xor4 => {
            let a = b.input("a");
            let bb = b.input("b");
            let c = b.input("c");
            let d = b.input("d");
            let q = b.output("q");
            let w1 = b.xor_new(a, bb);
            let w2 = b.xor_new(w1, c);
            b.xor(w2, d, q);
        }
        CellKind::Mux2 => {
            let d0 = b.input("d0");
            let d1 = b.input("d1");
            let s = b.input("s");
            let q = b.output("q");
            b.mux2(s, d0, d1, q);
        }
        CellKind::Mux4 => {
            let d0 = b.input("d0");
            let d1 = b.input("d1");
            let d2 = b.input("d2");
            let d3 = b.input("d3");
            let s0 = b.input("s0");
            let s1 = b.input("s1");
            let q = b.output("q");
            let u = b.mux2_new(s0, d0, d1);
            let v = b.mux2_new(s0, d2, d3);
            b.mux2(s1, u, v, q);
        }
        CellKind::Maj32 => {
            let a = b.input("a");
            let bb = b.input("b");
            let c = b.input("c");
            let q = b.output("q");
            b.maj(a, bb, c, q);
        }
        CellKind::DLatch => {
            let d = b.input("d");
            let clk = b.input("clk");
            let q = b.output("q");
            b.latch(d, clk, q);
        }
        CellKind::Dff => {
            let d = b.input("d");
            let clk = b.input("clk");
            let q = b.output("q");
            let clkb = b.inv_new(clk);
            let m = b.fresh("m");
            b.latch(d, clkb, m);
            b.latch(m, clk, q);
        }
        CellKind::Dffr => {
            let d = b.input("d");
            let clk = b.input("clk");
            let rst = b.input("rst");
            let q = b.output("q");
            let rstb = b.inv_new(rst);
            let dr = b.fresh("dr");
            b.and_gate(&[d, rstb], dr);
            let clkb = b.inv_new(clk);
            let m = b.fresh("m");
            b.latch(dr, clkb, m);
            b.latch(m, clk, q);
        }
        CellKind::Edff => {
            let d = b.input("d");
            let clk = b.input("clk");
            let en = b.input("en");
            let q = b.output("q");
            let dm = b.mux2_new(en, q, d);
            let clkb = b.inv_new(clk);
            let m = b.fresh("m");
            b.latch(dm, clkb, m);
            b.latch(m, clk, q);
        }
        CellKind::FullAdder => {
            let a = b.input("a");
            let bb = b.input("b");
            let ci = b.input("ci");
            let s = b.output("s");
            let co = b.output("co");
            let x = b.xor_new(a, bb);
            b.xor(x, ci, s);
            b.maj(a, bb, ci, co);
        }
    }
    b.finish(kind)
}

/// Transistor count of the CMOS implementation of `kind` — the basis of
/// the CMOS area model. Kept as a table (and cross-checked against the
/// generator in tests) so the area model needs no netlist construction.
#[must_use]
pub fn cmos_transistor_count(kind: CellKind) -> usize {
    match kind {
        CellKind::Buffer | CellKind::Diff2Single => 4,
        CellKind::And2 => 6,
        CellKind::And3 => 8,
        CellKind::And4 => 10,
        CellKind::Xor2 => 12,
        CellKind::Xor3 => 24,
        CellKind::Xor4 => 36,
        CellKind::Mux2 => 12,
        CellKind::Mux4 => 36,
        CellKind::Maj32 => 14,
        CellKind::DLatch => 12,
        CellKind::Dff => 26,
        CellKind::Dffr => 34,
        CellKind::Edff => 38,
        CellKind::FullAdder => 38,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcml_spice::SourceWave;

    fn dc_out(kind: CellKind, inputs: &[bool], out_name: &str) -> f64 {
        let params = CellParams::default();
        let cell = build_cmos_cell(kind, &params);
        let mut ckt = cell.circuit.clone();
        let vdd_v = params.tech.vdd;
        ckt.vsource("VDD", cell.port("vdd"), Circuit::GND, SourceWave::dc(vdd_v));
        for (i, name) in kind.input_names().iter().enumerate() {
            let v = if inputs[i] { vdd_v } else { 0.0 };
            ckt.vsource(
                &format!("VI{name}"),
                cell.port(name),
                Circuit::GND,
                SourceWave::dc(v),
            );
        }
        let op = ckt.dc_op().expect("cmos cell DC converges");
        op.voltage(cell.port(out_name))
    }

    fn exhaustive(kind: CellKind) {
        let n = kind.input_count();
        for pattern in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let expect = kind.eval_comb(&inputs).expect("combinational");
            for (oi, oname) in kind.output_names().iter().enumerate() {
                let v = dc_out(kind, &inputs, oname);
                if expect[oi] {
                    assert!(v > 1.0, "{kind} {oname} {inputs:?}: {v} should be high");
                } else {
                    assert!(v < 0.2, "{kind} {oname} {inputs:?}: {v} should be low");
                }
            }
        }
    }

    #[test]
    fn buffer_truth() {
        exhaustive(CellKind::Buffer);
    }

    #[test]
    fn and_gates_truth() {
        exhaustive(CellKind::And2);
        exhaustive(CellKind::And3);
    }

    #[test]
    fn xor_truth() {
        exhaustive(CellKind::Xor2);
        exhaustive(CellKind::Xor3);
    }

    #[test]
    fn mux_truth() {
        exhaustive(CellKind::Mux2);
        exhaustive(CellKind::Mux4);
    }

    #[test]
    fn maj_and_fa_truth() {
        exhaustive(CellKind::Maj32);
        exhaustive(CellKind::FullAdder);
    }

    #[test]
    fn transistor_table_matches_generator() {
        let params = CellParams::default();
        for kind in CellKind::ALL {
            let cell = build_cmos_cell(kind, &params);
            assert_eq!(
                cell.transistor_count(),
                cmos_transistor_count(kind),
                "{kind}"
            );
        }
    }

    #[test]
    fn cmos_cells_have_no_bias_pins() {
        let cell = build_cmos_cell(CellKind::And2, &CellParams::default());
        assert!(!cell.ports.contains_key("vn"));
        assert!(!cell.ports.contains_key("sleep"));
        assert_eq!(cell.stats.stages, 0);
    }

    #[test]
    fn sp_net_dual_and_size() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let f = SpNet::Series(vec![
            SpNet::T(a),
            SpNet::Par(vec![SpNet::T(b), SpNet::T(a)]),
        ]);
        assert_eq!(f.size(), 3);
        match f.dual() {
            SpNet::Par(xs) => assert_eq!(xs.len(), 2),
            _ => panic!("dual of series is parallel"),
        }
    }
}
