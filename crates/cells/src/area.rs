//! Layout-area model.
//!
//! All cells share the fixed row height of the Badel et al. differential
//! standard-cell template (10 routing tracks ≈ 2.8 µm in this 90 nm
//! technology); a cell's area is its height times its width in layout
//! quanta.
//!
//! * **PG-MCML** widths come from the library's layout templates, i.e. the
//!   widths published for the paper's own cells (Tables 1 and 2 quantise
//!   exactly to a 1.4896 µm² unit — 5 units for the buffer, 24 for the
//!   full adder, …). Delays and powers are *simulated* in this
//!   reproduction; areas are layout data, exactly as a shipped `.lib`
//!   would carry them.
//! * **MCML** (no sleep transistor): the sleep device shares the current
//!   source's diffusion, and removing it shrinks every cell by the same
//!   one-column fraction — the uniform ≈5.6 % of Table 1.
//! * **CMOS** areas are computed from the structural transistor count of
//!   the [`crate::cmos`] generators at one layout pitch per device.

use crate::cmos::cmos_transistor_count;
use crate::kind::{CellKind, DriveStrength};
use crate::style::LogicStyle;

/// Standard-cell row height (µm).
pub const CELL_HEIGHT_UM: f64 = 2.8;

/// PG-MCML layout width quantum (µm² of cell area per width unit).
pub const PG_WIDTH_UNIT_UM2: f64 = 1.4896;

/// CMOS layout area per transistor (µm²): one M1 pitch (0.28 µm) of width
/// per device at full row height.
pub const CMOS_UM2_PER_TRANSISTOR: f64 = 0.28 * CELL_HEIGHT_UM;

/// Fraction of a PG-MCML cell's width occupied by the sleep-transistor
/// column (Table 1: PG-MCML cells are uniformly 19/18 ≈ 1.056× their MCML
/// counterparts).
pub const SLEEP_COLUMN_FRACTION: f64 = 1.0 / 19.0;

/// Area growth of the X4 drive variant. The X4 layout of Fig. 4 folds the
/// wider devices over shared diffusion, so it is well below 4×.
pub const X4_AREA_FACTOR: f64 = 1.8;

/// PG-MCML cell width in layout quanta (X1 drive).
#[must_use]
pub fn pg_width_units(kind: CellKind) -> f64 {
    match kind {
        CellKind::Buffer => 5.0,
        CellKind::Diff2Single => 6.0,
        CellKind::And2 => 6.0,
        CellKind::And3 => 9.0,
        CellKind::And4 => 12.0,
        CellKind::Mux2 => 6.0,
        CellKind::Mux4 => 14.0,
        CellKind::Maj32 => 12.0,
        CellKind::Xor2 => 6.0,
        CellKind::Xor3 => 12.0,
        CellKind::Xor4 => 14.0,
        CellKind::DLatch => 6.0,
        CellKind::Dff => 12.0,
        CellKind::Dffr => 18.0,
        CellKind::Edff => 16.0,
        CellKind::FullAdder => 24.0,
    }
}

/// Silicon area of a cell (µm²).
///
/// ```
/// use mcml_cells::{cell_area_um2, CellKind, DriveStrength, LogicStyle};
///
/// let pg = cell_area_um2(CellKind::Buffer, LogicStyle::PgMcml, DriveStrength::X1);
/// assert!((pg - 7.448).abs() < 1e-9, "paper Table 2 buffer area");
/// let mcml = cell_area_um2(CellKind::Buffer, LogicStyle::Mcml, DriveStrength::X1);
/// assert!(pg > mcml, "the sleep transistor costs area");
/// ```
#[must_use]
pub fn cell_area_um2(kind: CellKind, style: LogicStyle, drive: DriveStrength) -> f64 {
    let drive_factor = match drive {
        DriveStrength::X1 => 1.0,
        DriveStrength::X4 => X4_AREA_FACTOR,
    };
    match style {
        LogicStyle::PgMcml => pg_width_units(kind) * PG_WIDTH_UNIT_UM2 * drive_factor,
        LogicStyle::Mcml => {
            pg_width_units(kind) * PG_WIDTH_UNIT_UM2 * (1.0 - SLEEP_COLUMN_FRACTION) * drive_factor
        }
        LogicStyle::Cmos => {
            cmos_transistor_count(kind) as f64 * CMOS_UM2_PER_TRANSISTOR * drive_factor
        }
    }
}

/// Area ratio of the PG-MCML cell to its CMOS equivalent (the last column
/// of the paper's Table 2).
#[must_use]
pub fn mcml_to_cmos_ratio(kind: CellKind) -> f64 {
    cell_area_um2(kind, LogicStyle::PgMcml, DriveStrength::X1)
        / cell_area_um2(kind, LogicStyle::Cmos, DriveStrength::X1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_pg_areas_reproduced() {
        // (cell, paper area in µm²)
        let expected = [
            (CellKind::Buffer, 7.448),
            (CellKind::Diff2Single, 8.9376),
            (CellKind::And2, 8.9376),
            (CellKind::And3, 13.4064),
            (CellKind::And4, 17.8752),
            (CellKind::Mux2, 8.9376),
            (CellKind::Mux4, 20.8544),
            (CellKind::Maj32, 17.8752),
            (CellKind::Xor2, 8.9376),
            (CellKind::Xor3, 17.8752),
            (CellKind::Xor4, 20.8544),
            (CellKind::DLatch, 8.9376),
            (CellKind::Dff, 17.8752),
            (CellKind::Dffr, 26.8128),
            (CellKind::Edff, 23.8336),
            (CellKind::FullAdder, 35.7504),
        ];
        for (kind, paper) in expected {
            let got = cell_area_um2(kind, LogicStyle::PgMcml, DriveStrength::X1);
            assert!(
                (got - paper).abs() / paper < 2e-3,
                "{kind}: {got} vs paper {paper}"
            );
        }
    }

    #[test]
    fn table1_sleep_overhead_about_six_percent() {
        for kind in [
            CellKind::Buffer,
            CellKind::Mux4,
            CellKind::And4,
            CellKind::DLatch,
        ] {
            let pg = cell_area_um2(kind, LogicStyle::PgMcml, DriveStrength::X1);
            let plain = cell_area_um2(kind, LogicStyle::Mcml, DriveStrength::X1);
            let overhead = pg / plain - 1.0;
            assert!(
                overhead > 0.04 && overhead < 0.08,
                "{kind}: overhead {overhead}"
            );
        }
    }

    #[test]
    fn table1_mcml_areas_close_to_paper() {
        let expected = [
            (CellKind::Buffer, 7.056),
            (CellKind::Mux4, 19.7568),
            (CellKind::And4, 16.9344),
            (CellKind::DLatch, 8.4672),
        ];
        for (kind, paper) in expected {
            let got = cell_area_um2(kind, LogicStyle::Mcml, DriveStrength::X1);
            assert!(
                (got - paper).abs() / paper < 0.01,
                "{kind}: {got} vs paper {paper}"
            );
        }
    }

    #[test]
    fn average_cmos_ratio_near_paper() {
        // The paper reports PG-MCML ≈1.6× CMOS on average over the cells
        // that have a commercial equivalent; our structural CMOS model
        // lands in the same band.
        let cells = [
            CellKind::Buffer,
            CellKind::And2,
            CellKind::And3,
            CellKind::And4,
            CellKind::Mux2,
            CellKind::Mux4,
            CellKind::Xor2,
            CellKind::Xor3,
            CellKind::Xor4,
            CellKind::DLatch,
            CellKind::Dff,
            CellKind::Dffr,
            CellKind::Edff,
            CellKind::FullAdder,
        ];
        let avg: f64 =
            cells.iter().map(|&k| mcml_to_cmos_ratio(k)).sum::<f64>() / cells.len() as f64;
        assert!(avg > 1.1 && avg < 2.2, "average PG/CMOS ratio {avg}");
    }

    #[test]
    fn x4_larger_but_sublinear() {
        let x1 = cell_area_um2(CellKind::Buffer, LogicStyle::PgMcml, DriveStrength::X1);
        let x4 = cell_area_um2(CellKind::Buffer, LogicStyle::PgMcml, DriveStrength::X4);
        assert!(x4 > x1 && x4 < 4.0 * x1);
    }
}
