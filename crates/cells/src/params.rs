//! Cell sizing and biasing parameters.

use mcml_device::{Corner, Technology};
use serde::{Deserialize, Serialize};

use crate::kind::DriveStrength;
use crate::style::SleepTopology;

/// Electrical design parameters shared by all cells of a library build.
///
/// The paper's library design space: *"Vp, Vn, and sizing are the design
/// parameters which determine the performances of MCML circuits"*, with
/// the bias current chosen at 50 µA from the Fig. 3 area–delay study and a
/// high-Vt NMOS network / low-Vt PMOS load device mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellParams {
    /// Process technology.
    pub tech: Technology,
    /// Process corner for all devices.
    pub corner: Corner,
    /// Tail (bias) current per stage at X1 drive (A). The library value is
    /// 50 µA.
    pub iss: f64,
    /// Differential output swing `Iss·R` (V).
    pub vswing: f64,
    /// Drive strength; X4 scales widths and tail current by 4.
    pub drive: DriveStrength,
    /// Power-gating topology used when the cell is built as PG-MCML.
    pub sleep_topology: SleepTopology,
    /// Base width of a differential-pair NMOS at the top stack level (m).
    pub w_pair: f64,
    /// Width of the tail current-source NMOS (m).
    pub w_tail: f64,
    /// Width of the sleep NMOS (m). The paper sizes it equal to the
    /// current source so both share one diffusion region.
    pub w_sleep: f64,
    /// Width of the PMOS active-load devices (m).
    pub w_load: f64,
    /// Drawn channel length for logic devices (m).
    pub l: f64,
    /// Drawn channel length for the tail current source (m); longer for
    /// better matching and output resistance.
    pub l_tail: f64,
    /// Attach estimated device parasitics (recommended; required for
    /// meaningful delays).
    pub with_parasitics: bool,
}

impl CellParams {
    /// Library-default parameters (50 µA, 0.4 V swing, X1, topology (d)).
    #[must_use]
    pub fn new() -> Self {
        Self {
            tech: Technology::cmos90(),
            corner: Corner::Tt,
            iss: 50e-6,
            vswing: 0.4,
            drive: DriveStrength::X1,
            sleep_topology: SleepTopology::SeriesSleep,
            w_pair: 1.0e-6,
            w_tail: 2.0e-6,
            w_sleep: 2.0e-6,
            w_load: 0.6e-6,
            l: 0.10e-6,
            l_tail: 0.20e-6,
            with_parasitics: true,
        }
    }

    /// Same parameters at a different tail current (used by the Fig. 3
    /// bias sweep). Pair and tail widths scale proportionally so the
    /// devices stay at a comparable inversion level.
    #[must_use]
    pub fn with_iss(&self, iss: f64) -> Self {
        assert!(iss > 0.0 && iss.is_finite(), "iss must be positive");
        let k = iss / self.iss;
        Self {
            iss,
            w_pair: self.w_pair * k.max(0.2),
            w_tail: self.w_tail * k.max(0.2),
            w_sleep: self.w_sleep * k.max(0.2),
            // The load must stay able to deliver Iss at the swing drop;
            // width grows sublinearly (deeper triode at higher currents).
            w_load: self.w_load * k.powf(0.75).max(0.5),
            ..self.clone()
        }
    }

    /// Same parameters at a different drive strength.
    #[must_use]
    pub fn with_drive(&self, drive: DriveStrength) -> Self {
        Self {
            drive,
            ..self.clone()
        }
    }

    /// Effective width multiplier from the drive strength.
    #[must_use]
    pub fn drive_mult(&self) -> f64 {
        self.drive.multiplier()
    }

    /// Effective tail current including drive scaling (A).
    #[must_use]
    pub fn iss_effective(&self) -> f64 {
        self.iss * self.drive_mult()
    }

    /// The low output level `Vdd − Vswing` (V).
    #[must_use]
    pub fn v_low(&self) -> f64 {
        self.tech.vdd - self.vswing
    }

    /// Check that the parameters describe a physically buildable cell:
    /// every float finite, widths/lengths/current strictly positive, and
    /// the output swing inside the supply (`0 < Vswing < Vdd`).
    ///
    /// The device model itself asserts positive geometry, so anything
    /// that feeds externally supplied parameters into `build_cell` (the
    /// characterisation harness, the sizing optimizer) calls this first
    /// and turns a bad candidate into a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("iss", self.iss),
            ("w_pair", self.w_pair),
            ("w_tail", self.w_tail),
            ("w_sleep", self.w_sleep),
            ("w_load", self.w_load),
            ("l", self.l),
            ("l_tail", self.l_tail),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be finite and positive, got {v:e}"));
            }
        }
        if !self.vswing.is_finite() || self.vswing <= 0.0 || self.vswing >= self.tech.vdd {
            return Err(format!(
                "vswing must lie strictly inside (0, Vdd = {}), got {:e}",
                self.tech.vdd, self.vswing
            ));
        }
        Ok(())
    }
}

impl Default for CellParams {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_design_point() {
        let p = CellParams::default();
        assert_eq!(p.iss, 50e-6);
        assert_eq!(p.vswing, 0.4);
        assert_eq!(p.sleep_topology, SleepTopology::SeriesSleep);
        assert_eq!(p.w_tail, p.w_sleep, "shared diffusion sizing");
    }

    #[test]
    fn iss_scaling_scales_tail_width() {
        let p = CellParams::default();
        let q = p.with_iss(100e-6);
        assert_eq!(q.iss, 100e-6);
        assert!((q.w_tail / p.w_tail - 2.0).abs() < 1e-12);
        // Load widens sublinearly: enough to deliver Iss at the swing
        // drop without scaling the full factor.
        let k_load = q.w_load / p.w_load;
        assert!(k_load > 1.0 && k_load < 2.0, "load scaling {k_load}");
    }

    #[test]
    fn drive_scaling() {
        let p = CellParams::default().with_drive(DriveStrength::X4);
        assert_eq!(p.drive_mult(), 4.0);
        assert_eq!(p.iss_effective(), 200e-6);
    }

    #[test]
    fn low_level() {
        let p = CellParams::default();
        assert!((p.v_low() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "iss must be positive")]
    fn negative_iss_rejected() {
        let _ = CellParams::default().with_iss(-1.0);
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_degenerates() {
        assert!(CellParams::default().validate().is_ok());
        let zero_w = CellParams {
            w_pair: 0.0,
            ..CellParams::default()
        };
        assert!(zero_w.validate().unwrap_err().contains("w_pair"));
        let nan_l = CellParams {
            l: f64::NAN,
            ..CellParams::default()
        };
        assert!(nan_l.validate().is_err());
        let big_swing = CellParams {
            vswing: 2.0,
            ..CellParams::default()
        };
        assert!(big_swing.validate().unwrap_err().contains("vswing"));
        let neg_iss = CellParams {
            iss: -1e-6,
            ..CellParams::default()
        };
        assert!(neg_iss.validate().is_err());
    }
}
