//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! An MCML gate's differential NMOS network is, physically, the BDD of its
//! Boolean function: every BDD node becomes a source-coupled transistor
//! pair steering the tail current toward the child selected by the input,
//! and the two terminals connect to the two output loads (the paper,
//! §3: *"The logic function is realized by a NMOS network that implements
//! the corresponding binary decision diagram"*). This module provides the
//! BDD construction the stage generator consumes; it is also reused by the
//! technology mapper for LUT-style functions such as the AES S-box.

use std::collections::HashMap;

/// Node reference within a [`Bdd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant FALSE terminal.
    pub const ZERO: BddRef = BddRef(0);
    /// The constant TRUE terminal.
    pub const ONE: BddRef = BddRef(1);

    /// True for either terminal node.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self.0 < 2
    }

    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Internal decision node: split on `var`, go to `hi` when the variable is
/// 1, `lo` when 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BddNode {
    /// Variable index (level); smaller indices are closer to the root.
    pub var: u8,
    /// Child when the variable is 0.
    pub lo: BddRef,
    /// Child when the variable is 1.
    pub hi: BddRef,
}

/// A shared-node ROBDD manager over at most 64 variables.
#[derive(Debug, Clone, Default)]
pub struct Bdd {
    nodes: Vec<BddNode>,
    unique: HashMap<BddNode, BddRef>,
}

impl Bdd {
    /// A fresh manager containing only the terminals.
    #[must_use]
    pub fn new() -> Self {
        // Index 0/1 are reserved for the terminals; store placeholder
        // nodes so indices line up.
        let sentinel = BddNode {
            var: u8::MAX,
            lo: BddRef::ZERO,
            hi: BddRef::ZERO,
        };
        Self {
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
        }
    }

    /// Total node count, including the two terminals.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Decision node payload.
    ///
    /// # Panics
    ///
    /// Panics if `r` is a terminal.
    #[must_use]
    pub fn node(&self, r: BddRef) -> BddNode {
        assert!(!r.is_terminal(), "terminals carry no node payload");
        self.nodes[r.index()]
    }

    fn mk(&mut self, var: u8, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        let node = BddNode { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = BddRef(u32::try_from(self.nodes.len()).expect("bdd too large"));
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// The single-variable function `x_var`.
    pub fn var(&mut self, var: u8) -> BddRef {
        self.mk(var, BddRef::ZERO, BddRef::ONE)
    }

    /// Top variable of `r` (`u8::MAX` for terminals).
    fn top_var(&self, r: BddRef) -> u8 {
        if r.is_terminal() {
            u8::MAX
        } else {
            self.nodes[r.index()].var
        }
    }

    fn cofactors(&self, r: BddRef, var: u8) -> (BddRef, BddRef) {
        if r.is_terminal() || self.nodes[r.index()].var != var {
            (r, r)
        } else {
            let n = self.nodes[r.index()];
            (n.lo, n.hi)
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g + ¬f·h` — the universal BDD
    /// operation all the Boolean connectives reduce to.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::ONE {
            return g;
        }
        if f == BddRef::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::ONE && h == BddRef::ZERO {
            return f;
        }
        let var = self.top_var(f).min(self.top_var(g)).min(self.top_var(h));
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let (h0, h1) = self.cofactors(h, var);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        self.mk(var, lo, hi)
    }

    /// Conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, b, BddRef::ZERO)
    }

    /// Disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, BddRef::ONE, b)
    }

    /// Negation.
    pub fn not(&mut self, a: BddRef) -> BddRef {
        self.ite(a, BddRef::ZERO, BddRef::ONE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> BddRef {
        let nb = self.not(b);
        self.ite(a, nb, b)
    }

    /// Build the BDD of an arbitrary truth table over `n_vars` variables;
    /// bit `i` of the table is the function value for the input assignment
    /// whose bits are `i` (variable 0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `n_vars > 16` or the table is shorter than `2^n_vars`
    /// bits.
    pub fn from_truth_table(&mut self, n_vars: u8, table: &[bool]) -> BddRef {
        assert!(n_vars <= 16, "truth tables limited to 16 variables");
        assert!(
            table.len() >= (1usize << n_vars),
            "table too short for {n_vars} vars"
        );
        self.tt_build_rec(n_vars, table, 0, 0)
    }

    fn tt_build_rec(&mut self, n_vars: u8, table: &[bool], var: u8, offset: usize) -> BddRef {
        if var == n_vars {
            return if table[offset] {
                BddRef::ONE
            } else {
                BddRef::ZERO
            };
        }
        let lo = self.tt_build_rec(n_vars, table, var + 1, offset);
        let hi = self.tt_build_rec(n_vars, table, var + 1, offset | (1 << var));
        self.mk(var, lo, hi)
    }

    /// Evaluate the function at the given assignment (indexed by variable).
    #[must_use]
    pub fn eval(&self, mut r: BddRef, assignment: &[bool]) -> bool {
        while !r.is_terminal() {
            let n = self.nodes[r.index()];
            r = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        r == BddRef::ONE
    }

    /// All decision nodes reachable from `root`, topologically ordered
    /// root-first (suitable for emitting the transistor network).
    #[must_use]
    pub fn reachable(&self, root: BddRef) -> Vec<BddRef> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || seen[r.index()] {
                continue;
            }
            seen[r.index()] = true;
            out.push(r);
            let n = self.nodes[r.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        out.sort_by_key(|r| self.nodes[r.index()].var);
        out
    }

    /// Number of decision nodes reachable from `root`.
    #[must_use]
    pub fn size(&self, root: BddRef) -> usize {
        self.reachable(root).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_assignments(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1usize << n)).map(move |i| (0..n).map(|b| (i >> b) & 1 == 1).collect())
    }

    #[test]
    fn terminals() {
        let bdd = Bdd::new();
        assert!(BddRef::ZERO.is_terminal());
        assert!(BddRef::ONE.is_terminal());
        assert!(!bdd.eval(BddRef::ZERO, &[]));
        assert!(bdd.eval(BddRef::ONE, &[]));
    }

    #[test]
    fn var_and_not() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        let nx = bdd.not(x);
        assert!(bdd.eval(x, &[true]));
        assert!(!bdd.eval(x, &[false]));
        assert!(!bdd.eval(nx, &[true]));
        assert!(bdd.eval(nx, &[false]));
    }

    #[test]
    fn and_or_xor_truth() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let and = bdd.and(a, b);
        let or = bdd.or(a, b);
        let xor = bdd.xor(a, b);
        for asg in all_assignments(2) {
            assert_eq!(bdd.eval(and, &asg), asg[0] && asg[1]);
            assert_eq!(bdd.eval(or, &asg), asg[0] || asg[1]);
            assert_eq!(bdd.eval(xor, &asg), asg[0] ^ asg[1]);
        }
    }

    #[test]
    fn reduction_shares_nodes() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let x1 = bdd.xor(a, b);
        let x2 = bdd.xor(a, b);
        assert_eq!(x1, x2, "hash-consing returns identical refs");
        // XOR2 BDD: one node for `a`, two for `b`.
        assert_eq!(bdd.size(x1), 3);
    }

    #[test]
    fn idempotent_ops_collapse() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        assert_eq!(bdd.and(a, a), a);
        assert_eq!(bdd.or(a, a), a);
        assert_eq!(bdd.xor(a, a), BddRef::ZERO);
    }

    #[test]
    fn truth_table_round_trip() {
        let mut bdd = Bdd::new();
        // Majority of 3: table indexed by bits (a=bit0, b=bit1, c=bit2).
        let table: Vec<bool> = (0..8u32).map(|i| i.count_ones() >= 2).collect();
        let f = bdd.from_truth_table(3, &table);
        for asg in all_assignments(3) {
            let expect = asg.iter().filter(|&&x| x).count() >= 2;
            assert_eq!(bdd.eval(f, &asg), expect, "assignment {asg:?}");
        }
    }

    #[test]
    fn mux_via_ite() {
        let mut bdd = Bdd::new();
        let s = bdd.var(2);
        let d0 = bdd.var(0);
        let d1 = bdd.var(1);
        let mux = bdd.ite(s, d1, d0);
        for asg in all_assignments(3) {
            let expect = if asg[2] { asg[1] } else { asg[0] };
            assert_eq!(bdd.eval(mux, &asg), expect);
        }
    }

    #[test]
    fn reachable_ordered_by_var() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let abc = bdd.and(ab, c);
        let nodes = bdd.reachable(abc);
        assert_eq!(nodes.len(), 3, "AND3 chain BDD");
        let vars: Vec<u8> = nodes.iter().map(|&r| bdd.node(r).var).collect();
        assert!(vars.windows(2).all(|w| w[0] <= w[1]), "root-first order");
    }

    #[test]
    fn xor4_node_count_is_linear() {
        let mut bdd = Bdd::new();
        let vars: Vec<BddRef> = (0..4).map(|i| bdd.var(i)).collect();
        let x = vars.iter().skip(1).fold(vars[0], |acc, &v| bdd.xor(acc, v));
        // XOR chain BDD: 2 nodes per middle level + 1 root = 1+2+2+2.
        assert_eq!(bdd.size(x), 7);
        for asg in all_assignments(4) {
            let expect = asg.iter().fold(false, |a, &b| a ^ b);
            assert_eq!(bdd.eval(x, &asg), expect);
        }
    }

    #[test]
    #[should_panic(expected = "table too short")]
    fn short_table_rejected() {
        let mut bdd = Bdd::new();
        let _ = bdd.from_truth_table(3, &[true; 4]);
    }
}
