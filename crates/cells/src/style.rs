//! Logic styles and power-gating topologies.

use serde::{Deserialize, Serialize};

/// The three logic styles compared throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicStyle {
    /// Static CMOS: the conventional baseline. Data-dependent supply
    /// current — fast and dense but vulnerable to DPA.
    Cmos,
    /// Conventional MOS current-mode logic: constant-current differential
    /// style, DPA-resistant but with large static power.
    Mcml,
    /// Power-gated MCML: MCML plus a per-cell sleep transistor — the
    /// paper's contribution.
    PgMcml,
}

impl LogicStyle {
    /// All styles, in the order the paper's tables list them.
    pub const ALL: [LogicStyle; 3] = [LogicStyle::Cmos, LogicStyle::Mcml, LogicStyle::PgMcml];

    /// Whether cells of this style are differential (dual-rail).
    #[must_use]
    pub fn is_differential(self) -> bool {
        !matches!(self, LogicStyle::Cmos)
    }

    /// Whether cells of this style carry a sleep pin.
    #[must_use]
    pub fn is_power_gated(self) -> bool {
        matches!(self, LogicStyle::PgMcml)
    }
}

impl std::fmt::Display for LogicStyle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LogicStyle::Cmos => "CMOS",
            LogicStyle::Mcml => "MCML",
            LogicStyle::PgMcml => "PG-MCML",
        };
        write!(f, "{s}")
    }
}

/// The four per-cell power-gating topologies evaluated in the paper's
/// Fig. 2. The shipped library uses [`SleepTopology::SeriesSleep`]
/// (topology (d)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SleepTopology {
    /// (a) A single transistor pulls the local tail-bias node `Vn` to
    /// ground during sleep. Discarded: restoring `Vn` within a clock cycle
    /// needs a wide-bandwidth source follower.
    VnPulldown,
    /// (b) Like (a) plus a pass transistor isolating the local `Vn` from
    /// the global bias line — two extra transistors per cell. Discarded
    /// for cost.
    VnPulldownIsolated,
    /// (c) The current-source gate is driven by the digital ON signal and
    /// its bulk is tied to the analog `Vn` bias (body-bias modulation).
    /// Discarded: requires a −500 mV…1 V well bias and a separate well.
    BodyBias,
    /// (d) A sleep transistor in series **above** the current source —
    /// negative sleep-VGS in power-down cuts leakage. The library default.
    #[default]
    SeriesSleep,
}

impl SleepTopology {
    /// All four topologies, for comparison sweeps.
    pub const ALL: [SleepTopology; 4] = [
        SleepTopology::VnPulldown,
        SleepTopology::VnPulldownIsolated,
        SleepTopology::BodyBias,
        SleepTopology::SeriesSleep,
    ];

    /// Paper figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SleepTopology::VnPulldown => "(a)",
            SleepTopology::VnPulldownIsolated => "(b)",
            SleepTopology::BodyBias => "(c)",
            SleepTopology::SeriesSleep => "(d)",
        }
    }

    /// Extra transistors this topology adds to a cell.
    #[must_use]
    pub fn extra_transistors(self) -> usize {
        match self {
            SleepTopology::VnPulldown => 1,
            SleepTopology::VnPulldownIsolated => 2,
            SleepTopology::BodyBias => 0,
            SleepTopology::SeriesSleep => 1,
        }
    }
}

impl std::fmt::Display for SleepTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "topology {}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_flags() {
        assert!(!LogicStyle::Cmos.is_differential());
        assert!(LogicStyle::Mcml.is_differential());
        assert!(LogicStyle::PgMcml.is_differential());
        assert!(LogicStyle::PgMcml.is_power_gated());
        assert!(!LogicStyle::Mcml.is_power_gated());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(LogicStyle::PgMcml.to_string(), "PG-MCML");
        assert_eq!(SleepTopology::SeriesSleep.to_string(), "topology (d)");
    }

    #[test]
    fn default_topology_is_d() {
        assert_eq!(SleepTopology::default(), SleepTopology::SeriesSleep);
    }

    #[test]
    fn topology_costs() {
        assert_eq!(SleepTopology::SeriesSleep.extra_transistors(), 1);
        assert_eq!(SleepTopology::VnPulldownIsolated.extra_transistors(), 2);
    }
}
