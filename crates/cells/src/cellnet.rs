//! The generated transistor-level view of a standard cell.

use std::collections::HashMap;

use mcml_spice::{Circuit, Element, NodeId};

use crate::kind::CellKind;
use crate::style::LogicStyle;

/// A differential signal: positive and negative rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffSignal {
    /// Asserted-high rail.
    pub p: NodeId,
    /// Complement rail.
    pub n: NodeId,
}

impl DiffSignal {
    /// The logically inverted signal — in differential logic, inversion is
    /// free: swap the rails.
    #[must_use]
    pub fn inverted(self) -> Self {
        Self {
            p: self.n,
            n: self.p,
        }
    }
}

/// Structural statistics of a generated cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellStats {
    /// NMOS device count.
    pub n_nmos: usize,
    /// PMOS device count.
    pub n_pmos: usize,
    /// Number of current-mode stages (tails); 0 for CMOS cells.
    pub stages: usize,
}

/// A standard cell as a transistor-level netlist with named ports.
///
/// Port naming: power is `vdd` (ground is [`Circuit::GND`]); MCML cells
/// add the analog bias pins `vn`, `vp` and (PG only) `sleep` /
/// `sleep_b` as required by the topology. Logical ports use the names of
/// [`CellKind::input_names`]/[`CellKind::output_names`], with `_p`/`_n`
/// suffixes on differential cells (e.g. `a_p`, `a_n`, `q_p`, `q_n`).
#[derive(Debug, Clone)]
pub struct CellNetlist {
    /// The transistor-level circuit (without supplies or drivers; the
    /// characterisation harness provides those).
    pub circuit: Circuit,
    /// Port name → node.
    pub ports: HashMap<String, NodeId>,
    /// Which cell this is.
    pub kind: CellKind,
    /// Which style it was generated in.
    pub style: LogicStyle,
    /// Device counts.
    pub stats: CellStats,
}

impl CellNetlist {
    /// Node of a named port.
    ///
    /// # Panics
    ///
    /// Panics when the port does not exist — generator and harness must
    /// agree on names, so a miss is a bug.
    #[must_use]
    pub fn port(&self, name: &str) -> NodeId {
        *self
            .ports
            .get(name)
            .unwrap_or_else(|| panic!("cell {} has no port `{name}`", self.kind))
    }

    /// Differential port pair `name_p` / `name_n`.
    ///
    /// # Panics
    ///
    /// Panics when either rail is missing.
    #[must_use]
    pub fn diff_port(&self, name: &str) -> DiffSignal {
        DiffSignal {
            p: self.port(&format!("{name}_p")),
            n: self.port(&format!("{name}_n")),
        }
    }

    /// Total transistor count.
    #[must_use]
    pub fn transistor_count(&self) -> usize {
        self.stats.n_nmos + self.stats.n_pmos
    }

    /// Recompute device counts from the circuit (sanity cross-check used
    /// in tests).
    #[must_use]
    pub fn count_devices(&self) -> (usize, usize) {
        let mut nmos = 0;
        let mut pmos = 0;
        for (_, _, e) in self.circuit.elements() {
            if let Element::Mos { dev, .. } = e {
                match dev.params.polarity {
                    mcml_device::MosPolarity::Nmos => nmos += 1,
                    mcml_device::MosPolarity::Pmos => pmos += 1,
                }
            }
        }
        (nmos, pmos)
    }
}
