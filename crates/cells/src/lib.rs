//! # mcml-cells — the PG-MCML standard cell library
//!
//! The paper's primary contribution: a 16-cell MOS current-mode-logic
//! standard cell library with per-cell fine-grain power gating, plus the
//! two baselines it is compared against (conventional MCML and static
//! CMOS). This crate generates **transistor-level netlists** for every
//! cell in every style, ready for simulation with [`mcml_spice`]:
//!
//! * [`kind::CellKind`] — the 16 cells of the paper's Table 2 (buffer,
//!   AND2–4, XOR2–4, MUX2/4, MAJ32, D-latch, DFF, DFFR, EDFF, full adder,
//!   differential-to-single-ended converter);
//! * [`style::LogicStyle`] — `Cmos`, `Mcml`, `PgMcml`, and
//!   [`style::SleepTopology`] — the four power-gating variants of the
//!   paper's Fig. 2 (the library uses topology (d));
//! * [`bdd`] — a small reduced-ordered-BDD package; MCML differential
//!   NMOS networks are the physical embedding of the function's BDD;
//! * [`bias`] — solves the `Vn`/`Vp` bias voltages for a target tail
//!   current and output swing directly from the device model;
//! * [`area`] — the layout-area model (cell height × width in layout
//!   pitches), calibrated against the paper's published cell areas;
//! * [`cmos`] — static CMOS equivalents used for the Table 2/3 baselines.
//!
//! # Example: build and bias a PG-MCML buffer
//!
//! ```
//! use mcml_cells::{CellKind, CellParams, LogicStyle};
//!
//! let cell = mcml_cells::build_cell(CellKind::Buffer, LogicStyle::PgMcml,
//!                                   &CellParams::default());
//! assert!(cell.ports.contains_key("sleep"), "PG cells expose a sleep pin");
//! assert!(cell.transistor_count() >= 6);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod area;
pub mod bdd;
pub mod bias;
pub mod cellnet;
pub mod cmos;
pub mod kind;
pub mod mcml;
pub mod params;
pub mod style;

pub use area::{cell_area_um2, mcml_to_cmos_ratio};
pub use bias::{solve_bias, try_solve_bias, BiasError, BiasPoint};
pub use cellnet::CellNetlist;
pub use kind::{CellKind, DriveStrength};
pub use mcml_device::Corner;
pub use params::CellParams;
pub use style::{LogicStyle, SleepTopology};

/// Build the transistor-level netlist for `kind` in `style`.
///
/// For `LogicStyle::Cmos` this delegates to the static-CMOS generators;
/// for the MCML styles it instantiates the differential stage structure
/// with (PG-MCML) or without (MCML) the sleep transistor of the default
/// topology (d).
///
/// # Panics
///
/// Panics if an internal generator invariant is violated; all public
/// parameter combinations are supported.
#[must_use]
pub fn build_cell(kind: CellKind, style: LogicStyle, params: &CellParams) -> CellNetlist {
    match style {
        LogicStyle::Cmos => cmos::build_cmos_cell(kind, params),
        LogicStyle::Mcml => mcml::build_mcml_cell(kind, params, None),
        LogicStyle::PgMcml => mcml::build_mcml_cell(kind, params, Some(params.sleep_topology)),
    }
}
