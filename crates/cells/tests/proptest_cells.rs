//! Property-based tests of the cell library: BDD correctness over random
//! truth tables, and SPICE-level functionality of random cells at random
//! design points.

use proptest::prelude::*;

use mcml_cells::bdd::Bdd;
use mcml_cells::{build_cell, solve_bias, CellKind, CellParams, LogicStyle};
use mcml_spice::{Circuit, SourceWave};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BDDs built from random truth tables evaluate back to the table.
    #[test]
    fn bdd_matches_truth_table(table in collection::vec(any::<bool>(), 16)) {
        let mut bdd = Bdd::new();
        let f = bdd.from_truth_table(4, &table);
        for (i, &want) in table.iter().enumerate() {
            let asg: Vec<bool> = (0..4).map(|b| (i >> b) & 1 == 1).collect();
            prop_assert_eq!(bdd.eval(f, &asg), want, "entry {}", i);
        }
    }

    /// Boolean-algebra identities hold structurally (hash-consing makes
    /// equal functions identical nodes).
    #[test]
    fn bdd_algebra(table_a in collection::vec(any::<bool>(), 8),
                   table_b in collection::vec(any::<bool>(), 8)) {
        let mut bdd = Bdd::new();
        let a = bdd.from_truth_table(3, &table_a);
        let b = bdd.from_truth_table(3, &table_b);
        // De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b.
        let lhs = { let t = bdd.and(a, b); bdd.not(t) };
        let rhs = { let na = bdd.not(a); let nb = bdd.not(b); bdd.or(na, nb) };
        prop_assert_eq!(lhs, rhs);
        // XOR via AND/OR: a ⊕ b = (a ∨ b) ∧ ¬(a ∧ b).
        let x1 = bdd.xor(a, b);
        let x2 = {
            let o = bdd.or(a, b);
            let n = { let t = bdd.and(a, b); bdd.not(t) };
            bdd.and(o, n)
        };
        prop_assert_eq!(x1, x2);
        // Double negation.
        let nn = { let n = bdd.not(a); bdd.not(n) };
        prop_assert_eq!(nn, a);
    }
}

/// SPICE-level check of one cell at a perturbed design point.
fn cell_functional_at(kind: CellKind, iss_ua: f64, vswing: f64, pattern: u32) -> bool {
    let mut params = CellParams::default();
    params = params.with_iss(iss_ua * 1e-6);
    params.vswing = vswing;
    let bias = solve_bias(&params);
    let cell = build_cell(kind, LogicStyle::PgMcml, &params);
    let mut ckt = cell.circuit.clone();
    let vdd_v = params.tech.vdd;
    ckt.vsource("VDD", cell.port("vdd"), Circuit::GND, SourceWave::dc(vdd_v));
    ckt.vsource("VN", cell.port("vn"), Circuit::GND, SourceWave::dc(bias.vn));
    ckt.vsource("VP", cell.port("vp"), Circuit::GND, SourceWave::dc(bias.vp));
    ckt.vsource(
        "VS",
        cell.port("sleep"),
        Circuit::GND,
        SourceWave::dc(vdd_v),
    );
    let inputs: Vec<bool> = (0..kind.input_count())
        .map(|i| (pattern >> i) & 1 == 1)
        .collect();
    for (i, name) in kind.input_names().iter().enumerate() {
        let (hi, lo) = if inputs[i] {
            (vdd_v, params.v_low())
        } else {
            (params.v_low(), vdd_v)
        };
        ckt.vsource(
            &format!("VI{name}p"),
            cell.port(&format!("{name}_p")),
            Circuit::GND,
            SourceWave::dc(hi),
        );
        ckt.vsource(
            &format!("VI{name}n"),
            cell.port(&format!("{name}_n")),
            Circuit::GND,
            SourceWave::dc(lo),
        );
    }
    let op = ckt.dc_op().expect("dc converges");
    let expect = kind.eval_comb(&inputs).expect("combinational");
    kind.output_names()
        .iter()
        .zip(&expect)
        .all(|(oname, &want)| {
            let v = op.voltage(cell.port(&format!("{oname}_p")))
                - op.voltage(cell.port(&format!("{oname}_n")));
            (v > 0.0) == want && v.abs() > 0.08
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// PG-MCML cells stay functionally correct across the usable bias
    /// design space (Iss 25–150 µA, swing 0.35–0.5 V), not just at the
    /// library's 50 µA / 0.4 V point.
    #[test]
    fn cells_functional_across_design_space(
        iss_ua in 25.0f64..150.0,
        vswing in 0.35f64..0.5,
        kind_pick in 0usize..4,
        pattern in 0u32..16,
    ) {
        let kind = [CellKind::Buffer, CellKind::And2, CellKind::Xor2, CellKind::Mux2][kind_pick];
        let pattern = pattern & ((1 << kind.input_count()) - 1);
        prop_assert!(
            cell_functional_at(kind, iss_ua, vswing, pattern),
            "{kind:?} at Iss={iss_ua} µA, swing={vswing} V, pattern={pattern:#x}"
        );
    }
}
