//! Golden corpus for the gate-level rule pack: one deliberately broken
//! netlist per rule, asserting the exact rule id (and severity) each
//! violation is reported under. These ids are the stable public
//! contract of `mcml-lint` (documented in `docs/LINTING.md`).

use mcml_cells::{CellKind, LogicStyle};
use mcml_lint::{LintConfig, LintEngine, LintReport, Severity};
use mcml_netlist::sleep_tree::SleepTree;
use mcml_netlist::{Conn, GateKind, Netlist, SleepDomain, SleepPlan};

fn lint(nl: &Netlist) -> LintReport {
    LintEngine::with_default_rules().lint_netlist(nl, None)
}

fn assert_rule(report: &LintReport, rule_id: &str, severity: Severity) {
    let hits: Vec<_> = report.by_rule(rule_id).collect();
    assert!(
        !hits.is_empty(),
        "expected a `{rule_id}` diagnostic, got: {:?}",
        report.diagnostics
    );
    assert!(
        hits.iter().all(|d| d.severity == severity),
        "`{rule_id}` severity: {hits:?}"
    );
}

#[test]
fn net_undriven_is_reported() {
    let mut nl = Netlist::new("t", LogicStyle::PgMcml);
    let a = nl.add_input("a");
    let ghost = nl.add_net("ghost");
    let q = nl.add_net("q");
    nl.add_gate(
        "u",
        GateKind::Lib(CellKind::And2),
        vec![Conn::plain(a), Conn::plain(ghost)],
        vec![q],
    );
    nl.set_output("q", Conn::plain(q));
    let report = lint(&nl);
    assert_rule(&report, "net-undriven", Severity::Warn);
    assert!(report.is_clean(), "warn-only: {report:?}");
}

#[test]
fn net_multi_driven_is_reported() {
    let mut nl = Netlist::new("t", LogicStyle::PgMcml);
    let a = nl.add_input("a");
    let q = nl.add_net("q");
    for name in ["u1", "u2"] {
        nl.add_gate(
            name,
            GateKind::Lib(CellKind::Buffer),
            vec![Conn::plain(a)],
            vec![q],
        );
    }
    nl.set_output("q", Conn::plain(q));
    let report = lint(&nl);
    assert_rule(&report, "net-multi-driven", Severity::Deny);
    assert!(!report.is_clean());
}

#[test]
fn net_dangling_is_reported() {
    let mut nl = Netlist::new("t", LogicStyle::PgMcml);
    let a = nl.add_input("a");
    let q = nl.add_net("q");
    nl.add_gate(
        "u",
        GateKind::Lib(CellKind::Buffer),
        vec![Conn::plain(a)],
        vec![q],
    );
    // `q` never consumed: no output declared.
    let report = lint(&nl);
    assert_rule(&report, "net-dangling", Severity::Warn);
}

#[test]
fn input_driven_is_reported() {
    let mut nl = Netlist::new("t", LogicStyle::PgMcml);
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    nl.add_gate(
        "u",
        GateKind::Lib(CellKind::Buffer),
        vec![Conn::plain(a)],
        vec![b],
    );
    nl.set_output("q", Conn::plain(b));
    let report = lint(&nl);
    assert_rule(&report, "input-driven", Severity::Deny);
}

#[test]
fn comb_loop_is_reported_with_cycle() {
    let mut nl = Netlist::new("t", LogicStyle::PgMcml);
    let x = nl.add_input("x");
    let a = nl.add_net("a");
    let b = nl.add_net("b");
    nl.add_gate(
        "u1",
        GateKind::Lib(CellKind::And2),
        vec![Conn::plain(a), Conn::plain(x)],
        vec![b],
    );
    nl.add_gate(
        "u2",
        GateKind::Lib(CellKind::And2),
        vec![Conn::plain(b), Conn::plain(x)],
        vec![a],
    );
    nl.set_output("q", Conn::plain(a));
    let report = lint(&nl);
    assert_rule(&report, "comb-loop", Severity::Deny);
    let d = report.by_rule("comb-loop").next().unwrap();
    assert!(
        d.message.contains("u1") && d.message.contains("u2") && d.message.contains("->"),
        "cycle path named: {}",
        d.message
    );
}

#[test]
fn sequential_gate_breaks_the_loop() {
    let mut nl = Netlist::new("t", LogicStyle::PgMcml);
    let clk = nl.add_input("clk");
    let a = nl.add_net("a");
    let b = nl.add_net("b");
    nl.add_gate(
        "u1",
        GateKind::Lib(CellKind::Buffer),
        vec![Conn::plain(a)],
        vec![b],
    );
    nl.add_gate(
        "ff",
        GateKind::Lib(CellKind::Dff),
        vec![Conn::plain(b), Conn::plain(clk)],
        vec![a],
    );
    nl.set_output("q", Conn::plain(a));
    let report = lint(&nl);
    assert_eq!(report.by_rule("comb-loop").count(), 0, "{report:?}");
}

#[test]
fn diff_illegal_inverter_is_reported() {
    let mut nl = Netlist::new("t", LogicStyle::Mcml);
    let a = nl.add_input("a");
    let q = nl.add_net("q");
    nl.add_gate("u_inv", GateKind::Inv, vec![Conn::plain(a)], vec![q]);
    nl.set_output("q", Conn::plain(q));
    let report = lint(&nl);
    assert_rule(&report, "diff-illegal-inverter", Severity::Deny);
}

#[test]
fn fanout_envelope_is_reported() {
    let mut nl = Netlist::new("t", LogicStyle::PgMcml);
    let a = nl.add_input("a");
    for i in 0..5 {
        let q = nl.add_net(&format!("q{i}"));
        nl.add_gate(
            &format!("u{i}"),
            GateKind::Lib(CellKind::Buffer),
            vec![Conn::plain(a)],
            vec![q],
        );
        nl.set_output(&format!("q{i}"), Conn::plain(q));
    }
    let report = lint(&nl); // a drives 5 > FO4 default
    assert_rule(&report, "fanout-envelope", Severity::Warn);
    let d = report.by_rule("fanout-envelope").next().unwrap();
    assert_eq!(d.location.to_string(), "net a");

    // A raised envelope waives it.
    let mut cfg = LintConfig::default();
    cfg.max_fanout = 8;
    let relaxed = LintEngine::new(cfg).lint_netlist(&nl, None);
    assert_eq!(relaxed.by_rule("fanout-envelope").count(), 0);
}

#[test]
fn cmos_inverted_conn_is_reported() {
    let mut nl = Netlist::new("t", LogicStyle::Cmos);
    let a = nl.add_input("a");
    let q = nl.add_net("q");
    nl.add_gate(
        "u",
        GateKind::Lib(CellKind::Buffer),
        vec![Conn::inv(a)],
        vec![q],
    );
    nl.set_output("q", Conn::inv(q));
    let report = lint(&nl);
    assert_rule(&report, "cmos-inverted-conn", Severity::Deny);
    assert_eq!(
        report.by_rule("cmos-inverted-conn").count(),
        2,
        "pin + output"
    );

    // The same connections are legal (free) in a differential netlist.
    let mut diff = Netlist::new("t", LogicStyle::PgMcml);
    let a = diff.add_input("a");
    let q = diff.add_net("q");
    diff.add_gate(
        "u",
        GateKind::Lib(CellKind::Buffer),
        vec![Conn::inv(a)],
        vec![q],
    );
    diff.set_output("q", Conn::inv(q));
    assert_eq!(lint(&diff).by_rule("cmos-inverted-conn").count(), 0);
}

/// Two-gate PG netlist used by the sleep-plan tests.
fn pg_pair() -> Netlist {
    let mut nl = Netlist::new("t", LogicStyle::PgMcml);
    let a = nl.add_input("a");
    let m = nl.add_net("m");
    let q = nl.add_net("q");
    nl.add_gate(
        "u1",
        GateKind::Lib(CellKind::Buffer),
        vec![Conn::plain(a)],
        vec![m],
    );
    nl.add_gate(
        "u2",
        GateKind::Lib(CellKind::Buffer),
        vec![Conn::plain(m)],
        vec![q],
    );
    nl.set_output("q", Conn::plain(q));
    nl
}

fn tree(insertion_delay: f64) -> SleepTree {
    SleepTree {
        sinks: 2,
        buffers_per_level: vec![1],
        insertion_delay,
        skew: 0.0,
    }
}

#[test]
fn sleep_domain_orphan_is_reported() {
    let nl = pg_pair();
    // Gate u2 claims domain 0 membership, but the domain lists only u1.
    let plan = SleepPlan {
        domains: vec![SleepDomain {
            name: "d0".into(),
            gates: vec![0],
            tree: tree(0.5e-9),
        }],
        domain_of_gate: vec![0, 0],
    };
    let report = LintEngine::with_default_rules().lint_netlist(&nl, Some(&plan));
    assert_rule(&report, "sleep-domain-orphan", Severity::Deny);
    let d = report.by_rule("sleep-domain-orphan").next().unwrap();
    assert_eq!(d.location.to_string(), "gate u2");

    // A complete plan is clean.
    let full = SleepPlan {
        domains: vec![SleepDomain {
            name: "d0".into(),
            gates: vec![0, 1],
            tree: tree(0.5e-9),
        }],
        domain_of_gate: vec![0, 0],
    };
    let report = LintEngine::with_default_rules().lint_netlist(&nl, Some(&full));
    assert_eq!(
        report.by_rule("sleep-domain-orphan").count(),
        0,
        "{report:?}"
    );
}

#[test]
fn sleep_insertion_delay_is_reported() {
    let nl = pg_pair();
    let plan = SleepPlan {
        domains: vec![SleepDomain {
            name: "slow".into(),
            gates: vec![0, 1],
            tree: tree(2.3e-9), // over the 1 ns budget
        }],
        domain_of_gate: vec![0, 0],
    };
    let report = LintEngine::with_default_rules().lint_netlist(&nl, Some(&plan));
    assert_rule(&report, "sleep-insertion-delay", Severity::Warn);
    let d = report.by_rule("sleep-insertion-delay").next().unwrap();
    assert!(
        d.message.contains("slow") && d.message.contains("2.30 ns"),
        "{}",
        d.message
    );
}

#[test]
fn iss_budget_is_reported_when_configured() {
    let mut nl = Netlist::new("t", LogicStyle::Mcml);
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let ci = nl.add_input("ci");
    let s = nl.add_net("s");
    let co = nl.add_net("co");
    nl.add_gate(
        "fa",
        GateKind::Lib(CellKind::FullAdder),
        vec![Conn::plain(a), Conn::plain(b), Conn::plain(ci)],
        vec![s, co],
    );
    nl.set_output("s", Conn::plain(s));
    nl.set_output("co", Conn::plain(co));

    // Disabled by default.
    assert_eq!(lint(&nl).by_rule("iss-budget").count(), 0);

    // 5 stages × 50 µA = 250 µA > 200 µA budget.
    let mut cfg = LintConfig::default();
    cfg.iss_budget = Some(200e-6);
    let report = LintEngine::new(cfg).lint_netlist(&nl, None);
    assert_rule(&report, "iss-budget", Severity::Warn);
    let d = report.by_rule("iss-budget").next().unwrap();
    assert!(
        d.message.contains("250.0 µA") && d.message.contains("5 stages"),
        "{}",
        d.message
    );

    // A generous budget stays quiet.
    let mut cfg = LintConfig::default();
    cfg.iss_budget = Some(1e-3);
    assert_eq!(
        LintEngine::new(cfg)
            .lint_netlist(&nl, None)
            .by_rule("iss-budget")
            .count(),
        0
    );
}
