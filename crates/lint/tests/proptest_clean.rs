//! Property-based tests: the flow's own transformations never produce
//! netlists the linter rejects. `map_network` output (any style, fused
//! and buffered) and `insert_sleep_domains` plans over random networks
//! are lint-clean.

use std::sync::OnceLock;

use proptest::prelude::*;

use mcml_cells::{CellKind, CellParams, LogicStyle};
use mcml_char::{characterize_cell, TimingLibrary};
use mcml_lint::{LintConfig, LintEngine};
use mcml_netlist::sleep_tree::SleepTreeOptions;
use mcml_netlist::{insert_sleep_domains, map_network, BoolNetwork, Signal, TechmapOptions};

/// Recipe for one random network node (mirrors the techmap proptests).
#[derive(Debug, Clone)]
enum NodeRecipe {
    And(usize, usize, bool, bool),
    Xor(usize, usize, bool),
    Mux(usize, usize, usize, bool),
    Or(usize, usize),
}

fn recipe_strategy(max_ref: usize) -> impl Strategy<Value = NodeRecipe> {
    prop_oneof![
        (0..max_ref, 0..max_ref, any::<bool>(), any::<bool>())
            .prop_map(|(a, b, ia, ib)| NodeRecipe::And(a, b, ia, ib)),
        (0..max_ref, 0..max_ref, any::<bool>()).prop_map(|(a, b, i)| NodeRecipe::Xor(a, b, i)),
        (0..max_ref, 0..max_ref, 0..max_ref, any::<bool>())
            .prop_map(|(s, a, b, i)| NodeRecipe::Mux(s, a, b, i)),
        (0..max_ref, 0..max_ref).prop_map(|(a, b)| NodeRecipe::Or(a, b)),
    ]
}

fn build_network(recipes: &[NodeRecipe], n_outputs: usize) -> BoolNetwork {
    let mut bn = BoolNetwork::new();
    let mut pool: Vec<Signal> = (0..6).map(|i| bn.input(&format!("i{i}"))).collect();
    for r in recipes {
        let pick = |i: usize| pool[i % pool.len()];
        let s = match r {
            NodeRecipe::And(a, b, ia, ib) => {
                let (mut x, mut y) = (pick(*a), pick(*b));
                if *ia {
                    x = x.not();
                }
                if *ib {
                    y = y.not();
                }
                bn.and(x, y)
            }
            NodeRecipe::Xor(a, b, i) => {
                let x = pick(*a);
                let y = if *i { pick(*b).not() } else { pick(*b) };
                bn.xor(x, y)
            }
            NodeRecipe::Mux(s, a, b, i) => {
                let sel = if *i { pick(*s).not() } else { pick(*s) };
                bn.mux(sel, pick(*a), pick(*b))
            }
            NodeRecipe::Or(a, b) => bn.or(pick(*a), pick(*b)),
        };
        pool.push(s);
    }
    let fallback = pool[0];
    let mut non_const: Vec<Signal> = pool
        .iter()
        .rev()
        .copied()
        .filter(|&s| bn.as_const(s).is_none())
        .take(4)
        .collect();
    if non_const.is_empty() {
        non_const.push(fallback);
    }
    for o in 0..n_outputs {
        bn.set_output(&format!("o{o}"), non_const[o % non_const.len()]);
    }
    bn
}

/// An engine whose fan-out envelope matches the techmap's buffering
/// limit, so buffered netlists don't trip the (stricter) FO4 default.
fn engine() -> LintEngine {
    let mut cfg = LintConfig::default();
    cfg.max_fanout = TechmapOptions::default().max_fanout;
    LintEngine::new(cfg)
}

/// One CMOS buffer characterisation shared by every case (the sleep
/// tree sizes its wake-up buffers from it).
fn sleep_lib() -> &'static TimingLibrary {
    static LIB: OnceLock<TimingLibrary> = OnceLock::new();
    LIB.get_or_init(|| {
        let mut lib = TimingLibrary::new();
        let t = characterize_cell(CellKind::Buffer, LogicStyle::Cmos, &CellParams::default())
            .expect("CMOS buffer characterises");
        lib.insert(t);
        lib
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the mapper emits — any style, fusion and buffering on —
    /// passes the full gate-level pack with no deny diagnostics, and no
    /// warnings beyond dangling nets (degenerate random networks can
    /// duplicate an output cone, leaving an unconsumed copy behind).
    #[test]
    fn techmap_output_is_lint_clean(
        recipes in collection::vec(recipe_strategy(12), 3..25),
        style_pick in 0usize..3,
    ) {
        let bn = build_network(&recipes, 3);
        let style = [LogicStyle::Cmos, LogicStyle::Mcml, LogicStyle::PgMcml][style_pick];
        let nl = map_network(&bn, style, &TechmapOptions::default());
        let report = engine().lint_netlist(&nl, None);
        prop_assert!(
            report.is_clean(),
            "mapped {} netlist has denies: {:?}", style, report.diagnostics
        );
        prop_assert!(
            report.diagnostics.iter().all(|d| d.rule_id == "net-dangling"),
            "unexpected warnings in mapped {} netlist: {:?}", style, report.diagnostics
        );
    }

    /// A fully PG-MCML mapped design stays clean under the dataflow
    /// pack: with no secret annotation the taint analysis finds nothing
    /// at all, and even with every input marked secret the differential
    /// style triggers none of the `dataflow-*` rules (constant tail
    /// current hides taint and glitches alike, and the techmap never
    /// emits single-ended crossings or secret-gated clocks).
    #[test]
    fn pg_mcml_techmap_output_is_taint_clean(
        recipes in collection::vec(recipe_strategy(12), 3..25),
    ) {
        let bn = build_network(&recipes, 3);
        let mut nl = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        let results = mcml_lint::dataflow::analyze(&nl, None)
            .expect("mapped netlists are acyclic");
        prop_assert!(results.is_taint_clean(), "no ports are classified secret");

        let input_names: Vec<String> =
            nl.inputs().iter().map(|(name, _)| name.clone()).collect();
        for name in &input_names {
            nl.set_port_class(name, mcml_netlist::PortClass::Secret);
        }
        let report = engine().lint_netlist(&nl, None);
        prop_assert!(
            report.diagnostics.iter().all(|d| !d.rule_id.starts_with("dataflow-")),
            "dataflow findings on an all-PG-MCML design: {:?}", report.diagnostics
        );
    }

    /// Automatic sleep insertion produces a plan with no orphans and no
    /// deny diagnostics against its own netlist.
    #[test]
    fn sleep_plan_is_lint_clean(
        recipes in collection::vec(recipe_strategy(10), 4..20),
    ) {
        let bn = build_network(&recipes, 3);
        let nl = map_network(&bn, LogicStyle::PgMcml, &TechmapOptions::default());
        let groups: Vec<(&str, Vec<&str>)> =
            vec![("g0", vec!["o0"]), ("g1", vec!["o1", "o2"])];
        let plan = insert_sleep_domains(&nl, &groups, sleep_lib(), &SleepTreeOptions::default());
        let report = engine().lint_netlist(&nl, Some(&plan));
        prop_assert!(report.is_clean(), "{:?}", report.diagnostics);
        prop_assert_eq!(report.by_rule("sleep-domain-orphan").count(), 0);
    }
}
